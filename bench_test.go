// Benchmarks regenerating the paper's evaluation, one per table/figure, plus
// live-runtime microbenchmarks. The figure benches report the quantities the
// paper plots as custom benchmark metrics:
//
//	avg_agility       mean SPEC agility over the run
//	zero_frac         fraction of samples with zero agility
//	max_prov_latency  worst provisioning interval (seconds)
//
// Run with:
//
//	go test -bench=. -benchmem .
package elasticrmi_test

import (
	"fmt"
	"testing"
	"time"

	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/benchsim"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
	"elasticrmi/internal/workload"
)

// benchFigure runs one Fig. 7 experiment per iteration and reports the
// headline metrics for the ElasticRMI deployment plus the baseline ratios.
func benchFigure(b *testing.B, app benchsim.AppModel, pattern workload.Pattern) {
	b.Helper()
	var ex benchsim.Experiment
	for i := 0; i < b.N; i++ {
		ex = benchsim.RunExperiment(app, pattern)
	}
	ermi := ex.Results[benchsim.DeployElasticRMI]
	b.ReportMetric(ermi.AvgAgility(), "avg_agility")
	b.ReportMetric(ermi.ZeroFraction(), "zero_frac")
	b.ReportMetric(ermi.MaxProvisioningLatency().Seconds(), "max_prov_s")
	b.ReportMetric(ex.RatioVsElasticRMI(benchsim.DeployCloudWatch), "cloudwatch_x")
	b.ReportMetric(ex.RatioVsElasticRMI(benchsim.DeployOverprovision), "overprov_x")
}

// Figures 7a/7b: the workload patterns themselves.

func BenchmarkFig7aAbruptPattern(b *testing.B) {
	p := workload.Abrupt(50000)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, v := range workload.Sample(p, time.Minute) {
			sink += v
		}
	}
	_ = sink
	b.ReportMetric(p.Peak(), "point_A")
}

func BenchmarkFig7bCyclicPattern(b *testing.B) {
	p := workload.Cyclic(60000)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, v := range workload.Sample(p, time.Minute) {
			sink += v
		}
	}
	_ = sink
	b.ReportMetric(p.Peak(), "point_B")
}

// Figures 7c-7j: agility per application and workload.

func BenchmarkFig7cMarketceteraAbrupt(b *testing.B) {
	app := benchsim.MarketceteraModel()
	benchFigure(b, app, workload.Abrupt(app.PeakA))
}

func BenchmarkFig7dMarketceteraCyclic(b *testing.B) {
	app := benchsim.MarketceteraModel()
	benchFigure(b, app, workload.Cyclic(app.PeakB()))
}

func BenchmarkFig7eHedwigAbrupt(b *testing.B) {
	app := benchsim.HedwigModel()
	benchFigure(b, app, workload.Abrupt(app.PeakA))
}

func BenchmarkFig7fHedwigCyclic(b *testing.B) {
	app := benchsim.HedwigModel()
	benchFigure(b, app, workload.Cyclic(app.PeakB()))
}

func BenchmarkFig7gPaxosAbrupt(b *testing.B) {
	app := benchsim.PaxosModel()
	benchFigure(b, app, workload.Abrupt(app.PeakA))
}

func BenchmarkFig7hPaxosCyclic(b *testing.B) {
	app := benchsim.PaxosModel()
	benchFigure(b, app, workload.Cyclic(app.PeakB()))
}

func BenchmarkFig7iDCSAbrupt(b *testing.B) {
	app := benchsim.DCSModel()
	benchFigure(b, app, workload.Abrupt(app.PeakA))
}

func BenchmarkFig7jDCSCyclic(b *testing.B) {
	app := benchsim.DCSModel()
	benchFigure(b, app, workload.Cyclic(app.PeakB()))
}

// Figures 8a/8b: provisioning latency across the four applications.

func benchProvisioning(b *testing.B, pat func(benchsim.AppModel) workload.Pattern) {
	b.Helper()
	var worst, mean float64
	for i := 0; i < b.N; i++ {
		worst, mean = 0, 0
		events := 0
		for _, app := range benchsim.Models() {
			res := benchsim.Run(benchsim.RunConfig{
				App: app, Pattern: pat(app), Deploy: benchsim.DeployElasticRMI,
			})
			for _, ev := range res.Provisioning {
				if s := ev.Latency.Seconds(); s > worst {
					worst = s
				}
				mean += ev.Latency.Seconds()
				events++
			}
		}
		if events > 0 {
			mean /= float64(events)
		}
	}
	b.ReportMetric(worst, "max_prov_s")
	b.ReportMetric(mean, "mean_prov_s")
}

func BenchmarkFig8aProvisioningAbrupt(b *testing.B) {
	benchProvisioning(b, func(app benchsim.AppModel) workload.Pattern {
		return workload.Abrupt(app.PeakA)
	})
}

func BenchmarkFig8bProvisioningCyclic(b *testing.B) {
	benchProvisioning(b, func(app benchsim.AppModel) workload.Pattern {
		return workload.Cyclic(app.PeakB())
	})
}

// Section 5.5 summary ratios across all eight experiments.
func BenchmarkSummaryAgilityRatios(b *testing.B) {
	var minRatio, maxRatio float64
	for i := 0; i < b.N; i++ {
		minRatio, maxRatio = 1e18, 0
		for _, app := range benchsim.Models() {
			for _, p := range []workload.Pattern{workload.Abrupt(app.PeakA), workload.Cyclic(app.PeakB())} {
				ex := benchsim.RunExperiment(app, p)
				r := ex.RatioVsElasticRMI(benchsim.DeployCloudWatch)
				if r < minRatio {
					minRatio = r
				}
				if r > maxRatio {
					maxRatio = r
				}
			}
		}
	}
	b.ReportMetric(minRatio, "min_cloudwatch_x")
	b.ReportMetric(maxRatio, "max_cloudwatch_x")
}

// Ablation benchmarks: quantify the design choices DESIGN.md calls out by
// sweeping one knob at a time on the Marketcetera/abrupt experiment.

// BenchmarkAblationCommonModeError compares ElasticRMI with noisy vs
// perfect application metrics.
func BenchmarkAblationCommonModeError(b *testing.B) {
	app := benchsim.MarketceteraModel()
	var noisy, ideal float64
	for i := 0; i < b.N; i++ {
		noisy = benchsim.Run(benchsim.RunConfig{
			App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: benchsim.DeployElasticRMI,
		}).AvgAgility()
		ideal = benchsim.Run(benchsim.RunConfig{
			App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: benchsim.DeployElasticRMI,
			DisableCommonModeError: true,
		}).AvgAgility()
	}
	b.ReportMetric(noisy, "agility_noisy")
	b.ReportMetric(ideal, "agility_perfect")
}

// BenchmarkAblationFineDeltaCap sweeps the per-member ChangePoolSize bound.
func BenchmarkAblationFineDeltaCap(b *testing.B) {
	app := benchsim.MarketceteraModel()
	caps := map[string]int{"cap1": 1, "cap2": 2, "cap4": 4, "unbounded": -1}
	results := make(map[string]float64, len(caps))
	for i := 0; i < b.N; i++ {
		for name, c := range caps {
			results[name] = benchsim.Run(benchsim.RunConfig{
				App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: benchsim.DeployElasticRMI,
				FineDeltaCap: c,
			}).AvgAgility()
		}
	}
	for name, v := range results {
		b.ReportMetric(v, "agility_"+name)
	}
}

// BenchmarkAblationCloudWatchLatency sweeps the VM provisioning latency.
func BenchmarkAblationCloudWatchLatency(b *testing.B) {
	app := benchsim.MarketceteraModel()
	scales := map[string]float64{"container": 0.01, "vm": 1, "slow_vm": 3}
	results := make(map[string]float64, len(scales))
	for i := 0; i < b.N; i++ {
		for name, s := range scales {
			results[name] = benchsim.Run(benchsim.RunConfig{
				App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: benchsim.DeployCloudWatch,
				CloudWatchLatencyScale: s,
			}).AvgAgility()
		}
	}
	for name, v := range results {
		b.ReportMetric(v, "agility_"+name)
	}
}

// Live-runtime microbenchmarks: a real pool over loopback TCP.

type liveEnv struct {
	mgr    *cluster.Manager
	store  *kvstore.Cluster
	reg    *core.RegistryServer
	regCli *core.RegistryClient
	pool   *core.Pool
	stub   *core.Stub
}

func startLive(b *testing.B, minPool, maxPool int) *liveEnv {
	b.Helper()
	mgr, err := cluster.New(cluster.Config{Nodes: 16, SlicesPerNode: 1})
	if err != nil {
		b.Fatal(err)
	}
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	reg, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	regCli, err := core.DialRegistry(reg.Addr())
	if err != nil {
		b.Fatal(err)
	}
	pool, err := core.NewPool(core.Config{
		Name: "bench-cache", MinPoolSize: minPool, MaxPoolSize: maxPool,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, cache.New(cache.Config{Mode: cache.ExplicitFine}), core.Deps{
		Cluster: mgr, Store: store, Registry: regCli,
	})
	if err != nil {
		b.Fatal(err)
	}
	stub, err := core.LookupStub("bench-cache", regCli)
	if err != nil {
		b.Fatal(err)
	}
	env := &liveEnv{mgr: mgr, store: store, reg: reg, regCli: regCli, pool: pool, stub: stub}
	b.Cleanup(func() {
		stub.Close()
		pool.Close()
		regCli.Close()
		reg.Close()
		store.Close()
		mgr.Close()
	})
	return env
}

// BenchmarkInvokeGet measures a full remote method invocation through the
// elastic pool: stub -> skeleton -> shared state -> back.
func BenchmarkInvokeGet(b *testing.B) {
	env := startLive(b, 2, 2)
	if _, err := core.Call[cache.PutArgs, cache.PutReply](env.stub, cache.MethodPut,
		cache.PutArgs{Key: "k", Value: []byte("v")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Call[cache.GetArgs, cache.GetReply](env.stub, cache.MethodGet,
			cache.GetArgs{Key: "k"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokePut includes the per-key write lock.
func BenchmarkInvokePut(b *testing.B) {
	env := startLive(b, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%128)
		if _, err := core.Call[cache.PutArgs, cache.PutReply](env.stub, cache.MethodPut,
			cache.PutArgs{Key: key, Value: []byte("v")}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeParallel measures throughput with client-side load
// balancing over a four-member pool.
func BenchmarkInvokeParallel(b *testing.B) {
	env := startLive(b, 4, 4)
	if _, err := core.Call[cache.PutArgs, cache.PutReply](env.stub, cache.MethodPut,
		cache.PutArgs{Key: "k", Value: []byte("v")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := core.Call[cache.GetArgs, cache.GetReply](env.stub, cache.MethodGet,
				cache.GetArgs{Key: "k"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInvokeAsyncPipelined measures the asynchronous invocation
// pipeline end to end through the elastic pool: a batching stub keeps a
// window of 64 typed futures in flight against the same workload
// BenchmarkInvokeGet drives one call at a time.
func BenchmarkInvokeAsyncPipelined(b *testing.B) {
	env := startLive(b, 2, 2)
	stub, err := core.LookupStub("bench-cache", env.regCli,
		core.WithBatching(200*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { stub.Close() })
	// Spread over keys: a single hot key serializes on the store's per-key
	// coherence, which would mask the pipeline.
	const window, keys = 64, 128
	for i := 0; i < keys; i++ {
		if _, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
			cache.PutArgs{Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	futures := make([]*core.Future[cache.GetReply], 0, window)
	for done := 0; done < b.N; {
		n := window
		if rem := b.N - done; n > rem {
			n = rem
		}
		futures = futures[:0]
		for j := 0; j < n; j++ {
			futures = append(futures,
				core.GoCall[cache.GetArgs, cache.GetReply](stub, cache.MethodGet,
					cache.GetArgs{Key: fmt.Sprintf("k%d", (done+j)%keys)}))
		}
		for _, f := range futures {
			if _, err := f.Get(); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}

// BenchmarkScaleUp measures the live provisioning interval: request a slice,
// launch a member, first request served.
func BenchmarkScaleUp(b *testing.B) {
	env := startLive(b, 2, 64)
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := env.pool.Resize(1); err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
		b.StopTimer()
		// The bench cluster has 16 slices; recycle before exhausting it.
		if env.pool.Size() >= 12 {
			if err := env.pool.Resize(-(env.pool.Size() - 2)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	if b.N > 0 {
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms/member")
	}
}
