// Package elasticrmi is a from-scratch Go reproduction of "Elastic Remote
// Methods" (K. R. Jayaram, MIDDLEWARE 2013): a middleware for elastic
// distributed objects, where a remote class is instantiated into a pool of
// objects that behaves toward clients as a single remote object, and the
// runtime grows and shrinks the pool from coarse-grained (CPU/RAM) or
// fine-grained (application-defined) workload signals.
//
// The implementation lives under internal/:
//
//   - internal/core — the ElasticRMI runtime (pools, stubs, skeletons,
//     sentinel, scaling policies, registry, shared state).
//   - internal/route — the epoch-versioned routing layer: membership
//     tables stamped by the pool runtime, the consistent-hash ring, and
//     the client-side pickers (round-robin, power-of-two-choices,
//     key affinity) stubs balance with.
//   - internal/transport, internal/kvstore, internal/cluster,
//     internal/group, internal/metrics, internal/simclock — the substrates
//     (wire protocol with piggybacked route updates, HyperDex-like store,
//     Mesos-like cluster manager, JGroups-like group communication,
//     workload metering, virtual time).
//   - internal/apps — the evaluation applications (Marketcetera order
//     routing, Hedwig pub/sub, Paxos, DCS) plus the paper's running cache
//     example.
//   - internal/workload, internal/agility, internal/benchsim — the
//     evaluation harness reproducing every figure of the paper.
//
// See README.md for a tour of the packages, the synchronous/asynchronous
// invocation API and the test harness. The benchmarks in bench_test.go
// regenerate the paper's figures plus the live-runtime microbenchmarks:
//
//	go test -bench=. -benchmem .
//
// BENCH_transport.json, BENCH_async.json and BENCH_routing.json record the
// wire hot path, the async-pipeline throughput and the routing-strategy
// figures (regenerate with `make bench`).
package elasticrmi
