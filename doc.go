// Package elasticrmi is a from-scratch Go reproduction of "Elastic Remote
// Methods" (K. R. Jayaram, MIDDLEWARE 2013): a middleware for elastic
// distributed objects, where a remote class is instantiated into a pool of
// objects that behaves toward clients as a single remote object, and the
// runtime grows and shrinks the pool from coarse-grained (CPU/RAM) or
// fine-grained (application-defined) workload signals.
//
// The implementation lives under internal/:
//
//   - internal/core — the ElasticRMI runtime (pools, stubs, skeletons,
//     sentinel, scaling policies, registry, shared state).
//   - internal/transport, internal/kvstore, internal/cluster,
//     internal/group, internal/metrics, internal/simclock — the substrates
//     (wire protocol, HyperDex-like store, Mesos-like cluster manager,
//     JGroups-like group communication, workload metering, virtual time).
//   - internal/apps — the evaluation applications (Marketcetera order
//     routing, Hedwig pub/sub, Paxos, DCS) plus the paper's running cache
//     example.
//   - internal/workload, internal/agility, internal/benchsim — the
//     evaluation harness reproducing every figure of the paper.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each figure: run
//
//	go test -bench=. -benchmem .
package elasticrmi
