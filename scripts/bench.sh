#!/usr/bin/env bash
# bench.sh — gate and benchmark the transport hot path.
#
# Runs go vet and the transport race tests, then the transport
# microbenchmarks, and rewrites BENCH_transport.json with the current
# numbers next to the frozen seed baseline (the gob-framed transport at
# commit b60f3ab, measured with the same bench_test.go), so every PR can see
# the perf trajectory at a glance. Also rewrites BENCH_async.json comparing
# sequential-sync, pipelined-async, batched-async and one-way echo
# throughput (the PR-2 asynchronous invocation pipeline figure), and
# BENCH_routing.json comparing routing strategies (p2c vs round-robin tail
# latency under a skewed pool; hot-key affinity vs spray throughput — the
# PR-3 epoch-routing figure, from internal/core/routing_bench_test.go), and
# BENCH_overload.json comparing goodput at ~10x capacity with the admission
# controller against the old unguarded goroutine-per-request server (the
# PR-4 deadline/admission-control figure).
#
# Usage: scripts/bench.sh            (or: make bench)
#        BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race -timeout 300s ./internal/transport/...

# BenchmarkOverload* are fixed-duration saturation experiments, run
# separately below with -benchtime 1x; keep them out of the timed sweep.
OUT=$(go test -run '^$' -bench '^Benchmark(Call|OneWay|RoundTrip)' -benchmem -benchtime "${BENCHTIME:-2s}" ./internal/transport/)
printf '%s\n' "$OUT"

# The seed baseline is frozen: it is the reference every later run is
# compared against, not something a rerun should overwrite.
IFS= read -r -d '' SEED_BASELINE <<'EOF' || true
    "description": "seed transport (per-frame gob codec, unbuffered writes) at commit b60f3ab, same bench_test.go, same machine class",
    "BenchmarkCall": {"ns_per_op": 59063, "mb_per_s": 1.08, "bytes_per_op": 25696, "allocs_per_op": 524},
    "BenchmarkCall4KB": {"ns_per_op": 67681, "mb_per_s": 60.52, "bytes_per_op": 70864, "allocs_per_op": 526},
    "BenchmarkCall256KB": {"ns_per_op": 605175, "mb_per_s": 433.17, "bytes_per_op": 2710784, "allocs_per_op": 528},
    "BenchmarkCallConcurrent8": {"ns_per_op": 56244, "mb_per_s": 1.14, "bytes_per_op": 25688, "allocs_per_op": 524},
    "BenchmarkCallConcurrent64": {"ns_per_op": 62723, "mb_per_s": 1.02, "bytes_per_op": 25688, "allocs_per_op": 524}
EOF

{
  echo '{'
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo '  "package": "elasticrmi/internal/transport",'
  echo '  "baseline_seed": {'
  printf '%s\n' "$SEED_BASELINE"
  echo '  },'
  echo '  "current": {'
  printf '%s\n' "$OUT" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; mbs = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "MB/s")      mbs = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, mbs, bop, aop)
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
  '
  echo '  }'
  echo '}'
} > BENCH_transport.json
echo "wrote BENCH_transport.json"

# BENCH_codec.json: the generated-payload-codec figure. Round-trip
# Encode+Decode of the same []byte-carrying struct through the generated
# binary codec vs the gob fallback at 64B/4KB/256KB (the speedup the
# //ermi:codec annotation buys), plus the 256KB echo with and without the
# scatter-gather write path (what writev-style vectored writes buy on large
# frames — both rows come from the transport sweep above).
CODEC=$(go test -run '^$' -bench '^Benchmark(Codec|Gob)' -benchmem -benchtime "${BENCHTIME:-2s}" ./internal/gen/gentest/)
printf '%s\n' "$CODEC"

{ printf '%s\n' "$CODEC"; printf '%s\n' "$OUT"; } | awk -v gen="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns[name]  = $(i-1)
      if ($i == "MB/s")      mbs[name] = $(i-1)
      if ($i == "B/op")      bop[name] = $(i-1)
      if ($i == "allocs/op") aop[name] = $(i-1)
    }
  }
  END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", gen
    printf "  \"workload\": \"Encode+Decode round trip of a []byte-carrying struct (internal/gen/gentest/codec_bench_test.go); echo rows from internal/transport/bench_test.go\",\n"
    printf "  \"note\": \"codec = generated //ermi:codec binary marshaller into arena slabs; gob = the fallback encoding; no_sg = scatter-gather write path disabled on the 256KB echo\",\n"
    n = split("64B 4KB 256KB", sizes, " ")
    printf "  \"roundtrip\": {\n"
    for (i = 1; i <= n; i++) {
      s = sizes[i]; c = "BenchmarkCodec" s; g = "BenchmarkGob" s
      printf "    \"%s\": {\"codec\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, \"gob\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, \"speedup_x\": %.2f}%s\n", \
        s, ns[c], mbs[c], bop[c], aop[c], ns[g], mbs[g], bop[g], aop[g], ns[g] / ns[c], (i < n ? "," : "")
    }
    printf "  },\n"
    sg = "BenchmarkCall256KB"; nosg = "BenchmarkCall256KBNoSG"
    printf "  \"scatter_gather_256kb_echo\": {\n"
    printf "    \"sg_on\": {\"ns_per_op\": %s, \"mb_per_s\": %s},\n", ns[sg], mbs[sg]
    printf "    \"sg_off\": {\"ns_per_op\": %s, \"mb_per_s\": %s},\n", ns[nosg], mbs[nosg]
    printf "    \"throughput_x\": %.2f\n", mbs[sg] / mbs[nosg]
    printf "  }\n"
    printf "}\n"
  }
' > BENCH_codec.json
echo "wrote BENCH_codec.json"
cat BENCH_codec.json

# BENCH_async.json: the asynchronous invocation pipeline figure — the same
# 64B echo workload driven sequentially-sync, as a pipelined window of
# futures, through the adaptive batcher, and fire-and-forget. speedup_x is
# relative to the sequential-sync baseline of this same run.
printf '%s\n' "$OUT" | awk -v gen="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) if ($i == "ns/op") ns[name] = $(i-1)
  }
  END {
    base = ns["BenchmarkCall"]
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", gen
    printf "  \"workload\": \"64B echo over one connection (internal/transport/bench_test.go)\",\n"
    printf "  \"note\": \"pipelined = window of 64 Client.Go futures; batched = same window under the adaptive batcher (BatchOptions); oneway = fire-and-forget submission\",\n"
    n = split("BenchmarkCall BenchmarkCallPipelined64 BenchmarkCallBatched64 BenchmarkCallBatched256 BenchmarkOneWay", keys, " ")
    split("sync_sequential async_pipelined_64 async_batched_64 async_batched_256 oneway", labels, " ")
    first = 1
    for (i = 1; i <= n; i++) {
      k = keys[i]
      if (!(k in ns)) continue
      if (!first) printf ",\n"
      first = 0
      printf "  \"%s\": {\"ns_per_op\": %s, \"speedup_x\": %.2f}", labels[i], ns[k], base / ns[k]
    }
    printf "\n}\n"
  }
' > BENCH_async.json
echo "wrote BENCH_async.json"
cat BENCH_async.json

# BENCH_routing.json: the epoch-routing strategy figure. A fixed iteration
# count (not a duration) keeps the percentile sample size stable across
# machines; the workloads sleep rather than spin, so wall-clock per run is
# a few seconds even single-core.
ROUT=$(go test -run '^$' -bench 'BenchmarkRouting' -benchtime "${ROUTING_BENCHTIME:-600x}" ./internal/core/)
printf '%s\n' "$ROUT"

printf '%s\n' "$ROUT" | awk -v gen="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")  ns[name]  = $(i-1)
      if ($i == "p50-ns") p50[name] = $(i-1)
      if ($i == "p99-ns") p99[name] = $(i-1)
      if ($i == "hit-%")  hit[name] = $(i-1)
    }
  }
  END {
    rr = "BenchmarkRoutingSkewedRR"; pc = "BenchmarkRoutingSkewedP2C"
    sp = "BenchmarkRoutingHotKeySpray"; af = "BenchmarkRoutingHotKeyAffinity"
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", gen
    printf "  \"skewed_pool\": {\n"
    printf "    \"workload\": \"4 single-threaded members, one with 10x service time, 8 concurrent callers (internal/core/routing_bench_test.go)\",\n"
    printf "    \"round_robin\": {\"ns_per_op\": %s, \"p50_ns\": %s, \"p99_ns\": %s},\n", ns[rr], p50[rr], p99[rr]
    printf "    \"p2c\": {\"ns_per_op\": %s, \"p50_ns\": %s, \"p99_ns\": %s},\n", ns[pc], p50[pc], p99[pc]
    printf "    \"p99_speedup_x\": %.2f\n", p99[rr] / p99[pc]
    printf "  },\n"
    printf "  \"hot_key\": {\n"
    printf "    \"workload\": \"32-key working set over 4 members with 16-entry member-local caches, miss costs 10x a hit\",\n"
    printf "    \"spray\": {\"ns_per_op\": %s, \"cache_hit_pct\": %s},\n", ns[sp], hit[sp]
    printf "    \"affinity\": {\"ns_per_op\": %s, \"cache_hit_pct\": %s},\n", ns[af], hit[af]
    printf "    \"throughput_x\": %.2f\n", ns[sp] / ns[af]
    printf "  }\n"
    printf "}\n"
  }
' > BENCH_routing.json
echo "wrote BENCH_routing.json"
cat BENCH_routing.json

# BENCH_overload.json: the admission-control saturation figure. Each
# benchmark is one fixed-duration experiment (hence -benchtime 1x): a
# CPU-bound echo offered at ~30x per-core overcommit under a tight caller
# budget. goodput counts replies inside the budget; shed counts admission
# refusals (cheap, never executed); late counts replies the caller had
# already abandoned — the congestion-collapse failure mode the unguarded
# server exhibits.
OVER=$(go test -run '^$' -bench '^BenchmarkOverload' -benchtime 1x ./internal/transport/)
printf '%s\n' "$OVER"

printf '%s\n' "$OVER" | awk -v gen="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
      if ($i == "goodput-ops/s") good[name] = $(i-1)
      if ($i == "shed-ops/s")    shed[name] = $(i-1)
      if ($i == "late-ops/s")    late[name] = $(i-1)
    }
  }
  END {
    g = "BenchmarkOverloadGuarded"; u = "BenchmarkOverloadUnguarded"
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", gen
    printf "  \"workload\": \"1ms CPU-bound echo, ~30x per-core closed-loop overcommit, 8ms caller budget (internal/transport/overload_bench_test.go)\",\n"
    printf "  \"note\": \"goodput = replies within budget; shed = admission refusals (handler never ran); late = replies after the caller gave up\",\n"
    printf "  \"guarded\": {\"goodput_ops_s\": %s, \"shed_ops_s\": %s, \"late_ops_s\": %s},\n", good[g], shed[g], late[g]
    printf "  \"unguarded\": {\"goodput_ops_s\": %s, \"shed_ops_s\": %s, \"late_ops_s\": %s},\n", good[u], shed[u], late[u]
    if (good[u] + 0 > 0) printf "  \"goodput_ratio_guarded_over_unguarded\": %.2f\n", good[g] / good[u]
    else                 printf "  \"goodput_ratio_guarded_over_unguarded\": \"inf (unguarded goodput collapsed to 0)\"\n"
    printf "}\n"
  }
' > BENCH_overload.json
echo "wrote BENCH_overload.json"
cat BENCH_overload.json

# BENCH_kvstore.json: the replicated shared-state figure. R=1 vs R=2
# put/get/lock cost on the same 3-node cluster (the R=2 spread is the
# synchronous backup forward on every write — the price of surviving a
# node loss), plus the failover experiment: one node killed under a
# streaming writer, reporting the longest gap between two consecutive
# acknowledged writes (the availability blip) and the number of failed
# operations (target 0 — the router retries through the failover).
# The durability rows compare the same parallel put stream against the
# in-memory store, a WAL fsyncing every write, and a group-committed WAL;
# fsync_cost_recovered_pct is how much of the naive-WAL overhead group
# commit wins back. The sessions rows are the client-cache figure: the same
# 16-client read stream through lease-backed session caches vs plain
# per-call clients, and the invalidation storm — 16 caching subscribers of
# one hot key while a writer updates it, reporting the writer's ack latency
# (every Put must push 16 invalidations and collect the acks before its own
# ack; fixed iteration count for a stable percentile sample).
KV=$(go test -run '^$' -bench '^BenchmarkClusterR[12]' -benchtime "${KV_BENCHTIME:-1s}" ./internal/kvstore/)
printf '%s\n' "$KV"
DUR=$(go test -run '^$' -bench '^BenchmarkStorePut(NoWAL|WALSync|WALGroup)$' -benchtime "${KV_BENCHTIME:-1s}" ./internal/kvstore/)
printf '%s\n' "$DUR"
SESS=$(go test -run '^$' -bench '^BenchmarkSessionGet(Cached|Uncached)$' -benchtime "${KV_BENCHTIME:-1s}" ./internal/kvstore/)
printf '%s\n' "$SESS"
STORM=$(go test -run '^$' -bench '^BenchmarkSessionInvalidationStorm$' -benchtime "${STORM_BENCHTIME:-200x}" ./internal/kvstore/)
printf '%s\n' "$STORM"
BLIP=$(go test -run '^$' -bench '^BenchmarkClusterFailoverBlip$' -benchtime 1x ./internal/kvstore/)
printf '%s\n' "$BLIP"

{ printf '%s\n' "$KV"; printf '%s\n' "$DUR"; printf '%s\n' "$SESS"; printf '%s\n' "$STORM"; printf '%s\n' "$BLIP"; } | awk -v gen="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")      ns[name] = $(i-1)
      if ($i == "p50-us")     p50[name] = $(i-1)
      if ($i == "p99-us")     p99[name] = $(i-1)
      if ($i == "blip-ms")    blip     = $(i-1)
      if ($i == "failed-ops") failedop = $(i-1)
      if ($i == "acked-ops")  ackedop  = $(i-1)
    }
  }
  END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", gen
    printf "  \"workload\": \"3-node store cluster over loopback TCP, 1024-key Put/Get stream and 64-name lock churn (internal/kvstore/bench_test.go)\",\n"
    printf "  \"note\": \"R=2 synchronously forwards every write to one backup before the ack; blip = longest gap between consecutive acked writes while one node is killed mid-stream\",\n"
    printf "  \"r1\": {\"put_ns\": %s, \"get_ns\": %s, \"lock_ns\": %s},\n", \
      ns["BenchmarkClusterR1Put"], ns["BenchmarkClusterR1Get"], ns["BenchmarkClusterR1Lock"]
    printf "  \"r2\": {\"put_ns\": %s, \"get_ns\": %s, \"lock_ns\": %s},\n", \
      ns["BenchmarkClusterR2Put"], ns["BenchmarkClusterR2Get"], ns["BenchmarkClusterR2Lock"]
    printf "  \"replication_cost_x\": {\"put\": %.2f, \"get\": %.2f, \"lock\": %.2f},\n", \
      ns["BenchmarkClusterR2Put"] / ns["BenchmarkClusterR1Put"], \
      ns["BenchmarkClusterR2Get"] / ns["BenchmarkClusterR1Get"], \
      ns["BenchmarkClusterR2Lock"] / ns["BenchmarkClusterR1Lock"]
    nw = ns["BenchmarkStorePutNoWAL"]; ws = ns["BenchmarkStorePutWALSync"]; wg = ns["BenchmarkStorePutWALGroup"]
    printf "  \"durability\": {\n"
    printf "    \"workload\": \"parallel 1024-key put stream on one store engine (BenchmarkStorePut{NoWAL,WALSync,WALGroup})\",\n"
    printf "    \"no_wal_put_ns\": %s,\n", nw
    printf "    \"wal_fsync_per_write_put_ns\": %s,\n", ws
    printf "    \"wal_group_commit_put_ns\": %s,\n", wg
    printf "    \"fsync_cost_recovered_pct\": %.1f\n", (ws - wg) * 100.0 / (ws - nw)
    printf "  },\n"
    ca = ns["BenchmarkSessionGetCached"]; un = ns["BenchmarkSessionGetUncached"]; st = "BenchmarkSessionInvalidationStorm"
    printf "  \"sessions\": {\n"
    printf "    \"workload\": \"16 clients reading a 64-key-per-client working set through lease-backed session caches vs plain per-call clients; storm = 16 caching subscribers of one hot key, writer latency includes the invalidate-before-ack round\",\n"
    printf "    \"cached_get\": {\"ns_per_op\": %s, \"ops_per_s\": %.0f},\n", ca, 1e9 / ca
    printf "    \"uncached_get\": {\"ns_per_op\": %s, \"ops_per_s\": %.0f},\n", un, 1e9 / un
    printf "    \"cached_speedup_x\": %.1f,\n", un / ca
    printf "    \"invalidation_storm_put\": {\"ns_per_op\": %s, \"p50_us\": %s, \"p99_us\": %s}\n", ns[st], p50[st], p99[st]
    printf "  },\n"
    printf "  \"failover\": {\"blip_ms\": %s, \"failed_ops\": %s, \"acked_ops\": %s}\n", blip, failedop, ackedop
    printf "}\n"
  }
' > BENCH_kvstore.json
echo "wrote BENCH_kvstore.json"
cat BENCH_kvstore.json
