#!/usr/bin/env bash
# bench.sh — gate and benchmark the transport hot path.
#
# Runs go vet and the transport race tests, then the transport
# microbenchmarks, and rewrites BENCH_transport.json with the current
# numbers next to the frozen seed baseline (the gob-framed transport at
# commit b60f3ab, measured with the same bench_test.go), so every PR can see
# the perf trajectory at a glance.
#
# Usage: scripts/bench.sh            (or: make bench)
#        BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/transport/...

OUT=$(go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-2s}" ./internal/transport/)
printf '%s\n' "$OUT"

# The seed baseline is frozen: it is the reference every later run is
# compared against, not something a rerun should overwrite.
IFS= read -r -d '' SEED_BASELINE <<'EOF' || true
    "description": "seed transport (per-frame gob codec, unbuffered writes) at commit b60f3ab, same bench_test.go, same machine class",
    "BenchmarkCall": {"ns_per_op": 59063, "mb_per_s": 1.08, "bytes_per_op": 25696, "allocs_per_op": 524},
    "BenchmarkCall4KB": {"ns_per_op": 67681, "mb_per_s": 60.52, "bytes_per_op": 70864, "allocs_per_op": 526},
    "BenchmarkCall256KB": {"ns_per_op": 605175, "mb_per_s": 433.17, "bytes_per_op": 2710784, "allocs_per_op": 528},
    "BenchmarkCallConcurrent8": {"ns_per_op": 56244, "mb_per_s": 1.14, "bytes_per_op": 25688, "allocs_per_op": 524},
    "BenchmarkCallConcurrent64": {"ns_per_op": 62723, "mb_per_s": 1.02, "bytes_per_op": 25688, "allocs_per_op": 524}
EOF

{
  echo '{'
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo '  "package": "elasticrmi/internal/transport",'
  echo '  "baseline_seed": {'
  printf '%s\n' "$SEED_BASELINE"
  echo '  },'
  echo '  "current": {'
  printf '%s\n' "$OUT" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; mbs = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "MB/s")      mbs = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, mbs, bop, aop)
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
  '
  echo '  }'
  echo '}'
} > BENCH_transport.json
echo "wrote BENCH_transport.json"
