# Summarizes an ERMIVET_STATS file (one line per package unit the vettool
# actually analyzed) into per-analyzer wall time and the vetx fact-cache
# hit rate. On a warm tree the hit rate is 100% and no "facts-only"
# dependency passes appear: the go command replays their cached fact
# files (see make lint-cache-check).
#
# Line shape (written by internal/lint/unitchecker.go):
#   unit pkg=<importpath> facts_hit=N facts_miss=N findings=N suppressed=N ns_<analyzer>=N...
#   facts-only pkg=<importpath> facts_hit=N facts_miss=N
{
	units++
	for (i = 1; i <= NF; i++) {
		if (split($i, kv, "=") != 2)
			continue
		if (kv[1] == "facts_hit")
			hit += kv[2]
		else if (kv[1] == "facts_miss")
			miss += kv[2]
		else if (kv[1] ~ /^ns_/)
			ns[substr(kv[1], 4)] += kv[2]
	}
}
END {
	if (units == 0) {
		print "ermi-vet: all packages served from the build cache (0 units re-analyzed)"
		exit
	}
	printf "ermi-vet: %d units analyzed; fact cache: %d hits / %d misses", units, hit, miss
	if (hit + miss > 0)
		printf " (%.0f%% hit)", 100 * hit / (hit + miss)
	print ""
	n = 0
	for (a in ns)
		names[n++] = a
	# insertion sort: portable awk has no asorti
	for (i = 1; i < n; i++) {
		v = names[i]
		for (j = i - 1; j >= 0 && names[j] > v; j--)
			names[j+1] = names[j]
		names[j+1] = v
	}
	for (i = 0; i < n; i++)
		printf "  %-12s %9.2f ms\n", names[i], ns[names[i]] / 1e6
}
