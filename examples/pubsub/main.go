// Example: Hedwig-style topic-based publish/subscribe (paper §5.2) on
// ElasticRMI. Hubs partition topic ownership; delivery is at-most-once; the
// pool scales with the undelivered backlog.
//
// Run with:
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/apps/hedwig"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 8, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()

	pool, err := core.NewPool(core.Config{
		Name:          "hedwig",
		MinPoolSize:   3,
		MaxPoolSize:   6,
		BurstInterval: 5 * time.Second,
	}, hedwig.New(hedwig.Config{}), core.Deps{Cluster: mgr, Store: store, Registry: reg})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("hedwig region up: %d hubs\n", pool.Size())

	stub, err := core.LookupStub("hedwig", reg)
	if err != nil {
		return err
	}
	defer stub.Close()

	// Subscribers come first (Hedwig delivers messages published after the
	// subscription).
	for _, sub := range []string{"alice", "bob"} {
		if _, err := core.Call[hedwig.SubArgs, bool](stub, hedwig.MethodSubscribe,
			hedwig.SubArgs{Topic: "market-data", Subscriber: sub}); err != nil {
			return err
		}
	}
	fmt.Println("alice and bob subscribed to market-data")

	// Show topic ownership: a pure function of the roster.
	owner, err := core.Call[hedwig.TopicArgs, hedwig.OwnerReply](stub, hedwig.MethodOwner,
		hedwig.TopicArgs{Topic: "market-data"})
	if err != nil {
		return err
	}
	fmt.Printf("topic market-data owned by hub uid %d (%s)\n", owner.OwnerUID, owner.OwnerAddr)

	for i := 0; i < 6; i++ {
		rep, err := core.Call[hedwig.PublishArgs, hedwig.PublishReply](stub, hedwig.MethodPublish,
			hedwig.PublishArgs{Topic: "market-data", Body: []byte(fmt.Sprintf("tick %d", i))})
		if err != nil {
			return err
		}
		fmt.Printf("published seq %d\n", rep.Seq)
	}

	for _, sub := range []string{"alice", "bob"} {
		rep, err := core.Call[hedwig.ConsumeArgs, hedwig.ConsumeReply](stub, hedwig.MethodConsume,
			hedwig.ConsumeArgs{Topic: "market-data", Subscriber: sub, Max: 10})
		if err != nil {
			return err
		}
		fmt.Printf("%s consumed %d messages:", sub, len(rep.Messages))
		for _, m := range rep.Messages {
			fmt.Printf(" [%d]%s", m.Seq, m.Body)
		}
		fmt.Println()
		// A second consume returns nothing: at-most-once delivery.
		again, err := core.Call[hedwig.ConsumeArgs, hedwig.ConsumeReply](stub, hedwig.MethodConsume,
			hedwig.ConsumeArgs{Topic: "market-data", Subscriber: sub, Max: 10})
		if err != nil {
			return err
		}
		fmt.Printf("%s consumed again: %d messages (at-most-once)\n", sub, len(again.Messages))
	}

	bl, err := core.Call[struct{}, hedwig.BacklogReply](stub, hedwig.MethodBacklog, struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("region backlog: %d undelivered over %d topics\n", bl.Undelivered, bl.Topics)
	return nil
}
