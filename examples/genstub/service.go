package main

import "elasticrmi/internal/core"

//go:generate go run elasticrmi/cmd/ermi-gen -in service.go

// Argument and reply types of the elastic interface; the //ermi:codec mark
// makes the preprocessor emit binary payload codecs for them, so they
// travel through the generated stub without gob.
//
//ermi:codec
type (
	// SetArgs writes Key=Value.
	SetArgs struct {
		Key   string
		Value string
	}
	// SetReply acknowledges a write.
	SetReply struct{ Stored bool }
	// GetArgs names a key.
	GetArgs struct{ Key string }
	// GetReply returns the value ("" if absent).
	GetReply struct {
		Value string
		Found bool
	}
)

// KVService is an elastic interface: the preprocessor (ermi-gen) generates
// its typed stub and skeleton into service_ermi.go. Regenerate with:
//
//	go run ./cmd/ermi-gen -in examples/genstub/service.go
//
//ermi:elastic
type KVService interface {
	// Set and Get are annotated with key extractors: the generated stub
	// grows SetWithAffinity/GetWithAffinity variants that consistently
	// route each key to one pool member.
	//
	//ermi:affinity Key
	Set(arg SetArgs) (SetReply, error)
	//ermi:affinity Key
	Get(arg GetArgs) (GetReply, error)
}

// kvImpl is the application's implementation of the elastic class; state
// lives in the pool's shared store so all members serve the same data.
type kvImpl struct {
	ctx *core.MemberContext
}

var _ KVService = (*kvImpl)(nil)

func newKVImpl(ctx *core.MemberContext) (KVService, error) {
	return &kvImpl{ctx: ctx}, nil
}

// Set implements KVService.
func (k *kvImpl) Set(arg SetArgs) (SetReply, error) {
	if err := k.ctx.State.PutString("kv/"+arg.Key, arg.Value); err != nil {
		return SetReply{}, err
	}
	return SetReply{Stored: true}, nil
}

// Get implements KVService.
func (k *kvImpl) Get(arg GetArgs) (GetReply, error) {
	v, err := k.ctx.State.GetString("kv/" + arg.Key)
	if err != nil {
		return GetReply{}, err
	}
	return GetReply{Value: v, Found: v != ""}, nil
}
