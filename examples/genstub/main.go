// Example: generated stubs and skeletons. service.go declares an elastic
// interface marked //ermi:elastic; service_ermi.go was produced by the
// preprocessor (cmd/ermi-gen), giving the client a *typed* view of the
// elastic pool — exactly how the paper's preprocessor gives RMI users typed
// stubs (§2.3).
//
// Run with:
//
//	go run ./examples/genstub
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 4, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()

	// The generated factory adapts the application constructor.
	pool, err := core.NewPool(core.Config{
		Name: "kv-service", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Minute,
	}, NewKVServiceFactory(newKVImpl), core.Deps{Cluster: mgr, Store: store, Registry: reg})
	if err != nil {
		return err
	}
	defer pool.Close()

	// The generated stub: typed remote methods, no []byte in sight.
	svc, err := LookupKVService("kv-service", reg)
	if err != nil {
		return err
	}
	defer svc.Close()

	if _, err := svc.Set(SetArgs{Key: "greeting", Value: "hello, elastic world"}); err != nil {
		return err
	}
	got, err := svc.Get(GetArgs{Key: "greeting"})
	if err != nil {
		return err
	}
	fmt.Printf("Get(greeting) = %q (found=%v) via a generated typed stub over a %d-member pool\n",
		got.Value, got.Found, pool.Size())
	return nil
}
