// Example: Marketcetera-style order routing (paper §5.2) on ElasticRMI. An
// elastic pool of order routers accepts trading orders, persists each on
// two nodes and routes it to the right venue; the pool grows and shrinks
// with the order backlog and routing latency.
//
// Run with:
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/apps/marketcetera"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 8, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()

	pool, err := core.NewPool(core.Config{
		Name:          "order-routing",
		MinPoolSize:   2,
		MaxPoolSize:   6,
		BurstInterval: 5 * time.Second,
	}, marketcetera.New(marketcetera.Config{}), core.Deps{
		Cluster: mgr, Store: store, Registry: reg,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("order-routing pool up: %d routers\n", pool.Size())

	stub, err := core.LookupStub("order-routing", reg)
	if err != nil {
		return err
	}
	defer stub.Close()

	// Register venues: two listings plus a default destination.
	venues := []marketcetera.Venue{
		{Name: "NYSE", Symbols: []string{"IBM", "GE", "KO"}},
		{Name: "NASDAQ", Symbols: []string{"AAPL", "MSFT", "GOOG"}},
		{Name: "IEX"}, // accepts anything
	}
	for _, v := range venues {
		if _, err := core.Call[marketcetera.Venue, bool](stub, marketcetera.MethodAddVenue, v); err != nil {
			return err
		}
	}
	fmt.Println("venues registered: NYSE, NASDAQ, IEX (default)")

	// A strategy engine submits a burst of orders.
	symbols := []string{"IBM", "AAPL", "GE", "MSFT", "KO", "GOOG", "TSLA", "AMZN"}
	for i := 0; i < 24; i++ {
		o := marketcetera.Order{
			ID:         marketcetera.OrderID("strategy-1", int64(i)),
			Trader:     "strategy-1",
			Symbol:     symbols[i%len(symbols)],
			Side:       marketcetera.Side(i%2 + 1),
			Qty:        int64(100 * (i + 1)),
			LimitPrice: int64(10000 + 13*i),
		}
		rec, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o)
		if err != nil {
			return fmt.Errorf("route %s: %w", o.ID, err)
		}
		if i < 8 {
			fmt.Printf("  %-14s %-4s %4s x%-5d -> %-7s (router uid %d)\n",
				rec.OrderID, o.Side, o.Symbol, o.Qty, rec.Venue, rec.RoutedBy)
		}
	}
	fmt.Println("  ... 16 more orders ...")

	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("status: routed=%d rejected=%d per-venue=%v\n", st.Routed, st.Rejected, st.ByVenue)
	fmt.Println("every order is persisted on two nodes (primary+backup) before its receipt")
	return nil
}
