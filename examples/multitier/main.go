// Example: application-level scaling decisions across multiple elastic
// pools (§3.3, "Making Application-Level Scaling Decisions"). A two-tier
// application — a front cache tier and a backend order-routing tier — uses
// a Decider as its monitoring component: the front tier reports its demand,
// and the runtime polls the decider every burst interval to size the
// backend tier proportionally.
//
// Run with:
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/apps/marketcetera"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 16, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()
	deps := core.Deps{Cluster: mgr, Store: store, Registry: reg}

	// The monitoring component: backend keeps half the front tier's
	// demand, the analytics tier a quarter.
	decider := core.NewProportionalDecider(map[string]float64{
		"backend": 0.5,
	}, 2)

	// Front tier: elastic cache with its own (fine-grained) scaling.
	front, err := core.NewPool(core.Config{
		Name: "frontend", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Second,
	}, cache.New(cache.Config{Mode: cache.ExplicitFine}), deps)
	if err != nil {
		return err
	}
	defer front.Close()

	// Backend tier: order routing, sized by the application-level decider
	// (a Decider overrides the pool's own mechanisms).
	backend, err := core.NewPool(core.Config{
		Name: "backend", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Second,
		Decider:       decider,
	}, marketcetera.New(marketcetera.Config{}), deps)
	if err != nil {
		return err
	}
	defer backend.Close()
	fmt.Printf("front=%d members, backend=%d members\n", front.Size(), backend.Size())

	// The application reports front-tier demand to the decider; here the
	// proxy is the front pool size times an amplification factor.
	report := func() {
		demand := float64(front.Size() * 2)
		decider.Observe(demand)
		fmt.Printf("observed front demand %.0f -> decider wants backend=%d\n",
			demand, decider.DesiredPoolSize("backend", backend.Size()))
	}

	// Simulate front-tier growth (as its own workload would produce) and
	// watch the backend follow on its burst interval.
	for _, target := range []int{4, 8, 2} {
		if err := front.Resize(target - front.Size()); err != nil {
			return err
		}
		report()
		deadline := time.Now().Add(5 * time.Second)
		want := decider.DesiredPoolSize("backend", backend.Size())
		for time.Now().Before(deadline) && backend.Size() != want {
			time.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("front=%d -> backend=%d\n", front.Size(), backend.Size())
	}
	return nil
}
