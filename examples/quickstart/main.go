// Quickstart: the smallest complete ElasticRMI program.
//
// It defines an elastic "counter" class, instantiates it into a pool of two
// objects on a miniature cluster, and invokes its remote methods through a
// stub — the pool behaves as a single remote object, with shared state in
// the external store.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

// The remote method argument/reply types travel gob-encoded.
type (
	addArgs  struct{ N int64 }
	addReply struct{ Total int64 }
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Substrates: a cluster of slices (Mesos stand-in), a key-value
	//    store for shared state (HyperDex stand-in), and a registry.
	mgr, err := cluster.New(cluster.Config{Nodes: 4, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()

	// 2. The elastic class: a factory producing one object per pool member.
	//    Instance fields live in ctx.State — every member sees them.
	factory := func(ctx *core.MemberContext) (core.Object, error) {
		mux := core.NewMux()
		core.Handle(mux, "Add", func(a addArgs) (addReply, error) {
			total, err := ctx.State.AddInt("total", a.N)
			return addReply{Total: total}, err
		})
		core.Handle(mux, "Total", func(struct{}) (addReply, error) {
			total, err := ctx.State.GetInt("total")
			return addReply{Total: total}, err
		})
		return mux, nil
	}

	// 3. Instantiate the elastic object pool (min 2, max 4 objects).
	pool, err := core.NewPool(core.Config{
		Name:          "counter",
		MinPoolSize:   2,
		MaxPoolSize:   4,
		BurstInterval: time.Minute,
	}, factory, core.Deps{Cluster: mgr, Store: store, Registry: reg})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("counter pool up: %d members, sentinel %s\n", pool.Size(), pool.SentinelAddr())

	// 4. A client: look the pool up by name and invoke remote methods. The
	//    stub load-balances across members transparently.
	stub, err := core.LookupStub("counter", reg)
	if err != nil {
		return err
	}
	defer stub.Close()

	for i := 1; i <= 5; i++ {
		rep, err := core.Call[addArgs, addReply](stub, "Add", addArgs{N: int64(i)})
		if err != nil {
			return err
		}
		fmt.Printf("Add(%d) -> total %d\n", i, rep.Total)
	}
	rep, err := core.Call[struct{}, addReply](stub, "Total", struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("Total() -> %d (shared state: every member sees the same value)\n", rep.Total)
	return nil
}
