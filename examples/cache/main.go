// Example: the paper's running example — an elastic distributed cache
// (Figures 4 and 5) with fine-grained explicit elasticity. The cache class
// overrides ChangePoolSize to grow by two when put latency violates its
// bound, unless write-lock contention is the bottleneck, in which case
// adding objects would make things worse (Fig. 5's CacheExplicit2).
//
// Run with:
//
//	go run ./examples/cache
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 8, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	// The pool reads shared state through a client session: repeated reads
	// are served from a lease-backed local cache that every store primary
	// invalidates *before* acknowledging a conflicting write, so cached
	// reads cost no round trip and can never observe a stale value.
	session := store.NewSession(kvstore.SessionOptions{})
	defer session.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()

	pool, err := core.NewPool(core.Config{
		Name:          "web-cache",
		MinPoolSize:   2,
		MaxPoolSize:   8,
		BurstInterval: time.Second, // demo-friendly burst interval
	}, cache.New(cache.Config{Mode: cache.ExplicitFine}), core.Deps{
		Cluster: mgr, Store: session, StoreCluster: store, Registry: reg,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("cache pool up: %d members, policy=%s (ChangePoolSize overridden)\n",
		pool.Size(), pool.Policy())

	stub, err := core.LookupStub("web-cache", reg)
	if err != nil {
		return err
	}
	defer stub.Close()

	// Fill the cache and read it back with key affinity: every Put/Get for
	// a key is routed to that key's consistent-hash owner, so the same
	// member that stored a page serves its reads.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("page-%02d", i)
		if _, err := core.CallKeyed[cache.PutArgs, cache.PutReply](stub, cache.MethodPut, key,
			cache.PutArgs{Key: key, Value: []byte(fmt.Sprintf("<html>content %d</html>", i))}); err != nil {
			return err
		}
	}
	hits := 0
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("page-%02d", i)
		rep, err := core.CallKeyed[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, key, cache.GetArgs{Key: key})
		if err != nil {
			return err
		}
		if rep.Hit {
			hits++
		}
	}
	fmt.Printf("16 puts, 16 gets routed by key affinity: %d hits (single-object illusion)\n", hits)

	// Hot-key contention: many writers updating ONE key. Fig. 5's logic
	// refuses to grow the pool because lock contention, not capacity, is
	// the bottleneck.
	fmt.Println("hammering one hot key with 16 concurrent writers for 3 s...")
	deadline := time.Now().Add(3 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				_, _ = core.CallKeyed[cache.PutArgs, cache.PutReply](stub, cache.MethodPut, "hot",
					cache.PutArgs{Key: "hot", Value: []byte("x")})
			}
		}()
	}
	wg.Wait()
	fmt.Printf("after contention: pool=%d members (growth suppressed while lock-bound)\n", pool.Size())

	n, err := core.Call[struct{}, int64](stub, cache.MethodLen, struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("cache holds %d entries\n", n)

	// The session cache at work: the first read leases the key, repeats
	// are local lookups, and a write pushes an invalidation before its ack
	// so the next read re-fetches the new value.
	if err := session.PutString("banner", "v1"); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := session.GetString("banner"); err != nil {
			return err
		}
	}
	if err := session.PutString("banner", "v2"); err != nil {
		return err
	}
	if s, err := session.GetString("banner"); err != nil || s != "v2" {
		return fmt.Errorf("cached read after write: %q, %v", s, err)
	}
	st := session.Stats()
	fmt.Printf("store session cache: %d hits, %d misses, %d invalidations pushed\n",
		st.Hits, st.Misses, st.Invalidations)
	return nil
}
