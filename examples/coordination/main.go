// Example: the DCS coordination service (paper §5.2) on ElasticRMI —
// hierarchical configuration, totally ordered updates, and leader election
// with sequential znodes, plus a Paxos round through the consensus pool.
//
// Run with:
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"
	"time"

	"elasticrmi/internal/apps/dcs"
	"elasticrmi/internal/apps/paxos"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mgr, err := cluster.New(cluster.Config{Nodes: 10, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	reg, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer reg.Close()
	deps := core.Deps{Cluster: mgr, Store: store, Registry: reg}

	// Two elastic pools side by side: the coordination service and a Paxos
	// consensus group — the datacenter-infrastructure combo the paper's
	// introduction motivates.
	dcsPool, err := core.NewPool(core.Config{
		Name: "dcs", MinPoolSize: 2, MaxPoolSize: 5, BurstInterval: 5 * time.Second,
	}, dcs.New(dcs.Config{}), deps)
	if err != nil {
		return err
	}
	defer dcsPool.Close()
	paxosPool, err := core.NewPool(core.Config{
		Name: "consensus", MinPoolSize: 3, MaxPoolSize: 5, BurstInterval: 5 * time.Second,
	}, paxos.New(paxos.Config{}), deps)
	if err != nil {
		return err
	}
	defer paxosPool.Close()
	fmt.Printf("dcs pool: %d servers; consensus pool: %d replicas\n", dcsPool.Size(), paxosPool.Size())

	dcsStub, err := core.LookupStub("dcs", reg)
	if err != nil {
		return err
	}
	defer dcsStub.Close()

	// Distributed configuration: a small tree.
	for _, n := range []struct{ path, data string }{
		{"/config", ""},
		{"/config/db", "host=db0:5432"},
		{"/config/cache-ttl", "300"},
	} {
		if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](dcsStub, dcs.MethodCreate,
			dcs.CreateArgs{Path: n.path, Data: []byte(n.data)}); err != nil {
			return err
		}
	}
	kids, err := core.Call[dcs.PathArgs, dcs.ChildrenReply](dcsStub, dcs.MethodGetChildren,
		dcs.PathArgs{Path: "/config"})
	if err != nil {
		return err
	}
	fmt.Printf("/config children: %v\n", kids.Children)

	// Leader election with sequential znodes: the lowest sequence wins.
	if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](dcsStub, dcs.MethodCreate,
		dcs.CreateArgs{Path: "/election"}); err != nil {
		return err
	}
	candidates := []string{"svc-a", "svc-b", "svc-c"}
	seqs := make(map[string]string, len(candidates))
	for _, c := range candidates {
		rep, err := core.Call[dcs.CreateArgs, dcs.CreateReply](dcsStub, dcs.MethodCreate,
			dcs.CreateArgs{Path: "/election/n-", Data: []byte(c), Sequential: true})
		if err != nil {
			return err
		}
		seqs[c] = rep.Path
		fmt.Printf("  candidate %s holds %s\n", c, rep.Path)
	}
	members, err := core.Call[dcs.PathArgs, dcs.ChildrenReply](dcsStub, dcs.MethodGetChildren,
		dcs.PathArgs{Path: "/election"})
	if err != nil {
		return err
	}
	winnerNode := "/election/" + members.Children[0]
	winner, err := core.Call[dcs.PathArgs, dcs.GetDataReply](dcsStub, dcs.MethodGetData,
		dcs.PathArgs{Path: winnerNode})
	if err != nil {
		return err
	}
	fmt.Printf("leader: %s (owns %s)\n", winner.Data, winnerNode)

	// Record the decision via real Paxos consensus for good measure.
	paxosStub, err := core.LookupStub("consensus", reg)
	if err != nil {
		return err
	}
	defer paxosStub.Close()
	decided, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](paxosStub, paxos.MethodPropose,
		paxos.ProposeArgs{Value: []byte("leader=" + string(winner.Data))})
	if err != nil {
		return err
	}
	fmt.Printf("consensus: slot %d decided %q\n", decided.Slot, decided.Value)

	syncRep, err := core.Call[struct{}, dcs.SyncReply](dcsStub, dcs.MethodSync, struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("dcs zxid: %d totally ordered updates applied\n", syncRep.Zxid)
	return nil
}
