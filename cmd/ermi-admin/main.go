// Command ermi-admin is the operations CLI for a running ElasticRMI
// deployment: it lists the bound elastic pools and shows each pool's
// membership and workload statistics, using the same discovery and stats
// methods stubs and the runtime use.
//
// Usage:
//
//	ermi-admin -registry host:7099 list
//	ermi-admin -registry host:7099 status <pool-name>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/transport"
)

func main() {
	registry := flag.String("registry", "127.0.0.1:7099", "registry address")
	flag.Parse()
	if err := run(*registry, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-admin:", err)
		os.Exit(1)
	}
}

func run(registry string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ermi-admin [-registry addr] list | status <pool>")
	}
	reg, err := core.DialRegistry(registry)
	if err != nil {
		return err
	}
	defer reg.Close()

	switch args[0] {
	case "list":
		return list(reg)
	case "status":
		if len(args) < 2 {
			return fmt.Errorf("usage: ermi-admin status <pool>")
		}
		return status(reg, args[1])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func list(reg *core.RegistryClient) error {
	names, err := reg.List()
	if err != nil {
		return err
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no pools bound")
		return nil
	}
	for _, name := range names {
		eps, err := reg.Lookup(name)
		if err != nil {
			fmt.Printf("%-24s (lookup failed: %v)\n", name, err)
			continue
		}
		fmt.Printf("%-24s %d members, sentinel %s\n", name, len(eps), eps[0])
	}
	return nil
}

func status(reg *core.RegistryClient, pool string) error {
	eps, err := reg.Lookup(pool)
	if err != nil {
		return fmt.Errorf("lookup %s: %w", pool, err)
	}
	if len(eps) == 0 {
		return fmt.Errorf("pool %s has no endpoints", pool)
	}
	// Discover the authoritative roster through the sentinel.
	rep, err := discover(pool, eps[0])
	if err != nil {
		return fmt.Errorf("discover via sentinel: %w", err)
	}
	roster := rep.Members
	fmt.Printf("pool %s: %d members (sentinel first), routing epoch %d\n", pool, len(roster), rep.Epoch)
	fmt.Printf("%-22s %6s %8s %9s %7s %7s  %s\n",
		"address", "uid", "pending", "draining", "cpu%", "ram%", "methods (rate/s @ avg latency)")
	for _, m := range roster {
		st, err := memberStats(pool, m.Addr)
		if err != nil {
			fmt.Printf("%-22s %6d %8s %9s (stats unavailable: %v)\n", m.Addr, m.UID, "-", "-", err)
			continue
		}
		fmt.Printf("%-22s %6d %8d %9v %7.1f %7.1f ",
			m.Addr, st.UID, st.Pending, st.Draining, st.CPU, st.RAM)
		for _, ms := range st.Methods {
			fmt.Printf(" %s:%.1f/s@%s", ms.Method, ms.RatePerSec, ms.AvgLatency.Round(time.Microsecond))
		}
		fmt.Println()
	}
	return nil
}

func discover(pool, sentinel string) (core.DiscoverReply, error) {
	c, err := transport.Dial(sentinel)
	if err != nil {
		return core.DiscoverReply{}, err
	}
	defer c.Close()
	var rep core.DiscoverReply
	if err := c.CallDecode(pool, core.MethodDiscover, nil, &rep, 5*time.Second); err != nil {
		return core.DiscoverReply{}, err
	}
	return rep, nil
}

func memberStats(pool, addr string) (core.StatsReply, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return core.StatsReply{}, err
	}
	defer c.Close()
	var rep core.StatsReply
	if err := c.CallDecode(pool, core.MethodStats, nil, &rep, 5*time.Second); err != nil {
		return core.StatsReply{}, err
	}
	return rep, nil
}
