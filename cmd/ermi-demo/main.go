// Command ermi-demo runs a complete live ElasticRMI deployment in one
// process and makes it visibly elastic: a Mesos-like cluster of slices, a
// sharded key-value store for shared state, a registry, an elastic
// distributed cache pool (the paper's running example), and an open-loop
// workload generator replaying a compressed version of the paper's abrupt
// workload pattern. The demo prints the pool size as the runtime reacts.
//
// Usage:
//
//	ermi-demo [-duration 20s] [-rps 400]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
	"elasticrmi/internal/workload"
)

func main() {
	duration := flag.Duration("duration", 20*time.Second, "demo duration")
	rps := flag.Float64("rps", 400, "peak request rate against the cache pool")
	flag.Parse()
	if err := run(*duration, *rps); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-demo:", err)
		os.Exit(1)
	}
}

func run(duration time.Duration, peakRPS float64) error {
	fmt.Println("=== ElasticRMI live demo: elastic distributed cache ===")

	// Substrates: a 16-slice cluster, a 2-node store, a registry.
	mgr, err := cluster.New(cluster.Config{Nodes: 16, SlicesPerNode: 1})
	if err != nil {
		return err
	}
	defer mgr.Close()
	store, err := kvstore.NewCluster(2, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	regSrv, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer regSrv.Close()
	regCli, err := core.DialRegistry(regSrv.Addr())
	if err != nil {
		return err
	}
	defer regCli.Close()

	// The elastic cache pool: fine-grained scaling per Fig. 5, with a short
	// burst interval so the demo reacts within seconds.
	pool, err := core.NewPool(core.Config{
		Name:          "demo-cache",
		MinPoolSize:   2,
		MaxPoolSize:   10,
		BurstInterval: 2 * time.Second,
		SliceCPUs:     1,
	}, cache.New(cache.Config{
		Mode:            cache.ExplicitFine,
		PutLatencyBound: 3 * time.Millisecond,
	}), core.Deps{Cluster: mgr, Store: store, Registry: regCli})
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("pool %q instantiated: %d members, policy=%s, sentinel=%s\n",
		"demo-cache", pool.Size(), pool.Policy(), pool.SentinelAddr())

	stub, err := core.LookupStub("demo-cache", regCli)
	if err != nil {
		return err
	}
	defer stub.Close()

	// Replay a compressed abrupt pattern: the full 450 minutes squeezed
	// into the demo duration.
	gen := &workload.Generator{
		Pattern:     workload.Abrupt(peakRPS),
		Speedup:     float64(450*time.Minute) / float64(duration),
		RateScale:   1,
		MaxInFlight: 128,
	}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	// Progress reporter.
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		start := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				virtual := time.Duration(float64(time.Since(start)) * gen.Speedup)
				fmt.Printf("t=%3ds  virtual=%4dm  offered=%6.0f req/s  pool=%2d members  cluster=%2d/%2d slices\n",
					int(time.Since(start).Seconds()), int(virtual.Minutes()),
					gen.Pattern.Rate(virtual), pool.Size(), mgr.InUse(), mgr.Total())
			}
		}
	}()

	var seq atomic.Int64
	issued, failed := gen.Run(ctx, func() error {
		n := seq.Add(1)
		key := "item-" + strconv.FormatInt(n%64, 10)
		if n%4 == 0 {
			_, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
				cache.PutArgs{Key: key, Value: []byte("v")})
			return err
		}
		_, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: key})
		return err
	})

	fmt.Printf("\ndone: issued=%d failed=%d final pool=%d members\n", issued, failed, pool.Size())
	for _, ev := range drainEvents(pool) {
		fmt.Printf("  scale event: %d -> %d (%s, provisioning %v)\n", ev.From, ev.To, ev.Policy, ev.ProvisioningLatency)
	}
	return nil
}

func drainEvents(pool *core.Pool) []core.ScaleEvent {
	var out []core.ScaleEvent
	for {
		select {
		case ev := <-pool.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}
