// Command ermi-vet is the project's own vet tool: four analyzers that
// mechanically enforce the cross-cutting invariants the hot path depends
// on (payload ownership, lock ordering, codec strictness, budget
// propagation). It speaks the `go vet -vettool=` protocol:
//
//	go build -o bin/ermi-vet ./cmd/ermi-vet
//	go vet -vettool=bin/ermi-vet ./...
//
// `make lint` does exactly that, after a stock `go vet` pass so the
// standard analyzers keep running too. See internal/lint for the
// analyzers, the invariants they guard, and the //ermi:ignore
// suppression syntax.
package main

import "elasticrmi/internal/lint"

func main() { lint.Main() }
