// Command ermi-gen is the ElasticRMI preprocessor for Go — the rmic
// counterpart. It reads Go files declaring interfaces marked with
// `//ermi:elastic` and/or payload structs marked with `//ermi:codec`, and
// writes the generated stubs, skeletons and binary payload codecs next to
// them.
//
// Usage:
//
//	ermi-gen -in service.go                    # writes service_ermi.go
//	ermi-gen -in service.go -out x.go
//	ermi-gen -in server.go,store.go -out c.go  # codec fields may span files
//
// Every method of an elastic interface must have the canonical remote
// signature `Method(arg ArgType) (ReplyType, error)`. Codec structs may use
// scalars, strings, []byte (decoded as zero-copy views), time.Duration,
// named local scalar types, nested annotated structs, and slices/maps of
// those; anything else keeps the gob fallback.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"elasticrmi/internal/gen"
)

func main() {
	in := flag.String("in", "", "comma-separated Go files declaring //ermi:elastic interfaces or //ermi:codec structs")
	out := flag.String("out", "", "output file (default <first in>_ermi.go)")
	flag.Parse()
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-gen:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	var inputs []gen.Source
	var baseNames []string
	for _, name := range strings.Split(in, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		inputs = append(inputs, gen.Source{Name: name, Src: src})
		baseNames = append(baseNames, filepath.Base(name))
	}
	if len(inputs) == 0 {
		return fmt.Errorf("-in is required")
	}
	parsed, err := gen.ParseFiles(inputs)
	if err != nil {
		return err
	}
	code, err := gen.Generate(parsed, strings.Join(baseNames, ", "))
	if err != nil {
		return err
	}
	if out == "" {
		out = strings.TrimSuffix(inputs[0].Name, ".go") + "_ermi.go"
	}
	if err := os.WriteFile(out, code, 0o644); err != nil {
		return err
	}
	fmt.Printf("ermi-gen: %s -> %s (%d services, %d codecs)\n",
		in, out, len(parsed.Services), len(parsed.Codecs))
	return nil
}
