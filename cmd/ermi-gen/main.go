// Command ermi-gen is the ElasticRMI preprocessor for Go — the rmic
// counterpart. It reads a Go file declaring interfaces marked with
// `//ermi:elastic` and writes the generated stubs and skeletons next to it.
//
// Usage:
//
//	ermi-gen -in service.go            # writes service_ermi.go
//	ermi-gen -in service.go -out x.go
//
// Every method of an elastic interface must have the canonical remote
// signature `Method(arg ArgType) (ReplyType, error)`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"elasticrmi/internal/gen"
)

func main() {
	in := flag.String("in", "", "input Go file declaring //ermi:elastic interfaces")
	out := flag.String("out", "", "output file (default <in>_ermi.go)")
	flag.Parse()
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-gen:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	parsed, err := gen.Parse(in, src)
	if err != nil {
		return err
	}
	code, err := gen.Generate(parsed, filepath.Base(in))
	if err != nil {
		return err
	}
	if out == "" {
		out = strings.TrimSuffix(in, ".go") + "_ermi.go"
	}
	if err := os.WriteFile(out, code, 0o644); err != nil {
		return err
	}
	fmt.Printf("ermi-gen: %s -> %s (%d services)\n", in, out, len(parsed.Services))
	return nil
}
