// Command ermi-bench regenerates the paper's evaluation (MIDDLEWARE 2013,
// "Elastic Remote Methods"): the workload patterns of Figures 7a/7b, the
// agility series of Figures 7c-7j for all four applications x two workloads
// x four deployments, the provisioning-latency series of Figures 8a/8b, and
// the §5.5 summary ratios.
//
// Usage:
//
//	ermi-bench                  # run everything
//	ermi-bench -experiment fig7c
//	ermi-bench -experiment summary
//	ermi-bench -csv             # machine-readable series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"elasticrmi/internal/benchsim"
	"elasticrmi/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, fig7a, fig7b, fig7c..fig7j, fig8a, fig8b, summary")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()
	if err := run(*experiment, *csv, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-bench:", err)
		os.Exit(1)
	}
}

type figure struct {
	id      string
	app     benchsim.AppModel
	pattern func(benchsim.AppModel) workload.Pattern
}

func abruptOf(app benchsim.AppModel) workload.Pattern { return workload.Abrupt(app.PeakA) }
func cyclicOf(app benchsim.AppModel) workload.Pattern { return workload.Cyclic(app.PeakB()) }

func figures() []figure {
	return []figure{
		{"fig7c", benchsim.MarketceteraModel(), abruptOf},
		{"fig7d", benchsim.MarketceteraModel(), cyclicOf},
		{"fig7e", benchsim.HedwigModel(), abruptOf},
		{"fig7f", benchsim.HedwigModel(), cyclicOf},
		{"fig7g", benchsim.PaxosModel(), abruptOf},
		{"fig7h", benchsim.PaxosModel(), cyclicOf},
		{"fig7i", benchsim.DCSModel(), abruptOf},
		{"fig7j", benchsim.DCSModel(), cyclicOf},
	}
}

func run(experiment string, csv bool, out io.Writer) error {
	experiment = strings.ToLower(experiment)
	did := false
	if experiment == "all" || experiment == "fig7a" {
		printPattern(out, "Figure 7a: abruptly changing workload (fraction of Point A)",
			workload.Abrupt(1), csv)
		did = true
	}
	if experiment == "all" || experiment == "fig7b" {
		printPattern(out, "Figure 7b: cyclical workload (fraction of Point B)",
			workload.Cyclic(1), csv)
		did = true
	}
	for _, f := range figures() {
		if experiment == "all" || experiment == f.id {
			printAgility(out, f, csv)
			did = true
		}
	}
	if experiment == "all" || experiment == "fig8a" {
		printProvisioning(out, "Figure 8a: provisioning latency (s) — abrupt workload", abruptOf, csv)
		did = true
	}
	if experiment == "all" || experiment == "fig8b" {
		printProvisioning(out, "Figure 8b: provisioning latency (s) — cyclic workload", cyclicOf, csv)
		did = true
	}
	if experiment == "all" || experiment == "summary" {
		printSummary(out)
		did = true
	}
	if experiment == "all" || experiment == "ablation" {
		printAblations(out)
		did = true
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

func printPattern(out io.Writer, title string, p workload.Pattern, csv bool) {
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	if csv {
		fmt.Fprintln(out, "minute,load")
	}
	for t := time.Duration(0); t <= p.Duration(); t += 10 * time.Minute {
		frac := p.Rate(t) / p.Peak()
		if csv {
			fmt.Fprintf(out, "%d,%.4f\n", int(t.Minutes()), frac)
		} else {
			bar := strings.Repeat("#", int(frac*50))
			fmt.Fprintf(out, "%4dm %6.1f%% %s\n", int(t.Minutes()), 100*frac, bar)
		}
	}
}

func printAgility(out io.Writer, f figure, csv bool) {
	p := f.pattern(f.app)
	title := fmt.Sprintf("Figure %s: %s agility — %s workload (Point %s = %.0f req/s)",
		strings.TrimPrefix(f.id, "fig"), f.app.Name, p.Name(),
		map[string]string{"abrupt": "A", "cyclic": "B"}[p.Name()], p.Peak())
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))

	e := benchsim.RunExperiment(f.app, p)
	deps := benchsim.Deployments()
	if csv {
		cols := make([]string, 0, len(deps)+1)
		cols = append(cols, "minute")
		for _, d := range deps {
			cols = append(cols, string(d))
		}
		fmt.Fprintln(out, strings.Join(cols, ","))
	} else {
		fmt.Fprintf(out, "%6s", "minute")
		for _, d := range deps {
			fmt.Fprintf(out, " %18s", d)
		}
		fmt.Fprintln(out)
	}
	n := len(e.Results[benchsim.DeployElasticRMI].Plotted)
	for i := 0; i < n; i++ {
		at := e.Results[benchsim.DeployElasticRMI].Plotted[i].At
		if csv {
			fmt.Fprintf(out, "%d", int(at.Minutes()))
			for _, d := range deps {
				fmt.Fprintf(out, ",%.2f", e.Results[d].Plotted[i].Agility)
			}
			fmt.Fprintln(out)
		} else {
			fmt.Fprintf(out, "%5dm", int(at.Minutes()))
			for _, d := range deps {
				fmt.Fprintf(out, " %18.2f", e.Results[d].Plotted[i].Agility)
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintf(out, "avg   ")
	for _, d := range deps {
		fmt.Fprintf(out, " %18.2f", e.Results[d].AvgAgility())
	}
	fmt.Fprintln(out)
}

func printProvisioning(out io.Writer, title string, pat func(benchsim.AppModel) workload.Pattern, csv bool) {
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintln(out, "(Overprovisioning is always 0 s; CloudWatch is several minutes and omitted, as in the paper)")
	if csv {
		fmt.Fprintln(out, "app,minute,latency_s")
	}
	for _, app := range benchsim.Models() {
		res := benchsim.Run(benchsim.RunConfig{App: app, Pattern: pat(app), Deploy: benchsim.DeployElasticRMI})
		if csv {
			for _, ev := range res.Provisioning {
				fmt.Fprintf(out, "%s,%d,%.1f\n", app.Name, int(ev.At.Minutes()), ev.Latency.Seconds())
			}
			continue
		}
		fmt.Fprintf(out, "%-13s events=%3d  mean=%5.1fs  max=%5.1fs  series:",
			app.Name, len(res.Provisioning),
			meanLatencySeconds(res), res.MaxProvisioningLatency().Seconds())
		for i, ev := range res.Provisioning {
			if i%8 == 0 {
				fmt.Fprintf(out, "\n    ")
			}
			fmt.Fprintf(out, "%4dm:%4.1fs ", int(ev.At.Minutes()), ev.Latency.Seconds())
		}
		fmt.Fprintln(out)
	}
}

func meanLatencySeconds(res benchsim.Result) float64 {
	if len(res.Provisioning) == 0 {
		return 0
	}
	var sum time.Duration
	for _, ev := range res.Provisioning {
		sum += ev.Latency
	}
	return (sum / time.Duration(len(res.Provisioning))).Seconds()
}

func printSummary(out io.Writer) {
	title := "Section 5.5 summary: average agility and ratios vs ElasticRMI"
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(out, "%-13s %-7s %10s %7s %12s %8s %12s %8s %14s %8s\n",
		"app", "pattern", "ERMI", "zero%", "CloudWatch", "ratio", "ERMI-CPUMem", "ratio", "Overprovision", "ratio")
	for _, app := range benchsim.Models() {
		for _, p := range []workload.Pattern{workload.Abrupt(app.PeakA), workload.Cyclic(app.PeakB())} {
			e := benchsim.RunExperiment(app, p)
			ermi := e.Results[benchsim.DeployElasticRMI]
			fmt.Fprintf(out, "%-13s %-7s %10.2f %6.0f%% %12.2f %7.1fx %12.2f %7.1fx %14.2f %7.1fx\n",
				app.Name, p.Name(),
				ermi.AvgAgility(), 100*ermi.ZeroFraction(),
				e.Results[benchsim.DeployCloudWatch].AvgAgility(), e.RatioVsElasticRMI(benchsim.DeployCloudWatch),
				e.Results[benchsim.DeployElasticRMICPUMem].AvgAgility(), e.RatioVsElasticRMI(benchsim.DeployElasticRMICPUMem),
				e.Results[benchsim.DeployOverprovision].AvgAgility(), e.RatioVsElasticRMI(benchsim.DeployOverprovision),
			)
		}
	}
	fmt.Fprintln(out, "\nPaper reference points: ElasticRMI avg 1.37 (Marketcetera, abrupt); CloudWatch")
	fmt.Fprintln(out, "3.4x/4.5x/6.6x/7.2x ElasticRMI (abrupt, per app); overprovisioning avg 24.1")
	fmt.Fprintln(out, "abrupt / 17.2 cyclic (Marketcetera); ElasticRMI provisioning latency < 30 s.")
}

// printAblations quantifies the design choices (see DESIGN.md): the
// common-mode metric error, the per-member ChangePoolSize bound, the
// threshold monitoring period and the provisioning-latency regime.
func printAblations(out io.Writer) {
	title := "Ablations (Marketcetera, abrupt unless noted): average agility"
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	app := benchsim.MarketceteraModel()
	abrupt := workload.Abrupt(app.PeakA)

	base := benchsim.RunConfig{App: app, Pattern: abrupt, Deploy: benchsim.DeployElasticRMI}
	runWith := func(mod func(*benchsim.RunConfig)) float64 {
		cfg := base
		if mod != nil {
			mod(&cfg)
		}
		return benchsim.Run(cfg).AvgAgility()
	}
	fmt.Fprintf(out, "application-metric quality:  noisy (paper) %5.2f | perfect observability %5.2f\n",
		runWith(nil),
		runWith(func(c *benchsim.RunConfig) { c.DisableCommonModeError = true }))
	fmt.Fprintf(out, "ChangePoolSize bound:        +/-1 %5.2f | +/-2 (paper) %5.2f | +/-4 %5.2f | unbounded %5.2f\n",
		runWith(func(c *benchsim.RunConfig) { c.FineDeltaCap = 1 }),
		runWith(func(c *benchsim.RunConfig) { c.FineDeltaCap = 2 }),
		runWith(func(c *benchsim.RunConfig) { c.FineDeltaCap = 4 }),
		runWith(func(c *benchsim.RunConfig) { c.FineDeltaCap = -1 }))

	cw := benchsim.RunConfig{App: app, Pattern: abrupt, Deploy: benchsim.DeployCloudWatch}
	runCW := func(mod func(*benchsim.RunConfig)) float64 {
		cfg := cw
		if mod != nil {
			mod(&cfg)
		}
		return benchsim.Run(cfg).AvgAgility()
	}
	fmt.Fprintf(out, "CloudWatch monitor period:   1min %5.2f | 5min (paper) %5.2f | 10min %5.2f\n",
		runCW(func(c *benchsim.RunConfig) { c.ThresholdPeriodSteps = 1 }),
		runCW(func(c *benchsim.RunConfig) { c.ThresholdPeriodSteps = 5 }),
		runCW(func(c *benchsim.RunConfig) { c.ThresholdPeriodSteps = 10 }))
	fmt.Fprintf(out, "CloudWatch VM provisioning:  ~containers (0.01x) %5.2f | VMs (paper) %5.2f | slow VMs (3x) %5.2f\n",
		runCW(func(c *benchsim.RunConfig) { c.CloudWatchLatencyScale = 0.01 }),
		runCW(nil),
		runCW(func(c *benchsim.RunConfig) { c.CloudWatchLatencyScale = 3 }))
}
