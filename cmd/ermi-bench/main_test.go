package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllProducesEveryFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run("all", false, &buf); err != nil {
		t.Fatalf("run(all): %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 7a", "Figure 7b",
		"Figure 7c", "Figure 7d", "Figure 7e", "Figure 7f",
		"Figure 7g", "Figure 7h", "Figure 7i", "Figure 7j",
		"Figure 8a", "Figure 8b",
		"Section 5.5 summary", "Ablations",
		"Marketcetera", "Hedwig", "Paxos", "DCS",
		"ElasticRMI", "Overprovisioning", "CloudWatch", "ElasticRMI-CPUMem",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig7g", false, &buf); err != nil {
		t.Fatalf("run(fig7g): %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Paxos agility") {
		t.Fatalf("fig7g output wrong: %s", out[:200])
	}
	if strings.Contains(out, "Figure 7c") {
		t.Fatal("fig7g run also produced fig7c")
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig7c", true, &buf); err != nil {
		t.Fatalf("run csv: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "minute,ElasticRMI,Overprovisioning,CloudWatch,ElasticRMI-CPUMem") {
		t.Fatalf("csv header missing:\n%s", out[:300])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig99", false, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
