// Command ermi-registry runs a standalone ElasticRMI naming service — the
// counterpart of rmiregistry. Elastic pools bind their class name to the
// current pool endpoints (sentinel first); stubs look names up on startup.
//
// Usage:
//
//	ermi-registry -addr :7099
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"elasticrmi/internal/core"
)

func main() {
	addr := flag.String("addr", ":7099", "listen address")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "ermi-registry:", err)
		os.Exit(1)
	}
}

func run(addr string) error {
	srv, err := core.NewRegistryServer(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("ermi-registry listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
