GO ?= go

.PHONY: all build vet lint fmt-check test race bench ci fuzz-smoke kv-chaos kv-restart kv-sessions generate-check

all: vet test

# ci is the full gate (run by .github/workflows/ci.yml): formatting, build,
# vet (stock + the ermi-vet invariant suite), codegen freshness, the whole
# test suite under the race detector, then a short fuzz smoke over the wire
# codec and the generated payload codecs. The explicit -timeout makes a
# deadlocked test (e.g. an overload/quiesce scenario wedging on a blocked
# handler) fail the job in minutes instead of hanging the workflow until
# its global limit.
ci: fmt-check build lint generate-check
	$(GO) test -race -timeout 300s ./...
	$(MAKE) kv-chaos
	$(MAKE) kv-restart
	$(MAKE) kv-sessions
	$(MAKE) fuzz-smoke

# generate-check fails when any checked-in *_ermi.go file is stale: rerunning
# ermi-gen over the annotated sources must be a no-op, so hand-edited or
# forgotten regenerations cannot drift from the annotations that define them.
generate-check:
	$(GO) generate ./...
	@git diff --exit-code -- '*_ermi.go' || \
		{ echo "generated *_ermi.go files are stale; run 'go generate ./...' and commit"; exit 1; }

# kv-chaos gates the replicated shared-state layer explicitly: the kvstore
# chaos scenario (node killed under a mixed Get/Put/CAS/lock workload with
# concurrent AddNode/RemoveNode) under the race detector, repeated so the
# failover interleavings get more than one roll of the dice. It runs inside
# the full -race suite above too; the explicit repeat keeps the gate even
# if someone narrows that run.
kv-chaos:
	$(GO) test -race -timeout 300s -run 'TestKVStoreChaosKillUnderLoad' -count 3 ./internal/ermitest/

# kv-restart gates the durability layer: the whole-cluster power-cut
# scenario (every node halted mid-load with its log abandoned unflushed,
# then rebooted from disk) under the race detector, repeated so the
# halt lands on different interleavings of the write/snapshot pipeline.
kv-restart:
	$(GO) test -race -timeout 300s -run 'TestKVStoreClusterRestartFromDisk' -count 3 ./internal/ermitest/

# kv-sessions gates the client-cache coherence layer: a primary killed under
# a read-heavy cached workload (plus a fresh node joining), asserting zero
# stale reads — the invalidate-before-ack and failover-fence invariants —
# repeated so the crash lands on different lease/invalidation interleavings.
kv-sessions:
	$(GO) test -race -timeout 300s -run 'TestKVSessionsNoStaleReadsAcrossCrash' -count 3 ./internal/ermitest/

# fmt-check fails if any file is not gofmt-clean (gofmt -l lists offenders).
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$files"; exit 1; \
	fi

# fuzz-smoke runs each fuzz target briefly; `go test -fuzz` accepts exactly
# one target per invocation, hence the loop. Entries are pkg:Target pairs:
# the wire codec (frame/request/response/batch parsers) plus the generated
# payload codec round trip in gentest.
FUZZ_TARGETS := \
	./internal/transport/:FuzzReadFrame \
	./internal/transport/:FuzzParseRequest \
	./internal/transport/:FuzzParseResponse \
	./internal/transport/:FuzzParseBatch \
	./internal/transport/:FuzzEventFrame \
	./internal/gen/gentest/:FuzzCodecRoundTrip \
	./internal/wal/:FuzzWALReplay
FUZZTIME ?= 10s
fuzz-smoke:
	@for pt in $(FUZZ_TARGETS); do \
		pkg=$${pt%%:*}; t=$${pt##*:}; \
		echo "fuzz $$pkg $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) "$$pkg" || exit 1; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs stock go vet first (the standard analyzers keep their gate),
# then the project's own invariant suite — payload ownership, lock
# discipline, codec strictness, budget propagation, goroutine leaks,
# dropped durability errors, wire-enum exhaustiveness — as a vettool, so it
# gets go vet's per-package scheduling and result caching for free. See
# internal/lint. ERMIVET_STATS collects one line per package the tool
# actually analyzes; the awk summary turns it into per-analyzer wall time
# and the cross-package fact-cache hit rate. Dependency fact passes
# ("facts-only" lines) are cached by the go command, so on a warm tree
# only the diagnostics pass of each listed package re-runs and every
# cross-package fact is a cache hit.
lint: vet
	$(GO) build -o bin/ermi-vet ./cmd/ermi-vet
	@rm -f bin/ermi-vet.stats
	ERMIVET_STATS=$(CURDIR)/bin/ermi-vet.stats $(GO) vet -vettool=$(CURDIR)/bin/ermi-vet ./...
	@awk -f scripts/lintstats.awk bin/ermi-vet.stats

# lint-cache-check proves the fact pipeline's warm path. The go command
# always re-runs the diagnostics pass for the packages it was asked about
# (cmd/go caches only VetxOnly dependency runs), so the incremental
# property to gate sits on the fact side: an unchanged tree must rebuild
# zero dependency fact files ("facts-only" stats lines) and must decode
# every cross-package fact file it is handed (facts_miss=0). A codec or
# staleness regression shows up here as misses — analysis silently
# degrading to package-local — while lint itself stays green. Run after
# `make lint` (reuses its binary and warm cache).
lint-cache-check:
	@rm -f bin/ermi-vet.stats
	ERMIVET_STATS=$(CURDIR)/bin/ermi-vet.stats $(GO) vet -vettool=$(CURDIR)/bin/ermi-vet ./...
	@if grep -q "^facts-only" bin/ermi-vet.stats; then \
		echo "lint-cache-check: warm run rebuilt dependency facts:"; \
		grep "^facts-only" bin/ermi-vet.stats; exit 1; \
	fi
	@misses=$$(awk '{for(i=1;i<=NF;i++) if (split($$i,kv,"=")==2 && kv[1]=="facts_miss") m+=kv[2]} END{print m+0}' bin/ermi-vet.stats); \
	if [ "$$misses" -gt 0 ]; then \
		echo "lint-cache-check: $$misses cross-package fact files missing or undecodable:"; \
		grep "facts_miss=[^0]" bin/ermi-vet.stats; exit 1; \
	fi
	@echo "lint-cache-check: warm run rebuilt no dependency facts; every cross-package fact was a cache hit"

test:
	$(GO) test ./...

# race gates the transport hot path (pooled call objects, write coalescing,
# connection caches, the admission worker pool) under the race detector.
race:
	$(GO) test -race -timeout 300s ./internal/transport/...

# bench runs vet + the transport race gate, then the transport
# microbenchmarks, and records the numbers to BENCH_transport.json so the
# perf trajectory is tracked PR over PR.
bench:
	./scripts/bench.sh
