GO ?= go

.PHONY: all build vet fmt-check test race bench ci fuzz-smoke kv-chaos

all: vet test

# ci is the full gate (run by .github/workflows/ci.yml): formatting, build,
# vet, the whole test suite under the race detector, then a short fuzz
# smoke over the wire codec. The explicit -timeout makes a deadlocked test
# (e.g. an overload/quiesce scenario wedging on a blocked handler) fail the
# job in minutes instead of hanging the workflow until its global limit.
ci: fmt-check build vet
	$(GO) test -race -timeout 300s ./...
	$(MAKE) kv-chaos
	$(MAKE) fuzz-smoke

# kv-chaos gates the replicated shared-state layer explicitly: the kvstore
# chaos scenario (node killed under a mixed Get/Put/CAS/lock workload with
# concurrent AddNode/RemoveNode) under the race detector, repeated so the
# failover interleavings get more than one roll of the dice. It runs inside
# the full -race suite above too; the explicit repeat keeps the gate even
# if someone narrows that run.
kv-chaos:
	$(GO) test -race -timeout 300s -run 'TestKVStoreChaosKillUnderLoad' -count 3 ./internal/ermitest/

# fmt-check fails if any file is not gofmt-clean (gofmt -l lists offenders).
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$files"; exit 1; \
	fi

# fuzz-smoke runs each wire-codec fuzz target briefly; `go test -fuzz`
# accepts exactly one target per invocation, hence the loop.
FUZZ_TARGETS := FuzzReadFrame FuzzParseRequest FuzzParseResponse FuzzParseBatch
FUZZTIME ?= 10s
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/transport/ || exit 1; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race gates the transport hot path (pooled call objects, write coalescing,
# connection caches, the admission worker pool) under the race detector.
race:
	$(GO) test -race -timeout 300s ./internal/transport/...

# bench runs vet + the transport race gate, then the transport
# microbenchmarks, and records the numbers to BENCH_transport.json so the
# perf trajectory is tracked PR over PR.
bench:
	./scripts/bench.sh
