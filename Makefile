GO ?= go

.PHONY: all build vet test race bench

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race gates the transport hot path (pooled call objects, write coalescing,
# connection caches) under the race detector.
race:
	$(GO) test -race ./internal/transport/...

# bench runs vet + the transport race gate, then the transport
# microbenchmarks, and records the numbers to BENCH_transport.json so the
# perf trajectory is tracked PR over PR.
bench:
	./scripts/bench.sh
