module elasticrmi

go 1.24.0
