package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
)

// RouteSource supplies the server's current routing table. The server
// compares its epoch against each request's epoch and piggybacks the table
// on the response when the requester is stale, so clients converge within
// one reply round-trip. It is called on the response path and must be
// cheap and non-blocking (an atomic snapshot).
type RouteSource func() route.Table

// ServerOptions configures the server's admission controller. The zero
// value selects the defaults.
type ServerOptions struct {
	// MaxConcurrent bounds how many requests execute concurrently (the
	// concurrency gate): at most this many handler invocations run at any
	// moment, served by an elastic worker pool instead of a goroutine per
	// request. <= 0 selects DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueue bounds how many accepted requests may wait for a free worker.
	// When the queue is full, two-way requests are shed with a
	// statusOverload reply (the handler never runs; the caller retries on a
	// less-loaded member) and one-way requests are dropped silently (the
	// caller awaits no reply). <= 0 selects DefaultMaxQueue.
	MaxQueue int
	// Express selects requests that bypass the admission controller: a
	// matching request runs immediately in its own goroutine instead of
	// waiting for — or being shed by — the worker pool. It exists for cheap
	// control-plane methods that UNBLOCK pool workers: a handler parked in
	// the pool waiting for a peer's follow-up call deadlocks (until its own
	// timeout) if that follow-up must be admitted through the pool it is
	// clogging. Express handlers must be fast and must never block; they
	// are exempt from MaxConcurrent/MaxQueue, so a method routed here gains
	// no overload protection. Nil disables the lane.
	Express func(service, method string) bool
}

// Default admission bounds: generous enough that well-provisioned workloads
// never notice them, finite so a saturated server degrades by shedding
// instead of by unbounded goroutine growth and congestion collapse.
const (
	DefaultMaxConcurrent = 1024
	DefaultMaxQueue      = 4096
)

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = DefaultMaxConcurrent
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	return o
}

// ServerStats are the admission controller's cumulative counters — the
// overload signal the elasticity layer scales on.
type ServerStats struct {
	// Shed counts requests refused because gate and queue were both full
	// (two-way: answered statusOverload; one-way: dropped).
	Shed uint64
	// Expired counts requests whose budget ran out waiting in the queue;
	// their handlers never ran.
	Expired uint64
}

// workItem is one admitted invocation waiting for a worker. st is nil for
// one-way work (no response is ever written).
type workItem struct {
	st     *connState
	req    *Request
	oneway bool
}

// Server accepts connections and dispatches requests to a Handler behind a
// bounded admission controller: a concurrency gate (elastic worker pool) in
// front of a bounded wait queue. Excess load is shed with statusOverload
// instead of accepted into unbounded goroutines, and queued work whose
// deadline budget expires is dropped without ever invoking the handler.
type Server struct {
	lis     net.Listener
	handler Handler
	opts    ServerOptions
	routes  atomic.Pointer[RouteSource]

	// Admission state: the bounded wait queue, the live-worker count the
	// elastic pool is capped by, and the shed/expired counters.
	work    chan workItem
	workers atomic.Int32
	shed    atomic.Uint64
	expired atomic.Uint64
	// quit retires the resident worker at Close.
	quit chan struct{}

	// draining makes the server drop newly arriving requests without
	// executing them (see Quiesce): the unanswered request fails with the
	// connection when the server closes, so the caller retries on another
	// member knowing the method never ran here — at-most-once is preserved
	// through shutdown.
	draining atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	states map[*connState]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetRouteSource installs (or replaces) the server's route source. Safe to
// call while the server runs; a nil source disables piggybacking.
func (s *Server) SetRouteSource(src RouteSource) {
	if src == nil {
		s.routes.Store(nil)
		return
	}
	s.routes.Store(&src)
}

// routeUpdateFor returns the table to piggyback for a request carrying
// reqEpoch, or nil when the requester is already current (or no source).
func (s *Server) routeUpdateFor(reqEpoch uint64) *route.Table {
	srcp := s.routes.Load()
	if srcp == nil {
		return nil
	}
	t := (*srcp)()
	if t.Epoch <= reqEpoch {
		return nil
	}
	return &t
}

// Stats returns the admission controller's cumulative counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Shed: s.shed.Load(), Expired: s.expired.Load()}
}

// Serve starts a server listening on addr ("host:port"; ":0" picks a free
// port) with default admission bounds.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeOpts(addr, handler, ServerOptions{})
}

// ServeOpts is Serve with explicit admission bounds.
func ServeOpts(addr string, handler Handler, opts ServerOptions) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return ServeListenerOpts(lis, handler, opts)
}

// ServeListener serves on an already-created listener. It lets tests wrap
// the listener (e.g. ermitest's fault-injecting listener) and production
// callers bring their own socket configuration. The server owns lis and
// closes it on Close.
func ServeListener(lis net.Listener, handler Handler) (*Server, error) {
	return ServeListenerOpts(lis, handler, ServerOptions{})
}

// ServeListenerOpts is ServeListener with explicit admission bounds.
func ServeListenerOpts(lis net.Listener, handler Handler, opts ServerOptions) (*Server, error) {
	if handler == nil {
		lis.Close()
		return nil, errors.New("transport: nil handler")
	}
	opts = opts.withDefaults()
	s := &Server{
		lis:     lis,
		handler: handler,
		opts:    opts,
		work:    make(chan workItem, opts.MaxQueue),
		quit:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		states:  make(map[*connState]struct{}),
	}
	// One resident worker parks on the admission queue for the server's
	// lifetime (it occupies the first concurrency slot), so light sequential
	// load dispatches without spawning a goroutine per request; elastic
	// workers still spawn behind it when the queue backs up.
	s.workers.Store(1)
	s.wg.Add(2)
	go s.residentWorker()
	go s.acceptLoop()
	return s, nil
}

// residentWorker is the permanent member of the worker pool.
func (s *Server) residentWorker() {
	defer s.wg.Done()
	for {
		select {
		case it := <-s.work:
			s.process(it)
		case <-s.quit:
			// Drain anything the elastic workers left behind so admitted
			// work is never stranded at Close.
			for {
				select {
				case it := <-s.work:
					s.process(it)
				default:
					return
				}
			}
		}
	}
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// admit hands one parsed invocation to the worker pool. It never blocks:
// a full queue reports false and the caller sheds. On true, a worker slot
// is guaranteed to pick the item up (a retiring worker re-checks the queue
// after decrementing itself, so the enqueue/retire race always leaves
// someone responsible).
func (s *Server) admit(it workItem) bool {
	select {
	case s.work <- it:
	default:
		return false
	}
	if s.tryReserveWorker() {
		s.wg.Add(1)
		go s.worker()
	}
	return true
}

// tryReserveWorker claims a worker slot under the concurrency gate,
// reporting false when the pool is at MaxConcurrent (the live workers own
// the queue then).
func (s *Server) tryReserveWorker() bool {
	for {
		n := s.workers.Load()
		if int(n) >= s.opts.MaxConcurrent {
			return false
		}
		if s.workers.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// worker drains the admission queue. Workers are elastic: one is spawned
// per admit while the pool is below MaxConcurrent, and a worker retires as
// soon as it finds the queue empty — under light load this degenerates to
// roughly a goroutine per request, under saturation to MaxConcurrent
// long-lived workers chewing a full queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case it := <-s.work:
			s.process(it)
			continue
		default:
		}
		// Queue looks empty: retire. Decrement before the final re-check so
		// an admit that raced its enqueue past our first look either sees a
		// free slot (and spawns a replacement) or is caught by the re-check.
		s.workers.Add(-1)
		if len(s.work) == 0 {
			return
		}
		if !s.tryReserveWorker() {
			return // a full complement of other workers owns the queue
		}
	}
}

// process runs one admitted invocation: the budget check at dequeue, then
// the handler, then (for two-way work) the response.
func (s *Server) process(it workItem) {
	req := it.req
	if !req.Deadline.IsZero() && time.Now().After(req.Deadline) {
		// The budget expired while the item sat in the queue: the caller is
		// gone, executing the method would be pure waste. Never invoke the
		// handler; tell a two-way caller so it can account the loss.
		s.expired.Add(1)
		if !it.oneway {
			s.reply(it.st, req, statusExpired, nil, "")
		} else {
			req.recycle()
		}
		return
	}
	if it.oneway {
		// The result, including any error, is dropped — the client asked
		// for no response frame. The payload slab is done once the handler
		// returns (unless it Retained).
		_, _ = s.handler(req)
		req.recycle()
		return
	}
	payload, err := s.handler(req)
	var errMsg string
	if err != nil {
		errMsg = err.Error()
	}
	s.reply(it.st, req, statusOK, payload, errMsg)
}

// reply writes one response frame with the connection's flush-coalescing
// discipline and keeps the Quiesce accounting (outstanding/written) true.
func (s *Server) reply(st *connState, req *Request, status respStatus, payload []byte, errMsg string) {
	// The route update is computed after the handler ran: a view change
	// during a long invocation still reaches the caller on this reply.
	rt := s.routeUpdateFor(req.Epoch)
	hold := st.outstanding.Add(-1) > 0
	werr := st.w.writeResponse(req.Seq, status, payload, errMsg, rt, hold)
	// The response bytes are on their way (buffered or scatter-gathered to
	// the kernel), so nothing references the request's payload slab — or a
	// transport-owned reply buffer — any longer. Release both, even on a
	// write error: the slabs are clean either way.
	if req.ReleaseReply {
		arenaPut(payload)
	}
	req.recycle()
	st.written.Add(1)
	if werr != nil {
		st.conn.Close()
		return
	}
	// Arm the straggler timer only after the bytes are buffered: a timer
	// armed earlier could fire and flush before this response lands, leaving
	// it stuck behind an arbitrarily long-running handler. The callback
	// disarms before flushing, so any response buffered after the disarm
	// observes timerArmed == false and arms a fresh round.
	if hold && st.timerArmed.CompareAndSwap(false, true) {
		time.AfterFunc(responseFlushBound, func() {
			st.timerArmed.Store(false)
			if st.w.flushNow() != nil {
				st.conn.Close()
			}
		})
	}
}

// ingestRequest runs the per-request admission pipeline on the read path:
// draining drop, then the gate+queue, shedding with statusOverload when
// both are full.
func (s *Server) ingestRequest(st *connState, req *Request, arrival time.Time) {
	// Count before the draining check: Quiesce observes a non-zero
	// outstanding count for any request that slipped past the flag,
	// so it can never declare the connection quiet under our feet.
	st.outstanding.Add(1)
	st.accepted.Add(1)
	if s.draining.Load() {
		st.outstanding.Add(-1)
		st.written.Add(1)
		req.recycle()
		return // dropped unexecuted; fails with the connection
	}
	if req.Budget > 0 {
		req.Deadline = arrival.Add(req.Budget)
	}
	if s.express(req) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.process(workItem{st: st, req: req})
		}()
		return
	}
	if !s.admit(workItem{st: st, req: req}) {
		// Gate and queue full: shed. The distinct status (not a RemoteError)
		// tells the stub the member is loaded, not broken.
		s.shed.Add(1)
		s.reply(st, req, statusOverload, nil, "")
	}
}

// express reports whether req takes the admission bypass lane.
func (s *Server) express(req *Request) bool {
	return s.opts.Express != nil && s.opts.Express(req.Service, req.Method)
}

// ingestOneWay routes a one-way invocation through the same admission gate.
// There is no caller to answer, so saturation and draining both drop the
// work silently — never an unbounded goroutine.
func (s *Server) ingestOneWay(req *Request, arrival time.Time) {
	if s.draining.Load() {
		req.recycle()
		return // at-most-once: dropped with the closing member
	}
	req.OneWay = true
	if req.Budget > 0 {
		req.Deadline = arrival.Add(req.Budget)
	}
	if s.express(req) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.process(workItem{req: req, oneway: true})
		}()
		return
	}
	if !s.admit(workItem{req: req, oneway: true}) {
		s.shed.Add(1)
		req.recycle()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connBufSize)
	var pre [len(preamble)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != preamble {
		return // wrong magic or unsupported protocol version
	}
	st := &connState{conn: conn, w: newConnWriter(conn)}
	pusher := &Pusher{st: st}
	s.mu.Lock()
	s.states[st] = struct{}{}
	s.mu.Unlock()
	defer func() {
		st.closed.Store(true)
		s.mu.Lock()
		delete(s.states, st)
		s.mu.Unlock()
	}()
	in := newInterner()
	for {
		kind, meta, payload, err := readFrame(br)
		if err != nil {
			return
		}
		arrival := time.Now()
		switch kind {
		case frameRequest, frameOneWay:
			req, err := parseRequest(meta, payload, in)
			// The metadata slab is done once parsing returns (service and
			// method were interned out of it); the payload slab's ownership
			// moves to the request, released after its response is written.
			arenaPut(meta)
			if err != nil {
				arenaPut(payload)
				return
			}
			if payload != nil {
				// Single-request frames use the Request's inline frameBuf:
				// no per-frame refcount allocation.
				req.fb.buf = payload
				req.fb.refs.Store(1)
				req.frame = &req.fb
			}
			req.pusher = pusher
			if kind == frameRequest {
				s.ingestRequest(st, req, arrival)
			} else {
				s.ingestOneWay(req, arrival)
			}
		case frameBatch:
			items, err := parseBatch(meta, in)
			if err != nil {
				arenaPut(meta)
				arenaPut(payload)
				return
			}
			// Batch payloads ride inline in the metadata section; a stray
			// payload section from a nonconforming peer is just dropped.
			arenaPut(payload)
			// Every entry's payload aliases the shared metadata slab, so the
			// slab is refcounted: the last entry to finish releases it.
			fb := newFrameBuf(meta, int32(len(items)))
			// Fan-out: every entry of the batch passes through the admission
			// gate exactly as if it had arrived in its own frame. Responses
			// are ordinary response frames, coalesced on the return path by
			// the outstanding-count flush elision.
			for _, it := range items {
				it.req.frame = fb
				it.req.pusher = pusher
				if it.oneway {
					s.ingestOneWay(it.req, arrival)
				} else {
					s.ingestRequest(st, it.req, arrival)
				}
			}
		case frameResponse, frameEvent:
			// Server-to-client kinds arriving at a server: the peer is not
			// speaking our side of the protocol, so drop the connection.
			// Named (not a default) so the switch stays exhaustive over
			// frameKind and ermi-vet forces a new kind to choose its fate.
			arenaPut(meta)
			arenaPut(payload)
			return
		}
	}
}

// Quiesce prepares a graceful shutdown: newly arriving requests are dropped
// without executing (their callers retry elsewhere once the connection
// closes), and Quiesce blocks until every previously accepted request has
// run AND had its response fully written — including responses parked under
// the flush-coalescing straggler hold, which are flushed here — or until
// timeout. It reports whether the server went quiet. Close may follow
// immediately without cutting an acknowledged-but-unflushed response, the
// ambiguity that would otherwise turn a clean scale-down into a duplicate
// execution at a retrying caller.
func (s *Server) Quiesce(timeout time.Duration) bool {
	s.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		quiet := true
		for st := range s.states {
			if st.outstanding.Load() != 0 || st.written.Load() != st.accepted.Load() {
				quiet = false
				break
			}
		}
		states := make([]*connState, 0, len(s.states))
		if quiet {
			for st := range s.states {
				states = append(states, st)
			}
		}
		s.mu.Unlock()
		if quiet {
			for _, st := range states {
				_ = st.w.flushNow()
			}
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Pusher pushes event frames to the client side of one server connection.
// Handlers obtain it via Request.Pusher and may hold it beyond the request:
// it stays valid for the connection's lifetime, and once the connection is
// gone every Send fails with ErrClosed — the holder's signal to drop
// whatever state (a session, a watch registration) the handle anchored.
// Safe for concurrent use; concurrent Sends serialize on the connection
// writer.
type Pusher struct {
	st *connState
}

// Send writes one event frame (kind, seq, topic, payload) to the client.
// The payload is copied onto the wire before Send returns; the caller keeps
// ownership of the slice. Events are never held for flush coalescing — a
// pushed invalidation is on its way to the kernel when Send returns.
func (p *Pusher) Send(kind, seq uint64, topic string, payload []byte) error {
	if p == nil || p.st.closed.Load() {
		return ErrClosed
	}
	if err := p.st.w.writeEvent(seq, kind, topic, payload); err != nil {
		return fmt.Errorf("transport: push event: %w", err)
	}
	return nil
}

// Closed reports whether the connection behind this pusher is gone (every
// further Send would fail).
func (p *Pusher) Closed() bool { return p == nil || p.st.closed.Load() }

// connState is the per-connection server state shared by the reader and the
// response writers: the writer itself plus the outstanding-request count
// driving response flush coalescing.
type connState struct {
	conn net.Conn
	w    *connWriter
	// closed is set when the connection's read loop exits; it fails event
	// pushes fast (response writes discover the death through their own
	// write errors).
	closed atomic.Bool
	// outstanding counts requests read but not yet answered. A responder
	// that is not the last one holds its flush — more responses are
	// imminent — so a wave of completions reaches the kernel in one
	// syscall; the timer below bounds the wait when a straggler keeps the
	// count up.
	outstanding atomic.Int64
	timerArmed  atomic.Bool
	// accepted counts every two-way request read on this connection;
	// written counts those whose response write has completed (or that
	// were dropped while draining). accepted == written && outstanding == 0
	// is the connection-quiet predicate Quiesce waits for.
	accepted atomic.Int64
	written  atomic.Int64
}

// responseFlushBound caps how long a completed response may sit buffered
// behind still-running handlers on the same connection.
const responseFlushBound = 100 * time.Microsecond

// Close stops accepting, closes all connections and waits for in-flight
// handlers (and the worker pool behind the admission queue) to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	close(s.quit)
	s.wg.Wait()
	return err
}
