package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	lis     net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server listening on addr ("host:port"; ":0" picks a free
// port). The handler is invoked on its own goroutine per request.
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &Server{
		lis:     lis,
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connBufSize)
	var pre [len(preamble)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != preamble {
		return // wrong magic or unsupported protocol version
	}
	w := newConnWriter(conn)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			return
		}
		if kind != frameRequest {
			return
		}
		req, err := parseRequest(body)
		if err != nil {
			return
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			payload, err := s.handler(req)
			var errMsg string
			var redirect []string
			if err != nil {
				var redir *RedirectError
				if errors.As(err, &redir) {
					redirect = redir.Targets
				} else {
					errMsg = err.Error()
				}
			}
			if werr := w.writeResponse(req.Seq, payload, errMsg, redirect); werr != nil {
				conn.Close()
			}
		}()
	}
}

// Close stops accepting, closes all connections and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
