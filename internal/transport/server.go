package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
)

// RouteSource supplies the server's current routing table. The server
// compares its epoch against each request's epoch and piggybacks the table
// on the response when the requester is stale, so clients converge within
// one reply round-trip. It is called on the response path and must be
// cheap and non-blocking (an atomic snapshot).
type RouteSource func() route.Table

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	lis     net.Listener
	handler Handler
	routes  atomic.Pointer[RouteSource]

	// draining makes the server drop newly arriving requests without
	// executing them (see Quiesce): the unanswered request fails with the
	// connection when the server closes, so the caller retries on another
	// member knowing the method never ran here — at-most-once is preserved
	// through shutdown.
	draining atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	states map[*connState]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetRouteSource installs (or replaces) the server's route source. Safe to
// call while the server runs; a nil source disables piggybacking.
func (s *Server) SetRouteSource(src RouteSource) {
	if src == nil {
		s.routes.Store(nil)
		return
	}
	s.routes.Store(&src)
}

// routeUpdateFor returns the table to piggyback for a request carrying
// reqEpoch, or nil when the requester is already current (or no source).
func (s *Server) routeUpdateFor(reqEpoch uint64) *route.Table {
	srcp := s.routes.Load()
	if srcp == nil {
		return nil
	}
	t := (*srcp)()
	if t.Epoch <= reqEpoch {
		return nil
	}
	return &t
}

// Serve starts a server listening on addr ("host:port"; ":0" picks a free
// port). The handler is invoked on its own goroutine per request.
func Serve(addr string, handler Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return ServeListener(lis, handler)
}

// ServeListener serves on an already-created listener. It lets tests wrap
// the listener (e.g. ermitest's fault-injecting listener) and production
// callers bring their own socket configuration. The server owns lis and
// closes it on Close.
func ServeListener(lis net.Listener, handler Handler) (*Server, error) {
	if handler == nil {
		lis.Close()
		return nil, errors.New("transport: nil handler")
	}
	s := &Server{
		lis:     lis,
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
		states:  make(map[*connState]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connBufSize)
	var pre [len(preamble)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != preamble {
		return // wrong magic or unsupported protocol version
	}
	st := &connState{conn: conn, w: newConnWriter(conn)}
	s.mu.Lock()
	s.states[st] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.states, st)
		s.mu.Unlock()
	}()
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			return
		}
		switch kind {
		case frameRequest:
			req, err := parseRequest(body)
			if err != nil {
				return
			}
			// Count before the draining check: Quiesce observes a non-zero
			// outstanding count for any request that slipped past the flag,
			// so it can never declare the connection quiet under our feet.
			st.outstanding.Add(1)
			st.accepted.Add(1)
			if s.draining.Load() {
				st.outstanding.Add(-1)
				st.written.Add(1)
				continue // dropped unexecuted; fails with the connection
			}
			reqWG.Add(1)
			go s.respond(st, req, &reqWG)
		case frameOneWay:
			req, err := parseRequest(body)
			if err != nil {
				return
			}
			if s.draining.Load() {
				continue // at-most-once: dropped with the closing member
			}
			req.OneWay = true
			reqWG.Add(1)
			go s.discard(req, &reqWG)
		case frameBatch:
			items, err := parseBatch(body)
			if err != nil {
				return
			}
			// Fan-out: every entry of the batch runs on its own goroutine,
			// exactly as if it had arrived in its own frame. Responses are
			// ordinary response frames, coalesced on the return path by the
			// outstanding-count flush elision below.
			for _, it := range items {
				if !it.oneway {
					st.outstanding.Add(1)
					st.accepted.Add(1)
				}
			}
			if s.draining.Load() {
				for _, it := range items {
					if !it.oneway {
						st.outstanding.Add(-1)
						st.written.Add(1)
					}
				}
				continue
			}
			for _, it := range items {
				reqWG.Add(1)
				if it.oneway {
					go s.discard(it.req, &reqWG)
				} else {
					go s.respond(st, it.req, &reqWG)
				}
			}
		default:
			return
		}
	}
}

// Quiesce prepares a graceful shutdown: newly arriving requests are dropped
// without executing (their callers retry elsewhere once the connection
// closes), and Quiesce blocks until every previously accepted request has
// run AND had its response fully written — including responses parked under
// the flush-coalescing straggler hold, which are flushed here — or until
// timeout. It reports whether the server went quiet. Close may follow
// immediately without cutting an acknowledged-but-unflushed response, the
// ambiguity that would otherwise turn a clean scale-down into a duplicate
// execution at a retrying caller.
func (s *Server) Quiesce(timeout time.Duration) bool {
	s.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		quiet := true
		for st := range s.states {
			if st.outstanding.Load() != 0 || st.written.Load() != st.accepted.Load() {
				quiet = false
				break
			}
		}
		states := make([]*connState, 0, len(s.states))
		if quiet {
			for st := range s.states {
				states = append(states, st)
			}
		}
		s.mu.Unlock()
		if quiet {
			for _, st := range states {
				_ = st.w.flushNow()
			}
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// connState is the per-connection server state shared by the reader and the
// response writers: the writer itself plus the outstanding-request count
// driving response flush coalescing.
type connState struct {
	conn net.Conn
	w    *connWriter
	// outstanding counts requests read but not yet answered. A responder
	// that is not the last one holds its flush — more responses are
	// imminent — so a wave of completions reaches the kernel in one
	// syscall; the timer below bounds the wait when a straggler keeps the
	// count up.
	outstanding atomic.Int64
	timerArmed  atomic.Bool
	// accepted counts every two-way request read on this connection;
	// written counts those whose response write has completed (or that
	// were dropped while draining). accepted == written && outstanding == 0
	// is the connection-quiet predicate Quiesce waits for.
	accepted atomic.Int64
	written  atomic.Int64
}

// responseFlushBound caps how long a completed response may sit buffered
// behind still-running handlers on the same connection.
const responseFlushBound = 100 * time.Microsecond

// respond executes one two-way request and writes its response frame,
// flushing according to the outstanding count.
func (s *Server) respond(st *connState, req *Request, wg *sync.WaitGroup) {
	defer wg.Done()
	payload, err := s.handler(req)
	var errMsg string
	if err != nil {
		errMsg = err.Error()
	}
	// The route update is computed after the handler ran: a view change
	// during a long invocation still reaches the caller on this reply.
	rt := s.routeUpdateFor(req.Epoch)
	hold := st.outstanding.Add(-1) > 0
	werr := st.w.writeResponse(req.Seq, payload, errMsg, rt, hold)
	st.written.Add(1)
	if werr != nil {
		st.conn.Close()
		return
	}
	// Arm the straggler timer only after the bytes are buffered: a timer
	// armed earlier could fire and flush before this response lands, leaving
	// it stuck behind an arbitrarily long-running handler. The callback
	// disarms before flushing, so any response buffered after the disarm
	// observes timerArmed == false and arms a fresh round.
	if hold && st.timerArmed.CompareAndSwap(false, true) {
		time.AfterFunc(responseFlushBound, func() {
			st.timerArmed.Store(false)
			if st.w.flushNow() != nil {
				st.conn.Close()
			}
		})
	}
}

// discard executes one one-way request; the result, including any error, is
// dropped — the client asked for no response frame.
func (s *Server) discard(req *Request, wg *sync.WaitGroup) {
	defer wg.Done()
	_, _ = s.handler(req)
}

// Close stops accepting, closes all connections and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
