package transport

import (
	"testing"
	"time"
)

// TestLargeFrameRoundTrip and TestSequentialCallsReuseConnection moved to
// fault_test.go (package transport_test), where they run on the shared
// ermitest fault-injection harness.

// TestFrameCorruptionClosesConnection writes garbage to the server; the
// connection dies but the server survives and accepts new connections.
func TestServerSurvivesGarbage(t *testing.T) {
	srv := startEcho(t)
	// Raw TCP garbage.
	raw, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// A huge declared frame size triggers the maxFrame guard server-side.
	raw.conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	raw.Close()

	// The server still serves fresh clients.
	c := dial(t, srv.Addr())
	payload, _ := Encode(echoArgs{N: 7})
	out, err := c.Call("svc", "Echo", payload, 5*time.Second)
	if err != nil {
		t.Fatalf("call after garbage: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil || got.N != 7 {
		t.Fatalf("echo = %+v, %v", got, err)
	}
}

// TestResponseAfterTimeoutIsDropped: a late response to a timed-out call
// must not confuse subsequent calls.
func TestResponseAfterTimeoutIsDropped(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	if _, err := c.Call("svc", "Slow", nil, 10*time.Millisecond); err == nil {
		t.Fatal("slow call did not time out")
	}
	// Wait for the late response to arrive and be discarded.
	time.Sleep(250 * time.Millisecond)
	payload, _ := Encode(echoArgs{N: 9})
	out, err := c.Call("svc", "Echo", payload, 5*time.Second)
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil || got.N != 9 {
		t.Fatalf("late response leaked into new call: %+v, %v", got, err)
	}
}
