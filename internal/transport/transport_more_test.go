package transport

import (
	"bytes"
	"testing"
	"time"
)

// TestLargeFrameRoundTrip pushes a multi-megabyte payload through the
// framed protocol.
func TestLargeFrameRoundTrip(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	payload, err := Encode(echoArgs{Text: string(big)})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := c.Call("svc", "Echo", payload, 30*time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Text) != len(big) {
		t.Fatalf("round trip %d bytes, want %d", len(got.Text), len(big))
	}
}

// TestSequentialCallsReuseConnection verifies many calls work over one
// connection without resource buildup.
func TestSequentialCallsReuseConnection(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	payload, _ := Encode(echoArgs{N: 1})
	for i := 0; i < 500; i++ {
		if _, err := c.Call("svc", "Echo", payload, 5*time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestFrameCorruptionClosesConnection writes garbage to the server; the
// connection dies but the server survives and accepts new connections.
func TestServerSurvivesGarbage(t *testing.T) {
	srv := startEcho(t)
	// Raw TCP garbage.
	raw, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// A huge declared frame size triggers the maxFrame guard server-side.
	raw.conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	raw.Close()

	// The server still serves fresh clients.
	c := dial(t, srv.Addr())
	payload, _ := Encode(echoArgs{N: 7})
	out, err := c.Call("svc", "Echo", payload, 5*time.Second)
	if err != nil {
		t.Fatalf("call after garbage: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil || got.N != 7 {
		t.Fatalf("echo = %+v, %v", got, err)
	}
}

// TestResponseAfterTimeoutIsDropped: a late response to a timed-out call
// must not confuse subsequent calls.
func TestResponseAfterTimeoutIsDropped(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	if _, err := c.Call("svc", "Slow", nil, 10*time.Millisecond); err == nil {
		t.Fatal("slow call did not time out")
	}
	// Wait for the late response to arrive and be discarded.
	time.Sleep(250 * time.Millisecond)
	payload, _ := Encode(echoArgs{N: 9})
	out, err := c.Call("svc", "Echo", payload, 5*time.Second)
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil || got.N != 9 {
		t.Fatalf("late response leaked into new call: %+v, %v", got, err)
	}
}
