package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"elasticrmi/internal/route"
)

// Exported errors matched by callers with errors.Is.
var (
	// ErrClosed is returned for operations on a closed client or server.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout is returned when a call's deadline expires.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrFrameTooLarge is returned when a message would exceed MaxFrame. The
	// connection stays usable; only the offending call fails.
	ErrFrameTooLarge = errors.New("transport: frame too large")
	// ErrOverloaded is returned when the server's admission controller shed
	// the call unexecuted (statusOverload): its concurrency gate and wait
	// queue were both full. The member is alive but saturated — callers
	// should treat it as loaded, not dead, and may retry elsewhere (the
	// method provably never ran).
	ErrOverloaded = errors.New("transport: server overloaded")
	// ErrExpired is returned when the call's remaining budget ran out while
	// it waited in the server's admission queue (statusExpired): the handler
	// was never invoked. Like a timeout, the budget is gone; unlike a
	// timeout, the server proved the method did not run.
	ErrExpired = errors.New("transport: budget expired before execution")
)

// RemoteError carries an application-level error string returned by the
// remote handler. It corresponds to the serialized exception a Java RMI
// skeleton would send back to the stub.
type RemoteError struct {
	Service string
	Method  string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s.%s: %s", e.Service, e.Method, e.Msg)
}

// Request is a remote method invocation as it travels on the wire. The
// Payload handed to a server Handler aliases the frame's read buffer; it
// remains valid indefinitely but is shared with the response write path, so
// handlers must not mutate it after returning.
type Request struct {
	Seq uint64
	// Epoch is the routing epoch the caller held when it sent the request
	// (0 = none). A server with a RouteSource compares it against its own
	// table and piggybacks the newer table on the response, so stale
	// callers converge within one reply round-trip.
	Epoch   uint64
	Service string
	Method  string
	Payload []byte
	// Budget is the caller's remaining deadline budget when it sent the
	// request (0 = no deadline), carried on the wire in microseconds. The
	// server charges queue wait against it: work whose budget expires before
	// dequeue is dropped without invoking the handler.
	Budget time.Duration
	// Deadline is Budget anchored at the server's arrival clock (zero when
	// the request carries no budget). Handlers may consult it to abandon
	// work nobody is waiting for (e.g. skip a cache fill mid-call).
	Deadline time.Time
	// OneWay is set by the server for invocations that will never be
	// answered (one-way frames and one-way batch entries). There is no
	// response to piggyback corrections on, so handlers execute them with
	// whatever routing the caller chose.
	OneWay bool
}

// Response answers a Request with the same Seq. It is the logical shape of a
// response frame (see doc.go); the hot path serializes the fields directly
// without materializing this struct.
type Response struct {
	Seq     uint64
	Status  byte // statusOK, or an admission-control refusal
	Payload []byte
	Err     string       // non-empty => RemoteError
	Route   *route.Table // piggybacked route update (nil = none)
}

// Handler processes one request and returns the response payload. Returning
// an error surfaces as a RemoteError at the caller.
type Handler func(req *Request) ([]byte, error)

// Encode gob-encodes v into a payload byte slice.
func Encode(v interface{}) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("encode payload: %w", err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	encBufPool.Put(buf)
	return out, nil
}

// Decode gob-decodes a payload produced by Encode into v.
func Decode(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("decode payload: %w", err)
	}
	return nil
}

// MustEncode is Encode for values known to be encodable (internal message
// structs); it panics only on programmer error.
func MustEncode(v interface{}) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}
