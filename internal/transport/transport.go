// Package transport implements the wire protocol used by all ElasticRMI
// components: a length-framed, gob-encoded request/response protocol over
// TCP. It plays the role that JRMP (the Java RMI wire protocol) plays in the
// paper: stubs and skeletons, the key-value store, the cluster manager and
// the group layer all exchange messages through it.
//
// A single client connection multiplexes concurrent calls; responses are
// matched to requests by sequence number.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Exported errors matched by callers with errors.Is.
var (
	// ErrClosed is returned for operations on a closed client or server.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout is returned when a call's deadline expires.
	ErrTimeout = errors.New("transport: call timed out")
)

// RemoteError carries an application-level error string returned by the
// remote handler. It corresponds to the serialized exception a Java RMI
// skeleton would send back to the stub.
type RemoteError struct {
	Service string
	Method  string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s.%s: %s", e.Service, e.Method, e.Msg)
}

// RedirectError tells the caller the member is draining and lists the other
// members of the elastic pool that can serve the invocation (paper §2.5).
type RedirectError struct {
	Targets []string
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("redirected to %v", e.Targets)
}

// Request is a remote method invocation as it travels on the wire.
type Request struct {
	Seq     uint64
	Service string
	Method  string
	Payload []byte
}

// Response answers a Request with the same Seq.
type Response struct {
	Seq      uint64
	Payload  []byte
	Err      string   // non-empty => RemoteError
	Redirect []string // non-empty => RedirectError (member draining)
}

// Handler processes one request and returns the response payload. Returning
// an error surfaces as a RemoteError at the caller.
type Handler func(req *Request) ([]byte, error)

// maxFrame bounds a single message to protect against corrupt frames.
const maxFrame = 64 << 20

type frameKind uint8

const (
	frameRequest frameKind = iota + 1
	frameResponse
)

type frame struct {
	Kind frameKind
	Req  *Request
	Resp *Response
}

func writeFrame(w io.Writer, f *frame) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("encode frame: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("decode frame: %w", err)
	}
	return &f, nil
}

// Encode gob-encodes v into a payload byte slice.
func Encode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("encode payload: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes a payload produced by Encode into v.
func Decode(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("decode payload: %w", err)
	}
	return nil
}

// MustEncode is Encode for values known to be encodable (internal message
// structs); it panics only on programmer error.
func MustEncode(v interface{}) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	lis     net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server listening on addr ("host:port"; ":0" picks a free
// port). The handler is invoked on its own goroutine per request.
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &Server{
		lis:     lis,
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.Kind != frameRequest || f.Req == nil {
			return
		}
		req := f.Req
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			payload, err := s.handler(req)
			resp := &Response{Seq: req.Seq, Payload: payload}
			if err != nil {
				var redir *RedirectError
				if errors.As(err, &redir) {
					resp.Redirect = redir.Targets
				} else {
					resp.Err = err.Error()
				}
			}
			writeMu.Lock()
			werr := writeFrame(conn, &frame{Kind: frameResponse, Resp: resp})
			writeMu.Unlock()
			if werr != nil {
				conn.Close()
			}
		}()
	}
}

// Close stops accepting, closes all connections and waits for in-flight
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a connection to one Server. It is safe for concurrent use; calls
// are multiplexed over a single TCP connection.
type Client struct {
	addr string
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *Response
	nextSeq uint64
	closed  bool
	readErr error

	done chan struct{}
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a bounded dial time.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	c := &Client{
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]chan *Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Addr returns the remote address this client is connected to.
func (c *Client) Addr() string { return c.addr }

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.Kind != frameResponse || f.Resp == nil {
			c.failAll(errors.New("transport: protocol violation"))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Resp.Seq]
		if ok {
			delete(c.pending, f.Resp.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- f.Resp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.readErr = err
	pend := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// Call invokes service.method with the given payload and waits up to timeout
// for the response payload.
func (c *Client) Call(service, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: connection failed: %w", err)
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan *Response, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	req := &Request{Seq: seq, Service: service, Method: method, Payload: payload}
	c.writeMu.Lock()
	err := writeFrame(c.conn, &frame{Kind: frameRequest, Req: req})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: write: %w", err)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("transport: connection lost: %w", ErrClosed)
		}
		if len(resp.Redirect) > 0 {
			return nil, &RedirectError{Targets: resp.Redirect}
		}
		if resp.Err != "" {
			return nil, &RemoteError{Service: service, Method: method, Msg: resp.Err}
		}
		return resp.Payload, nil
	case <-timer:
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("%s.%s: %w", service, method, ErrTimeout)
	}
}

// Close tears down the connection. Outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
