package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"elasticrmi/internal/route"
)

// Exported errors matched by callers with errors.Is.
var (
	// ErrClosed is returned for operations on a closed client or server.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout is returned when a call's deadline expires.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrFrameTooLarge is returned when a message would exceed MaxFrame. The
	// connection stays usable; only the offending call fails.
	ErrFrameTooLarge = errors.New("transport: frame too large")
	// ErrOverloaded is returned when the server's admission controller shed
	// the call unexecuted (statusOverload): its concurrency gate and wait
	// queue were both full. The member is alive but saturated — callers
	// should treat it as loaded, not dead, and may retry elsewhere (the
	// method provably never ran).
	ErrOverloaded = errors.New("transport: server overloaded")
	// ErrExpired is returned when the call's remaining budget ran out while
	// it waited in the server's admission queue (statusExpired): the handler
	// was never invoked. Like a timeout, the budget is gone; unlike a
	// timeout, the server proved the method did not run.
	ErrExpired = errors.New("transport: budget expired before execution")
)

// RemoteError carries an application-level error string returned by the
// remote handler. It corresponds to the serialized exception a Java RMI
// skeleton would send back to the stub.
type RemoteError struct {
	Service string
	Method  string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s.%s: %s", e.Service, e.Method, e.Msg)
}

// Request is a remote method invocation as it travels on the wire. The
// Payload handed to a server Handler lives in a pooled arena slab: it is
// valid until the request's response has been written (for one-way
// requests, until the handler returns), after which the server releases
// the slab for reuse. A handler that lets the payload — or a zero-copy
// view decoded from it — escape that window must call Retain first.
// Handlers must not mutate the payload (it is shared with the response
// write path when echoed back).
type Request struct {
	Seq uint64
	// Epoch is the routing epoch the caller held when it sent the request
	// (0 = none). A server with a RouteSource compares it against its own
	// table and piggybacks the newer table on the response, so stale
	// callers converge within one reply round-trip.
	Epoch   uint64
	Service string
	Method  string
	Payload []byte
	// Budget is the caller's remaining deadline budget when it sent the
	// request (0 = no deadline), carried on the wire in microseconds. The
	// server charges queue wait against it: work whose budget expires before
	// dequeue is dropped without invoking the handler.
	Budget time.Duration
	// Deadline is Budget anchored at the server's arrival clock (zero when
	// the request carries no budget). Handlers may consult it to abandon
	// work nobody is waiting for (e.g. skip a cache fill mid-call).
	Deadline time.Time
	// OneWay is set by the server for invocations that will never be
	// answered (one-way frames and one-way batch entries). There is no
	// response to piggyback corrections on, so handlers execute them with
	// whatever routing the caller chose.
	OneWay bool
	// ReleaseReply marks the handler's returned payload as transport-owned
	// arena memory (Encode output): the server releases it to the arena once
	// the response frame is written. A handler returning memory it does not
	// own outright — req.Payload echoed back, a long-lived application
	// buffer — must leave it false.
	ReleaseReply bool

	// pusher is the event-push handle of the connection this request arrived
	// on (nil for requests constructed outside a server connection). See
	// Pusher.
	pusher *Pusher

	// frame is the refcounted arena slab backing Payload (nil once released
	// or retained). See Retain.
	frame *frameBuf
	// fb backs frame inline for single-request frames, so parsing a request
	// allocates neither a Request (pooled) nor a frameBuf; batch entries
	// share one out-of-line refcounted frameBuf instead.
	fb frameBuf
	// retained records Retain: the Request must not return to the pool while
	// decoded views alias its slab, so it is left to the GC with the slab.
	retained bool
}

// reqPool recycles server-side Request objects: one is checked out per
// parsed invocation and returned once the response is written (one-way
// work: once the handler returns), unless Retain detached it.
var reqPool = sync.Pool{New: func() interface{} { return new(Request) }}

// getRequest checks a zeroed Request out of the pool.
func getRequest() *Request {
	r := reqPool.Get().(*Request)
	r.Seq, r.Epoch = 0, 0
	r.Service, r.Method = "", ""
	r.Payload = nil
	r.Budget, r.Deadline = 0, time.Time{}
	r.OneWay, r.ReleaseReply, r.retained = false, false, false
	r.pusher = nil
	r.frame = nil
	r.fb.buf = nil
	return r
}

// Pusher returns the server-push handle of the connection this request
// arrived on, or nil when the request did not arrive over a server
// connection. The handle outlives the request (and may be stored by the
// handler — e.g. in a session table): it stays valid for the connection's
// lifetime and fails every Send once the connection is gone.
func (r *Request) Pusher() *Pusher { return r.pusher }

// Event is a server-initiated message pushed on an established connection
// (see the event frame in doc.go). Kind, Topic and Seq address the event at
// the application layer — the transport assigns no meaning to any of them
// (Seq is typically an acknowledgment token: the session layer above
// assigns it and the client echoes it back on its ack call).
type Event struct {
	Seq     uint64
	Kind    uint64
	Topic   string
	Payload []byte
}

// Retain detaches the request's payload from the transport's arena
// recycling: the slab is left to the garbage collector instead of being
// reused after the response is written. Handlers (or the decode layer
// above them) call it when the payload — or a zero-copy view into it, such
// as a []byte field decoded by a generated codec — outlives the request.
func (r *Request) Retain() {
	r.retained = true
	r.frame = nil
}

// releaseFrame drops the request's reference on its frame slab (a no-op
// after Retain). Called by the server once the response is written — or,
// for one-way work, once the handler returns.
func (r *Request) releaseFrame() {
	if f := r.frame; f != nil {
		r.frame = nil
		f.release()
	}
}

// recycle releases the frame reference and returns the Request to the pool
// for the next parse. A retained Request stays out of the pool: the decoded
// views aliasing its slab keep both alive until the application drops them.
func (r *Request) recycle() {
	r.releaseFrame()
	if !r.retained {
		r.fb.buf = nil
		reqPool.Put(r)
	}
}

// Response answers a Request with the same Seq. It is the logical shape of a
// response frame (see doc.go); the hot path serializes the fields directly
// without materializing this struct.
type Response struct {
	Seq     uint64
	Status  respStatus // statusOK, or an admission-control refusal
	Payload []byte
	Err     string       // non-empty => RemoteError
	Route   *route.Table // piggybacked route update (nil = none)
}

// Handler processes one request and returns the response payload. Returning
// an error surfaces as a RemoteError at the caller.
type Handler func(req *Request) ([]byte, error)

// Marshaler is the encode half of a generated payload codec (ermi-gen's
// `//ermi:codec` output): SizeERMI returns the exact encoded size and
// MarshalERMI appends the encoding to b. Encode dispatches to it instead of
// gob, marshalling straight into an exactly-sized arena slab.
type Marshaler interface {
	SizeERMI() int
	MarshalERMI(b []byte) []byte
}

// Unmarshaler is the decode half of a generated payload codec. Decode
// dispatches to it instead of gob. Implementations must be total on
// arbitrary input (returning an error, never panicking) and may alias b in
// []byte fields (zero-copy views) — such types also implement the
// ERMIViews marker so the transport's decode paths know the buffer
// escapes.
type Unmarshaler interface {
	UnmarshalERMI(b []byte) error
}

// viewer is the marker interface generated codecs implement when the
// decoded value may hold zero-copy views into the payload buffer.
type viewer interface{ ERMIViews() }

// holdsViews reports whether v's decoded form may alias the payload buffer
// it was decoded from (so the buffer must not be released after decode).
func holdsViews(v interface{}) bool {
	_, ok := v.(viewer)
	return ok
}

// encBufPool recycles gob encode buffers (the codec fallback path of
// Encode).
var encBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// maxPooledEncBuf caps the capacity an encode buffer may carry back into
// encBufPool. Without the cap one large encode poisons the pool: a buffer
// grown to 256 KB is retained forever and handed to every later 100-byte
// encode, so steady-state memory tracks the largest payload ever seen
// rather than the working set. Oversized buffers go to the GC instead.
const maxPooledEncBuf = 64 << 10

func putEncBuf(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledEncBuf {
		return
	}
	encBufPool.Put(buf)
}

// marshalerByValue caches, per concrete type, whether the *addressable*
// form of the type implements Marshaler even though the value passed to
// Encode does not (codec methods have pointer receivers; a caller passing
// the struct by value would otherwise silently fall back to gob while the
// receiving side decodes with the codec — asymmetric corruption). The
// cached value is true when Encode must promote the value to a pointer.
var marshalerByValue sync.Map // reflect.Type → bool

var marshalerType = reflect.TypeOf((*Marshaler)(nil)).Elem()

// promoteMarshaler returns v's Marshaler when the pointer form of v's type
// implements it (via an addressable copy), or nil.
func promoteMarshaler(v interface{}) Marshaler {
	t := reflect.TypeOf(v)
	if t == nil {
		return nil
	}
	cached, ok := marshalerByValue.Load(t)
	if !ok {
		cached = t.Kind() != reflect.Pointer && reflect.PointerTo(t).Implements(marshalerType)
		marshalerByValue.Store(t, cached)
	}
	if !cached.(bool) {
		return nil
	}
	p := reflect.New(t)
	p.Elem().Set(reflect.ValueOf(v))
	return p.Interface().(Marshaler)
}

// Encode serializes v into a payload buffer drawn from the transport's
// arena. Values whose type carries a generated codec (Marshaler) are
// marshalled directly into an exactly-sized slab; everything else falls
// back to gob. The buffer may be handed back with ReleasePayload after its
// last use (transport call paths that own the buffer do so themselves).
func Encode(v interface{}) ([]byte, error) {
	m, ok := v.(Marshaler)
	if !ok {
		m = promoteMarshaler(v)
	}
	if m != nil {
		buf := arenaGet(m.SizeERMI())
		out := m.MarshalERMI(buf[:0])
		return out, nil
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		putEncBuf(buf)
		return nil, fmt.Errorf("encode payload: %w", err)
	}
	out := arenaGet(buf.Len())
	copy(out, buf.Bytes())
	putEncBuf(buf)
	return out, nil
}

// Decode deserializes a payload produced by Encode into v. Values whose
// type carries a generated codec (Unmarshaler) decode through it;
// everything else falls back to gob. Codec types with []byte fields alias
// data (zero-copy views) — see ReleasePayload for the lifetime rules.
func Decode(data []byte, v interface{}) error {
	if u, ok := v.(Unmarshaler); ok {
		if err := u.UnmarshalERMI(data); err != nil {
			return fmt.Errorf("decode payload: %w", err)
		}
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("decode payload: %w", err)
	}
	return nil
}

// MustEncode is Encode for values known to be encodable (internal message
// structs); it panics only on programmer error.
func MustEncode(v interface{}) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}
