// Package transport implements the wire protocol used by all ElasticRMI
// components: stubs and skeletons, the key-value store, the cluster manager
// tooling and the group layer all exchange messages through it. It plays the
// role that JRMP (the Java RMI wire protocol) plays in the paper. A single
// client connection multiplexes concurrent calls; responses are matched to
// requests by sequence number.
//
// # Wire format (version 3)
//
// Framing is a hand-rolled binary codec: no reflection runs on the hot path.
// Only application payloads — the opaque []byte a Request or Response
// carries — use gob, via Encode and Decode, so type descriptors are never
// re-transmitted per frame.
//
// A connection starts with a 5-byte preamble sent by the dialing side:
//
//	+-----+-----+-----+-----+---------+
//	| 'e' | 'R' | 'M' | 'I' | version |
//	+-----+-----+-----+-----+---------+
//
// The current protocol version is 3 (version 1 lacked the request epoch and
// piggybacked route updates and carried a redirect list on responses;
// version 2 lacked the request budget and the response status). A server
// that reads a bad magic or an unknown version closes the connection before
// parsing any frame; mismatched peers fail fast at connection start rather
// than mid-stream. The preamble is buffered with the first request frame,
// costing no extra syscall.
//
// After the preamble the stream is a sequence of frames:
//
//	+----------------+------+------------------+
//	| length (u32 BE)| kind | body (length-1 B)|
//	+----------------+------+------------------+
//
// length counts the kind byte plus the body and must not exceed MaxFrame
// (64 MiB); oversized frames are rejected by the reader (killing the
// connection) and refused by the writer before any byte is written (failing
// only that call). kind is 1 for a request, 2 for a response, 3 for a
// one-way request, 4 for a batch of requests. All integers inside a body
// are unsigned varints (encoding/binary uvarint); strings and byte slices
// are length-prefixed with a uvarint.
//
// Request body (kind 1):
//
//	seq      uvarint   // caller-chosen, echoed by the response
//	epoch    uvarint   // caller's routing epoch (0 = none); see below
//	budget   uvarint   // remaining deadline budget in µs (0 = none)
//	service  uvarint n, then n bytes
//	method   uvarint n, then n bytes
//	payload  uvarint n, then n bytes
//
// budget is the caller's remaining deadline when the request was written —
// for a stub, what is left of the single per-invocation budget shared
// across failover attempts. The server anchors it at arrival time and
// charges queue wait against it: a request whose budget expires before a
// worker dequeues it is dropped without ever invoking the handler and
// answered with status 2 (expired). Handlers see the anchored deadline on
// Request.Deadline.
//
// Response body (kind 2):
//
//	seq      uvarint   // matches the request
//	status   uvarint   // 0 = ok; 1 = overload; 2 = expired (see below)
//	errmsg   uvarint n, then n bytes   // n>0 => RemoteError at the caller
//	route    route update (see below); first uvarint 0 = absent
//	payload  uvarint n, then n bytes
//
// status 0 carries the handler's result (or its application error in
// errmsg). status 1 (overload) means the server's admission controller shed
// the request unexecuted — gate and wait queue both full; the caller maps
// it to ErrOverloaded and should treat the member as loaded, not dead.
// status 2 (expired) means the request's budget ran out in the queue; the
// caller maps it to ErrExpired. Both refusal statuses carry neither payload
// nor errmsg, and both guarantee the handler never ran, so retrying
// elsewhere can never double-execute. Values above 2 are a protocol
// violation, reserving them for future use.
//
// Route update: the epoch-versioned membership view of the elastic pool
// (internal/route.Table), piggybacked by a server whose table is newer than
// the request's epoch — the in-band view dissemination that replaced the
// version-1 redirect protocol:
//
//	epoch    uvarint   // table epoch, >= 1 (0 means "no update follows")
//	count    uvarint   // 1..4096 members
//	members  count times:
//	  addr     uvarint n, then n bytes
//	  uid      uvarint
//	  weight   uvarint  // 0..100 relative share of steered invocations
//	  load     uvarint  // pending invocations at publication
//	  flags    1 byte   // bit 0: draining (serves, but take no new work)
//
// A stale client is thereby corrected on its very next reply round-trip:
// the client hands the table to its routing state (DialOptions.
// OnRouteUpdate), which installs it if the epoch is newer. Servers attach
// the update to every response status — success, error and refusal alike —
// so even a shed call re-synchronizes its caller. Requests carrying a
// current epoch cost one byte (the absent marker) on the response.
//
// One-way body (kind 3): identical to a request body. The server executes
// the invocation and sends no response frame of any kind; handler results
// and errors are dropped, and there is no reply to piggyback corrections
// on. The seq is carried for symmetry and debugging but is never echoed.
// One-way work passes through the same admission gate as requests; when the
// gate and queue are full it is dropped silently (the client awaits no
// reply), never parked on an unbounded goroutine.
//
// Batch body (kind 4): several coalesced requests in one frame, written by
// the client-side adaptive batcher (see BatchOptions):
//
//	count    uvarint   // 1..1024
//	entries  count times:
//	  flags    1 byte  // bit 0: one-way (no response for this entry)
//	  seq      uvarint
//	  epoch    uvarint
//	  budget   uvarint // remaining deadline budget in µs (0 = none)
//	  service  uvarint n, then n bytes
//	  method   uvarint n, then n bytes
//	  payload  uvarint n, then n bytes
//
// The server passes batch entries through admission exactly as if each had
// arrived in its own frame; responses for the two-way entries travel as
// ordinary response frames (kind 2), in completion order, coalesced by the
// writer's flush elision. There is no batch-response frame kind.
//
// A frame whose body is shorter or longer than its declared fields is a
// protocol violation and closes the connection. Unknown flag bits in a
// batch entry or route-update member are a protocol violation, reserving
// them for future use; so are route updates with epoch 0 in disguise
// (member counts above 4096), out-of-range weights or loads, and response
// statuses above 2.
//
// # Admission control
//
// The server executes requests behind a bounded admission controller
// (ServerOptions): a concurrency gate of MaxConcurrent execution slots —
// an elastic worker pool, not a goroutine per request — fronted by a
// bounded wait queue of MaxQueue entries. Work beyond both bounds is shed
// immediately: two-way requests with a status-1 response, one-way requests
// silently. Queued work is re-checked at dequeue: an expired budget means
// the handler never runs (status 2). Server.Stats exposes the cumulative
// shed/expired counters; the elasticity layer feeds them into PoolMetrics,
// where they act as the scale-out signal that fires before utilization
// averages cross their thresholds.
//
// # Graceful shutdown
//
// Server.Quiesce prepares a member for removal: newly arriving requests are
// dropped without executing (their callers retry on a live member once the
// connection closes — the method provably never ran), and Quiesce blocks
// until every accepted request has been answered and flushed. Closing
// without quiescing can cut an acknowledged-but-unflushed response, which a
// retrying caller would turn into a duplicate execution.
//
// # Performance notes
//
// Both directions of a connection are buffered. Writers coalesce: a frame
// written while other writers are queued on the same connection skips the
// flush, so N concurrent calls can reach the kernel in one syscall. Framing
// allocates nothing on the write path; the read path allocates one buffer
// per frame (the payload handed to the handler or caller aliases it). Client
// call state (completion channels, timers) is pooled, and sequence numbers
// come from an atomic counter, so a steady-state Call is allocation-light.
//
// Asynchronous invocation pipelines through the same machinery: Client.Go
// returns a pooled future immediately, so one caller can keep many requests
// in flight on one connection; Client.OneWay skips response state entirely.
// With batching enabled, concurrent Go/OneWay invocations destined for the
// same server coalesce into batch frames under an adaptive, latency-bounded
// flusher.
package transport
