// Package transport implements the wire protocol used by all ElasticRMI
// components: stubs and skeletons, the key-value store, the cluster manager
// tooling and the group layer all exchange messages through it. It plays the
// role that JRMP (the Java RMI wire protocol) plays in the paper. A single
// client connection multiplexes concurrent calls; responses are matched to
// requests by sequence number.
//
// # Wire format (version 5)
//
// Framing is a hand-rolled binary codec: no reflection runs on the hot path.
// Application payloads — the opaque []byte a Request or Response carries —
// are produced by Encode and consumed by Decode, which dispatch to generated
// per-type binary codecs where available and fall back to gob otherwise (see
// "Payload encoding" below).
//
// A connection starts with a 5-byte preamble sent by the dialing side:
//
//	+-----+-----+-----+-----+---------+
//	| 'e' | 'R' | 'M' | 'I' | version |
//	+-----+-----+-----+-----+---------+
//
// The current protocol version is 5 (version 1 lacked the request epoch and
// piggybacked route updates and carried a redirect list on responses;
// version 2 lacked the request budget and the response status; version 3
// carried the payload inline in the body rather than in a separately-sized
// section; version 4 lacked the event frame). A server that reads a bad
// magic or an unknown version closes the
// connection before parsing any frame; mismatched peers fail fast at
// connection start rather than mid-stream. The preamble is buffered with the
// first request frame, costing no extra syscall.
//
// After the preamble the stream is a sequence of frames:
//
//	+----------------+------+-------------+------+---------+
//	| length (u32 BE)| kind | plen (u32 BE)| meta | payload |
//	+----------------+------+-------------+------+---------+
//
// length counts everything after itself (kind, plen, meta and payload) and
// must not exceed MaxFrame (64 MiB); oversized frames are rejected by the
// reader (killing the connection) and refused by the writer before any byte
// is written (failing only that call). kind is 1 for a request, 2 for a
// response, 3 for a one-way request, 4 for a batch of requests, 5 for a
// server-pushed event. plen is the
// size of the trailing payload section; the metadata section (the body
// fields below, minus the payload) fills the bytes in between. Carrying
// plen in the fixed header lets the reader land the payload directly in an
// exactly-sized arena slab and lets the writer emit large payloads by
// scatter-gather, without either side copying them through the connection
// buffer. All integers inside the metadata are unsigned varints
// (encoding/binary uvarint); strings and byte slices are length-prefixed
// with a uvarint. Batch frames are the exception: their entries' payloads
// travel inline in the metadata section (plen = 0) and share the frame's
// buffer by refcount.
//
// Request metadata (kind 1; the application payload is the frame's payload
// section):
//
//	seq      uvarint   // caller-chosen, echoed by the response
//	epoch    uvarint   // caller's routing epoch (0 = none); see below
//	budget   uvarint   // remaining deadline budget in µs (0 = none)
//	service  uvarint n, then n bytes
//	method   uvarint n, then n bytes
//
// budget is the caller's remaining deadline when the request was written —
// for a stub, what is left of the single per-invocation budget shared
// across failover attempts. The server anchors it at arrival time and
// charges queue wait against it: a request whose budget expires before a
// worker dequeues it is dropped without ever invoking the handler and
// answered with status 2 (expired). Handlers see the anchored deadline on
// Request.Deadline.
//
// Response metadata (kind 2; the result payload is the frame's payload
// section):
//
//	seq      uvarint   // matches the request
//	status   uvarint   // 0 = ok; 1 = overload; 2 = expired (see below)
//	errmsg   uvarint n, then n bytes   // n>0 => RemoteError at the caller
//	route    route update (see below); first uvarint 0 = absent
//
// status 0 carries the handler's result (or its application error in
// errmsg). status 1 (overload) means the server's admission controller shed
// the request unexecuted — gate and wait queue both full; the caller maps
// it to ErrOverloaded and should treat the member as loaded, not dead.
// status 2 (expired) means the request's budget ran out in the queue; the
// caller maps it to ErrExpired. Both refusal statuses carry neither payload
// nor errmsg, and both guarantee the handler never ran, so retrying
// elsewhere can never double-execute. Values above 2 are a protocol
// violation, reserving them for future use.
//
// # Wire enums
//
// The frame-kind byte (frameKind) and the response status (respStatus) are
// the protocol's two closed enums, and both carry the //ermi:exhaustive
// marker: ermi-vet (make lint) flags any switch over them that neither
// names every member nor declares an explicit default. readFrame bounds the
// kind byte to the declared range before dispatch, so together the bound
// and the marker guarantee that adding a sixth frame kind or a third
// refusal status is a compile-red event at every reader — each dispatch
// site must decide the new member's fate explicitly rather than dropping
// it in a silent default arm.
//
// Route update: the epoch-versioned membership view of the elastic pool
// (internal/route.Table), piggybacked by a server whose table is newer than
// the request's epoch — the in-band view dissemination that replaced the
// version-1 redirect protocol:
//
//	epoch    uvarint   // table epoch, >= 1 (0 means "no update follows")
//	count    uvarint   // 1..4096 members
//	members  count times:
//	  addr     uvarint n, then n bytes
//	  uid      uvarint
//	  weight   uvarint  // 0..100 relative share of steered invocations
//	  load     uvarint  // pending invocations at publication
//	  flags    1 byte   // bit 0: draining (serves, but take no new work)
//
// A stale client is thereby corrected on its very next reply round-trip:
// the client hands the table to its routing state (DialOptions.
// OnRouteUpdate), which installs it if the epoch is newer. Servers attach
// the update to every response status — success, error and refusal alike —
// so even a shed call re-synchronizes its caller. Requests carrying a
// current epoch cost one byte (the absent marker) on the response.
//
// One-way frames (kind 3) are identical in shape to a request. The server executes
// the invocation and sends no response frame of any kind; handler results
// and errors are dropped, and there is no reply to piggyback corrections
// on. The seq is carried for symmetry and debugging but is never echoed.
// One-way work passes through the same admission gate as requests; when the
// gate and queue are full it is dropped silently (the client awaits no
// reply), never parked on an unbounded goroutine.
//
// Batch metadata (kind 4): several coalesced requests in one frame, written
// by the client-side adaptive batcher (see BatchOptions). Entry payloads
// travel inline here — a batch frame's payload section is empty (plen = 0):
//
//	count    uvarint   // 1..1024
//	entries  count times:
//	  flags    1 byte  // bit 0: one-way (no response for this entry)
//	  seq      uvarint
//	  epoch    uvarint
//	  budget   uvarint // remaining deadline budget in µs (0 = none)
//	  service  uvarint n, then n bytes
//	  method   uvarint n, then n bytes
//	  payload  uvarint n, then n bytes
//
// The server passes batch entries through admission exactly as if each had
// arrived in its own frame; responses for the two-way entries travel as
// ordinary response frames (kind 2), in completion order, coalesced by the
// writer's flush elision. There is no batch-response frame kind.
//
// Event metadata (kind 5; the event payload is the frame's payload
// section): a server-initiated message on an established connection — the
// push half of a lease/invalidation protocol layered above the transport
// (e.g. the kvstore session layer's cache invalidations and watch
// notifications). Events flow server→client only; a client-sent event frame
// is a protocol violation that closes the connection. The server obtains a
// push handle from any request on the connection (Request.Pusher) and may
// hold it for the connection's lifetime:
//
//	seq      uvarint   // application-assigned token (e.g. echoed on an ack call)
//	kind     uvarint   // application-defined event discriminator
//	topic    uvarint n, then n bytes   // n <= 4096; e.g. the key being invalidated
//
// The transport assigns no meaning to any event field and promises only
// what TCP does: events written on one connection arrive in write order,
// but concurrent Pusher.Sends may interleave arbitrarily, so cross-event
// ordering is the application's problem (the session layer makes it a
// non-problem by allowing at most one outstanding invalidation per key per
// session). Events bypass admission control — they are server output, not
// inbound work — and the client dispatches them on its read loop to the
// DialOptions.OnEvent callback, which therefore must not block.
//
// A frame whose body is shorter or longer than its declared fields is a
// protocol violation and closes the connection. Unknown flag bits in a
// batch entry or route-update member are a protocol violation, reserving
// them for future use; so are route updates with epoch 0 in disguise
// (member counts above 4096), out-of-range weights or loads, and response
// statuses above 2.
//
// # Admission control
//
// The server executes requests behind a bounded admission controller
// (ServerOptions): a concurrency gate of MaxConcurrent execution slots —
// an elastic worker pool, not a goroutine per request — fronted by a
// bounded wait queue of MaxQueue entries. Work beyond both bounds is shed
// immediately: two-way requests with a status-1 response, one-way requests
// silently. Queued work is re-checked at dequeue: an expired budget means
// the handler never runs (status 2). Server.Stats exposes the cumulative
// shed/expired counters; the elasticity layer feeds them into PoolMetrics,
// where they act as the scale-out signal that fires before utilization
// averages cross their thresholds.
//
// Methods matched by ServerOptions.Express bypass the admission controller
// entirely and run on their own goroutines — never queued, never shed, not
// counted against MaxConcurrent. The lane exists for cheap control-plane
// calls whose completion is what lets pool workers finish: the kvstore
// session layer routes its keepalives and invalidation acks here, since a
// write handler occupying a worker slot blocks exactly until the ack it is
// waiting for gets through. Express handlers must therefore be fast and
// non-blocking; routing a slow method here trades a bounded queue for
// unbounded goroutines.
//
// # Graceful shutdown
//
// Server.Quiesce prepares a member for removal: newly arriving requests are
// dropped without executing (their callers retry on a live member once the
// connection closes — the method provably never ran), and Quiesce blocks
// until every accepted request has been answered and flushed. Closing
// without quiescing can cut an acknowledged-but-unflushed response, which a
// retrying caller would turn into a duplicate execution.
//
// # Payload encoding
//
// Encode and Decode turn application argument/reply values into the opaque
// payload section and back. Types annotated //ermi:codec in their source
// carry generated binary codecs (the ermi-gen preprocessor emits SizeERMI /
// MarshalERMI / UnmarshalERMI — the Marshaler and Unmarshaler interfaces
// here): Encode sizes the value exactly, draws a slab of that size from the
// payload arena and marshals straight into it, with no reflection and no
// intermediate buffer. Unannotated types fall back to gob through a pooled
// encode buffer (buffers grown past 64 KiB are not pooled again, so one
// large payload cannot inflate the steady state).
//
// Payload memory is recycled through a size-classed arena (arena.go):
// fixed classes from 512 B to 8 MiB backed by bounded freelists, shared by
// both directions — the reader lands each frame's payload section in an
// exactly-sized slab, Encode draws response and argument buffers from the
// same classes, and ReleasePayload returns a slab once its last use has
// passed. The transport's own call paths (CallDecode, the generated stubs
// above them, the server's response writer via Request.ReleaseReply) release
// what they own; a payload that escapes — a decoded []byte view held beyond
// the call — is retained instead (Request.Retain on the server; on the
// client, reply types whose codecs mark them as view-holding, via the
// ERMIViews marker, skip the release and leave the slab to the GC).
//
// These ownership rules are checked mechanically: the ermi-vet suite
// (internal/lint, run by make lint) flags payload views escaping a handler
// without Retain, Encode output returned without ReleaseReply, and decoded
// views stored into long-lived memory without copying.
//
// Decoding through a generated codec is zero-copy for []byte fields: the
// field aliases the payload slab rather than copying out of it. Strings are
// copied (they routinely outlive the frame); integers travel as varints;
// the codec rejects malformed input rather than panicking, and trailing
// bytes after a valid value are an error.
//
// # Performance notes
//
// Both directions of a connection are buffered. Writers coalesce: a frame
// written while other writers are queued on the same connection skips the
// flush, so N concurrent calls can reach the kernel in one syscall; payload
// sections of 16 KiB and above bypass the connection buffer entirely and go
// to the kernel as one vectored write (net.Buffers → writev) together with
// the header and metadata. Framing allocates nothing on the write path; the
// read path parses the fixed header in place (Peek/Discard on the buffered
// reader) and lands the payload in a recycled arena slab. Server Request
// objects and their frame refcounts are pooled, a resident worker absorbs
// light load without goroutine spawns, client call state (completion
// channels, timers) is pooled, and sequence numbers come from an atomic
// counter: a steady-state 64-byte echo round-trip costs 2 allocations.
//
// Asynchronous invocation pipelines through the same machinery: Client.Go
// returns a pooled future immediately, so one caller can keep many requests
// in flight on one connection; Client.OneWay skips response state entirely.
// With batching enabled, concurrent Go/OneWay invocations destined for the
// same server coalesce into batch frames under an adaptive, latency-bounded
// flusher.
package transport
