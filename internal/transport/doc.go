// Package transport implements the wire protocol used by all ElasticRMI
// components: stubs and skeletons, the key-value store, the cluster manager
// tooling and the group layer all exchange messages through it. It plays the
// role that JRMP (the Java RMI wire protocol) plays in the paper. A single
// client connection multiplexes concurrent calls; responses are matched to
// requests by sequence number.
//
// # Wire format (version 2)
//
// Framing is a hand-rolled binary codec: no reflection runs on the hot path.
// Only application payloads — the opaque []byte a Request or Response
// carries — use gob, via Encode and Decode, so type descriptors are never
// re-transmitted per frame.
//
// A connection starts with a 5-byte preamble sent by the dialing side:
//
//	+-----+-----+-----+-----+---------+
//	| 'e' | 'R' | 'M' | 'I' | version |
//	+-----+-----+-----+-----+---------+
//
// The current protocol version is 2 (version 1 lacked the request epoch and
// piggybacked route updates, and carried a redirect list on responses
// instead). A server that reads a bad magic or an unknown version closes
// the connection before parsing any frame; mismatched peers fail fast at
// connection start rather than mid-stream. The preamble is buffered with the
// first request frame, costing no extra syscall.
//
// After the preamble the stream is a sequence of frames:
//
//	+----------------+------+------------------+
//	| length (u32 BE)| kind | body (length-1 B)|
//	+----------------+------+------------------+
//
// length counts the kind byte plus the body and must not exceed MaxFrame
// (64 MiB); oversized frames are rejected by the reader (killing the
// connection) and refused by the writer before any byte is written (failing
// only that call). kind is 1 for a request, 2 for a response, 3 for a
// one-way request, 4 for a batch of requests. All integers inside a body
// are unsigned varints (encoding/binary uvarint); strings and byte slices
// are length-prefixed with a uvarint.
//
// Request body (kind 1):
//
//	seq      uvarint   // caller-chosen, echoed by the response
//	epoch    uvarint   // caller's routing epoch (0 = none); see below
//	service  uvarint n, then n bytes
//	method   uvarint n, then n bytes
//	payload  uvarint n, then n bytes
//
// Response body (kind 2):
//
//	seq      uvarint   // matches the request
//	errmsg   uvarint n, then n bytes   // n>0 => RemoteError at the caller
//	route    route update (see below); first uvarint 0 = absent
//	payload  uvarint n, then n bytes
//
// Route update: the epoch-versioned membership view of the elastic pool
// (internal/route.Table), piggybacked by a server whose table is newer than
// the request's epoch — the in-band view dissemination that replaced the
// version-1 redirect protocol:
//
//	epoch    uvarint   // table epoch, >= 1 (0 means "no update follows")
//	count    uvarint   // 1..4096 members
//	members  count times:
//	  addr     uvarint n, then n bytes
//	  uid      uvarint
//	  weight   uvarint  // 0..100 relative share of steered invocations
//	  load     uvarint  // pending invocations at publication
//	  flags    1 byte   // bit 0: draining (serves, but take no new work)
//
// A stale client is thereby corrected on its very next reply round-trip:
// the client hands the table to its routing state (DialOptions.
// OnRouteUpdate), which installs it if the epoch is newer. Servers attach
// the update to every response kind — success and error alike — so even a
// failing call re-synchronizes its caller. Requests carrying a current
// epoch cost one byte (the absent marker) on the response.
//
// One-way body (kind 3): identical to a request body. The server executes
// the invocation and sends no response frame of any kind; handler results
// and errors are dropped, and there is no reply to piggyback corrections
// on. The seq is carried for symmetry and debugging but is never echoed.
//
// Batch body (kind 4): several coalesced requests in one frame, written by
// the client-side adaptive batcher (see BatchOptions):
//
//	count    uvarint   // 1..1024
//	entries  count times:
//	  flags    1 byte  // bit 0: one-way (no response for this entry)
//	  seq      uvarint
//	  epoch    uvarint
//	  service  uvarint n, then n bytes
//	  method   uvarint n, then n bytes
//	  payload  uvarint n, then n bytes
//
// The server fans batch entries out to the handler exactly as if each had
// arrived in its own frame; responses for the two-way entries travel as
// ordinary response frames (kind 2), in completion order, coalesced by the
// writer's flush elision. There is no batch-response frame kind.
//
// A frame whose body is shorter or longer than its declared fields is a
// protocol violation and closes the connection. Unknown flag bits in a
// batch entry or route-update member are a protocol violation, reserving
// them for future use; so are route updates with epoch 0 in disguise
// (member counts above 4096) and out-of-range weights or loads.
//
// # Graceful shutdown
//
// Server.Quiesce prepares a member for removal: newly arriving requests are
// dropped without executing (their callers retry on a live member once the
// connection closes — the method provably never ran), and Quiesce blocks
// until every accepted request has been answered and flushed. Closing
// without quiescing can cut an acknowledged-but-unflushed response, which a
// retrying caller would turn into a duplicate execution.
//
// # Performance notes
//
// Both directions of a connection are buffered. Writers coalesce: a frame
// written while other writers are queued on the same connection skips the
// flush, so N concurrent calls can reach the kernel in one syscall. Framing
// allocates nothing on the write path; the read path allocates one buffer
// per frame (the payload handed to the handler or caller aliases it). Client
// call state (completion channels, timers) is pooled, and sequence numbers
// come from an atomic counter, so a steady-state Call is allocation-light.
//
// Asynchronous invocation pipelines through the same machinery: Client.Go
// returns a pooled future immediately, so one caller can keep many requests
// in flight on one connection; Client.OneWay skips response state entirely.
// With batching enabled, concurrent Go/OneWay invocations destined for the
// same server coalesce into batch frames under an adaptive, latency-bounded
// flusher.
package transport
