// Package transport implements the wire protocol used by all ElasticRMI
// components: stubs and skeletons, the key-value store, the cluster manager
// tooling and the group layer all exchange messages through it. It plays the
// role that JRMP (the Java RMI wire protocol) plays in the paper. A single
// client connection multiplexes concurrent calls; responses are matched to
// requests by sequence number.
//
// # Wire format (version 1)
//
// Framing is a hand-rolled binary codec: no reflection runs on the hot path.
// Only application payloads — the opaque []byte a Request or Response
// carries — use gob, via Encode and Decode, so type descriptors are never
// re-transmitted per frame.
//
// A connection starts with a 5-byte preamble sent by the dialing side:
//
//	+-----+-----+-----+-----+---------+
//	| 'e' | 'R' | 'M' | 'I' | version |
//	+-----+-----+-----+-----+---------+
//
// The current protocol version is 1. A server that reads a bad magic or an
// unknown version closes the connection before parsing any frame; a future
// version bump changes only the fifth byte, so mismatched peers fail fast at
// connection start rather than mid-stream. The preamble is buffered with the
// first request frame, costing no extra syscall.
//
// After the preamble the stream is a sequence of frames:
//
//	+----------------+------+------------------+
//	| length (u32 BE)| kind | body (length-1 B)|
//	+----------------+------+------------------+
//
// length counts the kind byte plus the body and must not exceed MaxFrame
// (64 MiB); oversized frames are rejected by the reader (killing the
// connection) and refused by the writer before any byte is written (failing
// only that call). kind is 1 for a request, 2 for a response, 3 for a
// one-way request, 4 for a batch of requests. All integers inside a body
// are unsigned varints (encoding/binary uvarint); strings and byte slices
// are length-prefixed with a uvarint.
//
// Request body (kind 1):
//
//	seq      uvarint   // caller-chosen, echoed by the response
//	service  uvarint n, then n bytes
//	method   uvarint n, then n bytes
//	payload  uvarint n, then n bytes
//
// Response body (kind 2):
//
//	seq      uvarint   // matches the request
//	errmsg   uvarint n, then n bytes   // n>0 => RemoteError at the caller
//	redirect uvarint count, then count strings (uvarint n + n bytes each)
//	                                   // count>0 => RedirectError (draining)
//	payload  uvarint n, then n bytes
//
// One-way body (kind 3): identical to a request body. The server executes
// the invocation and sends no response frame of any kind; handler results
// and errors are dropped. The seq is carried for symmetry and debugging but
// is never echoed.
//
// Batch body (kind 4): several coalesced requests in one frame, written by
// the client-side adaptive batcher (see BatchOptions):
//
//	count    uvarint   // 1..1024
//	entries  count times:
//	  flags    1 byte  // bit 0: one-way (no response for this entry)
//	  seq      uvarint
//	  service  uvarint n, then n bytes
//	  method   uvarint n, then n bytes
//	  payload  uvarint n, then n bytes
//
// The server fans batch entries out to the handler exactly as if each had
// arrived in its own frame; responses for the two-way entries travel as
// ordinary response frames (kind 2), in completion order, coalesced by the
// writer's flush elision. There is no batch-response frame kind.
//
// A frame whose body is shorter or longer than its declared fields is a
// protocol violation and closes the connection. Unknown flag bits in a
// batch entry are a protocol violation, reserving them for future use.
//
// # Performance notes
//
// Both directions of a connection are buffered. Writers coalesce: a frame
// written while other writers are queued on the same connection skips the
// flush, so N concurrent calls can reach the kernel in one syscall. Framing
// allocates nothing on the write path; the read path allocates one buffer
// per frame (the payload handed to the handler or caller aliases it). Client
// call state (completion channels, timers) is pooled, and sequence numbers
// come from an atomic counter, so a steady-state Call is allocation-light.
//
// Asynchronous invocation pipelines through the same machinery: Client.Go
// returns a pooled future immediately, so one caller can keep many requests
// in flight on one connection; Client.OneWay skips response state entirely.
// With batching enabled, concurrent Go/OneWay invocations destined for the
// same server coalesce into batch frames under an adaptive, latency-bounded
// flusher.
package transport
