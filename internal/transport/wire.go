package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
)

// MaxFrame bounds a single message (kind byte + body) to protect against
// corrupt frames and unbounded buffering. Writers refuse larger frames
// before emitting any byte; readers treat them as a protocol violation.
const MaxFrame = 64 << 20

// Protocol preamble: magic "eRMI" plus a version byte, sent by the dialing
// side before its first frame (see doc.go). Version 2 added the epoch field
// on requests and the piggybacked route update on responses (replacing the
// redirect list of version 1). Version 3 added the remaining-budget field on
// requests, one-way frames and batch entries, and the status field on
// responses (statusOverload / statusExpired for admission-control refusals).
const protoVersion = 3

var preamble = [5]byte{'e', 'R', 'M', 'I', protoVersion}

type frameKind byte

const (
	frameRequest  frameKind = 1
	frameResponse frameKind = 2
	// frameOneWay is a request the server executes without sending any
	// response frame (fire-and-forget). Body shape is identical to a
	// request; the seq is carried for debugging but never answered.
	frameOneWay frameKind = 3
	// frameBatch carries several coalesced requests in one frame. The
	// server fans the entries out to the handler; responses (for the
	// entries that want one) travel as ordinary response frames.
	frameBatch frameKind = 4
)

// oneWayFlag marks a batch entry whose response the client does not want.
const oneWayFlag = 0x1

// Response status codes (the status field of a response body). statusOK
// responses carry the handler's result (or its application error in errmsg);
// the other statuses are emitted by the server's admission controller and
// carry neither payload nor errmsg — the request's handler never ran.
const (
	statusOK byte = 0
	// statusOverload: the admission queue was full when the request arrived;
	// the server shed it unexecuted. The member is alive but saturated —
	// callers should back off or prefer a less-loaded member, not declare
	// the member dead.
	statusOverload byte = 1
	// statusExpired: the request's remaining budget ran out while it waited
	// in the admission queue; the server dropped it without invoking the
	// handler (the caller's own deadline has passed, so the work is waste).
	statusExpired byte = 2

	statusMax = statusExpired // parser bound; larger values are malformed
)

// maxBatchEntries bounds the entries one batch frame may carry; writers
// split above it and readers treat larger counts as malformed.
const maxBatchEntries = 1024

// errMalformed kills a connection whose peer sent an unparseable frame.
var errMalformed = errors.New("transport: malformed frame")

// I/O buffer size per connection direction. Large enough to coalesce many
// small frames, small enough to be cheap per connection.
const connBufSize = 32 << 10

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// connWriter serializes frame writes onto one connection through a buffered
// writer with flush coalescing: a writer that observes other writers queued
// behind it leaves flushing to the last of them, so a burst of concurrent
// frames reaches the kernel in a single syscall. Write errors are sticky —
// once a frame fails the connection is dead and every later write fails.
type connWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	waiters atomic.Int32
	err     error
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{bw: bufio.NewWriterSize(w, connBufSize)}
}

// lock enters the writer's critical section, tracking this writer in the
// waiter count so the holder can skip its flush. Returns the sticky error.
func (w *connWriter) lock() error {
	w.waiters.Add(1)
	w.mu.Lock()
	w.waiters.Add(-1)
	return w.err
}

// finish flushes unless another writer is queued, records any sticky error
// and leaves the critical section.
func (w *connWriter) finish(err error) error {
	if err == nil && w.waiters.Load() == 0 {
		err = w.bw.Flush()
	}
	if err != nil && w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	return err
}

func putUvarint(bw *bufio.Writer, x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	bw.Write(tmp[:n])
}

func putFrameHeader(bw *bufio.Writer, size int, kind frameKind) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(size))
	hdr[4] = byte(kind)
	bw.Write(hdr[:])
}

// budgetMicros converts a caller deadline budget to the wire's µs field,
// clamping negatives to zero (0 = no deadline).
func budgetMicros(budget time.Duration) uint64 {
	if budget <= 0 {
		return 0
	}
	return uint64(budget / time.Microsecond)
}

// requestFrameSize returns the frame size (kind byte + body) of a request.
func requestFrameSize(seq, epoch, budget uint64, service, method string, payload []byte) int {
	return 1 + uvarintLen(seq) + uvarintLen(epoch) + uvarintLen(budget) +
		uvarintLen(uint64(len(service))) + len(service) +
		uvarintLen(uint64(len(method))) + len(method) +
		uvarintLen(uint64(len(payload))) + len(payload)
}

func (w *connWriter) writeRequest(seq, epoch, budget uint64, service, method string, payload []byte) error {
	return w.writeRequestKind(frameRequest, seq, epoch, budget, service, method, payload)
}

// writeOneWay emits a request the server will not answer.
func (w *connWriter) writeOneWay(seq, epoch, budget uint64, service, method string, payload []byte) error {
	return w.writeRequestKind(frameOneWay, seq, epoch, budget, service, method, payload)
}

func (w *connWriter) writeRequestKind(kind frameKind, seq, epoch, budget uint64, service, method string, payload []byte) error {
	size := requestFrameSize(seq, epoch, budget, service, method, payload)
	if size > MaxFrame {
		return fmt.Errorf("%w: request frame of %d bytes", ErrFrameTooLarge, size)
	}
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		return err
	}
	bw := w.bw
	putFrameHeader(bw, size, kind)
	putUvarint(bw, seq)
	putUvarint(bw, epoch)
	putUvarint(bw, budget)
	putUvarint(bw, uint64(len(service)))
	bw.WriteString(service)
	putUvarint(bw, uint64(len(method)))
	bw.WriteString(method)
	putUvarint(bw, uint64(len(payload)))
	_, err := bw.Write(payload) // bufio errors are sticky; checking the last suffices
	return w.finish(err)
}

// batchEntry is one invocation inside a batch frame. For two-way entries ca
// carries the future delivery is owed to; one-way entries leave it nil.
type batchEntry struct {
	oneway  bool
	seq     uint64
	epoch   uint64
	budget  uint64 // remaining deadline budget in µs (0 = none)
	service string
	method  string
	payload []byte
	ca      *Call
}

// batchEntrySize returns the encoded size of one batch entry (flag byte +
// request fields).
func batchEntrySize(e *batchEntry) int {
	return 1 + requestFrameSize(e.seq, e.epoch, e.budget, e.service, e.method, e.payload) - 1
}

// batchFrameSize returns the frame size (kind byte + body) of a batch.
func batchFrameSize(entries []batchEntry) int {
	size := 1 + uvarintLen(uint64(len(entries)))
	for i := range entries {
		size += batchEntrySize(&entries[i])
	}
	return size
}

// writeBatch emits one batch frame carrying every entry. The caller keeps
// batches within MaxFrame and maxBatchEntries; violations fail the whole
// write before any byte reaches the wire.
func (w *connWriter) writeBatch(entries []batchEntry) error {
	if len(entries) == 0 {
		return nil
	}
	if len(entries) > maxBatchEntries {
		return fmt.Errorf("%w: batch of %d entries exceeds %d", ErrFrameTooLarge, len(entries), maxBatchEntries)
	}
	size := batchFrameSize(entries)
	if size > MaxFrame {
		return fmt.Errorf("%w: batch frame of %d bytes", ErrFrameTooLarge, size)
	}
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		return err
	}
	bw := w.bw
	putFrameHeader(bw, size, frameBatch)
	putUvarint(bw, uint64(len(entries)))
	var err error
	for i := range entries {
		e := &entries[i]
		var flags byte
		if e.oneway {
			flags |= oneWayFlag
		}
		bw.WriteByte(flags)
		putUvarint(bw, e.seq)
		putUvarint(bw, e.epoch)
		putUvarint(bw, e.budget)
		putUvarint(bw, uint64(len(e.service)))
		bw.WriteString(e.service)
		putUvarint(bw, uint64(len(e.method)))
		bw.WriteString(e.method)
		putUvarint(bw, uint64(len(e.payload)))
		_, err = bw.Write(e.payload)
	}
	return w.finish(err)
}

// drainingFlag marks a draining member inside a route-update entry.
const drainingFlag = 0x1

// maxRouteMembers bounds the member count one route update may carry;
// writers refuse larger tables and readers treat larger counts as
// malformed. Far above any real pool size, far below an allocation bomb.
const maxRouteMembers = 4096

// Writer-side clamps. The parser rejects out-of-range fields as protocol
// violations (killing the connection), so the writer must never emit them:
// a RouteSource handing over an unconventional weight scale or a negative
// UID must degrade to a clamped value here, not poison every stale client.

// clampUID encodes a UID, flooring negatives at 0.
func clampUID(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// clampWeight bounds a weight to [0, route.DefaultWeight].
func clampWeight(v int32) uint64 {
	if v < 0 {
		return 0
	}
	if v > route.DefaultWeight {
		return route.DefaultWeight
	}
	return uint64(v)
}

// clampLoad floors a load at 0 (int32 range is within the parser's bound).
func clampLoad(v int32) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// routeUpdateSize returns the encoded size of the response's route-update
// section. A nil table encodes as the single byte 0 (epoch 0 = no update;
// real epochs start at 1).
func routeUpdateSize(rt *route.Table) int {
	if rt == nil {
		return uvarintLen(0)
	}
	size := uvarintLen(rt.Epoch) + uvarintLen(uint64(len(rt.Members)))
	for i := range rt.Members {
		m := &rt.Members[i]
		size += uvarintLen(uint64(len(m.Addr))) + len(m.Addr) +
			uvarintLen(clampUID(m.UID)) +
			uvarintLen(clampWeight(m.Weight)) +
			uvarintLen(clampLoad(m.Load)) + 1
	}
	return size
}

func putRouteUpdate(bw *bufio.Writer, rt *route.Table) {
	if rt == nil {
		putUvarint(bw, 0)
		return
	}
	putUvarint(bw, rt.Epoch)
	putUvarint(bw, uint64(len(rt.Members)))
	for i := range rt.Members {
		m := &rt.Members[i]
		putUvarint(bw, uint64(len(m.Addr)))
		bw.WriteString(m.Addr)
		putUvarint(bw, clampUID(m.UID))
		putUvarint(bw, clampWeight(m.Weight))
		putUvarint(bw, clampLoad(m.Load))
		var flags byte
		if m.Draining {
			flags |= drainingFlag
		}
		bw.WriteByte(flags)
	}
}

// responseFrameSize returns the frame size (kind byte + body) of a response.
func responseFrameSize(seq uint64, status byte, payload []byte, errMsg string, rt *route.Table) int {
	return 1 + uvarintLen(seq) + uvarintLen(uint64(status)) +
		uvarintLen(uint64(len(errMsg))) + len(errMsg) +
		routeUpdateSize(rt) +
		uvarintLen(uint64(len(payload))) + len(payload)
}

// writeResponse emits one response frame, piggybacking rt when non-nil (the
// member's routing table, newer than the requester's epoch). hold skips the
// flush even when no other writer is queued — the server passes it while
// more responses for this connection are imminent (outstanding requests),
// so a wave of completions reaches the kernel in one syscall; the caller
// guarantees a later flush (last writer, or its straggler timer).
func (w *connWriter) writeResponse(seq uint64, status byte, payload []byte, errMsg string, rt *route.Table, hold bool) error {
	if rt != nil && (len(rt.Members) == 0 || len(rt.Members) > maxRouteMembers || rt.Epoch == 0) {
		rt = nil // unencodable table: drop the piggyback, never the response
	}
	if responseFrameSize(seq, status, payload, errMsg, rt) > MaxFrame {
		// Surface the overflow to the caller as a RemoteError instead of
		// poisoning the connection with an unreadable frame.
		payload, rt = nil, nil
		errMsg = fmt.Sprintf("%v: response frame exceeds %d bytes", ErrFrameTooLarge, MaxFrame)
	}
	size := responseFrameSize(seq, status, payload, errMsg, rt)
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		return err
	}
	bw := w.bw
	putFrameHeader(bw, size, frameResponse)
	putUvarint(bw, seq)
	putUvarint(bw, uint64(status))
	putUvarint(bw, uint64(len(errMsg)))
	bw.WriteString(errMsg)
	putRouteUpdate(bw, rt)
	putUvarint(bw, uint64(len(payload)))
	_, err := bw.Write(payload)
	if hold && err == nil {
		if w.err == nil {
			w.mu.Unlock()
			return nil
		}
		err = w.err
	}
	return w.finish(err)
}

// flushNow pushes any buffered frames to the kernel (a no-op on an empty
// buffer). Used by the server's straggler timer to bound how long held
// responses may sit.
func (w *connWriter) flushNow() error {
	w.mu.Lock()
	err := w.err
	if err == nil {
		err = w.bw.Flush()
		if err != nil {
			w.err = err
		}
	}
	w.mu.Unlock()
	return err
}

// readFrame reads one length-prefixed frame and returns its kind and body.
// The body is freshly allocated: parsed payloads alias it and outlive the
// next read.
func readFrame(br *bufio.Reader) (frameKind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes outside (0, %d]", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, err
	}
	return frameKind(body[0]), body[1:], nil
}

// takeUvarint consumes a uvarint from b.
func takeUvarint(b []byte) (uint64, []byte, bool) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return x, b[n:], true
}

// takeBytes consumes a uvarint-length-prefixed byte string from b without
// copying.
func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeUvarint(b)
	if !ok || n > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}

// parseRequest decodes a request body. Service and Method are copied out;
// Payload aliases body.
func parseRequest(body []byte) (*Request, error) {
	seq, rest, ok := takeUvarint(body)
	if !ok {
		return nil, errMalformed
	}
	epoch, rest, ok := takeUvarint(rest)
	if !ok {
		return nil, errMalformed
	}
	budget, rest, ok := takeUvarint(rest)
	if !ok {
		return nil, errMalformed
	}
	service, rest, ok := takeBytes(rest)
	if !ok {
		return nil, errMalformed
	}
	method, rest, ok := takeBytes(rest)
	if !ok {
		return nil, errMalformed
	}
	payload, rest, ok := takeBytes(rest)
	if !ok || len(rest) != 0 {
		return nil, errMalformed
	}
	return &Request{
		Seq:     seq,
		Epoch:   epoch,
		Budget:  clampBudget(budget),
		Service: string(service),
		Method:  string(method),
		Payload: payload,
	}, nil
}

// clampBudget converts the wire's µs budget field into a duration, capping
// hostile values so arrival.Add(budget) cannot overflow time arithmetic.
func clampBudget(micros uint64) time.Duration {
	const maxBudget = uint64(24 * time.Hour / time.Microsecond)
	if micros > maxBudget {
		micros = maxBudget
	}
	return time.Duration(micros) * time.Microsecond
}

// batchItem is one decoded entry of a batch frame as handed to the server.
type batchItem struct {
	oneway bool
	req    *Request
}

// parseBatch decodes a batch body. Service and Method strings are copied
// out; payloads alias body.
func parseBatch(body []byte) ([]batchItem, error) {
	count, rest, ok := takeUvarint(body)
	if !ok || count == 0 || count > maxBatchEntries {
		return nil, errMalformed
	}
	// Grow by append rather than trusting the declared count outright: the
	// count is capped above, but entries must actually be present.
	items := make([]batchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, errMalformed
		}
		flags := rest[0]
		rest = rest[1:]
		if flags&^oneWayFlag != 0 {
			return nil, errMalformed
		}
		var seq, epoch, budget uint64
		seq, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		epoch, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		budget, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		var service, method, payload []byte
		service, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		method, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		payload, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		items = append(items, batchItem{
			oneway: flags&oneWayFlag != 0,
			req: &Request{
				Seq:     seq,
				Epoch:   epoch,
				Budget:  clampBudget(budget),
				Service: string(service),
				Method:  string(method),
				Payload: payload,
				OneWay:  flags&oneWayFlag != 0,
			},
		})
	}
	if len(rest) != 0 {
		return nil, errMalformed
	}
	return items, nil
}

// parseResponse decodes a response body into res. res.payload aliases body;
// a piggybacked route update is copied out (it outlives the frame).
func parseResponse(body []byte, res *callResult) (seq uint64, err error) {
	seq, rest, ok := takeUvarint(body)
	if !ok {
		return 0, errMalformed
	}
	status, rest, ok := takeUvarint(rest)
	if !ok || status > uint64(statusMax) {
		return 0, errMalformed
	}
	res.status = byte(status)
	errMsg, rest, ok := takeBytes(rest)
	if !ok {
		return 0, errMalformed
	}
	if len(errMsg) > 0 {
		res.errMsg = string(errMsg)
	}
	repoch, rest, ok := takeUvarint(rest)
	if !ok {
		return 0, errMalformed
	}
	if repoch > 0 {
		count, rest2, ok := takeUvarint(rest)
		if !ok || count == 0 || count > maxRouteMembers || count > uint64(len(rest2)) {
			return 0, errMalformed
		}
		rest = rest2
		rt := &route.Table{Epoch: repoch, Members: make([]route.Member, 0, count)}
		for i := uint64(0); i < count; i++ {
			var addr []byte
			addr, rest, ok = takeBytes(rest)
			if !ok {
				return 0, errMalformed
			}
			var uid, weight, load uint64
			if uid, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if weight, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if load, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if len(rest) == 0 {
				return 0, errMalformed
			}
			flags := rest[0]
			rest = rest[1:]
			if flags&^drainingFlag != 0 || uid > 1<<63-1 || weight > uint64(route.DefaultWeight) || load > 1<<31-1 {
				return 0, errMalformed
			}
			rt.Members = append(rt.Members, route.Member{
				Addr:     string(addr),
				UID:      int64(uid),
				Weight:   int32(weight),
				Load:     int32(load),
				Draining: flags&drainingFlag != 0,
			})
		}
		res.route = rt
	}
	payload, rest, ok := takeBytes(rest)
	if !ok || len(rest) != 0 {
		return 0, errMalformed
	}
	res.payload = payload
	return seq, nil
}
