package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
)

// MaxFrame bounds a single message (everything after the u32 length field)
// to protect against corrupt frames and unbounded buffering. Writers refuse
// larger frames before emitting any byte; readers treat them as a protocol
// violation.
const MaxFrame = 64 << 20

// Protocol preamble: magic "eRMI" plus a version byte, sent by the dialing
// side before its first frame (see doc.go). Version 2 added the epoch field
// on requests and the piggybacked route update on responses (replacing the
// redirect list of version 1). Version 3 added the remaining-budget field on
// requests, one-way frames and batch entries, and the status field on
// responses (statusOverload / statusExpired for admission-control refusals).
// Version 4 split every frame into a metadata section and a payload section
// whose length travels in the fixed header, so readers place the payload in
// an exactly-sized arena slab and writers emit large payloads by
// scatter-gather without copying them through the connection buffer.
// Version 5 added the event frame: a server-initiated message pushed on an
// established connection (session invalidations and watch notifications),
// reusing the metadata/payload split of version 4.
const protoVersion = 5

var preamble = [5]byte{'e', 'R', 'M', 'I', protoVersion}

// frameKind discriminates the frame types of the wire protocol. Every
// reader-side switch over it must stay exhaustive — a kind added here but
// missed by a reader would be dropped silently on one side of the
// connection — so the type carries the //ermi:exhaustive marker and
// ermi-vet flags any switch over it that neither names all kinds nor
// declares an explicit default (see doc.go, "Wire enums").
//
//ermi:exhaustive
type frameKind byte

const (
	frameRequest  frameKind = 1
	frameResponse frameKind = 2
	// frameOneWay is a request the server executes without sending any
	// response frame (fire-and-forget). Body shape is identical to a
	// request; the seq is carried for debugging but never answered.
	frameOneWay frameKind = 3
	// frameBatch carries several coalesced requests in one frame. The
	// server fans the entries out to the handler; responses (for the
	// entries that want one) travel as ordinary response frames. Batch
	// frames carry their entries' payloads inline in the metadata section
	// (plen = 0); the entries share the frame's buffer by refcount.
	frameBatch frameKind = 4
	// frameEvent is a server-initiated message on an established connection:
	// it answers no request and carries its own (kind, topic, seq) addressing
	// instead of a response seq. Clients dispatch events to the handler
	// installed at dial time; servers never accept one (events flow
	// server→client only).
	frameEvent frameKind = 5

	// frameMax bounds the kind byte: readFrame rejects frames outside
	// [frameRequest, frameMax] as malformed, so dispatch switches only
	// ever see declared kinds.
	frameMax = frameEvent
)

// frameHeaderSize is the fixed per-frame header after the u32 length field:
// one kind byte plus the u32 payload-section length.
const frameHeaderSize = 5

// oneWayFlag marks a batch entry whose response the client does not want.
const oneWayFlag = 0x1

// respStatus is the status field of a response body. statusOK responses
// carry the handler's result (or its application error in errmsg); the
// other statuses are emitted by the server's admission controller and
// carry neither payload nor errmsg — the request's handler never ran.
// Like frameKind, the type is //ermi:exhaustive: client-side switches
// translating a status into a caller-visible error must name every member,
// so a new refusal status cannot be silently read as success.
//
//ermi:exhaustive
type respStatus byte

const (
	statusOK respStatus = 0
	// statusOverload: the admission queue was full when the request arrived;
	// the server shed it unexecuted. The member is alive but saturated —
	// callers should back off or prefer a less-loaded member, not declare
	// the member dead.
	statusOverload respStatus = 1
	// statusExpired: the request's remaining budget ran out while it waited
	// in the admission queue; the server dropped it without invoking the
	// handler (the caller's own deadline has passed, so the work is waste).
	statusExpired respStatus = 2

	statusMax = statusExpired // parser bound; larger values are malformed
)

// maxBatchEntries bounds the entries one batch frame may carry; writers
// split above it and readers treat larger counts as malformed.
const maxBatchEntries = 1024

// errMalformed kills a connection whose peer sent an unparseable frame.
var errMalformed = errors.New("transport: malformed frame")

// I/O buffer size per connection direction. Large enough to coalesce many
// small frames, small enough to be cheap per connection.
const connBufSize = 32 << 10

// scatterGatherThreshold selects the write path for a frame's payload
// section: payloads at or above it bypass the connection buffer entirely —
// the header+metadata scratch and the payload go to the kernel as one
// net.Buffers writev — instead of being copied through connBufSize-sized
// flushes. Half the connection buffer: anything larger would flush at least
// once mid-copy anyway.
const scatterGatherThreshold = 16 << 10

// sgEnabled gates the scatter-gather path (benchmarks toggle it to measure
// the writev saving in isolation).
var sgEnabled atomic.Bool

func init() { sgEnabled.Store(true) }

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// connWriter serializes frame writes onto one connection through a buffered
// writer with flush coalescing: a writer that observes other writers queued
// behind it leaves flushing to the last of them, so a burst of concurrent
// frames reaches the kernel in a single syscall. Write errors are sticky —
// once a frame fails the connection is dead and every later write fails.
// Large payloads skip the buffer: header+metadata are built in an arena
// scratch and handed to the kernel together with the payload as one
// scatter-gather write (net.Buffers → writev on TCP).
type connWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	dst     io.Writer // the raw connection, for scatter-gather writes
	waiters atomic.Int32
	err     error
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{bw: bufio.NewWriterSize(w, connBufSize), dst: w}
}

// lock enters the writer's critical section, tracking this writer in the
// waiter count so the holder can skip its flush. Returns the sticky error.
func (w *connWriter) lock() error {
	w.waiters.Add(1)
	w.mu.Lock()
	w.waiters.Add(-1)
	return w.err
}

// finish flushes unless another writer is queued, records any sticky error
// and leaves the critical section.
func (w *connWriter) finish(err error) error {
	if err == nil && w.waiters.Load() == 0 {
		err = w.bw.Flush()
	}
	if err != nil && w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	return err
}

// writeSG emits a fully built header+metadata scratch and the payload as
// one gathered write to the raw connection: buffered frames are flushed
// first (ordering), then net.Buffers hands both slices to writev in a
// single syscall on TCP, so the payload is never copied into the
// connection buffer. Caller holds the lock.
func (w *connWriter) writeSG(hdrMeta, payload []byte) error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	bufs := net.Buffers{hdrMeta, payload}
	_, err := bufs.WriteTo(w.dst)
	return err
}

// writeFrame emits one fully built header+metadata scratch plus its payload
// section, choosing the scatter-gather path for large payloads. Caller
// holds the lock.
func (w *connWriter) writeFrame(hdrMeta, payload []byte) error {
	if len(payload) >= scatterGatherThreshold && sgEnabled.Load() {
		return w.writeSG(hdrMeta, payload)
	}
	_, err := w.bw.Write(hdrMeta)
	if err == nil && len(payload) > 0 {
		_, err = w.bw.Write(payload)
	}
	return err
}

// putFrameHeader writes the wire header into b[:9]: the u32 frame size (the
// byte count after the size field itself), the kind byte, and the u32
// payload-section length.
func putFrameHeader(b []byte, size int, kind frameKind, plen int) {
	binary.BigEndian.PutUint32(b[:4], uint32(size))
	b[4] = byte(kind)
	binary.BigEndian.PutUint32(b[5:9], uint32(plen))
}

// appendWireString appends a uvarint-length-prefixed string.
func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendWireBytes appends a uvarint-length-prefixed byte string.
func appendWireBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// budgetMicros converts a caller deadline budget to the wire's µs field,
// clamping negatives to zero (0 = no deadline).
func budgetMicros(budget time.Duration) uint64 {
	if budget <= 0 {
		return 0
	}
	return uint64(budget / time.Microsecond)
}

// requestMetaSize returns the metadata-section size of a request frame.
func requestMetaSize(seq, epoch, budget uint64, service, method string) int {
	return uvarintLen(seq) + uvarintLen(epoch) + uvarintLen(budget) +
		uvarintLen(uint64(len(service))) + len(service) +
		uvarintLen(uint64(len(method))) + len(method)
}

// requestFrameSize returns the frame size (everything after the u32 length
// field) of a request.
func requestFrameSize(seq, epoch, budget uint64, service, method string, payload []byte) int {
	return frameHeaderSize + requestMetaSize(seq, epoch, budget, service, method) + len(payload)
}

func (w *connWriter) writeRequest(seq, epoch, budget uint64, service, method string, payload []byte) error {
	return w.writeRequestKind(frameRequest, seq, epoch, budget, service, method, payload)
}

// writeOneWay emits a request the server will not answer.
func (w *connWriter) writeOneWay(seq, epoch, budget uint64, service, method string, payload []byte) error {
	return w.writeRequestKind(frameOneWay, seq, epoch, budget, service, method, payload)
}

func (w *connWriter) writeRequestKind(kind frameKind, seq, epoch, budget uint64, service, method string, payload []byte) error {
	metaSize := requestMetaSize(seq, epoch, budget, service, method)
	size := frameHeaderSize + metaSize + len(payload)
	if size > MaxFrame {
		return fmt.Errorf("%w: request frame of %d bytes", ErrFrameTooLarge, size)
	}
	// Build header+metadata in arena scratch before taking the lock, so the
	// critical section is just the copy (or writev) to the connection.
	hm := arenaGet(9 + metaSize)
	putFrameHeader(hm, size, kind, len(payload))
	b := hm[:9]
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, budget)
	b = appendWireString(b, service)
	_ = appendWireString(b, method)
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		arenaPut(hm)
		return err
	}
	err := w.writeFrame(hm, payload)
	arenaPut(hm)
	return w.finish(err)
}

// batchEntry is one invocation inside a batch frame. For two-way entries ca
// carries the future delivery is owed to; one-way entries leave it nil.
type batchEntry struct {
	oneway  bool
	seq     uint64
	epoch   uint64
	budget  uint64 // remaining deadline budget in µs (0 = none)
	service string
	method  string
	payload []byte
	ca      *Call
}

// batchEntrySize returns the encoded size of one batch entry (flag byte +
// request fields + inline length-prefixed payload).
func batchEntrySize(e *batchEntry) int {
	return 1 + requestMetaSize(e.seq, e.epoch, e.budget, e.service, e.method) +
		uvarintLen(uint64(len(e.payload))) + len(e.payload)
}

// batchFrameSize returns the frame size (everything after the u32 length
// field) of a batch.
func batchFrameSize(entries []batchEntry) int {
	size := frameHeaderSize + uvarintLen(uint64(len(entries)))
	for i := range entries {
		size += batchEntrySize(&entries[i])
	}
	return size
}

// writeBatch emits one batch frame carrying every entry. The caller keeps
// batches within MaxFrame and maxBatchEntries; violations fail the whole
// write before any byte reaches the wire. Batch payloads travel inline in
// the metadata section (plen = 0): entries are small by construction, so
// the scatter-gather path has nothing to win here.
func (w *connWriter) writeBatch(entries []batchEntry) error {
	if len(entries) == 0 {
		return nil
	}
	if len(entries) > maxBatchEntries {
		return fmt.Errorf("%w: batch of %d entries exceeds %d", ErrFrameTooLarge, len(entries), maxBatchEntries)
	}
	size := batchFrameSize(entries)
	if size > MaxFrame {
		return fmt.Errorf("%w: batch frame of %d bytes", ErrFrameTooLarge, size)
	}
	hm := arenaGet(4 + size)
	putFrameHeader(hm, size, frameBatch, 0)
	b := hm[:9]
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		var flags byte
		if e.oneway {
			flags |= oneWayFlag
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, e.seq)
		b = binary.AppendUvarint(b, e.epoch)
		b = binary.AppendUvarint(b, e.budget)
		b = appendWireString(b, e.service)
		b = appendWireString(b, e.method)
		b = appendWireBytes(b, e.payload)
	}
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		arenaPut(hm)
		return err
	}
	_, err := w.bw.Write(hm)
	arenaPut(hm)
	return w.finish(err)
}

// maxEventTopic bounds the topic string of an event frame; writers refuse
// longer topics and readers treat them as malformed. Topics are keys or
// lock names — far shorter in practice.
const maxEventTopic = 4096

// eventMetaSize returns the metadata-section size of an event frame.
func eventMetaSize(seq, kind uint64, topic string) int {
	return uvarintLen(seq) + uvarintLen(kind) +
		uvarintLen(uint64(len(topic))) + len(topic)
}

// writeEvent emits one server-push event frame. Events are latency-critical
// (a write somewhere is blocked until the event's effect is acknowledged),
// so the frame is flushed under the ordinary coalescing discipline — never
// held for stragglers.
func (w *connWriter) writeEvent(seq, kind uint64, topic string, payload []byte) error {
	if len(topic) > maxEventTopic {
		return fmt.Errorf("%w: event topic of %d bytes", ErrFrameTooLarge, len(topic))
	}
	metaSize := eventMetaSize(seq, kind, topic)
	size := frameHeaderSize + metaSize + len(payload)
	if size > MaxFrame {
		return fmt.Errorf("%w: event frame of %d bytes", ErrFrameTooLarge, size)
	}
	hm := arenaGet(9 + metaSize)
	putFrameHeader(hm, size, frameEvent, len(payload))
	b := hm[:9]
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, kind)
	_ = appendWireString(b, topic)
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		arenaPut(hm)
		return err
	}
	err := w.writeFrame(hm, payload)
	arenaPut(hm)
	return w.finish(err)
}

// parseEvent decodes an event's metadata section into ev and attaches the
// payload section. The topic is copied out of meta (it outlives the frame);
// ev.Payload is the arena slab readFrame produced. Like every parser it is
// total on hostile input: malformed metadata returns errMalformed and
// never panics.
func parseEvent(meta, payload []byte, ev *Event) error {
	seq, rest, ok := takeUvarint(meta)
	if !ok {
		return errMalformed
	}
	kind, rest, ok := takeUvarint(rest)
	if !ok {
		return errMalformed
	}
	topic, rest, ok := takeBytes(rest)
	if !ok || len(rest) != 0 || len(topic) > maxEventTopic {
		return errMalformed
	}
	ev.Seq = seq
	ev.Kind = kind
	ev.Topic = string(topic)
	ev.Payload = payload
	return nil
}

// drainingFlag marks a draining member inside a route-update entry.
const drainingFlag = 0x1

// maxRouteMembers bounds the member count one route update may carry;
// writers refuse larger tables and readers treat larger counts as
// malformed. Far above any real pool size, far below an allocation bomb.
const maxRouteMembers = 4096

// Writer-side clamps. The parser rejects out-of-range fields as protocol
// violations (killing the connection), so the writer must never emit them:
// a RouteSource handing over an unconventional weight scale or a negative
// UID must degrade to a clamped value here, not poison every stale client.

// clampUID encodes a UID, flooring negatives at 0.
func clampUID(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// clampWeight bounds a weight to [0, route.DefaultWeight].
func clampWeight(v int32) uint64 {
	if v < 0 {
		return 0
	}
	if v > route.DefaultWeight {
		return route.DefaultWeight
	}
	return uint64(v)
}

// clampLoad floors a load at 0 (int32 range is within the parser's bound).
func clampLoad(v int32) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// routeUpdateSize returns the encoded size of the response's route-update
// section. A nil table encodes as the single byte 0 (epoch 0 = no update;
// real epochs start at 1).
func routeUpdateSize(rt *route.Table) int {
	if rt == nil {
		return uvarintLen(0)
	}
	size := uvarintLen(rt.Epoch) + uvarintLen(uint64(len(rt.Members)))
	for i := range rt.Members {
		m := &rt.Members[i]
		size += uvarintLen(uint64(len(m.Addr))) + len(m.Addr) +
			uvarintLen(clampUID(m.UID)) +
			uvarintLen(clampWeight(m.Weight)) +
			uvarintLen(clampLoad(m.Load)) + 1
	}
	return size
}

func appendRouteUpdate(b []byte, rt *route.Table) []byte {
	if rt == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, rt.Epoch)
	b = binary.AppendUvarint(b, uint64(len(rt.Members)))
	for i := range rt.Members {
		m := &rt.Members[i]
		b = appendWireString(b, m.Addr)
		b = binary.AppendUvarint(b, clampUID(m.UID))
		b = binary.AppendUvarint(b, clampWeight(m.Weight))
		b = binary.AppendUvarint(b, clampLoad(m.Load))
		var flags byte
		if m.Draining {
			flags |= drainingFlag
		}
		b = append(b, flags)
	}
	return b
}

// responseMetaSize returns the metadata-section size of a response frame.
func responseMetaSize(seq uint64, status respStatus, errMsg string, rt *route.Table) int {
	return uvarintLen(seq) + uvarintLen(uint64(status)) +
		uvarintLen(uint64(len(errMsg))) + len(errMsg) +
		routeUpdateSize(rt)
}

// responseFrameSize returns the frame size (everything after the u32 length
// field) of a response.
func responseFrameSize(seq uint64, status respStatus, payload []byte, errMsg string, rt *route.Table) int {
	return frameHeaderSize + responseMetaSize(seq, status, errMsg, rt) + len(payload)
}

// writeResponse emits one response frame, piggybacking rt when non-nil (the
// member's routing table, newer than the requester's epoch). hold skips the
// flush even when no other writer is queued — the server passes it while
// more responses for this connection are imminent (outstanding requests),
// so a wave of completions reaches the kernel in one syscall; the caller
// guarantees a later flush (last writer, or its straggler timer). A payload
// at or above the scatter-gather threshold goes to the kernel immediately
// regardless of hold (it is never copied into the connection buffer).
func (w *connWriter) writeResponse(seq uint64, status respStatus, payload []byte, errMsg string, rt *route.Table, hold bool) error {
	if rt != nil && (len(rt.Members) == 0 || len(rt.Members) > maxRouteMembers || rt.Epoch == 0) {
		rt = nil // unencodable table: drop the piggyback, never the response
	}
	if responseFrameSize(seq, status, payload, errMsg, rt) > MaxFrame {
		// Surface the overflow to the caller as a RemoteError instead of
		// poisoning the connection with an unreadable frame.
		payload, rt = nil, nil
		errMsg = fmt.Sprintf("%v: response frame exceeds %d bytes", ErrFrameTooLarge, MaxFrame)
	}
	metaSize := responseMetaSize(seq, status, errMsg, rt)
	size := frameHeaderSize + metaSize + len(payload)
	hm := arenaGet(9 + metaSize)
	putFrameHeader(hm, size, frameResponse, len(payload))
	b := hm[:9]
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(status))
	b = appendWireString(b, errMsg)
	_ = appendRouteUpdate(b, rt)
	if err := w.lock(); err != nil {
		w.mu.Unlock()
		arenaPut(hm)
		return err
	}
	err := w.writeFrame(hm, payload)
	arenaPut(hm)
	if hold && err == nil {
		if w.err == nil {
			w.mu.Unlock()
			return nil
		}
		err = w.err
	}
	return w.finish(err)
}

// flushNow pushes any buffered frames to the kernel (a no-op on an empty
// buffer). Used by the server's straggler timer to bound how long held
// responses may sit.
func (w *connWriter) flushNow() error {
	w.mu.Lock()
	err := w.err
	if err == nil {
		err = w.bw.Flush()
		if err != nil {
			w.err = err
		}
	}
	w.mu.Unlock()
	return err
}

// readFrame reads one length-prefixed frame and returns its kind, metadata
// section and payload section. Both sections live in arena slabs owned by
// the caller: metadata is typically parsed and released immediately, while
// the payload slab's ownership travels with the decoded message (the
// payload slice starts at its slab's base, so ReleasePayload can recover
// the slab from the slice alone). The frame size is validated from the
// first four bytes before anything else is read, so a hostile declared
// length is rejected without allocation.
func readFrame(br *bufio.Reader) (frameKind, []byte, []byte, error) {
	// The 4-byte length prefix and 5-byte frame header are parsed in the
	// bufio window via Peek/Discard: a ReadFull into a local array would
	// force the array to the heap (it escapes through the io.Reader
	// parameter), costing two allocations per frame on the hot path. The
	// length is validated as soon as its 4 bytes arrive — before waiting
	// for the rest of the header — so a hostile declared size kills the
	// connection even when the peer stalls mid-header.
	lenPfx, perr := br.Peek(4)
	if len(lenPfx) < 4 {
		if perr == nil || (perr == io.EOF && len(lenPfx) > 0) {
			perr = io.ErrUnexpectedEOF
		}
		return 0, nil, nil, perr
	}
	size := binary.BigEndian.Uint32(lenPfx)
	if size == 0 || size > MaxFrame {
		return 0, nil, nil, fmt.Errorf("transport: frame of %d bytes outside (0, %d]", size, MaxFrame)
	}
	if size < frameHeaderSize {
		return 0, nil, nil, errMalformed
	}
	hdr, perr := br.Peek(frameHeaderSize + 4)
	if len(hdr) < frameHeaderSize+4 {
		if perr == nil || perr == io.EOF {
			perr = io.ErrUnexpectedEOF
		}
		return 0, nil, nil, perr
	}
	kind := frameKind(hdr[4])
	if kind < frameRequest || kind > frameMax {
		// An undeclared kind is rejected here, before any section is read:
		// the dispatch switches downstream enumerate every declared kind
		// with no default, and this bound is what makes that total.
		return 0, nil, nil, errMalformed
	}
	plen := binary.BigEndian.Uint32(hdr[5:9])
	if _, err := br.Discard(frameHeaderSize + 4); err != nil {
		return 0, nil, nil, err
	}
	if uint64(plen) > uint64(size)-frameHeaderSize {
		return 0, nil, nil, errMalformed
	}
	meta := arenaGet(int(size) - frameHeaderSize - int(plen))
	if _, err := io.ReadFull(br, meta); err != nil {
		arenaPut(meta)
		return 0, nil, nil, err
	}
	var payload []byte
	if plen > 0 {
		payload = arenaGet(int(plen))
		if _, err := io.ReadFull(br, payload); err != nil {
			arenaPut(meta)
			arenaPut(payload)
			return 0, nil, nil, err
		}
	}
	return kind, meta, payload, nil
}

// frameBuf is a refcounted arena slab backing one or more parsed requests.
// A plain request holds one reference on its payload slab; every entry of a
// batch frame holds a reference on the shared metadata slab its inline
// payload aliases. The last release returns the slab to the arena; a
// Retain'd request simply never releases its reference, leaving the slab to
// the garbage collector once all aliases die.
type frameBuf struct {
	buf  []byte
	refs atomic.Int32
}

func newFrameBuf(buf []byte, refs int32) *frameBuf {
	f := &frameBuf{buf: buf}
	f.refs.Store(refs)
	return f
}

// release drops one reference, returning the slab to the arena on the last.
func (f *frameBuf) release() {
	if f.refs.Add(-1) == 0 {
		arenaPut(f.buf)
	}
}

// interner deduplicates the service/method strings of one connection: a
// connection invokes a small, stable set of methods, so after the first
// occurrence every parse hits the map (whose string(b) lookup key never
// allocates) instead of allocating two fresh strings per request. Bounded
// so a hostile peer cycling through names cannot grow it without limit; a
// nil interner degrades to plain copies.
type interner struct {
	m map[string]string
}

const (
	internMaxEntries = 256
	internMaxLen     = 128
)

func newInterner() *interner {
	return &interner{m: make(map[string]string, 8)}
}

func (in *interner) intern(b []byte) string {
	if in == nil || len(b) > internMaxLen {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // compiler-optimized: no alloc for the key
		return s
	}
	s := string(b)
	if len(in.m) < internMaxEntries {
		in.m[s] = s
	}
	return s
}

// takeUvarint consumes a uvarint from b.
func takeUvarint(b []byte) (uint64, []byte, bool) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return x, b[n:], true
}

// takeBytes consumes a uvarint-length-prefixed byte string from b without
// copying.
func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeUvarint(b)
	if !ok || n > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}

// parseRequest decodes a request's metadata section and attaches the
// payload section. Service and Method are interned (copied out of meta);
// Payload is the arena slab readFrame produced.
func parseRequest(meta, payload []byte, in *interner) (*Request, error) {
	seq, rest, ok := takeUvarint(meta)
	if !ok {
		return nil, errMalformed
	}
	epoch, rest, ok := takeUvarint(rest)
	if !ok {
		return nil, errMalformed
	}
	budget, rest, ok := takeUvarint(rest)
	if !ok {
		return nil, errMalformed
	}
	service, rest, ok := takeBytes(rest)
	if !ok {
		return nil, errMalformed
	}
	method, rest, ok := takeBytes(rest)
	if !ok || len(rest) != 0 {
		return nil, errMalformed
	}
	req := getRequest()
	req.Seq = seq
	req.Epoch = epoch
	req.Budget = clampBudget(budget)
	req.Service = in.intern(service)
	req.Method = in.intern(method)
	req.Payload = payload
	return req, nil
}

// clampBudget converts the wire's µs budget field into a duration, capping
// hostile values so arrival.Add(budget) cannot overflow time arithmetic.
func clampBudget(micros uint64) time.Duration {
	const maxBudget = uint64(24 * time.Hour / time.Microsecond)
	if micros > maxBudget {
		micros = maxBudget
	}
	return time.Duration(micros) * time.Microsecond
}

// batchItem is one decoded entry of a batch frame as handed to the server.
type batchItem struct {
	oneway bool
	req    *Request
}

// parseBatch decodes a batch's metadata section. Service and Method strings
// are interned; payloads alias meta (the caller wraps meta in a refcounted
// frameBuf shared by every entry).
func parseBatch(meta []byte, in *interner) ([]batchItem, error) {
	count, rest, ok := takeUvarint(meta)
	if !ok || count == 0 || count > maxBatchEntries {
		return nil, errMalformed
	}
	// Grow by append rather than trusting the declared count outright: the
	// count is capped above, but entries must actually be present.
	items := make([]batchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, errMalformed
		}
		flags := rest[0]
		rest = rest[1:]
		if flags&^oneWayFlag != 0 {
			return nil, errMalformed
		}
		var seq, epoch, budget uint64
		seq, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		epoch, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		budget, rest, ok = takeUvarint(rest)
		if !ok {
			return nil, errMalformed
		}
		var service, method, payload []byte
		service, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		method, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		payload, rest, ok = takeBytes(rest)
		if !ok {
			return nil, errMalformed
		}
		req := getRequest()
		req.Seq = seq
		req.Epoch = epoch
		req.Budget = clampBudget(budget)
		req.Service = in.intern(service)
		req.Method = in.intern(method)
		req.Payload = payload
		req.OneWay = flags&oneWayFlag != 0
		items = append(items, batchItem{oneway: req.OneWay, req: req})
	}
	if len(rest) != 0 {
		return nil, errMalformed
	}
	return items, nil
}

// parseResponse decodes a response's metadata section into res and attaches
// the payload section. The error string and any piggybacked route update
// are copied out of meta (they outlive the frame); res.payload is the arena
// slab readFrame produced.
func parseResponse(meta, payload []byte, res *callResult) (seq uint64, err error) {
	seq, rest, ok := takeUvarint(meta)
	if !ok {
		return 0, errMalformed
	}
	st, rest, ok := takeUvarint(rest)
	if !ok || st > uint64(statusMax) {
		return 0, errMalformed
	}
	res.status = respStatus(st)
	errMsg, rest, ok := takeBytes(rest)
	if !ok {
		return 0, errMalformed
	}
	if len(errMsg) > 0 {
		res.errMsg = string(errMsg)
	}
	repoch, rest, ok := takeUvarint(rest)
	if !ok {
		return 0, errMalformed
	}
	if repoch > 0 {
		count, rest2, ok := takeUvarint(rest)
		if !ok || count == 0 || count > maxRouteMembers || count > uint64(len(rest2)) {
			return 0, errMalformed
		}
		rest = rest2
		rt := &route.Table{Epoch: repoch, Members: make([]route.Member, 0, count)}
		for i := uint64(0); i < count; i++ {
			var addr []byte
			addr, rest, ok = takeBytes(rest)
			if !ok {
				return 0, errMalformed
			}
			var uid, weight, load uint64
			if uid, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if weight, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if load, rest, ok = takeUvarint(rest); !ok {
				return 0, errMalformed
			}
			if len(rest) == 0 {
				return 0, errMalformed
			}
			flags := rest[0]
			rest = rest[1:]
			if flags&^drainingFlag != 0 || uid > 1<<63-1 || weight > uint64(route.DefaultWeight) || load > 1<<31-1 {
				return 0, errMalformed
			}
			rt.Members = append(rt.Members, route.Member{
				Addr:     string(addr),
				UID:      int64(uid),
				Weight:   int32(weight),
				Load:     int32(load),
				Draining: flags&drainingFlag != 0,
			})
		}
		res.route = rt
	}
	if len(rest) != 0 {
		return 0, errMalformed
	}
	res.payload = payload
	return seq, nil
}
