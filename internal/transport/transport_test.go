package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/route"
)

type echoArgs struct {
	Text string
	N    int
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		switch req.Method {
		case "Echo":
			return req.Payload, nil
		case "Fail":
			return nil, errors.New("boom")
		case "Slow":
			time.Sleep(200 * time.Millisecond)
			return req.Payload, nil
		default:
			return nil, fmt.Errorf("unknown method %q", req.Method)
		}
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRoundTrip(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	payload, err := Encode(echoArgs{Text: "hello", N: 42})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := c.Call("svc", "Echo", payload, time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	var got echoArgs
	if err := Decode(out, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Text != "hello" || got.N != 42 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestRemoteError(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	_, err := c.Call("svc", "Fail", nil, time.Second)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if remote.Msg != "boom" || remote.Method != "Fail" {
		t.Fatalf("remote = %+v", remote)
	}
}

// TestRouteUpdatePiggyback drives the epoch protocol end to end: a client
// behind the server's epoch receives the server's routing table on its very
// next reply; once caught up, replies stop carrying the table.
func TestRouteUpdatePiggyback(t *testing.T) {
	srv := startEcho(t)
	table := route.Table{Epoch: 7, Members: []route.Member{
		{Addr: "a:1", UID: 1, Weight: 100, Load: 3},
		{Addr: "b:2", UID: 2, Weight: 50, Load: 0, Draining: true},
	}}
	srv.SetRouteSource(func() route.Table { return table })

	var mu sync.Mutex
	var epoch uint64
	var got []route.Table
	c, err := DialOpts(srv.Addr(), DialOptions{
		Epoch: func() uint64 { mu.Lock(); defer mu.Unlock(); return epoch },
		OnRouteUpdate: func(tab route.Table) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, tab)
			if tab.Epoch > epoch {
				epoch = tab.Epoch
			}
		},
	})
	if err != nil {
		t.Fatalf("DialOpts: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	if _, err := c.Call("svc", "Echo", []byte("x"), time.Second); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mu.Lock()
	if len(got) != 1 || got[0].Epoch != 7 || len(got[0].Members) != 2 {
		mu.Unlock()
		t.Fatalf("route updates after stale call = %+v", got)
	}
	if got[0].Members[1] != table.Members[1] {
		mu.Unlock()
		t.Fatalf("member drifted: %+v != %+v", got[0].Members[1], table.Members[1])
	}
	mu.Unlock()

	// Caught up: the next reply must not repeat the table.
	if _, err := c.Call("svc", "Echo", []byte("y"), time.Second); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("current client still received %d updates", len(got))
	}
}

func TestCallTimeout(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	_, err := c.Call("svc", "Slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	const n = 32
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := Encode(echoArgs{N: i})
			out, err := c.Call("svc", "Echo", payload, 2*time.Second)
			if err != nil {
				errCh <- err
				return
			}
			var got echoArgs
			if err := Decode(out, &got); err != nil {
				errCh <- err
				return
			}
			if got.N != i {
				errCh <- fmt.Errorf("call %d got %d (responses crossed)", i, got.N)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		close(started) // handler provably in flight before the close below
		<-release
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer close(release) // let the parked handler finish so Close can return
	t.Cleanup(func() { srv.Close() })
	c := dial(t, srv.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("svc", "Slow", nil, 5*time.Second)
		done <- err
	}()
	<-started
	go srv.Close() // Close waits for the handler; run it alongside the check
	if err := <-done; err == nil {
		t.Fatal("call survived server close")
	}
}

func TestCallAfterClientClose(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	c.Close()
	if _, err := c.Call("svc", "Echo", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := DialTimeout("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil) succeeded")
	}
}

func TestEncodeDecodeTypes(t *testing.T) {
	type nested struct {
		M map[string]int
		S []string
		B []byte
	}
	in := nested{M: map[string]int{"a": 1}, S: []string{"x", "y"}, B: []byte{1, 2, 3}}
	raw, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out nested
	if err := Decode(raw, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.M["a"] != 1 || len(out.S) != 2 || len(out.B) != 3 {
		t.Fatalf("decode mismatch: %+v", out)
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	if err != nil {
		b.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	payload, _ := Encode(echoArgs{Text: "bench", N: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("svc", "Echo", payload, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
