package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a connection to one Server. It is safe for concurrent use; calls
// are multiplexed over a single TCP connection.
type Client struct {
	addr string
	conn net.Conn
	w    *connWriter
	seq  atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*call
	closed  bool
	readErr error

	done chan struct{}
}

// callResult is the outcome of one call as delivered by the read loop (or by
// failAll when the connection dies).
type callResult struct {
	payload  []byte
	errMsg   string   // non-empty => RemoteError
	redirect []string // non-empty => RedirectError
	err      error    // transport-level failure
}

// call is the per-invocation rendezvous. Exactly one callResult is ever sent
// on ch per checkout (by whoever removes the entry from Client.pending), so
// the buffered channel never blocks a sender and the object can be pooled.
type call struct {
	ch chan callResult
}

var callPool = sync.Pool{New: func() interface{} { return &call{ch: make(chan callResult, 1)} }}

var timerPool sync.Pool // *time.Timer, stopped

// encBufPool recycles gob encode buffers (see Encode).
var encBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a bounded dial time.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // the writer already coalesces; don't add Nagle latency
	}
	c := &Client{
		addr:    addr,
		conn:    conn,
		w:       newConnWriter(conn),
		pending: make(map[uint64]*call),
		done:    make(chan struct{}),
	}
	// The preamble rides in the write buffer until the first frame flushes,
	// so it costs no extra syscall.
	c.w.bw.Write(preamble[:])
	go c.readLoop()
	return c, nil
}

// Addr returns the remote address this client is connected to.
func (c *Client) Addr() string { return c.addr }

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, connBufSize)
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			c.failAll(err)
			return
		}
		if kind != frameResponse {
			c.failAll(fmt.Errorf("transport: protocol violation: frame kind %d", kind))
			return
		}
		var res callResult
		seq, err := parseResponse(body, &res)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ca, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
		if ok {
			ca.ch <- res
		}
		// A response for an unknown seq was abandoned by a timed-out caller
		// that reclaimed its pending entry first; drop it.
	}
}

// failAll delivers a connection-level failure to every pending call and
// poisons the client for future calls.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	pend := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	res := callResult{err: fmt.Errorf("transport: connection lost: %w", ErrClosed)}
	for _, ca := range pend {
		ca.ch <- res
	}
}

// reclaim removes seq from the pending map. It reports whether the caller
// won the race: true means no result will ever be sent for this call, false
// means the read loop (or failAll) already checked the entry out and a
// result is imminent on ca.ch.
func (c *Client) reclaim(seq uint64) bool {
	c.mu.Lock()
	_, present := c.pending[seq]
	if present {
		delete(c.pending, seq)
	}
	c.mu.Unlock()
	return present
}

// Call invokes service.method with the given payload and waits up to timeout
// for the response payload. timeout <= 0 means wait indefinitely.
func (c *Client) Call(service, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	ca := callPool.Get().(*call)
	seq := c.seq.Add(1)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		callPool.Put(ca)
		return nil, ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		callPool.Put(ca)
		return nil, fmt.Errorf("transport: connection failed: %w", err)
	}
	c.pending[seq] = ca
	c.mu.Unlock()

	if err := c.w.writeRequest(seq, service, method, payload); err != nil {
		c.release(seq, ca)
		return nil, fmt.Errorf("transport: write: %w", err)
	}

	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		if t, ok := timerPool.Get().(*time.Timer); ok {
			t.Reset(timeout)
			timer = t
		} else {
			timer = time.NewTimer(timeout)
		}
		expired = timer.C
	}

	select {
	case res := <-ca.ch:
		if timer != nil {
			if !timer.Stop() {
				// Pre-go1.23 timer semantics could leave the fired value
				// buffered; drain so a pooled timer can never satisfy a
				// later call's deadline instantly.
				select {
				case <-timer.C:
				default:
				}
			}
			timerPool.Put(timer)
		}
		callPool.Put(ca)
		if res.err != nil {
			return nil, res.err
		}
		if len(res.redirect) > 0 {
			return nil, &RedirectError{Targets: res.redirect}
		}
		if res.errMsg != "" {
			return nil, &RemoteError{Service: service, Method: method, Msg: res.errMsg}
		}
		return res.payload, nil
	case <-expired:
		timerPool.Put(timer) // already fired; Reset on reuse rearms it
		c.release(seq, ca)
		return nil, fmt.Errorf("%s.%s: %w", service, method, ErrTimeout)
	}
}

// release abandons a call without consuming its result, returning the call
// object to the pool once it is quiescent. If the read loop won the race for
// the pending entry, the in-flight result is drained first so the pooled
// channel is guaranteed empty.
func (c *Client) release(seq uint64, ca *call) {
	if !c.reclaim(seq) {
		<-ca.ch
	}
	callPool.Put(ca)
}

// CallDecode is the typed convenience around Call: it gob-encodes arg,
// invokes service.method and gob-decodes the response payload into reply.
// A nil arg sends an empty payload; a nil reply discards the response
// payload.
func (c *Client) CallDecode(service, method string, arg, reply interface{}, timeout time.Duration) error {
	var payload []byte
	if arg != nil {
		var err error
		payload, err = Encode(arg)
		if err != nil {
			return err
		}
	}
	out, err := c.Call(service, method, payload, timeout)
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return Decode(out, reply)
}

// Close tears down the connection. Outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
