package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
)

// Client is a connection to one Server. It is safe for concurrent use; calls
// are multiplexed over a single TCP connection, and concurrent invocations
// may be coalesced into batch frames when batching is enabled (see
// BatchOptions).
type Client struct {
	addr    string
	conn    net.Conn
	w       *connWriter
	seq     atomic.Uint64
	batch   *batcher            // nil unless batching is enabled
	epochFn func() uint64       // nil: requests stamped with epoch 0
	onRoute func(t route.Table) // nil: piggybacked route updates dropped
	onEvent atomic.Pointer[func(Event)]

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
	readErr error

	done chan struct{}
}

// callResult is the outcome of one call as delivered by the read loop (or by
// failAll when the connection dies).
type callResult struct {
	payload []byte
	status  respStatus   // statusOK, or an admission-control refusal
	errMsg  string       // non-empty => RemoteError
	route   *route.Table // piggybacked route update, handed to onRoute
	err     error        // transport-level failure
}

// Call is one in-flight invocation: the future returned by Go. Exactly one
// callResult is ever delivered per checkout (by whoever removes the entry
// from Client.pending), closing done; the object is pooled, so after
// Release (or Wait, which releases) the Call must not be touched again.
type Call struct {
	c       *Client
	service string
	method  string
	seq     uint64
	res     callResult
	done    chan struct{}
	// queued is set while the call sits in the batcher's queue; a caller
	// blocking on it then forces the flush (flush-on-wait), so
	// request/response traffic never waits out the batch latency bound.
	queued atomic.Bool
}

var callPool = sync.Pool{New: func() interface{} { return new(Call) }}

// newCall checks a Call out of the pool. The done channel is fresh per
// checkout: completion closes it, and a closed channel cannot be reused.
func newCall(c *Client, service, method string, seq uint64) *Call {
	ca := callPool.Get().(*Call)
	ca.c = c
	ca.service, ca.method, ca.seq = service, method, seq
	ca.res = callResult{}
	ca.done = make(chan struct{})
	ca.queued.Store(false)
	return ca
}

// kickIfQueued forces the batcher flush when this call is still sitting in
// its queue: the caller is about to block, so waiting for companions can
// only add latency.
func (ca *Call) kickIfQueued() {
	if ca.c != nil && ca.c.batch != nil && ca.queued.Load() {
		ca.c.batch.kick()
	}
}

// deliver completes the call. The pending-map checkout discipline guarantees
// it runs at most once per checkout.
func (ca *Call) deliver(res callResult) {
	ca.res = res
	close(ca.done)
}

// Done returns a channel closed when the call completes (successfully or
// not). It is selectable alongside other futures. Done itself does not
// force a batched call onto the wire — capturing the channel early is
// cheap — so a caller that only ever selects on Done may wait out the
// batch latency bound; the blocking accessors (Err, Payload, Decode, Wait)
// flush immediately.
func (ca *Call) Done() <-chan struct{} {
	return ca.done
}

// err translates the delivered result into the caller-visible error. The
// status switch is exhaustive over respStatus (enforced by ermi-vet): a new
// refusal status must decide here what callers see, or the build goes red —
// it cannot silently fall through to "success".
func (ca *Call) err() error {
	if ca.res.err != nil {
		return ca.res.err
	}
	switch ca.res.status {
	case statusOverload:
		return fmt.Errorf("%s.%s: %w", ca.service, ca.method, ErrOverloaded)
	case statusExpired:
		return fmt.Errorf("%s.%s: %w", ca.service, ca.method, ErrExpired)
	case statusOK:
		if ca.res.errMsg != "" {
			return &RemoteError{Service: ca.service, Method: ca.method, Msg: ca.res.errMsg}
		}
	}
	return nil
}

// Err blocks until the call completes and returns its error (nil on
// success).
func (ca *Call) Err() error {
	ca.kickIfQueued()
	<-ca.done
	return ca.err()
}

// Payload blocks until the call completes and returns the raw response
// payload.
func (ca *Call) Payload() ([]byte, error) {
	ca.kickIfQueued()
	<-ca.done
	if err := ca.err(); err != nil {
		return nil, err
	}
	return ca.res.payload, nil
}

// Decode blocks until the call completes and decodes the response payload
// into reply (generated codec or gob; see transport.Decode). A nil reply
// discards the payload. Unless reply's type holds zero-copy views into the
// buffer (ERMIViews), the payload is released back to the transport arena —
// the caller must not touch it (or call Payload) afterwards.
func (ca *Call) Decode(reply interface{}) error {
	out, err := ca.Payload()
	if err != nil {
		return err
	}
	if reply == nil {
		ca.res.payload = nil
		arenaPut(out)
		return nil
	}
	err = Decode(out, reply)
	if !holdsViews(reply) {
		ca.res.payload = nil
		arenaPut(out)
	}
	return err
}

// Release returns the call object to the pool. An incomplete call is
// abandoned first: its pending entry is reclaimed (or the imminent result
// drained), so the pooled object is always quiescent. The Call must not be
// used after Release.
func (ca *Call) Release() {
	if ca.done == nil {
		return // already released (programmer error; keep it non-fatal)
	}
	if ca.c != nil && ca.c.batch != nil && ca.queued.Load() {
		// Still sitting in the batch queue: remove the entry so the flusher
		// cannot transmit a payload the caller is now free to recycle, nor
		// touch this object once pooled.
		ca.c.batch.purge(ca)
	}
	select {
	case <-ca.done:
	default:
		if ca.c.reclaim(ca.seq) {
			// We won the race: no result will ever arrive. Complete the
			// call ourselves so concurrent Done waiters unblock.
			ca.deliver(callResult{err: fmt.Errorf("%s.%s: call abandoned: %w", ca.service, ca.method, ErrClosed)})
		} else {
			// The read loop checked the entry out first; its delivery is
			// imminent. Wait for it so the pooled object is quiescent.
			<-ca.done
		}
	}
	ca.c = nil
	ca.res = callResult{}
	ca.done = nil
	callPool.Put(ca)
}

// Wait blocks until the call completes or timeout elapses (timeout <= 0
// waits indefinitely), returns the response payload and releases the call
// object. The Call must not be used after Wait returns.
func (ca *Call) Wait(timeout time.Duration) ([]byte, error) {
	ca.kickIfQueued()
	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		select {
		case <-ca.done: // already complete: skip the timer entirely
		default:
			if t, ok := timerPool.Get().(*time.Timer); ok {
				t.Reset(timeout)
				timer = t
			} else {
				timer = time.NewTimer(timeout)
			}
			expired = timer.C
		}
	}
	select {
	case <-ca.done:
		if timer != nil {
			if !timer.Stop() {
				// Pre-go1.23 timer semantics could leave the fired value
				// buffered; drain so a pooled timer can never satisfy a
				// later call's deadline instantly.
				select {
				case <-timer.C:
				default:
				}
			}
			timerPool.Put(timer)
		}
		payload := ca.res.payload
		err := ca.err()
		ca.Release()
		if err != nil {
			return nil, err
		}
		return payload, nil
	case <-expired:
		timerPool.Put(timer) // already fired; Reset on reuse rearms it
		service, method := ca.service, ca.method
		ca.Release()
		return nil, fmt.Errorf("%s.%s: %w", service, method, ErrTimeout)
	}
}

var timerPool sync.Pool // *time.Timer, stopped

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a bounded dial time.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialBatched(addr, timeout, BatchOptions{})
}

// DialBatched connects with a bounded dial time and, when bo.MaxDelay > 0,
// enables adaptive client-side batching (see BatchOptions).
func DialBatched(addr string, timeout time.Duration, bo BatchOptions) (*Client, error) {
	return DialOpts(addr, DialOptions{Timeout: timeout, Batch: bo})
}

// DialOptions configures a client connection.
type DialOptions struct {
	// Timeout bounds the TCP dial (<= 0: 5s).
	Timeout time.Duration
	// Batch enables adaptive client-side batching when MaxDelay > 0.
	Batch BatchOptions
	// Epoch, when non-nil, supplies the routing epoch stamped on every
	// outgoing request (typically route.State.Epoch of the owning stub).
	Epoch func() uint64
	// OnRouteUpdate, when non-nil, receives every route table piggybacked
	// on a response, before the response is delivered to its caller. It
	// runs on the read loop and must not block.
	OnRouteUpdate func(t route.Table)
	// OnEvent, when non-nil, receives every server-push event frame (see
	// Event). It runs on the read loop — it must not block, and the event's
	// Payload is only valid for the duration of the call (copy what
	// outlives it). A client without a handler drops events silently. The
	// handler can also be (re)installed after dial with SetEventHandler.
	OnEvent func(ev Event)
}

// DialOpts connects with the full option surface.
func DialOpts(addr string, opts DialOptions) (*Client, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // the writer already coalesces; don't add Nagle latency
	}
	c := &Client{
		addr:    addr,
		conn:    conn,
		w:       newConnWriter(conn),
		epochFn: opts.Epoch,
		onRoute: opts.OnRouteUpdate,
		pending: make(map[uint64]*Call),
		done:    make(chan struct{}),
	}
	if opts.OnEvent != nil {
		fn := opts.OnEvent
		c.onEvent.Store(&fn)
	}
	if opts.Batch.MaxDelay > 0 {
		c.batch = newBatcher(c, opts.Batch)
	}
	// The preamble rides in the write buffer until the first frame flushes,
	// so it costs no extra syscall.
	c.w.bw.Write(preamble[:])
	go c.readLoop()
	return c, nil
}

// epoch returns the routing epoch to stamp on an outgoing request.
func (c *Client) epoch() uint64 {
	if c.epochFn == nil {
		return 0
	}
	return c.epochFn()
}

// Addr returns the remote address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// SetEventHandler installs (or, with nil, removes) the server-push event
// handler. Safe to call while the client runs; the same contract as
// DialOptions.OnEvent applies (runs on the read loop, must not block,
// Payload valid only during the call).
func (c *Client) SetEventHandler(fn func(Event)) {
	if fn == nil {
		c.onEvent.Store(nil)
		return
	}
	c.onEvent.Store(&fn)
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, connBufSize)
	for {
		kind, meta, payload, err := readFrame(br)
		if err != nil {
			c.failAll(err)
			return
		}
		// Exhaustive over frameKind (enforced by ermi-vet): a kind added to
		// the protocol must choose its client-side fate here explicitly.
		switch kind {
		case frameEvent:
			var ev Event
			perr := parseEvent(meta, payload, &ev)
			arenaPut(meta)
			if perr != nil {
				arenaPut(payload)
				c.failAll(perr)
				return
			}
			if fn := c.onEvent.Load(); fn != nil {
				(*fn)(ev)
			}
			// The payload slab is done once the handler returns (it copies
			// what it keeps); a handlerless client just drops the event.
			arenaPut(payload)
			continue
		case frameRequest, frameOneWay, frameBatch:
			// Client-to-server kinds arriving at a client: the peer is not
			// speaking our side of the protocol, so kill the connection.
			arenaPut(meta)
			arenaPut(payload)
			c.failAll(fmt.Errorf("transport: protocol violation: frame kind %d", kind))
			return
		case frameResponse:
			// Falls through to the response path below.
		}
		var res callResult
		seq, err := parseResponse(meta, payload, &res)
		// The metadata slab is done the moment parsing returns: strings and
		// route tables were copied out. The payload slab's ownership travels
		// with the delivered result.
		arenaPut(meta)
		if err != nil {
			arenaPut(payload)
			c.failAll(err)
			return
		}
		if res.route != nil && c.onRoute != nil {
			// Install the piggybacked table before completing the call, so
			// a caller that fails over immediately after an error sees the
			// corrected view rather than re-picking from the stale one.
			c.onRoute(*res.route)
		}
		c.mu.Lock()
		ca, ok := c.pending[seq]
		if ok {
			delete(c.pending, seq)
		}
		c.mu.Unlock()
		if ok {
			ca.deliver(res)
		} else {
			// A response for an unknown seq was abandoned by a timed-out
			// caller that reclaimed its pending entry first; recycle it.
			arenaPut(payload)
		}
	}
}

// failAll delivers a connection-level failure to every pending call and
// poisons the client for future calls.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	pend := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	res := callResult{err: fmt.Errorf("transport: connection lost: %w", ErrClosed)}
	for _, ca := range pend {
		ca.deliver(res)
	}
}

// reclaim removes seq from the pending map. It reports whether the caller
// won the race: true means no result will ever be delivered for this call,
// false means the read loop (or failAll) already checked the entry out and
// delivery is imminent.
func (c *Client) reclaim(seq uint64) bool {
	c.mu.Lock()
	_, present := c.pending[seq]
	if present {
		delete(c.pending, seq)
	}
	c.mu.Unlock()
	return present
}

// failCall delivers err to ca unless the read loop got there first (in
// which case the genuine result stands) or the caller abandoned the call.
// seq is passed explicitly rather than read from ca: a batch entry may
// outlive its released Call object (Release/Wait-timeout while queued), and
// the stale pointer's seq field could already belong to a reused checkout —
// the captured seq makes the reclaim miss, so nothing is ever delivered to
// an object the error path no longer owns.
func (c *Client) failCall(seq uint64, ca *Call, err error) {
	if c.reclaim(seq) {
		ca.deliver(callResult{err: err})
	}
}

// Go starts an asynchronous invocation of service.method and returns its
// future. The returned Call always completes — pre-flight failures (closed
// or poisoned connections, write errors) are delivered through it. The
// payload must stay valid until the call completes: batching may hold it
// briefly before writing. Consume the result with Wait, or with
// Done/Err/Decode followed by Release.
func (c *Client) Go(service, method string, payload []byte) *Call {
	return c.GoBudget(service, method, payload, 0)
}

// GoBudget is Go with a deadline budget stamped on the wire: the server
// charges queue wait against it and drops the work unexecuted (answering
// statusExpired) once it runs out, so an expired request never occupies a
// handler nobody is waiting for. budget <= 0 sends no deadline.
func (c *Client) GoBudget(service, method string, payload []byte, budget time.Duration) *Call {
	seq := c.seq.Add(1)
	ca := newCall(c, service, method, seq)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ca.deliver(callResult{err: ErrClosed})
		return ca
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		ca.deliver(callResult{err: fmt.Errorf("transport: connection failed: %w", err)})
		return ca
	}
	c.pending[seq] = ca
	c.mu.Unlock()

	epoch := c.epoch()
	bmicros := budgetMicros(budget)
	if c.batch != nil {
		c.batch.enqueue(batchEntry{seq: seq, epoch: epoch, budget: bmicros, service: service, method: method, payload: payload, ca: ca})
		return ca
	}
	if err := c.w.writeRequest(seq, epoch, bmicros, service, method, payload); err != nil {
		c.failCall(seq, ca, fmt.Errorf("transport: write: %w", err))
	}
	return ca
}

// OneWay invokes service.method without waiting for — or the server ever
// sending — a response frame. Delivery is at-most-once: a connection
// failure after submission loses the invocation silently, which is the
// contract of a one-way call. With batching enabled submission is
// asynchronous, so even the write itself may fail after OneWay returned
// nil; the connection's sticky error then surfaces on the next invocation.
// No call object is allocated or pooled.
func (c *Client) OneWay(service, method string, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		// Wrap ErrClosed: nothing was submitted, so callers (stub failover)
		// can distinguish this from an ambiguous post-write failure and
		// safely resubmit elsewhere.
		return fmt.Errorf("transport: connection failed: %v: %w", err, ErrClosed)
	}
	c.mu.Unlock()

	// Refuse unframeable payloads before submission on both paths: a
	// batched one-way has no future to carry the error, so a post-enqueue
	// failure would be a permanent silent drop of a deterministic caller
	// bug.
	epoch := c.epoch()
	if size := requestFrameSize(0, epoch, 0, service, method, payload); size > MaxFrame {
		return fmt.Errorf("%w: request frame of %d bytes", ErrFrameTooLarge, size)
	}
	if c.batch != nil {
		c.batch.enqueue(batchEntry{oneway: true, epoch: epoch, service: service, method: method, payload: payload})
		return nil
	}
	if err := c.w.writeOneWay(0, epoch, 0, service, method, payload); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	return nil
}

// Call invokes service.method with the given payload and waits up to timeout
// for the response payload. timeout <= 0 means wait indefinitely. A positive
// timeout doubles as the call's deadline budget on the wire: the server
// drops the work unexecuted if the budget expires before a worker picks it
// up, so a timed-out caller never leaves zombie work running remotely.
func (c *Client) Call(service, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return c.GoBudget(service, method, payload, timeout).Wait(timeout)
}

// CallDecode is the typed convenience around Call: it encodes arg, invokes
// service.method and decodes the response payload into reply (generated
// codec or gob; see transport.Encode). A nil arg sends an empty payload; a
// nil reply discards the response payload. CallDecode manages the payload
// arena end to end: the request buffer is released once the call completes
// and the response buffer after decoding (unless reply's type holds
// zero-copy views into it).
func (c *Client) CallDecode(service, method string, arg, reply interface{}, timeout time.Duration) error {
	var payload []byte
	if arg != nil {
		var err error
		payload, err = Encode(arg)
		if err != nil {
			return err
		}
	}
	out, err := c.Call(service, method, payload, timeout)
	// Call returned, so the request bytes are written (or the entry was
	// purged from the batch queue): the encode buffer is reusable.
	arenaPut(payload)
	if err != nil {
		return err
	}
	if reply == nil {
		arenaPut(out)
		return nil
	}
	err = Decode(out, reply)
	if !holdsViews(reply) {
		arenaPut(out)
	}
	return err
}

// GoDecode is the typed convenience around Go: it gob-encodes arg and
// starts the asynchronous invocation. Encoding failures are delivered
// through the returned future.
func (c *Client) GoDecode(service, method string, arg interface{}) *Call {
	var payload []byte
	if arg != nil {
		var err error
		payload, err = Encode(arg)
		if err != nil {
			ca := newCall(c, service, method, 0)
			ca.deliver(callResult{err: err})
			return ca
		}
	}
	return c.Go(service, method, payload)
}

// OneWayDecode is the typed convenience around OneWay.
func (c *Client) OneWayDecode(service, method string, arg interface{}) error {
	var payload []byte
	if arg != nil {
		var err error
		payload, err = Encode(arg)
		if err != nil {
			return err
		}
	}
	return c.OneWay(service, method, payload)
}

// Close tears down the connection. Outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.batch != nil {
		c.batch.close()
	}
	err := c.conn.Close()
	<-c.done
	return err
}
