package transport

import (
	"bytes"
	"testing"
)

// gobSmallPayload and gobLargePayload have no generated codec, so Encode
// takes the gob fallback path through encBufPool.
type gobSmallPayload struct {
	A, B int
	S    string
}

type gobLargePayload struct {
	Data []byte
}

// TestEncBufPoolDropsOversizeBuffers pins the pool-poisoning fix: an encode
// buffer grown past maxPooledEncBuf must go to the GC, not back into
// encBufPool, or one large payload would permanently inflate the buffer
// handed to every later small encode.
func TestEncBufPoolDropsOversizeBuffers(t *testing.T) {
	big := new(bytes.Buffer)
	big.Grow(maxPooledEncBuf + 1)
	putEncBuf(big)
	if got := encBufPool.Get().(*bytes.Buffer); got == big {
		t.Fatalf("encode buffer with cap %d (> maxPooledEncBuf %d) was returned to the pool", big.Cap(), maxPooledEncBuf)
	}

	// At or under the cap the buffer is eligible for reuse (the pool may
	// still drop it on a GC cycle; only the oversize rejection is
	// contractual).
	ok := new(bytes.Buffer)
	ok.Grow(maxPooledEncBuf / 2)
	putEncBuf(ok)
}

// TestEncodeSteadyStateAfterLargeBurst checks that a burst of large
// gob-fallback payloads leaves the small-encode steady state intact: the
// per-op allocation cost afterwards reflects the small working set, not the
// largest payload ever seen.
func TestEncodeSteadyStateAfterLargeBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping inner benchmark in -short mode")
	}
	for i := 0; i < 8; i++ {
		out, err := Encode(gobLargePayload{Data: make([]byte, 4*maxPooledEncBuf)})
		if err != nil {
			t.Fatal(err)
		}
		ReleasePayload(out)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := Encode(gobSmallPayload{A: i, B: -i, S: "steady"})
			if err != nil {
				b.Fatal(err)
			}
			ReleasePayload(out)
		}
	})
	// A small gob encode costs a few hundred bytes (encoder state + type
	// info). The bound has headroom for that but is far below what any
	// burst-sized buffer churn would show.
	if bpo := res.AllocedBytesPerOp(); bpo > 4096 {
		t.Fatalf("small Encode allocates %d B/op after large-payload burst; want <= 4096", bpo)
	}
}
