package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// startGated starts a server whose handler parks on release, with a tiny
// admission controller: one execution slot and a queue of queueCap. The
// returned counter reports handler executions.
func startGated(t *testing.T, queueCap int) (srv *Server, executed *atomic.Int64, release chan struct{}) {
	t.Helper()
	executed = new(atomic.Int64)
	release = make(chan struct{})
	srv, err := ServeOpts("127.0.0.1:0", func(req *Request) ([]byte, error) {
		executed.Add(1)
		if req.Method == "Hold" {
			<-release
		}
		return req.Payload, nil
	}, ServerOptions{MaxConcurrent: 1, MaxQueue: queueCap})
	if err != nil {
		t.Fatalf("ServeOpts: %v", err)
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		srv.Close()
	})
	return srv, executed, release
}

// blockWorker occupies the server's single execution slot and returns once
// the handler is provably running (its execution is counted).
func blockWorker(t *testing.T, c *Client, executed *atomic.Int64) *Call {
	t.Helper()
	ca := c.Go("svc", "Hold", nil)
	for deadline := time.Now().Add(5 * time.Second); executed.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("blocker never reached the handler")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return ca
}

// TestAdmissionShedsWithOverloadStatus: with the gate and the queue full,
// further two-way requests are refused with a distinct overload error — the
// handler never runs for them, the connection survives, and the queued work
// still completes once the slot frees up.
func TestAdmissionShedsWithOverloadStatus(t *testing.T) {
	srv, executed, release := startGated(t, 1)
	c := dial(t, srv.Addr())

	blocker := blockWorker(t, c, executed)
	queued := c.Go("svc", "Echo", []byte("queued")) // fills the queue

	// Gate busy + queue full: this one must be shed, quickly and distinctly.
	start := time.Now()
	_, err := c.Call("svc", "Echo", []byte("shed"), 5*time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed reply took %v; shedding must not wait out the queue", d)
	}
	if got := srv.Stats().Shed; got != 1 {
		t.Fatalf("Stats().Shed = %d, want 1", got)
	}
	if got := executed.Load(); got != 1 {
		t.Fatalf("handler ran %d times while shedding, want only the blocker", got)
	}

	// The member is saturated, not broken: releasing the slot drains the
	// queue and the same connection keeps serving.
	close(release)
	if out, err := queued.Wait(5 * time.Second); err != nil || string(out) != "queued" {
		t.Fatalf("queued call after release: %q, %v", out, err)
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	blocker.Release()
	if out, err := c.Call("svc", "Echo", []byte("after"), 5*time.Second); err != nil || string(out) != "after" {
		t.Fatalf("call after shed: %q, %v", out, err)
	}
}

// TestExpiredInQueueNeverRunsHandler: requests whose budget runs out while
// they wait in the admission queue are dropped at dequeue — the handler is
// never invoked for them and the caller sees a distinct expiry error.
func TestExpiredInQueueNeverRunsHandler(t *testing.T) {
	srv, executed, release := startGated(t, 16)
	c := dial(t, srv.Addr())

	blocker := blockWorker(t, c, executed)

	// Queue a wave with a budget far shorter than the time the slot stays
	// blocked; every one of them must expire in queue.
	const waves = 6
	calls := make([]*Call, waves)
	for i := range calls {
		calls[i] = c.GoBudget("svc", "Echo", []byte("doomed"), 50*time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond) // budgets are now long gone
	close(release)

	for i, ca := range calls {
		if _, err := ca.Wait(5 * time.Second); !errors.Is(err, ErrExpired) {
			t.Fatalf("call %d err = %v, want ErrExpired", i, err)
		}
	}
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	blocker.Release()
	if got := executed.Load(); got != 1 {
		t.Fatalf("handler executed %d requests, want only the blocker (expired work must never run)", got)
	}
	if got := srv.Stats().Expired; got != waves {
		t.Fatalf("Stats().Expired = %d, want %d", got, waves)
	}

	// A fresh call with a healthy budget sails through.
	if out, err := c.Call("svc", "Echo", []byte("alive"), 5*time.Second); err != nil || string(out) != "alive" {
		t.Fatalf("call after expiry storm: %q, %v", out, err)
	}
}

// TestOneWayDroppedWhenSaturated: one-way frames pass through the same
// admission gate; when it is full they are dropped — counted as shed, never
// parked on an unbounded goroutine, never executed later.
func TestOneWayDroppedWhenSaturated(t *testing.T) {
	srv, executed, release := startGated(t, 1)
	c := dial(t, srv.Addr())

	blocker := blockWorker(t, c, executed)
	if err := c.OneWay("svc", "Echo", []byte("queued")); err != nil {
		t.Fatalf("OneWay into free queue slot: %v", err)
	}

	// Queue full: these are dropped server-side; the submission itself
	// succeeds (one-way has no reply to carry a refusal).
	const dropped = 8
	for i := 0; i < dropped; i++ {
		if err := c.OneWay("svc", "Echo", nil); err != nil {
			t.Fatalf("OneWay %d: %v", i, err)
		}
	}
	// The drop is synchronous with the read loop; an Echo round-trip after
	// the one-way frames would deadlock here (single slot is blocked), so
	// poll the counter instead.
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().Shed < dropped; {
		if time.Now().After(deadline) {
			t.Fatalf("Stats().Shed = %d, want %d", srv.Stats().Shed, dropped)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := blocker.Err(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	blocker.Release()
	// Exactly the blocker and the one queued one-way run — the dropped ones
	// must never execute, even now that the slot is free.
	for deadline := time.Now().Add(5 * time.Second); executed.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("queued one-way never executed (executed = %d)", executed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // a dropped one-way would surface here
	if got := executed.Load(); got != 2 {
		t.Fatalf("executed = %d, want 2 (blocker + queued one-way only)", got)
	}
}

// TestBudgetReachesHandler: the remaining-budget field survives the wire on
// both the plain and the batched path, anchored as a server-side deadline.
func TestBudgetReachesHandler(t *testing.T) {
	type seen struct {
		budget   time.Duration
		deadline time.Time
	}
	ch := make(chan seen, 4)
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		ch <- seen{budget: req.Budget, deadline: req.Deadline}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	check := func(c *Client, label string) {
		t.Helper()
		if _, err := c.Call("svc", "M", nil, 1500*time.Millisecond); err != nil {
			t.Fatalf("%s Call: %v", label, err)
		}
		got := <-ch
		if got.budget <= 0 || got.budget > 1500*time.Millisecond {
			t.Fatalf("%s budget = %v, want in (0, 1.5s]", label, got.budget)
		}
		if got.deadline.IsZero() {
			t.Fatalf("%s deadline not anchored", label)
		}
		// No budget requested -> none on the wire.
		if _, err := c.Call("svc", "M", nil, 0); err != nil {
			t.Fatalf("%s unbounded Call: %v", label, err)
		}
		if got := <-ch; got.budget != 0 || !got.deadline.IsZero() {
			t.Fatalf("%s unbounded call carried budget %v deadline %v", label, got.budget, got.deadline)
		}
	}
	plain := dial(t, srv.Addr())
	check(plain, "plain")
	batched, err := DialBatched(srv.Addr(), 2*time.Second, BatchOptions{MaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("DialBatched: %v", err)
	}
	t.Cleanup(func() { batched.Close() })
	check(batched, "batched")
}

// TestExpressBypassesSaturatedAdmission: a method on the express lane runs
// even when the gate and the queue are both full of parked work — the lane
// exists for cheap control calls that unblock those very workers — while
// ordinary methods still shed. Without the bypass, a handler waiting on a
// peer's follow-up call deadlocks against the pool it is clogging.
func TestExpressBypassesSaturatedAdmission(t *testing.T) {
	executed := new(atomic.Int64)
	release := make(chan struct{})
	srv, err := ServeOpts("127.0.0.1:0", func(req *Request) ([]byte, error) {
		executed.Add(1)
		if req.Method == "Hold" {
			<-release
		}
		return req.Payload, nil
	}, ServerOptions{MaxConcurrent: 1, MaxQueue: 1, Express: func(service, method string) bool {
		return method == "Ping"
	}})
	if err != nil {
		t.Fatalf("ServeOpts: %v", err)
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		srv.Close()
	})
	c := dial(t, srv.Addr())

	blocker := blockWorker(t, c, executed)
	// Second Hold fills the queue (requests on one connection are ingested
	// in order, so it is parked before anything sent after it).
	queued := c.Go("svc", "Hold", nil)
	// An ordinary method is refused — proof the admission path is saturated.
	if _, err := c.Call("svc", "Probe", nil, 2*time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe through full admission: %v, want ErrOverloaded", err)
	}
	// The express method sails past the jam.
	out, err := c.Call("svc", "Ping", []byte("pong"), 2*time.Second)
	if err != nil {
		t.Fatalf("express call under saturation: %v", err)
	}
	if string(out) != "pong" {
		t.Fatalf("express reply drifted: %q", out)
	}
	close(release)
	if _, err := blocker.Wait(5 * time.Second); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if _, err := queued.Wait(5 * time.Second); err != nil {
		t.Fatalf("queued: %v", err)
	}
}
