package transport

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The saturation benchmark behind BENCH_overload.json: the same CPU-bound
// echo workload offered at roughly 10x the server's execution capacity,
// once behind the admission controller sized to the hardware (Guarded) and
// once with the gate and queue opened so wide they never bind (Unguarded —
// the old goroutine-per-request behaviour). Goodput counts replies that
// arrive within the caller's budget. The guarded server sheds the excess
// for the price of a wire round-trip and keeps executing admitted work at
// hardware speed; the unguarded server accepts everything, timeshares the
// CPU across 10x too many handlers, and finishes nearly every call after
// its caller stopped waiting — congestion collapse.
//
// Run via scripts/bench.sh (one experiment per iteration, -benchtime 1x).

// burn spins for d of wall time: a stand-in for a CPU-bound handler whose
// service time dilates under scheduler overcommit, which is exactly the
// mechanism that turns over-admission into collapse.
func burn(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
		for i := 0; i < 256; i++ { //nolint:revive // busy loop is the point
			_ = i
		}
	}
}

func runOverloadExperiment(b *testing.B, opts ServerOptions) (goodput, shedRate, lateRate float64) {
	b.Helper()
	const (
		serviceTime = time.Millisecond
		budget      = 8 * time.Millisecond
		duration    = 1500 * time.Millisecond
	)
	srv, err := ServeOpts("127.0.0.1:0", func(req *Request) ([]byte, error) {
		burn(serviceTime)
		return req.Payload, nil
	}, opts)
	if err != nil {
		b.Fatalf("ServeOpts: %v", err)
	}
	defer srv.Close()

	// Heavy overcommit: the gate admits up to NumCPU concurrent burns; the
	// closed loop keeps 30x NumCPU callers resubmitting the instant they
	// hear back (success, shed or timeout), so the unguarded server runs
	// ~30 burns per core and every one of them dilates past the budget.
	callers := 30 * runtime.NumCPU()
	clients := make([]*Client, 4)
	for i := range clients {
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		clients[i] = c
	}
	var good, shed, late atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		c := clients[i%len(clients)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Call("svc", "Echo", payload, budget)
				switch {
				case err == nil:
					good.Add(1)
				case errors.Is(err, ErrOverloaded), errors.Is(err, ErrExpired):
					shed.Add(1)
				case errors.Is(err, ErrTimeout):
					late.Add(1)
				default:
					return // connection torn down at experiment end
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(duration)
	elapsed := time.Since(start).Seconds()
	close(stop)
	wg.Wait()
	return float64(good.Load()) / elapsed, float64(shed.Load()) / elapsed, float64(late.Load()) / elapsed
}

func reportOverload(b *testing.B, opts ServerOptions) {
	var goodput, shedRate, lateRate float64
	for i := 0; i < b.N; i++ {
		goodput, shedRate, lateRate = runOverloadExperiment(b, opts)
	}
	b.ReportMetric(goodput, "goodput-ops/s")
	b.ReportMetric(shedRate, "shed-ops/s")
	b.ReportMetric(lateRate, "late-ops/s")
	b.ReportMetric(0, "ns/op") // wall time is fixed; ns/op is meaningless here
}

func BenchmarkOverloadGuarded(b *testing.B) {
	// Gate sized to the hardware, queue kept shallow: admitted work clears
	// well inside the budget, everything beyond is shed at wire cost.
	reportOverload(b, ServerOptions{
		MaxConcurrent: runtime.NumCPU(),
		MaxQueue:      runtime.NumCPU(),
	})
}

func BenchmarkOverloadUnguarded(b *testing.B) {
	// Bounds so wide they never bind: every request is accepted and
	// executed, as the pre-admission-control server did.
	reportOverload(b, ServerOptions{MaxConcurrent: 1 << 20, MaxQueue: 1 << 20})
}
