package transport

import (
	"bufio"
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/simclock"
)

// safeBuf is a goroutine-safe in-memory sink the flusher can write to while
// the test inspects it.
type safeBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuf) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *safeBuf) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// newTestBatcher wires a batcher to a sink; no read loop runs, so only the
// write path is exercised.
func newTestBatcher(t *testing.T, sink io.Writer, bo BatchOptions) (*batcher, *Client) {
	t.Helper()
	c := &Client{
		w:       newConnWriter(sink),
		pending: make(map[uint64]*Call),
		done:    make(chan struct{}),
	}
	b := newBatcher(c, bo)
	c.batch = b
	t.Cleanup(b.close)
	return b, c
}

func (b *batcher) setTarget(n int) {
	b.mu.Lock()
	b.target = n
	b.mu.Unlock()
}

func (b *batcher) getTarget() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}

// drainFrames parses every complete frame in the sink, returning each
// frame's kind and metadata section (batch frames carry their entries
// there).
func drainFrames(t *testing.T, raw []byte) (kinds []frameKind, metas [][]byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(raw))
	for {
		kind, meta, _, err := readFrame(br)
		if err != nil {
			return kinds, metas
		}
		kinds = append(kinds, kind)
		metas = append(metas, meta)
	}
}

// wireEntries counts invocations on the wire, looking through batch frames.
func wireEntries(t *testing.T, raw []byte) int {
	t.Helper()
	kinds, bodies := drainFrames(t, raw)
	total := 0
	for i, k := range kinds {
		switch k {
		case frameRequest, frameOneWay:
			total++
		case frameBatch:
			items, err := parseBatch(bodies[i], nil)
			if err != nil {
				t.Fatalf("parseBatch: %v", err)
			}
			total += len(items)
		default:
			t.Fatalf("unexpected frame kind %d", k)
		}
	}
	return total
}

func entry(seq uint64, oneway bool) batchEntry {
	e := batchEntry{seq: seq, service: "s", method: "m", payload: []byte{byte(seq)}, oneway: oneway}
	if !oneway {
		e.ca = newCall(nil, "s", "m", seq)
	}
	return e
}

// waitFor polls cond until it holds or the deadline fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestBatcherFlushesWithoutClockAdvance: at the initial threshold every
// enqueue wakes the flusher, so entries reach the wire with the sim clock
// frozen — sparse traffic never depends on the latency-bound timer.
func TestBatcherFlushesWithoutClockAdvance(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	var buf safeBuf
	b, _ := newTestBatcher(t, &buf, BatchOptions{MaxDelay: time.Minute, Clock: clk})

	b.enqueue(entry(1, false))
	b.enqueue(entry(2, true))
	waitFor(t, "both entries on the wire", func() bool { return wireEntries(t, buf.Snapshot()) == 2 })
}

// TestBatcherHonorsLatencyBoundUnderSimclock: an entry queued below the
// wake threshold (and with nobody blocked on it) is flushed by the timer no
// later than MaxDelay on the injected clock — and not before.
func TestBatcherHonorsLatencyBoundUnderSimclock(t *testing.T) {
	const maxDelay = 5 * time.Millisecond
	clk := simclock.NewSim(time.Unix(0, 0))
	var buf safeBuf
	b, _ := newTestBatcher(t, &buf, BatchOptions{MaxDelay: maxDelay, Clock: clk})
	b.setTarget(4)

	b.enqueue(entry(1, true)) // one-way: no future anyone could wait on
	waitFor(t, "latency-bound timer armed", func() bool { return clk.Pending() > 0 })
	time.Sleep(20 * time.Millisecond) // real time passes; sim time does not
	if buf.Len() != 0 {
		t.Fatal("entry flushed before the sim clock reached the latency bound")
	}

	clk.Advance(maxDelay)
	waitFor(t, "timer flush", func() bool { return buf.Len() > 0 })
	kinds, _ := drainFrames(t, buf.Snapshot())
	if len(kinds) != 1 || kinds[0] != frameOneWay {
		t.Fatalf("timer flush of a single one-way = %v, want one plain one-way frame", kinds)
	}
}

// TestBatcherCoalescesIntoBatchFrame: entries accumulating under the wake
// threshold go out as one batch frame whose entries decode back intact.
func TestBatcherCoalescesIntoBatchFrame(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	var buf safeBuf
	b, _ := newTestBatcher(t, &buf, BatchOptions{MaxDelay: time.Minute, Clock: clk})
	b.setTarget(4)

	b.enqueue(entry(10, false))
	b.enqueue(entry(11, true))
	b.enqueue(entry(12, false))
	b.enqueue(entry(13, false)) // hits the threshold: flusher drains all four
	waitFor(t, "batch on the wire", func() bool { return buf.Len() > 0 })
	kinds, bodies := drainFrames(t, buf.Snapshot())
	if len(kinds) != 1 || kinds[0] != frameBatch {
		t.Fatalf("frames = %v, want exactly one batch frame", kinds)
	}
	items, err := parseBatch(bodies[0], nil)
	if err != nil {
		t.Fatalf("parseBatch: %v", err)
	}
	if len(items) != 4 {
		t.Fatalf("batch carried %d entries, want 4", len(items))
	}
	for i, want := range []struct {
		seq    uint64
		oneway bool
	}{{10, false}, {11, true}, {12, false}, {13, false}} {
		if items[i].req.Seq != want.seq || items[i].oneway != want.oneway {
			t.Fatalf("entry %d = seq %d oneway %v, want seq %d oneway %v",
				i, items[i].req.Seq, items[i].oneway, want.seq, want.oneway)
		}
		if items[i].req.Service != "s" || items[i].req.Method != "m" {
			t.Fatalf("entry %d = %s.%s", i, items[i].req.Service, items[i].req.Method)
		}
	}
}

// TestBatcherTimerFlushMatchesTargetToDemand: a timer flush below the wake
// threshold resets the threshold to the observed demand, so the next burst
// of that size flushes on arrival instead of waiting out the timer again.
func TestBatcherTimerFlushMatchesTargetToDemand(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	var buf safeBuf
	b, _ := newTestBatcher(t, &buf, BatchOptions{MaxDelay: time.Millisecond, Clock: clk})
	b.setTarget(8)

	b.enqueue(entry(1, true))
	b.enqueue(entry(2, true))
	b.enqueue(entry(3, true))
	waitFor(t, "timer armed", func() bool { return clk.Pending() > 0 })
	clk.Advance(time.Millisecond)
	waitFor(t, "timer flush", func() bool { return wireEntries(t, buf.Snapshot()) == 3 })
	if target := b.getTarget(); target != 3 {
		t.Fatalf("target = %d after timer flush of 3, want 3", target)
	}
	// A burst of exactly that demand now flushes with the clock frozen.
	b.enqueue(entry(4, true))
	b.enqueue(entry(5, true))
	b.enqueue(entry(6, true))
	waitFor(t, "matched burst flushed without the timer", func() bool {
		return wireEntries(t, buf.Snapshot()) == 6
	})
}

// gatedWriter blocks every Write until released, simulating a saturated
// connection.
type gatedWriter struct {
	buf  safeBuf
	gate chan struct{}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	return g.buf.Write(p)
}

// TestBatcherGrowsTargetUnderPressure: while a write is in flight, later
// entries accumulate; a drain that outgrows the wake threshold doubles it —
// demand outpacing the writer is when coalescing pays.
func TestBatcherGrowsTargetUnderPressure(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	gw := &gatedWriter{gate: make(chan struct{})}
	b, _ := newTestBatcher(t, gw, BatchOptions{MaxDelay: time.Minute, Clock: clk})

	b.enqueue(entry(1, true)) // wakes the flusher; its write blocks on the gate
	waitFor(t, "flusher stuck in the gated write", func() bool {
		b.mu.Lock()
		n := len(b.queue)
		b.mu.Unlock()
		return n == 0
	})
	// The entries accumulating behind the blocked write form the next drain.
	b.enqueue(entry(2, true))
	b.enqueue(entry(3, true))
	close(gw.gate) // open the connection back up
	waitFor(t, "all entries on the wire", func() bool { return wireEntries(t, gw.buf.Snapshot()) == 3 })
	waitFor(t, "target growth under pressure", func() bool { return b.getTarget() >= 2 })
}

// TestWaitFlushesQueuedEntry: a caller blocking on a still-queued future
// forces the flush immediately — request/response traffic never pays the
// latency bound, however large the wake threshold.
func TestWaitFlushesQueuedEntry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	// An hour-long latency bound: only flush-on-wait can complete the call
	// within the test's lifetime.
	c, err := DialBatched(srv.Addr(), 2*time.Second, BatchOptions{MaxDelay: time.Hour})
	if err != nil {
		t.Fatalf("DialBatched: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	c.batch.setTarget(64)

	start := time.Now()
	out, err := c.Go("svc", "Echo", []byte("kick")).Wait(10 * time.Second)
	if err != nil || string(out) != "kick" {
		t.Fatalf("Wait on queued call: %q, %v", out, err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("flush-on-wait took %v", took)
	}
}

// TestBatcherCloseFailsQueuedFutures: closing with entries still queued
// completes their futures with ErrClosed instead of leaving them hanging.
func TestBatcherCloseFailsQueuedFutures(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	var buf safeBuf
	b, c := newTestBatcher(t, &buf, BatchOptions{MaxDelay: time.Minute, Clock: clk})
	b.setTarget(4)

	e := entry(1, false)
	c.mu.Lock()
	c.pending[e.seq] = e.ca
	c.mu.Unlock()
	b.enqueue(e)
	select {
	case <-e.ca.done:
		t.Fatal("queued entry completed before close")
	default:
	}
	b.close()
	select {
	case <-e.ca.done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued future not failed by close")
	}
	if err := e.ca.err(); err == nil {
		t.Fatal("queued future closed without error")
	}
}
