package transport

import (
	"sync"
	"time"
)

// ConnCache is a keyed cache of Clients: one shared connection per remote
// address, dialed lazily. Dials happen outside the cache lock, and
// concurrent Gets for the same address coalesce onto a single in-flight dial
// (singleflight), so a slow or unreachable peer never blocks calls to other
// peers and never triggers a thundering herd of dials.
//
// The stub, group and other connection-holding layers share this type
// instead of each maintaining its own map of clients.
type ConnCache struct {
	opts DialOptions

	mu      sync.Mutex
	conns   map[string]*Client
	dialing map[string]*dialWait
	closed  bool
}

// dialWait is one in-flight dial; done is closed once c/err are set.
type dialWait struct {
	done chan struct{}
	c    *Client
	err  error
}

// NewConnCache creates a cache whose dials are bounded by dialTimeout
// (<= 0 means 2s, the historical per-member dial bound).
func NewConnCache(dialTimeout time.Duration) *ConnCache {
	return NewConnCacheOpts(DialOptions{Timeout: dialTimeout})
}

// NewConnCacheOpts creates a cache applying opts to every client it dials
// (batching, epoch stamping, route-update delivery). A zero Timeout means
// 2s, the historical per-member dial bound.
func NewConnCacheOpts(opts DialOptions) *ConnCache {
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	return &ConnCache{
		opts:    opts,
		conns:   make(map[string]*Client),
		dialing: make(map[string]*dialWait),
	}
}

// Get returns the cached client for addr, dialing it if needed. Callers that
// observe a broken client should Drop it and retry.
func (cc *ConnCache) Get(addr string) (*Client, error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := cc.conns[addr]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	if w, ok := cc.dialing[addr]; ok {
		cc.mu.Unlock()
		<-w.done
		return w.c, w.err
	}
	w := &dialWait{done: make(chan struct{})}
	cc.dialing[addr] = w
	cc.mu.Unlock()

	c, err := DialOpts(addr, cc.opts)

	cc.mu.Lock()
	delete(cc.dialing, addr)
	if err == nil {
		if cc.closed {
			c.Close()
			c, err = nil, ErrClosed
		} else {
			cc.conns[addr] = c
		}
	}
	cc.mu.Unlock()
	w.c, w.err = c, err
	close(w.done)
	return c, err
}

// Drop closes and forgets the cached client for addr, if any. An in-flight
// dial for addr is unaffected; its client will be cached when it lands.
func (cc *ConnCache) Drop(addr string) {
	cc.mu.Lock()
	c, ok := cc.conns[addr]
	if ok {
		delete(cc.conns, addr)
	}
	cc.mu.Unlock()
	if ok {
		c.Close()
	}
}

// Addrs returns the addresses with a cached connection.
func (cc *ConnCache) Addrs() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]string, 0, len(cc.conns))
	for a := range cc.conns {
		out = append(out, a)
	}
	return out
}

// Close closes every cached client. Subsequent Gets fail with ErrClosed;
// clients handed out by dials still in flight are closed as they land.
func (cc *ConnCache) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	conns := make([]*Client, 0, len(cc.conns))
	for _, c := range cc.conns {
		conns = append(conns, c)
	}
	cc.conns = make(map[string]*Client)
	cc.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
