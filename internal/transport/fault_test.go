// Fault-injection tests for the transport, running on the shared ermitest
// harness (external test package: ermitest depends on transport, so these
// cannot live in package transport). TestLargeFrameRoundTrip and
// TestSequentialCallsReuseConnection migrated here from
// transport_more_test.go.
package transport_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"elasticrmi/internal/ermitest"
	"elasticrmi/internal/transport"
)

type echoArgs struct {
	Text string
	N    int
}

func echoHandler(req *transport.Request) ([]byte, error) {
	return req.Payload, nil
}

// TestLargeFrameRoundTrip pushes a multi-megabyte payload through the
// framed protocol (on a healthy fault-wrapped listener: the wrapping itself
// must be transparent).
func TestLargeFrameRoundTrip(t *testing.T) {
	srv := ermitest.ServeFaulty(t, echoHandler, ermitest.NewFault())
	c := ermitest.DialServer(t, srv)
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	payload, err := transport.Encode(echoArgs{Text: string(big)})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := c.Call("svc", "Echo", payload, 30*time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	var got echoArgs
	if err := transport.Decode(out, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Text) != len(big) {
		t.Fatalf("round trip %d bytes, want %d", len(got.Text), len(big))
	}
}

// TestSequentialCallsReuseConnection verifies many calls work over one
// connection without resource buildup.
func TestSequentialCallsReuseConnection(t *testing.T) {
	srv := ermitest.ServeFaulty(t, echoHandler, ermitest.NewFault())
	c := ermitest.DialServer(t, srv)
	payload, _ := transport.Encode(echoArgs{N: 1})
	for i := 0; i < 500; i++ {
		if _, err := c.Call("svc", "Echo", payload, 5*time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestInjectedLatencySlowsCalls: calls against a high-latency network take
// at least the injected delay but still succeed.
func TestInjectedLatencySlowsCalls(t *testing.T) {
	f := ermitest.NewFault()
	srv := ermitest.ServeFaulty(t, echoHandler, f)
	c := ermitest.DialServer(t, srv)

	// Warm up the connection (preamble, first frame) before degrading.
	if _, err := c.Call("svc", "Echo", []byte("warm"), 5*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	const delay = 20 * time.Millisecond
	f.SetLatency(delay)
	start := time.Now()
	if _, err := c.Call("svc", "Echo", []byte("slow"), 10*time.Second); err != nil {
		t.Fatalf("call under latency: %v", err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("call took %v under %v injected latency", took, delay)
	}
	f.Clear()
}

// TestPartitionStallsThenHeals: a partition freezes an in-flight call
// without failing it; healing releases it with no bytes lost.
func TestPartitionStallsThenHeals(t *testing.T) {
	f := ermitest.NewFault()
	srv := ermitest.ServeFaulty(t, echoHandler, f)
	c := ermitest.DialServer(t, srv)
	if _, err := c.Call("svc", "Echo", []byte("warm"), 5*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	f.Partition(true)
	done := make(chan error, 1)
	go func() {
		out, err := c.Call("svc", "Echo", []byte("partitioned"), 30*time.Second)
		if err == nil && string(out) != "partitioned" {
			err = errors.New("wrong payload after heal")
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("call completed across a partition: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	f.Partition(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call after heal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call never completed after the partition healed")
	}
}

// TestDroppedWritesKillConnectionNotServer: silently discarded writes
// corrupt one connection's stream; the affected client fails but the server
// keeps serving fresh connections.
func TestDroppedWritesKillConnectionNotServer(t *testing.T) {
	f := ermitest.NewFault()
	srv := ermitest.ServeFaulty(t, echoHandler, f)
	victim := ermitest.DialServer(t, srv)
	if _, err := victim.Call("svc", "Echo", []byte("warm"), 5*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	f.DropEveryN(2) // every second server write vanishes
	sawFailure := false
	for i := 0; i < 20 && !sawFailure; i++ {
		if _, err := victim.Call("svc", "Echo", []byte{byte(i)}, 250*time.Millisecond); err != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("no call failed while half the server's writes were dropped")
	}
	f.Clear()
	fresh := ermitest.DialServer(t, srv)
	out, err := fresh.Call("svc", "Echo", []byte("alive"), 5*time.Second)
	if err != nil || string(out) != "alive" {
		t.Fatalf("server unusable after lossy episode: %q, %v", out, err)
	}
}

// TestTruncatedFrameKillsConnectionNotServer: a server that dies mid-frame
// (truncated write, then close) fails the in-flight call cleanly; the
// listener keeps accepting.
func TestTruncatedFrameKillsConnectionNotServer(t *testing.T) {
	f := ermitest.NewFault()
	srv := ermitest.ServeFaulty(t, echoHandler, f)
	victim := ermitest.DialServer(t, srv)
	if _, err := victim.Call("svc", "Echo", []byte("warm"), 5*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	f.TruncateAfter(16) // the next response is cut mid-frame
	if _, err := victim.Call("svc", "Echo", bytes.Repeat([]byte{1}, 256), 5*time.Second); err == nil {
		t.Fatal("call succeeded across a truncated response frame")
	}
	if _, err := victim.Call("svc", "Echo", []byte("again"), time.Second); err == nil {
		t.Fatal("connection survived a mid-frame close")
	}
	f.Clear()
	fresh := ermitest.DialServer(t, srv)
	out, err := fresh.Call("svc", "Echo", []byte("alive"), 5*time.Second)
	if err != nil || string(out) != "alive" {
		t.Fatalf("server unusable after truncation episode: %q, %v", out, err)
	}
}

// TestAsyncPipelineSurvivesLatency: a window of futures over a degraded
// network completes in roughly one round trip's worth of injected latency,
// not one per call — the point of pipelining.
func TestAsyncPipelineSurvivesLatency(t *testing.T) {
	f := ermitest.NewFault()
	srv := ermitest.ServeFaulty(t, echoHandler, f)
	c := ermitest.DialServer(t, srv)
	if _, err := c.Call("svc", "Echo", []byte("warm"), 5*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	const delay = 10 * time.Millisecond
	f.SetLatency(delay)
	const n = 16
	start := time.Now()
	calls := make([]*transport.Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.Go("svc", "Echo", []byte{byte(i)})
	}
	for i, ca := range calls {
		out, err := ca.Wait(30 * time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(out, []byte{byte(i)}) {
			t.Fatalf("call %d got %v", i, out)
		}
	}
	took := time.Since(start)
	f.Clear()
	// Sequential sync would pay >= n * delay (server-side read + write
	// stalls per call); the pipeline must come in well under half that.
	if took > time.Duration(n)*delay/2 {
		t.Fatalf("pipelined window took %v; latency is being paid per call (sequential cost %v)",
			took, time.Duration(n)*delay)
	}
}
