package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// The transport microbenchmarks measure the raw invocation hot path: one
// echo round-trip over a live TCP connection, excluding application payload
// encoding (the payload is an opaque []byte, as it is for a generated stub).
// Variants cover small/medium/large payloads and single/concurrent callers;
// allocs/op is reported because the call path is designed to be
// allocation-light in steady state.

func startBenchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	if err != nil {
		b.Fatalf("Serve: %v", err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func benchmarkEcho(b *testing.B, payloadSize, callers int) {
	srv := startBenchServer(b)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm the path so steady-state cost is measured.
	if _, err := c.Call("svc", "Echo", payload, 10*time.Second); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.SetBytes(int64(payloadSize))
	b.ReportAllocs()
	b.ResetTimer()

	if callers <= 1 {
		for i := 0; i < b.N; i++ {
			out, err := c.Call("svc", "Echo", payload, 10*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			ReleasePayload(out)
		}
		return
	}

	var wg sync.WaitGroup
	per := b.N / callers
	extra := b.N % callers
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				out, err := c.Call("svc", "Echo", payload, 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				ReleasePayload(out)
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCall is the headline number: a 64-byte echo round-trip from a
// single caller over one multiplexed connection.
func BenchmarkCall(b *testing.B)      { benchmarkEcho(b, 64, 1) }
func BenchmarkCall4KB(b *testing.B)   { benchmarkEcho(b, 4<<10, 1) }
func BenchmarkCall256KB(b *testing.B) { benchmarkEcho(b, 256<<10, 1) }

// BenchmarkCall256KBNoSG is BenchmarkCall256KB with the scatter-gather
// write path disabled (header and payload copied into one contiguous
// buffer), isolating what writev-style vectored writes buy on large frames.
func BenchmarkCall256KBNoSG(b *testing.B) {
	sgEnabled.Store(false)
	b.Cleanup(func() { sgEnabled.Store(true) })
	benchmarkEcho(b, 256<<10, 1)
}

// Concurrent variants share one connection, exercising multiplexing and
// write coalescing under contention.
func BenchmarkCallConcurrent8(b *testing.B)  { benchmarkEcho(b, 64, 8) }
func BenchmarkCallConcurrent64(b *testing.B) { benchmarkEcho(b, 64, 64) }

// benchmarkEchoPipelined measures the asynchronous invocation pipeline: a
// single caller keeps a window of futures in flight on one connection
// (optionally under the adaptive batcher), the workload BenchmarkCall runs
// strictly sequentially.
func benchmarkEchoPipelined(b *testing.B, payloadSize, window int, bo BatchOptions) {
	srv := startBenchServer(b)
	c, err := DialBatched(srv.Addr(), 5*time.Second, bo)
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Call("svc", "Echo", payload, 10*time.Second); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.SetBytes(int64(payloadSize))
	b.ReportAllocs()
	b.ResetTimer()

	calls := make([]*Call, 0, window)
	for done := 0; done < b.N; {
		n := window
		if rem := b.N - done; n > rem {
			n = rem
		}
		calls = calls[:0]
		for j := 0; j < n; j++ {
			calls = append(calls, c.Go("svc", "Echo", payload))
		}
		for _, ca := range calls {
			out, err := ca.Wait(10 * time.Second)
			if err != nil {
				b.Fatal(err)
			}
			ReleasePayload(out)
		}
		done += n
	}
}

// BenchmarkCallPipelined64 is the async-futures figure: window of 64
// outstanding Go calls, no batching.
func BenchmarkCallPipelined64(b *testing.B) {
	benchmarkEchoPipelined(b, 64, 64, BatchOptions{})
}

// BenchmarkCallBatched64 adds the adaptive batcher: the same window
// coalesced into batch frames.
func BenchmarkCallBatched64(b *testing.B) {
	benchmarkEchoPipelined(b, 64, 64, BatchOptions{MaxDelay: 200 * time.Microsecond})
}

// BenchmarkCallBatched256 widens the window to the batcher's frame cap
// territory — the deep-pipeline figure.
func BenchmarkCallBatched256(b *testing.B) {
	benchmarkEchoPipelined(b, 64, 256, BatchOptions{MaxDelay: 200 * time.Microsecond})
}

// BenchmarkOneWay measures fire-and-forget submission throughput; a sync
// barrier call at the end keeps the server honest about having consumed
// the stream. The open-loop flood legitimately fills the admission queue,
// so the barrier retries while it is being shed (one-way drops under
// saturation are the admission contract, not a failure).
func BenchmarkOneWay(b *testing.B) {
	srv := startBenchServer(b)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	payload := make([]byte, 64)
	if _, err := c.Call("svc", "Echo", payload, 10*time.Second); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.OneWay("svc", "Echo", payload); err != nil {
			b.Fatal(err)
		}
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		_, err := c.Call("svc", "Echo", payload, 30*time.Second)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			b.Fatal(err)
		}
	}
}
