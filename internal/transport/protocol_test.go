package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/route"
)

// solvePayloadLen finds the payload length that makes a request frame come
// out at exactly target bytes. The payload rides in the frame's dedicated
// payload section behind a fixed-width length field, so the relationship is
// linear.
func solvePayloadLen(t *testing.T, seq uint64, service, method string, target int) int {
	t.Helper()
	n := target - requestFrameSize(seq, 0, 0, service, method, nil)
	if n <= 0 {
		t.Fatalf("no payload length reaches frame size %d", target)
	}
	return n
}

// TestFrameExactlyAtMaxFrame drives the codec at its boundary: a request
// frame of exactly MaxFrame bytes round-trips; one byte more is refused by
// the writer before anything hits the wire.
func TestFrameExactlyAtMaxFrame(t *testing.T) {
	const seq = 7
	plen := solvePayloadLen(t, seq, "s", "m", MaxFrame)
	payload := make([]byte, plen)
	payload[0], payload[plen-1] = 0xA5, 0x5A

	var buf bytes.Buffer
	w := newConnWriter(&buf)
	if err := w.writeRequest(seq, 0, 0, "s", "m", payload); err != nil {
		t.Fatalf("writeRequest at limit: %v", err)
	}
	if got := buf.Len(); got != MaxFrame+4 {
		t.Fatalf("wire bytes = %d, want %d (frame + 4-byte length)", got, MaxFrame+4)
	}
	kind, meta, payload2, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("readFrame at limit: %v", err)
	}
	if kind != frameRequest {
		t.Fatalf("kind = %d", kind)
	}
	req, err := parseRequest(meta, payload2, nil)
	if err != nil {
		t.Fatalf("parseRequest: %v", err)
	}
	if req.Seq != seq || req.Service != "s" || req.Method != "m" || len(req.Payload) != plen {
		t.Fatalf("decoded = seq %d %s.%s %dB", req.Seq, req.Service, req.Method, len(req.Payload))
	}
	if req.Payload[0] != 0xA5 || req.Payload[plen-1] != 0x5A {
		t.Fatal("payload corrupted at frame boundary")
	}

	// One byte over: refused cleanly, nothing written.
	var buf2 bytes.Buffer
	w2 := newConnWriter(&buf2)
	err = w2.writeRequest(seq, 0, 0, "s", "m", make([]byte, plen+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-limit err = %v, want ErrFrameTooLarge", err)
	}
	if buf2.Len() != 0 {
		t.Fatalf("over-limit frame leaked %d bytes onto the wire", buf2.Len())
	}
}

// TestReadFrameRejectsOversizeHeader feeds a header declaring a frame just
// over MaxFrame; the reader must reject it without attempting the 64MB+
// allocation of a hostile length.
func TestReadFrameRejectsOversizeHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v, want oversize rejection", err)
	}
	// Zero-length frames (no kind byte) are equally malformed.
	binary.BigEndian.PutUint32(hdr[:], 0)
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// A payload length exceeding the declared frame size is rejected before
	// either section is read.
	hostile := []byte{0, 0, 0, 9, byte(frameRequest), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hostile))); !errors.Is(err, errMalformed) {
		t.Fatalf("hostile payload length err = %v, want errMalformed", err)
	}
}

// TestOversizeCallFailsWithoutPoisoningConnection sends a payload too big to
// frame: the call fails with ErrFrameTooLarge and the same connection keeps
// serving subsequent calls.
func TestOversizeCallFailsWithoutPoisoningConnection(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	_, err := c.Call("svc", "Echo", make([]byte, MaxFrame+1), 5*time.Second)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize call err = %v, want ErrFrameTooLarge", err)
	}
	out, err := c.Call("svc", "Echo", []byte("still alive"), 5*time.Second)
	if err != nil || string(out) != "still alive" {
		t.Fatalf("connection unusable after oversize call: %q, %v", out, err)
	}
}

// TestOversizeResponseBecomesRemoteError: a handler producing an unframeable
// response surfaces as a RemoteError at the caller instead of killing the
// connection mid-frame.
func TestOversizeResponseBecomesRemoteError(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		return make([]byte, MaxFrame+1), nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, srv.Addr())
	_, err = c.Call("svc", "Big", nil, 10*time.Second)
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "frame") {
		t.Fatalf("err = %v, want RemoteError about frame limit", err)
	}
	if _, err := c.Call("svc", "Big", nil, 10*time.Second); err == nil {
		t.Fatal("second oversize call succeeded")
	}
}

// TestErrorAndRouteRoundTripsThroughCodec pushes RemoteError and
// route-update edge shapes through the binary response encoding: unicode
// error text, empty addresses, many members, draining flags — piggybacked
// on both success and error replies.
func TestErrorAndRouteRoundTripsThroughCodec(t *testing.T) {
	table := route.Table{Epoch: 42, Members: []route.Member{
		{Addr: "", UID: 1, Weight: 0, Load: 0, Draining: true},
		{Addr: "host-α:1", UID: 2, Weight: 100, Load: 7},
		{Addr: strings.Repeat("x", 300), UID: 3, Weight: 25, Load: 1 << 20},
	}}
	for i := 0; i < 40; i++ {
		table.Members = append(table.Members, route.Member{
			Addr: fmt.Sprintf("10.0.0.%d:90", i), UID: int64(i + 4), Weight: 100,
		})
	}
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		if req.Method == "Unicode" {
			return nil, errors.New("объект перегружен ☂ 故障")
		}
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetRouteSource(func() route.Table { return table })

	var mu sync.Mutex
	var updates []route.Table
	c, err := DialOpts(srv.Addr(), DialOptions{
		OnRouteUpdate: func(tab route.Table) {
			mu.Lock()
			updates = append(updates, tab)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("DialOpts: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	// The table must ride error replies too: a stale client whose call hit
	// an application error still converges on that reply.
	_, err = c.Call("svc", "Unicode", nil, 5*time.Second)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "объект перегружен ☂ 故障" {
		t.Fatalf("unicode remote error = %v", err)
	}
	if _, err := c.Call("svc", "Echo", []byte("p"), 5*time.Second); err != nil {
		t.Fatalf("Echo: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	// The client stamps epoch 0 on every request (no Epoch source), so both
	// replies carry the table.
	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
	for _, u := range updates {
		if u.Epoch != table.Epoch || len(u.Members) != len(table.Members) {
			t.Fatalf("update = epoch %d / %d members", u.Epoch, len(u.Members))
		}
		for i := range table.Members {
			if u.Members[i] != table.Members[i] {
				t.Fatalf("member %d = %+v, want %+v", i, u.Members[i], table.Members[i])
			}
		}
	}
}

// TestParseResponseRejectsHostileRouteCount feeds a response body whose
// declared route-member count vastly exceeds the actual entries; the parser
// must reject it without allocating storage proportional to the claim.
func TestParseResponseRejectsHostileRouteCount(t *testing.T) {
	var body []byte
	body = binary.AppendUvarint(body, 9)          // seq
	body = binary.AppendUvarint(body, 0)          // status OK
	body = binary.AppendUvarint(body, 0)          // no error string
	body = binary.AppendUvarint(body, 3)          // route epoch
	body = binary.AppendUvarint(body, 67_000_000) // hostile member count...
	body = append(body, make([]byte, 64)...)      // ...backed by 64 bytes
	var res callResult
	if _, err := parseResponse(body, nil, &res); !errors.Is(err, errMalformed) {
		t.Fatalf("err = %v, want errMalformed", err)
	}
	if res.route != nil && len(res.route.Members) > 64 {
		t.Fatalf("parser materialized %d route members from a hostile count", len(res.route.Members))
	}
}

// TestConcurrentCloseDuringInFlightCalls closes the client while calls are
// mid-flight from many goroutines: every call must return (result or error,
// never hang), later calls must fail ErrClosed, and the race detector must
// stay quiet.
func TestConcurrentCloseDuringInFlightCalls(t *testing.T) {
	srv := startEcho(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	const callers = 16
	var wg sync.WaitGroup
	var started atomic.Int32 // callers that completed at least one call
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				method := "Echo"
				if j%10 == 0 {
					method = "Slow"
				}
				if _, err := c.Call("svc", method, []byte{byte(j)}, 2*time.Second); err != nil {
					return // connection torn down underneath us — expected
				}
				if j == 0 {
					started.Add(1)
				}
			}
		}()
	}
	// Close only after every caller has a first call behind it (so calls are
	// genuinely mid-flight), instead of hoping a fixed sleep lines up with
	// scheduler timing on a loaded CI machine.
	for deadline := time.Now().Add(10 * time.Second); started.Load() < callers; {
		if time.Now().After(deadline) {
			t.Fatal("callers never got a first call through")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("calls hung after concurrent Close")
	}
	if _, err := c.Call("svc", "Echo", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
}

// TestTimeoutRaceKeepsPooledCallsClean is the regression test for the
// timeout/response race under pooled call objects: timeouts that lose the
// race to the read loop must drain the in-flight result before the call
// object is reused, or a later call on the connection would receive a stale
// response. The echoed marker makes any cross-delivery visible.
func TestTimeoutRaceKeepsPooledCallsClean(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		// Delay controlled by the first payload byte so the response lands
		// right around the client's deadline, maximizing race coverage.
		if len(req.Payload) > 0 {
			time.Sleep(time.Duration(req.Payload[0]) * 100 * time.Microsecond)
		}
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, srv.Addr())

	const callers = 8
	var wg sync.WaitGroup
	var mismatches sync.Map
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				delay := byte(i % 12) // 0..1.1ms server delay
				marker := []byte{delay, byte(g), byte(i), byte(i >> 8)}
				timeout := time.Duration(1+i%2) * 600 * time.Microsecond
				out, err := c.Call("svc", "Echo", marker, timeout)
				if err != nil {
					if !errors.Is(err, ErrTimeout) {
						mismatches.Store(fmt.Sprintf("g%d i%d", g, i), err)
						return
					}
					continue
				}
				if !bytes.Equal(out, marker) {
					mismatches.Store(fmt.Sprintf("g%d i%d", g, i),
						fmt.Errorf("stale response: sent %v got %v", marker, out))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mismatches.Range(func(k, v interface{}) bool {
		t.Errorf("%s: %v", k, v)
		return true
	})
	// The connection must still be fully coherent after the storm.
	for i := 0; i < 100; i++ {
		marker := []byte{0, 0xEE, byte(i)}
		out, err := c.Call("svc", "Echo", marker, 5*time.Second)
		if err != nil {
			t.Fatalf("post-storm call %d: %v", i, err)
		}
		if !bytes.Equal(out, marker) {
			t.Fatalf("post-storm call %d: stale response %v", i, out)
		}
	}
}

// TestConnCacheSingleflight: concurrent Gets for one address share a dial,
// and a dial to an unreachable peer doesn't block Gets for other peers.
func TestConnCacheSingleflight(t *testing.T) {
	srv := startEcho(t)
	cc := NewConnCache(2 * time.Second)
	t.Cleanup(func() { cc.Close() })

	const n = 16
	clients := make([]*Client, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := cc.Get(srv.Addr())
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			clients[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if clients[i] != clients[0] {
			t.Fatal("concurrent Gets produced distinct clients (dial not shared)")
		}
	}

	// An unreachable address must not wedge Gets for live ones: start the
	// slow dial first, then fetch the cached live client.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		cc.Get("10.255.255.1:9") // blackhole; bounded by dial timeout
	}()
	start := time.Now()
	if _, err := cc.Get(srv.Addr()); err != nil {
		t.Fatalf("Get live during dead dial: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("live Get blocked %v behind dead dial", d)
	}
	select {
	case <-slow:
	case <-time.After(10 * time.Second):
		t.Fatal("dead dial never returned")
	}

	cc.Close()
	if _, err := cc.Get(srv.Addr()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

// TestRouteUpdateClampsOutOfRangeFields: a RouteSource handing the server
// unconventional values (weights above 100, negative UIDs/loads) must reach
// stale clients clamped into the wire format's ranges — the parser treats
// out-of-range fields as protocol violations, so an unclamped writer would
// turn one bad weight into a dead connection for every stale caller.
func TestRouteUpdateClampsOutOfRangeFields(t *testing.T) {
	srv := startEcho(t)
	srv.SetRouteSource(func() route.Table {
		return route.Table{Epoch: 3, Members: []route.Member{
			{Addr: "a:1", UID: -5, Weight: 1000, Load: -7},
			{Addr: "b:2", UID: 2, Weight: 50, Load: 4},
		}}
	})
	var mu sync.Mutex
	var got []route.Table
	c, err := DialOpts(srv.Addr(), DialOptions{
		OnRouteUpdate: func(tab route.Table) {
			mu.Lock()
			got = append(got, tab)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("DialOpts: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Call("svc", "Echo", []byte("x"), 5*time.Second); err != nil {
		t.Fatalf("Call with hostile route source: %v (connection must survive)", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("updates = %d, want 1", len(got))
	}
	m := got[0].Members[0]
	if m.UID != 0 || m.Weight != route.DefaultWeight || m.Load != 0 {
		t.Fatalf("clamped member = %+v, want uid 0, weight %d, load 0", m, route.DefaultWeight)
	}
	if got[0].Members[1] != (route.Member{Addr: "b:2", UID: 2, Weight: 50, Load: 4}) {
		t.Fatalf("in-range member altered: %+v", got[0].Members[1])
	}
}
