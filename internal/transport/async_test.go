package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGoFutureRoundTrip drives the future API end to end: Done, Err,
// Decode, Release.
func TestGoFutureRoundTrip(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())

	payload, _ := Encode(echoArgs{Text: "future", N: 9})
	ca := c.Go("svc", "Echo", payload)
	select {
	case <-ca.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("future never completed")
	}
	if err := ca.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	var got echoArgs
	if err := ca.Decode(&got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Text != "future" || got.N != 9 {
		t.Fatalf("round trip = %+v", got)
	}
	ca.Release()
}

// TestGoPipelinesManyCalls keeps a window of futures in flight from a
// single goroutine — the pipelining the synchronous API cannot express —
// and checks every response lands on the right future.
func TestGoPipelinesManyCalls(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())

	const n = 256
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.Go("svc", "Echo", []byte{byte(i), byte(i >> 8)})
	}
	for i, ca := range calls {
		out, err := ca.Wait(5 * time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(out, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("call %d got %v (responses crossed)", i, out)
		}
	}
}

// TestGoErrorsThroughFuture: remote errors and pre-flight failures all
// surface through the future, never as a hang.
func TestGoErrorsThroughFuture(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())

	var remote *RemoteError
	if err := c.Go("svc", "Fail", nil).Err(); !errors.As(err, &remote) {
		t.Fatalf("Fail err = %v, want RemoteError", err)
	}

	c2 := dial(t, srv.Addr())
	c2.Close()
	if err := c2.Go("svc", "Echo", nil).Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Go err = %v, want ErrClosed", err)
	}
}

// TestFuturesCompleteUnderConcurrentClose closes the client while many
// futures are in flight: every one must complete (with a result or an
// error), and none may hang.
func TestFuturesCompleteUnderConcurrentClose(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "plain"
		if batched {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			srv := startEcho(t)
			var bo BatchOptions
			if batched {
				bo = BatchOptions{MaxDelay: 200 * time.Microsecond}
			}
			c, err := DialBatched(srv.Addr(), 2*time.Second, bo)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			const callers = 8
			var wg sync.WaitGroup
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 64; i++ {
						method := "Echo"
						if i%8 == 0 {
							method = "Slow"
						}
						ca := c.Go("svc", method, []byte{byte(g), byte(i)})
						select {
						case <-ca.Done():
							ca.Release()
						case <-time.After(10 * time.Second):
							t.Error("future hung across Close")
							return
						}
					}
				}(g)
			}
			time.Sleep(5 * time.Millisecond)
			c.Close()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("futures hung after concurrent Close")
			}
		})
	}
}

// TestOneWayExecutesWithoutResponse: one-way invocations run on the server
// and the connection carries no response for them — a following two-way
// call gets its own response, uncorrupted.
func TestOneWayExecutesWithoutResponse(t *testing.T) {
	var hits atomic.Int64
	gate := make(chan struct{}, 1024)
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		if req.Method == "Tick" {
			hits.Add(1)
			gate <- struct{}{}
			return nil, errors.New("one-way errors must be dropped, not sent")
		}
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, srv.Addr())

	const n = 100
	for i := 0; i < n; i++ {
		if err := c.OneWay("svc", "Tick", []byte{byte(i)}); err != nil {
			t.Fatalf("OneWay %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-gate:
		case <-time.After(5 * time.Second):
			t.Fatalf("server saw %d/%d one-way invocations", hits.Load(), n)
		}
	}
	// The connection is still coherent: the next two-way call gets its own
	// response, not a stray frame from the one-way storm.
	out, err := c.Call("svc", "Echo", []byte("after"), 5*time.Second)
	if err != nil || string(out) != "after" {
		t.Fatalf("post-one-way call = %q, %v", out, err)
	}
}

// TestOneWayLeaksNoPooledCalls: one-way invocations must not check out or
// register pooled Call objects — the pending map stays empty, so nothing
// can leak or be delivered to.
func TestOneWayLeaksNoPooledCalls(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	for i := 0; i < 500; i++ {
		if err := c.OneWay("svc", "Echo", []byte{1}); err != nil {
			t.Fatalf("OneWay %d: %v", i, err)
		}
	}
	// Synchronize: a two-way call after the storm proves the read loop is
	// alive and no stray response frames arrived for the one-ways.
	if _, err := c.Call("svc", "Echo", nil, 5*time.Second); err != nil {
		t.Fatalf("sync call: %v", err)
	}
	c.mu.Lock()
	n := len(c.pending)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries after one-way calls; one-way must not register futures", n)
	}

	// Oversize one-way payloads are refused before the wire, not leaked
	// into a poisoned writer.
	if err := c.OneWay("svc", "Echo", make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize OneWay err = %v, want ErrFrameTooLarge", err)
	}
	if out, err := c.Call("svc", "Echo", []byte("ok"), 5*time.Second); err != nil || string(out) != "ok" {
		t.Fatalf("connection poisoned by oversize one-way: %q, %v", out, err)
	}
}

// TestBatchedClientEndToEnd pushes concurrent calls and one-ways through a
// batching client against a live server: the batch frames must fan out and
// every response must land on the right future.
func TestBatchedClientEndToEnd(t *testing.T) {
	var oneways atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		if req.Method == "Tick" {
			oneways.Add(1)
			return nil, nil
		}
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	c, err := DialBatched(srv.Addr(), 2*time.Second, BatchOptions{MaxDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatalf("DialBatched: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	const callers, per = 16, 64
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				marker := []byte{byte(g), byte(i)}
				if i%4 == 0 {
					if err := c.OneWay("svc", "Tick", marker); err != nil {
						errCh <- err
						return
					}
					continue
				}
				out, err := c.Go("svc", "Echo", marker).Wait(10 * time.Second)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(out, marker) {
					errCh <- fmt.Errorf("caller %d call %d: got %v (responses crossed)", g, i, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	want := int64(callers * per / 4)
	deadline := time.Now().Add(5 * time.Second)
	for oneways.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := oneways.Load(); got != want {
		t.Fatalf("server saw %d one-way invocations, want %d", got, want)
	}
}

// TestWaitTimeoutOnFutureThenReuse: a future abandoned by Wait's timeout
// must not corrupt later calls that reuse the pooled object.
func TestWaitTimeoutOnFutureThenReuse(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	if _, err := c.Go("svc", "Slow", []byte("x")).Wait(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	for i := 0; i < 50; i++ {
		marker := []byte{byte(i)}
		out, err := c.Call("svc", "Echo", marker, 5*time.Second)
		if err != nil || !bytes.Equal(out, marker) {
			t.Fatalf("call %d after timeout: %q, %v", i, out, err)
		}
	}
}

// TestReleaseAbandonsIncompleteFuture: releasing an in-flight future must
// complete it for concurrent Done waiters and leave the pooled object
// quiescent.
func TestReleaseAbandonsIncompleteFuture(t *testing.T) {
	srv := startEcho(t)
	c := dial(t, srv.Addr())
	ca := c.Go("svc", "Slow", []byte("x"))
	waiter := make(chan error, 1)
	done := ca.Done()
	go func() {
		<-done
		waiter <- nil
	}()
	ca.Release()
	select {
	case <-waiter:
	case <-time.After(5 * time.Second):
		t.Fatal("Done waiter hung after Release")
	}
	// The connection keeps working and pooled objects stay clean.
	for i := 0; i < 20; i++ {
		marker := []byte{byte(i)}
		out, err := c.Call("svc", "Echo", marker, 5*time.Second)
		if err != nil || !bytes.Equal(out, marker) {
			t.Fatalf("call %d after Release: %q, %v", i, out, err)
		}
	}
}
