package transport

import (
	"fmt"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// BatchOptions enables adaptive client-side batching: concurrent Go and
// OneWay invocations on one client are coalesced into batch frames, so a
// pipelined workload pays one frame write per batch instead of one per
// call.
//
// The batcher is adaptive on three levels. A dedicated flusher drains the
// whole queue per wakeup, so batch size naturally tracks the ratio of
// arrival rate to write rate (a saturated connection produces bigger
// batches, a sparse caller flushes immediately). The coalescing target —
// how many entries accumulate before the flusher is woken at all — grows
// while drains keep exceeding it and shrinks back to observed demand on
// every timer flush. And a caller that blocks on a still-queued future
// forces its flush instantly, so request/response traffic never waits for
// companions that are not coming. MaxDelay bounds the wait of entries
// nobody is blocked on (e.g. one-way fire-and-forget).
type BatchOptions struct {
	// MaxDelay is the latency bound: the longest an enqueued invocation may
	// wait for companions before its batch is flushed. <= 0 disables
	// batching entirely.
	MaxDelay time.Duration
	// MaxEntries caps the entries per batch frame. Default 128, hard
	// ceiling 1024.
	MaxEntries int
	// MaxBytes wakes the flusher early once queued payload bytes reach this
	// threshold. Default 64 KiB.
	MaxBytes int
	// Clock drives the latency-bound timer; nil means the wall clock. Tests
	// inject a simclock.Sim to make the bound deterministic.
	Clock simclock.Clock
}

func (bo BatchOptions) withDefaults() BatchOptions {
	if bo.MaxEntries <= 0 {
		bo.MaxEntries = 128
	}
	if bo.MaxEntries > maxBatchEntries {
		bo.MaxEntries = maxBatchEntries
	}
	if bo.MaxBytes <= 0 {
		bo.MaxBytes = 64 << 10
	}
	if bo.Clock == nil {
		bo.Clock = simclock.Real{}
	}
	return bo
}

// batcher coalesces invocations bound for one connection into batch
// frames. Producers only append and signal; the flusher goroutine drains
// and writes, so a single pipelining caller keeps producing while the
// previous batch is on its way to the kernel.
type batcher struct {
	c     *Client
	clock simclock.Clock

	maxDelay   time.Duration
	maxEntries int
	maxBytes   int

	mu          sync.Mutex
	queue       []batchEntry
	queuedBytes int // encoded size of queued entries (batch body share)
	target      int // adaptive wake threshold, in [1, maxEntries]
	closed      bool
	// flushing counts writes in progress (entries dequeued but possibly
	// still referenced by the writer); flushDone is broadcast when one
	// finishes, so purge can wait out a write it raced with.
	flushing  int
	flushDone sync.Cond // on mu

	wake chan struct{} // capacity 1: coalesced flusher wakeups
	arm  chan struct{} // capacity 1: coalesced latency-timer arms
	stop chan struct{}
}

func newBatcher(c *Client, bo BatchOptions) *batcher {
	bo = bo.withDefaults()
	b := &batcher{
		c:          c,
		clock:      bo.Clock,
		maxDelay:   bo.MaxDelay,
		maxEntries: bo.MaxEntries,
		maxBytes:   bo.MaxBytes,
		target:     1,
		wake:       make(chan struct{}, 1),
		arm:        make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}
	b.flushDone.L = &b.mu
	go b.flushLoop()
	go b.timerLoop()
	return b
}

// enqueue appends one invocation. It never writes: when the queue reaches
// the wake threshold the flusher is signalled; below it, the latency-bound
// timer armed when the queue went non-empty guarantees progress.
func (b *batcher) enqueue(e batchEntry) {
	size := batchEntrySize(&e)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		if e.ca != nil {
			b.c.failCall(e.seq, e.ca, ErrClosed)
		}
		return
	}
	if e.ca != nil {
		e.ca.queued.Store(true)
	}
	b.queue = append(b.queue, e)
	b.queuedBytes += size
	ready := len(b.queue) >= b.target || b.queuedBytes >= b.maxBytes || len(b.queue) >= b.maxEntries
	armTimer := !ready && len(b.queue) == 1
	b.mu.Unlock()
	if ready {
		b.kick()
	} else if armTimer {
		select {
		case b.arm <- struct{}{}:
		default: // a timer round is already pending; it flushes us too
		}
	}
}

// kick wakes the flusher; a wakeup already pending coalesces.
func (b *batcher) kick() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// purge removes ca's entry from the queue, if still there. Release calls it
// before pooling an abandoned Call so the flusher can never transmit a
// payload whose owner was told the call is over, nor touch the pooled (and
// possibly reused) object. An entry that already left the queue may be
// mid-write (the queued flag stays set until the write finishes); purge
// then waits for in-flight writes to complete, after which the payload is
// fully buffered and safe for the caller to recycle.
func (b *batcher) purge(ca *Call) {
	b.mu.Lock()
	for i := range b.queue {
		if b.queue[i].ca == ca {
			b.queuedBytes -= batchEntrySize(&b.queue[i])
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			ca.queued.Store(false)
			b.mu.Unlock()
			return
		}
	}
	for ca.queued.Load() && b.flushing > 0 {
		b.flushDone.Wait()
	}
	b.mu.Unlock()
}

// flushLoop is the dedicated flusher: per wakeup it drains the queue to the
// wire until empty. Batches form naturally while a write is in progress —
// everything enqueued meanwhile goes out in the next drain.
func (b *batcher) flushLoop() {
	for {
		select {
		case <-b.wake:
		case <-b.stop:
			return
		}
		for {
			b.mu.Lock()
			if b.closed || len(b.queue) == 0 {
				b.mu.Unlock()
				break
			}
			b.flushAndUnlock(true)
		}
	}
}

// timerLoop enforces the latency bound with one persistent goroutine
// instead of a spawn per armed window: each arm signal starts one MaxDelay
// sleep, after which whatever is queued is flushed. A sleep already in
// progress when a new window opens ends no later than that window's own
// bound would, and flushing early is always allowed — so every entry still
// reaches the wire within MaxDelay of enqueue (plus write time). On the
// wall clock the timer is reused across rounds.
func (b *batcher) timerLoop() {
	var tm *time.Timer // wall clock only; simclock drives After directly
	_, wall := b.clock.(simclock.Real)
	defer func() {
		if tm != nil {
			tm.Stop()
		}
	}()
	for {
		select {
		case <-b.arm:
		case <-b.stop:
			return
		}
		var fire <-chan time.Time
		if wall {
			if tm == nil {
				tm = time.NewTimer(b.maxDelay)
			} else {
				tm.Reset(b.maxDelay)
			}
			fire = tm.C
		} else {
			fire = b.clock.After(b.maxDelay)
		}
		select {
		case <-fire:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		if b.closed || len(b.queue) == 0 {
			b.mu.Unlock()
			continue
		}
		b.flushAndUnlock(false)
	}
}

// flushAndUnlock takes as much of the queue as one batch frame may carry,
// adapts the wake threshold, then writes outside the lock so producers keep
// accumulating the next batch during the write. Caller must hold b.mu; it
// is unlocked on return.
func (b *batcher) flushAndUnlock(sizeTriggered bool) {
	// Take the longest prefix within the frame's entry-count cap and
	// MaxFrame byte budget; the flusher's outer loop drains any remainder.
	n, taken := 0, 0
	for _, e := range b.queue {
		sz := batchEntrySize(&e)
		if n > 0 && (n >= b.maxEntries || taken+sz+16 > MaxFrame) {
			break
		}
		n++
		taken += sz
	}
	entries := b.queue[:n:n]
	b.queue = append([]batchEntry(nil), b.queue[n:]...)
	b.queuedBytes -= taken
	if sizeTriggered {
		// Drains that keep outgrowing the threshold mean demand outpaces
		// the writer: raise the threshold so wakeups (and frames) get
		// rarer and larger.
		if n >= 2*b.target && b.target < b.maxEntries {
			b.target *= 2
			if b.target > b.maxEntries {
				b.target = b.maxEntries
			}
		}
	} else if n < b.target {
		// The timer fired below the threshold: match it to the demand one
		// latency bound actually produced, so the next burst of this size
		// wakes the flusher on arrival instead of waiting out the timer.
		b.target = n
		if b.target < 1 {
			b.target = 1
		}
	}
	b.flushing++
	b.mu.Unlock()
	b.write(entries)
	b.mu.Lock()
	// Clear the queued flags only now: until the write returned, the
	// payloads were still referenced, and purge keys off flag+flushing to
	// wait that window out before a caller may recycle its buffer.
	for i := range entries {
		if ca := entries[i].ca; ca != nil {
			ca.queued.Store(false)
		}
	}
	b.flushing--
	b.flushDone.Broadcast()
	b.mu.Unlock()
}

// write emits the flushed entries — as a plain request/one-way frame when
// there is a single entry (no batch overhead), as one batch frame
// otherwise — and fails the affected futures on write errors.
func (b *batcher) write(entries []batchEntry) {
	if len(entries) == 0 {
		return
	}
	var err error
	if len(entries) == 1 {
		e := &entries[0]
		if e.oneway {
			err = b.c.w.writeOneWay(e.seq, e.epoch, e.budget, e.service, e.method, e.payload)
		} else {
			err = b.c.w.writeRequest(e.seq, e.epoch, e.budget, e.service, e.method, e.payload)
		}
	} else {
		err = b.c.w.writeBatch(entries)
	}
	if err != nil {
		err = fmt.Errorf("transport: write: %w", err)
		for i := range entries {
			if ca := entries[i].ca; ca != nil {
				b.c.failCall(entries[i].seq, ca, err)
			}
		}
	}
}

// close fails everything still queued and stops the flusher and pending
// timers. Runs before the connection closes, so queued futures see
// ErrClosed rather than a generic connection loss.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	entries := b.queue
	b.queue = nil
	b.queuedBytes = 0
	b.mu.Unlock()
	close(b.stop)
	for i := range entries {
		if ca := entries[i].ca; ca != nil {
			ca.queued.Store(false)
			b.c.failCall(entries[i].seq, ca, ErrClosed)
		}
	}
}
