package transport

// The payload arena is a size-classed buffer pool shared by every hot
// allocation of the payload pipeline: frame bodies read off the wire
// (request and response payloads, frame metadata), and Encode's marshal
// output. Buffers move through the pipeline by ownership transfer —
// read → parse → handler → response write on the server, read → deliver →
// decode on the client — and return here through ReleasePayload (or the
// transport's own release points), so a steady-state echo loop allocates
// nothing for payload memory.
//
// Free lists are buffered channels rather than sync.Pools: sending and
// receiving a []byte on a channel copies the three-word header and never
// allocates, whereas a sync.Pool of slices costs a heap allocation per Put
// (interface boxing of the header). The channel capacity bounds worst-case
// retained memory per class; a Put that finds its class full simply drops
// the buffer for the GC.

// arenaClasses are the slab capacities, ascending. Requests larger than the
// top class are allocated exactly-sized and never pooled (rare, huge).
var arenaClasses = [...]int{512, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20}

// arenaFree holds the per-class free lists. Capacities taper with class
// size, bounding worst-case retained memory to ~45 MB across all classes
// (dominated by the 8 MB class at 4 entries).
var arenaFree = [len(arenaClasses)]chan []byte{
	make(chan []byte, 256), // 512 B   → 128 KB
	make(chan []byte, 256), // 2 KB    → 512 KB
	make(chan []byte, 128), // 8 KB    → 1 MB
	make(chan []byte, 64),  // 32 KB   → 2 MB
	make(chan []byte, 32),  // 128 KB  → 4 MB
	make(chan []byte, 16),  // 512 KB  → 8 MB
	make(chan []byte, 8),   // 2 MB    → 16 MB
	make(chan []byte, 4),   // 8 MB    → 32 MB
}

// arenaClass returns the index of the smallest class holding n bytes, or -1
// when n exceeds the top class.
func arenaClass(n int) int {
	for i, c := range arenaClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// arenaGet returns a buffer of length n backed by a pooled slab. The
// returned slice starts at the slab's base with the full class capacity
// behind it, so the slab is recoverable from any b[:x] reslice via cap.
func arenaGet(n int) []byte {
	i := arenaClass(n)
	if i < 0 {
		return make([]byte, n)
	}
	select {
	case b := <-arenaFree[i]:
		return b[:n]
	default:
		return make([]byte, n, arenaClasses[i])[:n]
	}
}

// arenaPut returns a buffer obtained from arenaGet to its class. Only exact
// class-capacity slabs are accepted: a foreign buffer (append-grown, or
// never from the arena) silently goes to the GC instead of poisoning a
// class with a wrong-sized slab.
func arenaPut(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	for i, cls := range arenaClasses {
		if c == cls {
			select {
			case arenaFree[i] <- b[:0][:cls:cls]:
			default: // class full: drop for the GC
			}
			return
		}
		if c < cls {
			return
		}
	}
}

// ReleasePayload returns a payload buffer to the transport's arena. It
// applies to exactly two kinds of buffer: response payloads the client
// handed out (Call, Wait, Payload) and Encode output. Server handlers must
// never release req.Payload — the server releases request frames itself
// after the response is written. Releasing is always optional (an
// unreleased buffer is ordinary garbage) and must happen at most once,
// after the caller's last use of the buffer AND of anything aliasing it: a
// decoded value whose type has zero-copy []byte views (ERMIViews) still
// references the buffer, which is why the transport's own decode paths
// skip the release for such types. Buffers from any other source are
// ignored.
func ReleasePayload(b []byte) {
	arenaPut(b)
}
