package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"elasticrmi/internal/route"
)

// The wire codec is the trust boundary of every ElasticRMI component: a
// hostile or corrupt peer can put arbitrary bytes on the connection. These
// fuzz targets assert the parsers never panic, never allocate proportionally
// to attacker-declared counts, and are round-trip stable: anything a parser
// accepts re-encodes through the production writers to a body the parser
// reads back identically. (Byte-exact re-encoding is deliberately not
// asserted — encoding/binary accepts non-minimal varints.) Seeds come from
// the protocol edge cases exercised in protocol_test.go (boundary frames,
// hostile counts, truncated bodies).

// frameBytes renders a full frame (header + kind + body) via the production
// writer so fuzz seeds and re-encodings stay in sync with the encoder.
func frameBytes(t testing.TB, write func(w *connWriter) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := newConnWriter(&buf)
	if err := write(w); err != nil {
		t.Fatalf("fuzz write: %v", err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	f.Add(hdr[:])
	binary.BigEndian.PutUint32(hdr[:], 0)
	f.Add(hdr[:])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}) // hostile declared length
	f.Add([]byte{0, 0, 0, 2, byte(frameRequest)})  // truncated body
	var t testing.T
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeRequest(7, 3, 1500, "svc", "m", []byte("hi")) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeOneWay(0, 0, 0, "svc", "m", nil) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeResponse(9, statusOK, []byte("out"), "", nil, false) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeResponse(11, statusOverload, nil, "", nil, false) }))
	f.Add(frameBytes(&t, func(w *connWriter) error {
		return w.writeResponse(4, statusOK, []byte("out"), "", &route.Table{
			Epoch: 8, Members: []route.Member{{Addr: "a:1", UID: 1, Weight: 100, Load: 2}},
		}, false)
	}))
	f.Add(frameBytes(&t, func(w *connWriter) error {
		return w.writeBatch([]batchEntry{
			{seq: 1, epoch: 5, service: "s", method: "a", payload: []byte{1}},
			{oneway: true, seq: 2, service: "s", method: "b", payload: []byte{2}},
		})
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// A parsed frame's declared size is honored exactly: kind byte plus
		// body must fit inside the input.
		if len(body)+1 > len(data)-4 {
			t.Fatalf("frame body of %d bytes from %d input bytes", len(body), len(data))
		}
		// Whatever the kind claims, every parser must be total on the body.
		switch kind {
		case frameRequest, frameOneWay:
			_, _ = parseRequest(body)
		case frameResponse:
			var res callResult
			_, _ = parseResponse(body, &res)
		case frameBatch:
			items, err := parseBatch(body)
			if err == nil && (len(items) == 0 || len(items) > maxBatchEntries) {
				t.Fatalf("parseBatch accepted %d entries", len(items))
			}
		}
	})
}

func FuzzParseRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 2, 1, 's', 1, 'm', 0})
	f.Add(binary.AppendUvarint(nil, 1<<40)) // seq only, then truncation
	seed := binary.AppendUvarint(nil, 3)
	seed = binary.AppendUvarint(seed, 1)
	seed = binary.AppendUvarint(seed, 200) // service length beyond the body
	f.Add(seed)

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseRequest(body)
		if err != nil {
			return
		}
		// Round-trip stability: what the parser accepted re-encodes to a
		// body it parses back field-identically.
		out := frameBytes(t, func(w *connWriter) error {
			return w.writeRequest(req.Seq, req.Epoch, budgetMicros(req.Budget), req.Service, req.Method, req.Payload)
		})
		again, err := parseRequest(out[5:])
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v", err)
		}
		if again.Seq != req.Seq || again.Epoch != req.Epoch || again.Budget != req.Budget ||
			again.Service != req.Service ||
			again.Method != req.Method || !bytes.Equal(again.Payload, req.Payload) {
			t.Fatalf("round trip drifted: %+v != %+v", again, req)
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add([]byte{})
	// A hostile route-member count: declared 67M entries backed by 64 bytes.
	hostile := binary.AppendUvarint(nil, 9)
	hostile = binary.AppendUvarint(hostile, 0) // status
	hostile = binary.AppendUvarint(hostile, 0)
	hostile = binary.AppendUvarint(hostile, 12) // route epoch
	hostile = binary.AppendUvarint(hostile, 67_000_000)
	hostile = append(hostile, make([]byte, 64)...)
	f.Add(hostile)
	// A well-formed error + route-update body.
	ok := binary.AppendUvarint(nil, 4)
	ok = binary.AppendUvarint(ok, 0) // status
	ok = binary.AppendUvarint(ok, 4)
	ok = append(ok, "boom"...)
	ok = binary.AppendUvarint(ok, 2) // route epoch
	ok = binary.AppendUvarint(ok, 1) // member count
	ok = binary.AppendUvarint(ok, 3)
	ok = append(ok, "a:1"...)
	ok = binary.AppendUvarint(ok, 7)   // uid
	ok = binary.AppendUvarint(ok, 100) // weight
	ok = binary.AppendUvarint(ok, 5)   // load
	ok = append(ok, 0)                 // flags
	ok = binary.AppendUvarint(ok, 0)   // payload
	f.Add(ok)

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<20 {
			return // keep re-encoding clear of the writer's MaxFrame clamp
		}
		var res callResult
		seq, err := parseResponse(body, &res)
		if err != nil {
			// The count guard must hold even on rejected bodies: storage
			// never grows proportionally to a declared member count.
			if res.route != nil && len(res.route.Members) > len(body) {
				t.Fatalf("rejected body of %d bytes materialized %d route members", len(body), len(res.route.Members))
			}
			return
		}
		if res.route != nil && (res.route.Epoch == 0 || len(res.route.Members) > maxRouteMembers) {
			t.Fatalf("accepted invalid route update: %+v", res.route)
		}
		out := frameBytes(t, func(w *connWriter) error {
			return w.writeResponse(seq, res.status, res.payload, res.errMsg, res.route, false)
		})
		var again callResult
		seq2, err := parseResponse(out[5:], &again)
		if err != nil {
			t.Fatalf("re-encoded response rejected: %v", err)
		}
		if seq2 != seq || again.status != res.status || again.errMsg != res.errMsg || !bytes.Equal(again.payload, res.payload) {
			t.Fatalf("round trip drifted: %+v != %+v", again, res)
		}
		if (again.route == nil) != (res.route == nil) {
			t.Fatalf("route presence drifted: %+v != %+v", again.route, res.route)
		}
		if res.route != nil {
			if again.route.Epoch != res.route.Epoch || len(again.route.Members) != len(res.route.Members) {
				t.Fatalf("route drifted: %+v != %+v", again.route, res.route)
			}
			for i := range res.route.Members {
				if again.route.Members[i] != res.route.Members[i] {
					t.Fatalf("route member %d drifted: %+v != %+v", i, again.route.Members[i], res.route.Members[i])
				}
			}
		}
	})
}

func FuzzParseBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.AppendUvarint(nil, 0))               // zero entries is malformed
	f.Add(binary.AppendUvarint(nil, 1<<30))           // hostile count
	f.Add(binary.AppendUvarint(nil, 2))               // declared 2, zero present
	f.Add(append(binary.AppendUvarint(nil, 1), 0xFE)) // unknown flag bits
	var t testing.T
	good := frameBytes(&t, func(w *connWriter) error {
		return w.writeBatch([]batchEntry{
			{seq: 5, epoch: 3, service: "svc", method: "Echo", payload: []byte("abc")},
			{oneway: true, seq: 0, service: "svc", method: "Tick", payload: nil},
		})
	})
	f.Add(good[5:]) // strip header + kind: parseBatch sees the body

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<20 {
			return // keep re-encoding clear of the writer's MaxFrame bound
		}
		items, err := parseBatch(body)
		if err != nil {
			return
		}
		if len(items) == 0 || len(items) > maxBatchEntries {
			t.Fatalf("accepted %d entries", len(items))
		}
		entries := make([]batchEntry, len(items))
		for i, it := range items {
			entries[i] = batchEntry{
				oneway:  it.oneway,
				seq:     it.req.Seq,
				epoch:   it.req.Epoch,
				budget:  budgetMicros(it.req.Budget),
				service: it.req.Service,
				method:  it.req.Method,
				payload: it.req.Payload,
			}
		}
		out := frameBytes(t, func(w *connWriter) error { return w.writeBatch(entries) })
		again, err := parseBatch(out[5:])
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip drifted: %d entries != %d", len(again), len(items))
		}
		for i := range items {
			a, b := again[i], items[i]
			if a.oneway != b.oneway || a.req.Seq != b.req.Seq || a.req.Epoch != b.req.Epoch ||
				a.req.Budget != b.req.Budget || a.req.Service != b.req.Service ||
				a.req.Method != b.req.Method || !bytes.Equal(a.req.Payload, b.req.Payload) {
				t.Fatalf("entry %d drifted: %+v != %+v", i, a.req, b.req)
			}
		}
	})
}
