package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"elasticrmi/internal/route"
)

// The wire codec is the trust boundary of every ElasticRMI component: a
// hostile or corrupt peer can put arbitrary bytes on the connection. These
// fuzz targets assert the parsers never panic, never allocate proportionally
// to attacker-declared counts, and are round-trip stable: anything a parser
// accepts re-encodes through the production writers to frames the reader and
// parsers consume back identically. (Byte-exact re-encoding is deliberately
// not asserted — encoding/binary accepts non-minimal varints.) Seeds come
// from the protocol edge cases exercised in protocol_test.go (boundary
// frames, hostile counts and lengths, truncated sections).

// frameBytes renders a full frame (length + header + meta + payload) via the
// production writer so fuzz seeds and re-encodings stay in sync with the
// encoder.
func frameBytes(t testing.TB, write func(w *connWriter) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := newConnWriter(&buf)
	if err := write(w); err != nil {
		t.Fatalf("fuzz write: %v", err)
	}
	return buf.Bytes()
}

// reparse reads the single frame in raw and returns its kind and sections.
func reparse(t *testing.T, raw []byte) (frameKind, []byte, []byte) {
	t.Helper()
	kind, meta, payload, err := readFrame(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("re-encoded frame rejected by readFrame: %v", err)
	}
	return kind, meta, payload
}

func FuzzReadFrame(f *testing.F) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	f.Add(hdr[:])
	binary.BigEndian.PutUint32(hdr[:], 0)
	f.Add(hdr[:])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})                          // hostile declared length
	f.Add([]byte{0, 0, 0, 2, byte(frameRequest)})                           // size below the fixed header
	f.Add([]byte{0, 0, 0, 10, byte(frameRequest), 0, 0, 0, 0})              // truncated metadata section
	f.Add([]byte{0, 0, 0, 9, byte(frameRequest), 0xFF, 0xFF, 0xFF, 0xFF})   // payload length beyond the frame
	f.Add([]byte{0, 0, 0, 12, byte(frameResponse), 0, 0, 0, 4, 1, 2, 3, 4}) // payload section, truncated
	var t testing.T
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeRequest(7, 3, 1500, "svc", "m", []byte("hi")) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeOneWay(0, 0, 0, "svc", "m", nil) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeResponse(9, statusOK, []byte("out"), "", nil, false) }))
	f.Add(frameBytes(&t, func(w *connWriter) error { return w.writeResponse(11, statusOverload, nil, "", nil, false) }))
	f.Add(frameBytes(&t, func(w *connWriter) error {
		return w.writeResponse(4, statusOK, []byte("out"), "", &route.Table{
			Epoch: 8, Members: []route.Member{{Addr: "a:1", UID: 1, Weight: 100, Load: 2}},
		}, false)
	}))
	f.Add(frameBytes(&t, func(w *connWriter) error {
		return w.writeBatch([]batchEntry{
			{seq: 1, epoch: 5, service: "s", method: "a", payload: []byte{1}},
			{oneway: true, seq: 2, service: "s", method: "b", payload: []byte{2}},
		})
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, meta, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// A parsed frame's declared size is honored exactly: header plus both
		// sections must fit inside the input.
		if frameHeaderSize+len(meta)+len(payload) > len(data)-4 {
			t.Fatalf("frame sections of %d+%d bytes from %d input bytes", len(meta), len(payload), len(data))
		}
		// Whatever the kind claims, every parser must be total on the bytes.
		switch kind {
		case frameRequest, frameOneWay:
			_, _ = parseRequest(meta, payload, nil)
		case frameResponse:
			var res callResult
			_, _ = parseResponse(meta, payload, &res)
		case frameBatch:
			items, err := parseBatch(meta, nil)
			if err == nil && (len(items) == 0 || len(items) > maxBatchEntries) {
				t.Fatalf("parseBatch accepted %d entries", len(items))
			}
		}
	})
}

func FuzzParseRequest(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{7, 2, 0, 1, 's', 1, 'm'}, []byte("payload"))
	f.Add(binary.AppendUvarint(nil, 1<<40), []byte{}) // seq only, then truncation
	seed := binary.AppendUvarint(nil, 3)
	seed = binary.AppendUvarint(seed, 1)
	seed = binary.AppendUvarint(seed, 0)
	seed = binary.AppendUvarint(seed, 200) // service length beyond the meta
	f.Add(seed, []byte{})

	f.Fuzz(func(t *testing.T, meta, payload []byte) {
		req, err := parseRequest(meta, payload, nil)
		if err != nil {
			return
		}
		budget := budgetMicros(req.Budget)
		if requestFrameSize(req.Seq, req.Epoch, budget, req.Service, req.Method, req.Payload) > MaxFrame {
			return // the writer refuses oversize frames by design
		}
		// Round-trip stability: what the parser accepted re-encodes to a
		// frame it parses back field-identically.
		out := frameBytes(t, func(w *connWriter) error {
			return w.writeRequest(req.Seq, req.Epoch, budget, req.Service, req.Method, req.Payload)
		})
		kind, meta2, payload2 := reparse(t, out)
		if kind != frameRequest {
			t.Fatalf("re-encoded request came back as kind %d", kind)
		}
		again, err := parseRequest(meta2, payload2, nil)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v", err)
		}
		if again.Seq != req.Seq || again.Epoch != req.Epoch || again.Budget != req.Budget ||
			again.Service != req.Service ||
			again.Method != req.Method || !bytes.Equal(again.Payload, req.Payload) {
			t.Fatalf("round trip drifted: %+v != %+v", again, req)
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add([]byte{}, []byte{})
	// A hostile route-member count: declared 67M entries backed by 64 bytes.
	hostile := binary.AppendUvarint(nil, 9)
	hostile = binary.AppendUvarint(hostile, 0) // status
	hostile = binary.AppendUvarint(hostile, 0)
	hostile = binary.AppendUvarint(hostile, 12) // route epoch
	hostile = binary.AppendUvarint(hostile, 67_000_000)
	hostile = append(hostile, make([]byte, 64)...)
	f.Add(hostile, []byte{})
	// A well-formed error + route-update meta with a payload section.
	ok := binary.AppendUvarint(nil, 4)
	ok = binary.AppendUvarint(ok, 0) // status
	ok = binary.AppendUvarint(ok, 4)
	ok = append(ok, "boom"...)
	ok = binary.AppendUvarint(ok, 2) // route epoch
	ok = binary.AppendUvarint(ok, 1) // member count
	ok = binary.AppendUvarint(ok, 3)
	ok = append(ok, "a:1"...)
	ok = binary.AppendUvarint(ok, 7)   // uid
	ok = binary.AppendUvarint(ok, 100) // weight
	ok = binary.AppendUvarint(ok, 5)   // load
	ok = append(ok, 0)                 // flags
	f.Add(ok, []byte("result"))

	f.Fuzz(func(t *testing.T, meta, payload []byte) {
		var res callResult
		seq, err := parseResponse(meta, payload, &res)
		if err != nil {
			// The count guard must hold even on rejected bodies: storage
			// never grows proportionally to a declared member count.
			if res.route != nil && len(res.route.Members) > len(meta) {
				t.Fatalf("rejected meta of %d bytes materialized %d route members", len(meta), len(res.route.Members))
			}
			return
		}
		if res.route != nil && (res.route.Epoch == 0 || len(res.route.Members) > maxRouteMembers) {
			t.Fatalf("accepted invalid route update: %+v", res.route)
		}
		if responseFrameSize(seq, res.status, res.payload, res.errMsg, res.route) > MaxFrame {
			return // the writer degrades oversize responses by design
		}
		out := frameBytes(t, func(w *connWriter) error {
			return w.writeResponse(seq, res.status, res.payload, res.errMsg, res.route, false)
		})
		kind, meta2, payload2 := reparse(t, out)
		if kind != frameResponse {
			t.Fatalf("re-encoded response came back as kind %d", kind)
		}
		var again callResult
		seq2, err := parseResponse(meta2, payload2, &again)
		if err != nil {
			t.Fatalf("re-encoded response rejected: %v", err)
		}
		if seq2 != seq || again.status != res.status || again.errMsg != res.errMsg || !bytes.Equal(again.payload, res.payload) {
			t.Fatalf("round trip drifted: %+v != %+v", again, res)
		}
		if (again.route == nil) != (res.route == nil) {
			t.Fatalf("route presence drifted: %+v != %+v", again.route, res.route)
		}
		if res.route != nil {
			if again.route.Epoch != res.route.Epoch || len(again.route.Members) != len(res.route.Members) {
				t.Fatalf("route drifted: %+v != %+v", again.route, res.route)
			}
			for i := range res.route.Members {
				if again.route.Members[i] != res.route.Members[i] {
					t.Fatalf("route member %d drifted: %+v != %+v", i, again.route.Members[i], res.route.Members[i])
				}
			}
		}
	})
}

func FuzzParseBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.AppendUvarint(nil, 0))               // zero entries is malformed
	f.Add(binary.AppendUvarint(nil, 1<<30))           // hostile count
	f.Add(binary.AppendUvarint(nil, 2))               // declared 2, zero present
	f.Add(append(binary.AppendUvarint(nil, 1), 0xFE)) // unknown flag bits
	var t testing.T
	good := frameBytes(&t, func(w *connWriter) error {
		return w.writeBatch([]batchEntry{
			{seq: 5, epoch: 3, service: "svc", method: "Echo", payload: []byte("abc")},
			{oneway: true, seq: 0, service: "svc", method: "Tick", payload: nil},
		})
	})
	f.Add(good[9:]) // strip length + header: batch entries ride in the meta section

	f.Fuzz(func(t *testing.T, meta []byte) {
		items, err := parseBatch(meta, nil)
		if err != nil {
			return
		}
		if len(items) == 0 || len(items) > maxBatchEntries {
			t.Fatalf("accepted %d entries", len(items))
		}
		entries := make([]batchEntry, len(items))
		for i, it := range items {
			entries[i] = batchEntry{
				oneway:  it.oneway,
				seq:     it.req.Seq,
				epoch:   it.req.Epoch,
				budget:  budgetMicros(it.req.Budget),
				service: it.req.Service,
				method:  it.req.Method,
				payload: it.req.Payload,
			}
		}
		if batchFrameSize(entries) > MaxFrame {
			return // the writer refuses oversize batches by design
		}
		out := frameBytes(t, func(w *connWriter) error { return w.writeBatch(entries) })
		kind, meta2, _ := reparse(t, out)
		if kind != frameBatch {
			t.Fatalf("re-encoded batch came back as kind %d", kind)
		}
		again, err := parseBatch(meta2, nil)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip drifted: %d entries != %d", len(again), len(items))
		}
		for i := range items {
			a, b := again[i], items[i]
			if a.oneway != b.oneway || a.req.Seq != b.req.Seq || a.req.Epoch != b.req.Epoch ||
				a.req.Budget != b.req.Budget || a.req.Service != b.req.Service ||
				a.req.Method != b.req.Method || !bytes.Equal(a.req.Payload, b.req.Payload) {
				t.Fatalf("entry %d drifted: %+v != %+v", i, a.req, b.req)
			}
		}
	})
}
