package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventFrameRoundTrip(t *testing.T) {
	cases := []struct {
		seq, kind uint64
		topic     string
		payload   []byte
	}{
		{0, 0, "", nil},
		{7, 1, "user/42", []byte("v9")},
		{1 << 50, 1 << 40, strings.Repeat("k", maxEventTopic), bytes.Repeat([]byte{0xAB}, 3000)},
	}
	for _, tc := range cases {
		raw := frameBytes(t, func(w *connWriter) error {
			return w.writeEvent(tc.seq, tc.kind, tc.topic, tc.payload)
		})
		kind, meta, payload := reparse(t, raw)
		if kind != frameEvent {
			t.Fatalf("event frame came back as kind %d", kind)
		}
		var ev Event
		if err := parseEvent(meta, payload, &ev); err != nil {
			t.Fatalf("parseEvent: %v", err)
		}
		if ev.Seq != tc.seq || ev.Kind != tc.kind || ev.Topic != tc.topic || !bytes.Equal(ev.Payload, tc.payload) {
			t.Fatalf("round trip drifted: %+v != %+v", ev, tc)
		}
	}
}

func TestEventWriterRefusesOversize(t *testing.T) {
	var buf bytes.Buffer
	w := newConnWriter(&buf)
	if err := w.writeEvent(1, 1, strings.Repeat("t", maxEventTopic+1), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize topic: got %v, want ErrFrameTooLarge", err)
	}
	if err := w.writeEvent(1, 1, "k", make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize payload: got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("refused frames wrote %d bytes", buf.Len())
	}
	// The writer stays usable after a refusal.
	if err := w.writeEvent(2, 1, "k", []byte("ok")); err != nil {
		t.Fatalf("writeEvent after refusal: %v", err)
	}
}

// TestEventPushDelivery drives the full path: a handler captures the
// connection's Pusher on one request and pushes events that the client's
// OnEvent callback observes, in write order, while ordinary calls keep
// flowing on the same connection.
func TestEventPushDelivery(t *testing.T) {
	var (
		mu     sync.Mutex
		pusher *Pusher
	)
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		switch req.Method {
		case "Subscribe":
			mu.Lock()
			pusher = req.Pusher()
			mu.Unlock()
			return nil, nil
		case "Echo":
			return req.Payload, nil
		}
		return nil, errors.New("unknown method")
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	got := make(chan Event, 16)
	c, err := DialOpts(srv.Addr(), DialOptions{
		Timeout: time.Second,
		OnEvent: func(ev Event) {
			// Payload is only valid during the callback: copy it out.
			p := append([]byte(nil), ev.Payload...)
			ev.Payload = p
			got <- ev
		},
	})
	if err != nil {
		t.Fatalf("DialOpts: %v", err)
	}
	defer c.Close()

	if _, err := c.Call("svc", "Subscribe", nil, time.Second); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	mu.Lock()
	p := pusher
	mu.Unlock()
	if p == nil {
		t.Fatal("handler saw no Pusher")
	}
	if p.Closed() {
		t.Fatal("live connection reports Closed")
	}
	for i := uint64(1); i <= 3; i++ {
		if err := p.Send(2, i, "key/a", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Calls interleave with events on the same connection.
	if _, err := c.Call("svc", "Echo", []byte("x"), time.Second); err != nil {
		t.Fatalf("Echo alongside events: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		select {
		case ev := <-got:
			if ev.Seq != i || ev.Kind != 2 || ev.Topic != "key/a" || !bytes.Equal(ev.Payload, []byte{byte(i)}) {
				t.Fatalf("event %d drifted: %+v", i, ev)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("event %d never delivered", i)
		}
	}

	// Once the connection is gone, the retained handle fails every Send
	// with ErrClosed rather than touching a dead writer.
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !p.Closed() {
		if time.Now().After(deadline) {
			t.Fatal("Pusher never observed the closed connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Send(2, 9, "key/a", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: got %v, want ErrClosed", err)
	}
}

// TestEventWithoutHandlerDropped asserts a client with no OnEvent handler
// drops pushed events and keeps the connection fully usable.
func TestEventWithoutHandlerDropped(t *testing.T) {
	var (
		mu     sync.Mutex
		pusher *Pusher
	)
	srv, err := Serve("127.0.0.1:0", func(req *Request) ([]byte, error) {
		mu.Lock()
		pusher = req.Pusher()
		mu.Unlock()
		return req.Payload, nil
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	c := dial(t, srv.Addr())
	if _, err := c.Call("svc", "Echo", []byte("a"), time.Second); err != nil {
		t.Fatalf("Call: %v", err)
	}
	mu.Lock()
	p := pusher
	mu.Unlock()
	if err := p.Send(1, 1, "orphan", []byte("dropped")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// A round-trip serializes behind the event on the read loop, proving
	// the orphan was processed (and dropped) before a handler exists.
	if _, err := c.Call("svc", "Echo", nil, time.Second); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// A handler installed later starts receiving.
	got := make(chan Event, 1)
	c.SetEventHandler(func(ev Event) { got <- Event{Seq: ev.Seq, Kind: ev.Kind, Topic: ev.Topic} })
	if err := p.Send(3, 2, "live", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case ev := <-got:
		if ev.Seq != 2 || ev.Kind != 3 || ev.Topic != "live" {
			t.Fatalf("late-installed handler got %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late-installed handler never ran")
	}
	if out, err := c.Call("svc", "Echo", []byte("b"), time.Second); err != nil || !bytes.Equal(out, []byte("b")) {
		t.Fatalf("connection unusable after dropped event: %v %q", err, out)
	}
}

// TestMalformedEventKillsClientConn asserts that a hostile event frame —
// well-formed header, garbage metadata — is a protocol violation: the
// client fails its in-flight calls rather than mis-delivering.
func TestMalformedEventKillsClientConn(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var preamble [5]byte
		if _, err := conn.Read(preamble[:]); err != nil {
			return
		}
		// Metadata declares a topic length running past the section.
		meta := binary.AppendUvarint(nil, 1) // seq
		meta = binary.AppendUvarint(meta, 1) // kind
		meta = binary.AppendUvarint(meta, 200)
		frame := make([]byte, 4)
		binary.BigEndian.PutUint32(frame, uint32(frameHeaderSize+len(meta)))
		frame = append(frame, byte(frameEvent), 0, 0, 0, 0)
		frame = append(frame, meta...)
		conn.Write(frame)
	}()
	c, err := DialOpts(lis.Addr().String(), DialOptions{
		Timeout: time.Second,
		OnEvent: func(ev Event) { t.Errorf("malformed event delivered: %+v", ev) },
	})
	if err != nil {
		t.Fatalf("DialOpts: %v", err)
	}
	defer c.Close()
	if _, err := c.Call("svc", "Echo", nil, 2*time.Second); err == nil {
		t.Fatal("call on poisoned connection succeeded")
	}
}

func FuzzEventFrame(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(binary.AppendUvarint(nil, 1<<40), []byte{}) // seq only, then truncation
	hostile := binary.AppendUvarint(nil, 1)
	hostile = binary.AppendUvarint(hostile, 2)
	hostile = binary.AppendUvarint(hostile, 1<<30) // topic length bomb
	f.Add(hostile, []byte{})
	long := binary.AppendUvarint(nil, 1)
	long = binary.AppendUvarint(long, 2)
	long = binary.AppendUvarint(long, maxEventTopic+1)
	long = append(long, bytes.Repeat([]byte{'t'}, maxEventTopic+1)...)
	f.Add(long, []byte{}) // over-limit topic actually present
	var t testing.T
	good := frameBytes(&t, func(w *connWriter) error {
		return w.writeEvent(9, 2, "key/hot", []byte("payload"))
	})
	f.Add(good[9:len(good)-7], good[len(good)-7:]) // split sections of a production frame

	f.Fuzz(func(t *testing.T, meta, payload []byte) {
		var ev Event
		if err := parseEvent(meta, payload, &ev); err != nil {
			return
		}
		if len(ev.Topic) > maxEventTopic {
			t.Fatalf("accepted topic of %d bytes", len(ev.Topic))
		}
		if frameHeaderSize+eventMetaSize(ev.Seq, ev.Kind, ev.Topic)+len(ev.Payload) > MaxFrame {
			return // the writer refuses oversize frames by design
		}
		// Round-trip stability: what the parser accepted re-encodes to a
		// frame it parses back field-identically.
		out := frameBytes(t, func(w *connWriter) error {
			return w.writeEvent(ev.Seq, ev.Kind, ev.Topic, ev.Payload)
		})
		kind, meta2, payload2 := reparse(t, out)
		if kind != frameEvent {
			t.Fatalf("re-encoded event came back as kind %d", kind)
		}
		var again Event
		if err := parseEvent(meta2, payload2, &again); err != nil {
			t.Fatalf("re-encoded event rejected: %v", err)
		}
		if again.Seq != ev.Seq || again.Kind != ev.Kind || again.Topic != ev.Topic || !bytes.Equal(again.Payload, ev.Payload) {
			t.Fatalf("round trip drifted: %+v != %+v", again, ev)
		}
	})
}
