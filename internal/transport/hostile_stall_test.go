package transport

import (
	"net"
	"testing"
	"time"
)

func TestOversizeLengthRejectedBeforeFullHeader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeListener(ln, func(req *Request) ([]byte, error) { return req.Payload, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Valid preamble, then a hostile 4-byte length with the rest of the
	// header never arriving: the server must close without waiting.
	if _, err := c.Write([]byte("eRMI\x04\xff\xff\xff\xff")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err == nil || n > 0 {
		t.Fatalf("expected close, got n=%d err=%v", n, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not close the connection within 3s of a hostile frame length")
	}
}
