package ermitest_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
	"elasticrmi/internal/gen/gentest"
)

// TestRoutingUnderChurn is the routing layer's churn scenario: continuous
// traffic from round-robin, power-of-two and key-affinity clients while the
// pool scales up and down repeatedly. The epoch protocol must make the
// churn invisible:
//
//   - zero failed invocations — scale events never surface to callers;
//   - no lost or duplicated executions — the shared counter equals the
//     acknowledged adds, so drain/quiesce never cuts an ack nor re-runs a
//     call;
//   - bounded stale-epoch retries — a member's removal costs each client at
//     most a few failovers, not a redirect storm.
func TestRoutingUnderChurn(t *testing.T) {
	env := ermitest.New(t, 12)
	pool := env.StartPool(t, core.Config{
		Name: "churn", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
		DrainTimeout: 500 * time.Millisecond,
	}, gentest.NewCounterFactory(gentest.NewImpl))

	rr := env.Stub(t, "churn")
	p2c := env.Stub(t, "churn", core.WithPowerOfTwoBalancing())

	var bumps, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	bumper := func(s *core.Stub) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := core.Call[gentest.BumpArgs, gentest.BumpReply](s, "Bump", gentest.BumpArgs{N: 1}); err != nil {
				failures.Add(1)
				t.Errorf("Bump failed during churn: %v", err)
				return
			}
			bumps.Add(1)
		}
	}
	tagger := func(s *core.Stub, id int) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("w%d-key-%d", id, i%8)
			if _, err := core.CallKeyed[gentest.TagArgs, gentest.TagReply](s, "Tag", key, gentest.TagArgs{Key: key, Value: "v"}); err != nil {
				failures.Add(1)
				t.Errorf("Tag(%s) failed during churn: %v", key, err)
				return
			}
		}
	}
	wg.Add(6)
	go bumper(rr)
	go bumper(rr)
	go bumper(p2c)
	go bumper(p2c)
	go tagger(rr, 0)
	go tagger(p2c, 1)

	// Scale the pool through grow/shrink cycles mid-traffic, with load
	// broadcasts (fresh epochs) interleaved. Sizes: 2→4→3→5→3→4→2.
	victims := 0
	for _, delta := range []int{2, -1, 2, -2, 1, -2} {
		if err := pool.Resize(delta); err != nil {
			t.Fatalf("Resize(%d): %v", delta, err)
		}
		if delta < 0 {
			victims += -delta
		}
		pool.BroadcastNow()
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d invocations failed during churn", f)
	}
	rep, err := core.Call[gentest.PeekArgs, gentest.BumpReply](rr, "Peek", gentest.PeekArgs{})
	if err != nil {
		t.Fatalf("Peek: %v", err)
	}
	if rep.Total != bumps.Load() {
		t.Fatalf("counter = %d, acked = %d (lost or duplicated executions)", rep.Total, bumps.Load())
	}

	// Stale-epoch retries stay bounded: each of the removed members can
	// cost each stub's workers at most a handful of failovers before the
	// piggybacked table (or the local exclusion) steers them off; redirect
	// storms or discovery loops would blow well past this.
	retries := rr.StaleRetries() + p2c.StaleRetries()
	if limit := uint64(6 * victims * 4); retries > limit {
		t.Fatalf("stale-epoch retries = %d, want <= %d (%d victims)", retries, limit, victims)
	}
	t.Logf("churn: %d acked bumps, %d victims, %d stale retries, pool epoch %d",
		bumps.Load(), victims, retries, pool.Epoch())
}

// TestStaleStubConvergesInOneReply pins the acceptance criterion of the
// epoch protocol: after a scale event, a stub holding an old epoch is
// corrected by the piggybacked route update on its very next reply — one
// round-trip, zero redirects, zero extra attempts.
func TestStaleStubConvergesInOneReply(t *testing.T) {
	env := ermitest.New(t, 8)
	pool := env.StartPool(t, core.Config{
		Name: "converge", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, gentest.NewCounterFactory(gentest.NewImpl))

	// A bootstrap stub starts at epoch 0 and learns the real table from
	// its first reply.
	stub := env.Stub(t, "converge")
	if got := stub.RouteEpoch(); got != 0 {
		t.Fatalf("bootstrap epoch = %d, want 0", got)
	}
	if err := stub.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got, want := stub.RouteEpoch(), pool.Epoch(); got != want {
		t.Fatalf("epoch after first reply = %d, want %d", got, want)
	}
	if got := len(stub.Members()); got != 2 {
		t.Fatalf("members after first reply = %d, want 2", got)
	}

	// Scale up: the stub is now stale (its members all still exist, so no
	// failover can hide the measurement). Exactly one invocation must land
	// the new epoch and the grown membership.
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if stub.RouteEpoch() == pool.Epoch() {
		t.Fatal("stub cannot already hold the new epoch without a call")
	}
	before := stub.StaleRetries()
	if _, err := core.Call[gentest.BumpArgs, gentest.BumpReply](stub, "Bump", gentest.BumpArgs{N: 1}); err != nil {
		t.Fatalf("Bump: %v", err)
	}
	if got, want := stub.RouteEpoch(), pool.Epoch(); got != want {
		t.Fatalf("epoch after one reply = %d, want %d (one round-trip convergence)", got, want)
	}
	if got := len(stub.Members()); got != 4 {
		t.Fatalf("members after one reply = %d, want 4", got)
	}
	if got := stub.StaleRetries() - before; got != 0 {
		t.Fatalf("convergence took %d extra attempts, want 0", got)
	}
	if stub.RouteAdvances() < 2 {
		t.Fatalf("route advances = %d, want >= 2 (bootstrap + scale-up)", stub.RouteAdvances())
	}
}
