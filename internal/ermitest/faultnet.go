package ermitest

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/group"
	"elasticrmi/internal/transport"
)

// Fault is the shared control plane of a fault-injected network: every
// connection accepted through a listener wrapped with it consults the same
// knobs, so a test can degrade a whole server at runtime. All methods are
// safe for concurrent use while traffic flows.
//
// The knobs map onto the failure modes distributed tests need:
//
//   - SetLatency: every Read/Write on every connection stalls first —
//     a slow network or an overloaded peer.
//   - Partition: both directions stall completely until healed — the
//     TCP-like partition where no byte is lost, only delayed. Closing a
//     connection unblocks its stalled operations.
//   - DropEveryN: every Nth write is silently discarded while claiming
//     success — framing corruption that must kill the connection without
//     killing the server.
//   - TruncateAfter: after a byte budget is spent, the connection emits a
//     final partial write and closes — a peer dying mid-frame.
type Fault struct {
	latency       atomic.Int64 // ns added to each Read and Write
	partitioned   atomic.Bool
	dropEvery     atomic.Int64 // every Nth Write discarded; 0 disables
	writeCount    atomic.Int64
	truncateLeft  atomic.Int64 // remaining Write byte budget; -1 disables
	truncateArmed atomic.Bool
}

// NewFault returns a control plane with every fault disabled.
func NewFault() *Fault {
	f := &Fault{}
	f.truncateLeft.Store(-1)
	return f
}

// SetLatency injects d of delay into every subsequent Read and Write.
func (f *Fault) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// Partition stalls all traffic (both directions) while on; healing releases
// the stalled operations with no bytes lost.
func (f *Fault) Partition(on bool) { f.partitioned.Store(on) }

// DropEveryN silently discards every nth write across all connections
// (n <= 0 disables). Discarded writes claim success, so the peer sees a
// gap mid-stream — a framing-level corruption.
func (f *Fault) DropEveryN(n int64) {
	f.writeCount.Store(0)
	f.dropEvery.Store(n)
}

// TruncateAfter arms a write budget of n bytes across all connections: the
// write that exhausts it is emitted truncated and the connection closed,
// leaving the peer a partial frame.
func (f *Fault) TruncateAfter(n int64) {
	f.truncateLeft.Store(n)
	f.truncateArmed.Store(true)
}

// Clear disables every fault, returning the network to health. Already
// severed connections stay severed; new traffic flows cleanly.
func (f *Fault) Clear() {
	f.latency.Store(0)
	f.partitioned.Store(false)
	f.dropEvery.Store(0)
	f.truncateArmed.Store(false)
	f.truncateLeft.Store(-1)
}

// errInjected marks failures produced by the harness itself.
var errInjected = errors.New("ermitest: injected fault")

// Listener wraps an accepting socket so every accepted connection is
// subject to the Fault's knobs.
type Listener struct {
	net.Listener
	F *Fault
}

// WrapListener subjects every connection accepted by lis to f.
func WrapListener(lis net.Listener, f *Fault) *Listener {
	return &Listener{Listener: lis, F: f}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, l.F), nil
}

// Conn is a net.Conn under fault injection.
type Conn struct {
	net.Conn
	f *Fault

	closed atomic.Bool
	once   sync.Once
}

// WrapConn subjects an established connection to f.
func WrapConn(conn net.Conn, f *Fault) *Conn {
	return &Conn{Conn: conn, f: f}
}

// stall applies latency and blocks through partitions. It returns an error
// once the connection is closed so stalled operations terminate.
func (c *Conn) stall() error {
	if d := c.f.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	for c.f.partitioned.Load() {
		if c.closed.Load() {
			return net.ErrClosed
		}
		time.Sleep(200 * time.Microsecond)
	}
	if c.closed.Load() {
		return net.ErrClosed
	}
	return nil
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.stall(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.stall(); err != nil {
		return 0, err
	}
	if n := c.f.dropEvery.Load(); n > 0 && c.f.writeCount.Add(1)%n == 0 {
		return len(p), nil // discarded, claiming success
	}
	if c.f.truncateArmed.Load() {
		left := c.f.truncateLeft.Add(-int64(len(p)))
		if left < 0 {
			keep := int64(len(p)) + left
			if keep > 0 {
				_, _ = c.Conn.Write(p[:keep])
			}
			c.Close()
			return int(max64(keep, 0)), errInjected
		}
	}
	return c.Conn.Write(p)
}

// Close implements net.Conn; it also releases operations stalled in a
// partition.
func (c *Conn) Close() error {
	c.closed.Store(true)
	var err error
	c.once.Do(func() { err = c.Conn.Close() })
	return err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ServeFaulty starts a transport server whose every connection runs under
// the Fault's knobs, with cleanup.
func ServeFaulty(t testing.TB, handler transport.Handler, f *Fault) *transport.Server {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ermitest: listen: %v", err)
	}
	srv, err := transport.ServeListener(WrapListener(lis, f), handler)
	if err != nil {
		t.Fatalf("ermitest: serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// DialServer connects a transport client to srv with cleanup.
func DialServer(t testing.TB, srv *transport.Server) *transport.Client {
	t.Helper()
	c, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("ermitest: dial %s: %v", srv.Addr(), err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// StartGroup spins up n group members sharing one installed view
// (coordinator first), with cleanup — the fixture every group-layer test
// needs before it can exercise broadcast or failure detection.
func StartGroup(t testing.TB, n int, heartbeat time.Duration) []*group.Member {
	t.Helper()
	members := make([]*group.Member, n)
	addrs := make([]string, n)
	for i := range members {
		m, err := group.NewMember(group.Config{HeartbeatInterval: heartbeat})
		if err != nil {
			t.Fatalf("ermitest: group member %d: %v", i, err)
		}
		t.Cleanup(func() { m.Close() })
		members[i] = m
		addrs[i] = m.Addr()
	}
	view := group.View{ID: 1, Members: addrs}
	for _, m := range members {
		if err := m.InstallView(view); err != nil {
			t.Fatalf("ermitest: InstallView: %v", err)
		}
	}
	return members
}

// Collect receives exactly n messages from m or fails the test at the
// timeout.
func Collect(t testing.TB, m *group.Member, n int, timeout time.Duration) []group.Message {
	t.Helper()
	var out []group.Message
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case msg := <-m.Messages():
			out = append(out, msg)
		case <-deadline:
			t.Fatalf("ermitest: received %d/%d messages before timeout", len(out), n)
		}
	}
	return out
}
