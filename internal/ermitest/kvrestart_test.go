package ermitest_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/kvstore"
)

// TestKVStoreClusterRestartFromDisk is the whole-cluster power-cut
// scenario: an R=2 durable cluster serves a mixed Put/CAS/delete/lock
// workload, the ENTIRE cluster is halted mid-load (every node's log
// abandoned with unfsynced bytes, as a rack power cut would), and a new
// cluster boots from the surviving node directories. The durability
// contract under test:
//
//   - zero lost acked writes — every acknowledged Put/CAS survives the
//     restart at a value/version >= the acked one;
//   - zero resurrected deletes — a key whose Delete was acked stays gone;
//   - unexpired lock leases come back with their original owner AND
//     original expiry (not extended by recovery), and a released lock
//     does not come back held.
func TestKVStoreClusterRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	opts := kvstore.DurOptions{Dir: dir, GroupCommit: true, SnapshotEvery: 256}
	cl, err := kvstore.NewDurable(3, 2, nil, opts)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}

	var (
		stop       = make(chan struct{})
		stopOnce   sync.Once
		wg         sync.WaitGroup
		inCS       atomic.Int32
		doubleHold atomic.Int32
	)
	halt := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer halt()

	// Writers: one key each, strictly increasing values; the last value
	// and version whose Put RETURNED are the loss oracle. A durable ack
	// means the primary fsynced the write before replying.
	type writerState struct {
		key       string
		lastAcked int64
		ackedVer  uint64
	}
	writers := make([]*writerState, 3)
	for i := range writers {
		ws := &writerState{key: fmt.Sprintf("restart-w%d", i)}
		writers[i] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := int64(1); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ver, err := cl.Put(ws.key, []byte(strconv.FormatInt(n, 10)))
				if err == nil {
					ws.lastAcked, ws.ackedVer = n, ver
				}
			}
		}()
	}

	// CAS chains: an acked CAS is an applied increment; ambiguous
	// failures may add unacked increments, never subtract.
	type casState struct {
		key   string
		acked int64
	}
	casers := make([]*casState, 2)
	for i := range casers {
		cs := &casState{key: fmt.Sprintf("restart-c%d", i)}
		casers[i] = cs
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var cur int64
				var ver uint64
				v, err := cl.Get(cs.key)
				switch {
				case errors.Is(err, kvstore.ErrNotFound):
				case err != nil:
					continue
				default:
					cur, _ = strconv.ParseInt(string(v.Value), 10, 64)
					ver = v.Version
				}
				if _, err := cl.CompareAndSwap(cs.key, []byte(strconv.FormatInt(cur+1, 10)), ver); err == nil {
					cs.acked++
				}
			}
		}()
	}

	// Deleter: put a key, then delete it; a key whose Delete was acked
	// must never resurface after the restart.
	var (
		delMu    sync.Mutex
		ackedDel []string
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("restart-del-%05d", n)
			if _, err := cl.Put(key, []byte("x")); err != nil {
				continue
			}
			if err := cl.Delete(key); err == nil {
				delMu.Lock()
				ackedDel = append(ackedDel, key)
				delMu.Unlock()
			}
		}
	}()

	// Lock churn: contend on one lock, assert mutual exclusion until the
	// halt. Errors are tolerated (the halt races the workload).
	for i := 0; i < 2; i++ {
		worker := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				owner := fmt.Sprintf("restart-locker-%d#%d", worker, seq)
				if err := cl.TryLock("restart-churn-lock", owner, 5*time.Second); err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				if inCS.Add(1) != 1 {
					doubleHold.Add(1)
				}
				time.Sleep(200 * time.Microsecond)
				inCS.Add(-1)
				_ = cl.Unlock("restart-churn-lock", owner)
			}
		}()
	}

	// Ramp the workload so the halt lands mid-stream.
	time.Sleep(400 * time.Millisecond)

	// Pin down the three lock outcomes recovery must reproduce: a long
	// lease that must survive held, a short lease whose exact expiry must
	// be preserved, and a released lock that must not come back.
	if err := cl.TryLock("restart-survivor", "original-owner", 30*time.Second); err != nil {
		t.Fatalf("acquiring survivor lock: %v", err)
	}
	shortAcquired := time.Now()
	const shortLease = 5 * time.Second
	if err := cl.TryLock("restart-short", "short-owner", shortLease); err != nil {
		t.Fatalf("acquiring short lock: %v", err)
	}
	if err := cl.TryLock("restart-released", "done-owner", 30*time.Second); err != nil {
		t.Fatalf("acquiring to-release lock: %v", err)
	}
	if err := cl.Unlock("restart-released", "done-owner"); err != nil {
		t.Fatalf("releasing lock: %v", err)
	}

	// Power cut: every node at once, mid-load, no handoff.
	cl.Halt()
	halt()

	if n := doubleHold.Load(); n != 0 {
		t.Fatalf("mutual exclusion broke %d times before the halt", n)
	}

	// Cold start from the surviving directories.
	cl2, err := kvstore.NewDurable(3, 2, nil, opts)
	if err != nil {
		t.Fatalf("restart NewDurable: %v", err)
	}
	defer cl2.Close()

	for _, ws := range writers {
		if ws.lastAcked == 0 {
			t.Fatalf("writer %s never got an ack; workload did not run", ws.key)
		}
		got, err := cl2.Get(ws.key)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", ws.key, err)
		}
		val, _ := strconv.ParseInt(string(got.Value), 10, 64)
		if val < ws.lastAcked || got.Version < ws.ackedVer {
			t.Fatalf("%s: recovered %d@v%d < acked %d@v%d (acked write lost in restart)",
				ws.key, val, got.Version, ws.lastAcked, ws.ackedVer)
		}
	}
	for _, cs := range casers {
		got, err := cl2.Get(cs.key)
		if errors.Is(err, kvstore.ErrNotFound) && cs.acked == 0 {
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", cs.key, err)
		}
		val, _ := strconv.ParseInt(string(got.Value), 10, 64)
		if val < cs.acked {
			t.Fatalf("%s: recovered %d < %d acked CAS increments", cs.key, val, cs.acked)
		}
	}
	delMu.Lock()
	deleted := ackedDel
	delMu.Unlock()
	if len(deleted) == 0 {
		t.Fatal("deleter never got an ack; workload did not run")
	}
	for _, key := range deleted {
		if _, err := cl2.Get(key); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("deleted key %s resurrected after restart (err=%v)", key, err)
		}
	}

	// Survivor lease: original owner, still held against intruders, and
	// renewable by the owner (owner identity preserved).
	if err := cl2.TryLock("restart-survivor", "intruder", time.Second); !errors.Is(err, kvstore.ErrLockHeld) {
		t.Fatalf("intruder on survivor lease: %v, want ErrLockHeld", err)
	}
	if err := cl2.TryLock("restart-survivor", "original-owner", 30*time.Second); err != nil {
		t.Fatalf("original owner renewing survivor lease: %v", err)
	}

	// Short lease: exact expiry preserved — held before the original
	// expiry, free after it. A recovery that re-stamped the lease would
	// fail the second check; one that dropped it would fail the first.
	if time.Since(shortAcquired) < shortLease-time.Second {
		if err := cl2.TryLock("restart-short", "intruder", time.Second); !errors.Is(err, kvstore.ErrLockHeld) {
			t.Fatalf("intruder on short lease before expiry: %v, want ErrLockHeld", err)
		}
	}
	for time.Since(shortAcquired) < shortLease+300*time.Millisecond {
		time.Sleep(50 * time.Millisecond)
	}
	if err := cl2.TryLock("restart-short", "intruder", time.Second); err != nil {
		t.Fatalf("short lease still held past its original expiry (extended by recovery?): %v", err)
	}

	// Released lock: must not come back held.
	if err := cl2.TryLock("restart-released", "new-owner", time.Second); err != nil {
		t.Fatalf("released lock resurrected as held: %v", err)
	}
}
