package ermitest_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
	"elasticrmi/internal/transport"
)

// overloadObject is the scenario workload: Work sleeps a fixed service
// time (so member capacity is deterministic: MaxConcurrentInvocations /
// serviceTime per member), Hold parks on a shared gate, Probe records that
// it executed at all.
type overloadObject struct {
	mux *core.Mux
}

func newOverloadFactory(serviceTime time.Duration, gate chan struct{}, probes *atomic.Int64) core.Factory {
	return func(ctx *core.MemberContext) (core.Object, error) {
		mux := core.NewMux()
		core.Handle(mux, "Work", func(struct{}) (struct{}, error) {
			time.Sleep(serviceTime)
			return struct{}{}, nil
		})
		core.Handle(mux, "Hold", func(struct{}) (struct{}, error) {
			<-gate
			return struct{}{}, nil
		})
		core.Handle(mux, "Probe", func(struct{}) (struct{}, error) {
			probes.Add(1)
			return struct{}{}, nil
		})
		return &overloadObject{mux: mux}, nil
	}
}

func (o *overloadObject) HandleCall(method string, arg []byte) ([]byte, error) {
	return o.mux.HandleCall(method, arg)
}

// poolShedExpired sums the admission counters across the pool's members via
// the skeletons' __stats surface.
func poolShedExpired(t *testing.T, pool *core.Pool) (shed, expired uint64) {
	t.Helper()
	for _, ep := range pool.Endpoints() {
		c, err := transport.Dial(ep)
		if err != nil {
			t.Fatalf("dial %s: %v", ep, err)
		}
		var rep core.StatsReply
		err = c.CallDecode("overload", core.MethodStats, struct{}{}, &rep, 5*time.Second)
		c.Close()
		if err != nil {
			t.Fatalf("__stats %s: %v", ep, err)
		}
		shed += rep.Shed
		expired += rep.Expired
	}
	return shed, expired
}

// TestOverloadSustainedGoodputAndNoExpiredWork is the admission-control
// scenario of the deadline/overload protocol:
//
//   - Phase 1 (expired work): with every execution slot parked, queued
//     invocations whose budget expires in the queue are dropped at dequeue —
//     their handlers never run, even after the slots free up.
//   - Phase 2 (sustained overload): at roughly 10x the pool's capacity in
//     offered load, acknowledged goodput stays flat — within 20% of
//     single-member capacity x pool size — because excess arrivals are shed
//     with cheap overload replies instead of queued into collapse, and the
//     shed counts surface in the members' stats for the scaling policies.
func TestOverloadSustainedGoodputAndNoExpiredWork(t *testing.T) {
	const (
		members     = 2
		slots       = 4                     // execution slots per member
		serviceTime = 25 * time.Millisecond // Work's sleep
	)
	gate := make(chan struct{})
	var probes atomic.Int64
	env := ermitest.New(t, 8)
	// MaxPoolSize leaves one slot of headroom: the final assertion is that
	// the shed counters reaching PoolMetrics make the implicit policy scale
	// out, even though average CPU is nowhere near its 90% threshold.
	pool := env.StartPool(t, core.Config{
		Name: "overload", MinPoolSize: members, MaxPoolSize: members + 1,
		BurstInterval: time.Hour, DisableBroadcast: true,
		DrainTimeout: time.Second,
		// Sleep-bound handlers on huge slices: utilization stays far below
		// every CPU threshold, so only the shed counters can trigger growth.
		SliceCPUs:                64,
		MaxConcurrentInvocations: slots,
		MaxQueuedInvocations:     2 * slots,
	}, newOverloadFactory(serviceTime, gate, &probes))

	// ---- Phase 1: expired-in-queue work never executes. ----
	// Park every execution slot on every member.
	holders := env.Stub(t, "overload")
	var hold sync.WaitGroup
	for i := 0; i < members*slots; i++ {
		hold.Add(1)
		go func() {
			defer hold.Done()
			_, _ = core.Call[struct{}, struct{}](holders, "Hold", struct{}{})
		}()
	}
	// Wait until all slots are provably occupied: further work gets queued,
	// not executed.
	ermitest.WaitUntil(t, "pool slots fully parked", 5*time.Second, func() bool {
		n := 0
		for _, m := range pool.Members() {
			n += m.Pending
		}
		return n >= members*slots
	})

	// Probes with a budget far below how long the slots stay parked: they
	// are queued (or shed) while every worker is busy, and their budget is
	// gone long before a slot frees — so not one of them may ever execute.
	probeStub := env.Stub(t, "overload", core.WithCallTimeout(60*time.Millisecond))
	for i := 0; i < 2*members*slots; i++ {
		if _, err := core.Call[struct{}, struct{}](probeStub, "Probe", struct{}{}); err == nil {
			t.Fatal("probe succeeded against a fully parked pool")
		}
	}
	time.Sleep(200 * time.Millisecond) // probe budgets are now long expired
	close(gate)
	hold.Wait()
	// Give any (wrongly) surviving probe work a chance to surface.
	ermitest.WaitUntil(t, "pending work to drain", 5*time.Second, func() bool {
		n := 0
		for _, m := range pool.Members() {
			n += m.Pending
		}
		return n == 0
	})
	if got := probes.Load(); got != 0 {
		t.Fatalf("%d expired probes executed; expired-in-queue work must never run", got)
	}
	if _, expired := poolShedExpired(t, pool); expired == 0 {
		t.Fatal("no expired work counted despite expired probes")
	}

	// ---- Phase 2: goodput stays flat under ~10x offered load. ----
	// Capacity: members x slots concurrent Works of serviceTime each.
	capacity := float64(members*slots) / serviceTime.Seconds() // acks/sec
	var acked, refused atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 40 // >> members x slots: every refusal retries instantly
	for i := 0; i < callers; i++ {
		s := env.Stub(t, "overload", core.WithPowerOfTwoBalancing(), core.WithCallTimeout(2*time.Second))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := core.Call[struct{}, struct{}](s, "Work", struct{}{}); err != nil {
					if !errors.Is(err, core.ErrUnavailable) {
						t.Errorf("unexpected invoke error under overload: %v", err)
						return
					}
					refused.Add(1)
					continue
				}
				acked.Add(1)
			}
		}()
	}
	const measure = 2 * time.Second
	// Let the closed loop saturate before measuring.
	time.Sleep(300 * time.Millisecond)
	acked.Store(0)
	refused.Store(0)
	start := time.Now()
	time.Sleep(measure)
	goodput := float64(acked.Load()) / time.Since(start).Seconds()
	close(stop)
	wg.Wait()

	if refused.Load() == 0 {
		t.Fatal("no invocations were refused: the pool was never overloaded")
	}
	// Flat goodput: within 20% of capacity (scheduling overhead only eats
	// into it, so the lower bound is the sharp one; the upper bound catches
	// a broken gate admitting more than its slots).
	if goodput < 0.8*capacity {
		t.Fatalf("goodput %.0f/s under overload, want >= %.0f/s (80%% of capacity %.0f/s)", goodput, 0.8*capacity, capacity)
	}
	if goodput > 1.35*capacity {
		t.Fatalf("goodput %.0f/s exceeds capacity %.0f/s: admission gate not bounding execution", goodput, capacity)
	}
	shed, _ := poolShedExpired(t, pool)
	if shed == 0 {
		t.Fatal("admission controller shed nothing at 10x load")
	}
	// The overload signal closes the elasticity loop: one scaling step sees
	// the shed counts in PoolMetrics and grows the pool, although average
	// CPU (sleep-bound handlers) is far below the implicit 90% threshold.
	pool.Step()
	if got := pool.Size(); got != members+1 {
		t.Fatalf("pool size after scaling step = %d, want %d (shed counts must drive scale-out)", got, members+1)
	}
}
