package ermitest_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/kvstore"
)

// TestKVStoreChaosKillUnderLoad is the shared-state chaos scenario: an R=2
// store cluster serving a mixed Get/Put/CAS/lock workload while one node
// is killed mid-flight and membership keeps churning (AddNode, planned
// RemoveNode). The fault-tolerance contract under test:
//
//   - zero lost acknowledged writes — every acked Put/CAS survives the
//     crash and both migrations, at version >= the acked one;
//   - mutual exclusion never breaks — at no instant do two workers hold
//     the class lock, including across the crash and concurrent
//     AddNode/RemoveNode;
//   - bounded stall — operations issued during failover wait out the
//     repair instead of failing, and no operation wedges.
func TestKVStoreChaosKillUnderLoad(t *testing.T) {
	cl, err := kvstore.NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()

	var (
		stop       = make(chan struct{})
		stopOnce   sync.Once
		wg         sync.WaitGroup
		inCS       atomic.Int32
		doubleHold atomic.Int32
		maxStallNs atomic.Int64
	)
	// halt stops the workload and drains the workers. Deferred so that an
	// early Fatalf cannot leave workers calling t.Errorf after the test
	// has completed.
	halt := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer halt()
	timed := func(op func() error) error {
		t0 := time.Now()
		err := op()
		d := time.Since(t0).Nanoseconds()
		for {
			cur := maxStallNs.Load()
			if d <= cur || maxStallNs.CompareAndSwap(cur, d) {
				break
			}
		}
		return err
	}

	// Writers: one key each, strictly increasing values; the last
	// acknowledged value/version is the loss oracle checked at the end.
	type writerState struct {
		key       string
		lastAcked int64
		ackedVer  uint64
	}
	writers := make([]*writerState, 3)
	for i := range writers {
		ws := &writerState{key: fmt.Sprintf("chaos-w%d", i)}
		writers[i] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := int64(1); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var ver uint64
				err := timed(func() (err error) {
					ver, err = cl.Put(ws.key, []byte(strconv.FormatInt(n, 10)))
					return err
				})
				if err == nil {
					ws.lastAcked, ws.ackedVer = n, ver
				}
			}
		}()
	}

	// CAS workers: read-modify-write increment chains. An acked CAS is an
	// applied increment; ambiguous failures (applied but unacked) may add
	// extra increments, never subtract — so final >= acked.
	type casState struct {
		key   string
		acked int64
	}
	casers := make([]*casState, 2)
	for i := range casers {
		cs := &casState{key: fmt.Sprintf("chaos-c%d", i)}
		casers[i] = cs
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var cur int64
				var ver uint64
				err := timed(func() error {
					v, err := cl.Get(cs.key)
					if errors.Is(err, kvstore.ErrNotFound) {
						cur, ver = 0, 0
						return nil
					}
					if err != nil {
						return err
					}
					cur, _ = strconv.ParseInt(string(v.Value), 10, 64)
					ver = v.Version
					return nil
				})
				if err != nil {
					continue
				}
				err = timed(func() error {
					_, err := cl.CompareAndSwap(cs.key, []byte(strconv.FormatInt(cur+1, 10)), ver)
					return err
				})
				if err == nil {
					cs.acked++
				}
			}
		}()
	}

	// Lock workers: contend on one class lock; the critical section checks
	// it is alone via the shared counter. The lease is far longer than the
	// critical section, so only a real mutual-exclusion break (a second
	// admitted holder) can trip the counter.
	for i := 0; i < 3; i++ {
		worker := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				owner := fmt.Sprintf("locker-%d#%d", worker, seq)
				err := timed(func() error {
					return cl.TryLock("chaos-class-lock", owner, 5*time.Second)
				})
				if err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				if inCS.Add(1) != 1 {
					doubleHold.Add(1)
				}
				time.Sleep(500 * time.Microsecond)
				inCS.Add(-1)
				err = timed(func() error {
					return cl.Unlock("chaos-class-lock", owner)
				})
				if err != nil && !errors.Is(err, kvstore.ErrNotLockOwner) {
					t.Errorf("Unlock: %v", err)
					return
				}
			}
		}()
	}

	// Readers: writer keys must always resolve (or be not-yet-written) —
	// a shard must never go dark with one crash at R=2.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("chaos-w%d", n%len(writers))
				err := timed(func() error {
					_, err := cl.Get(key)
					return err
				})
				if err != nil && !errors.Is(err, kvstore.ErrNotFound) {
					t.Errorf("Get(%s): %v", key, err)
					return
				}
			}
		}()
	}

	// Let the workload ramp, then kill a node and keep churning
	// membership under the same load.
	time.Sleep(300 * time.Millisecond)
	if err := cl.CrashNode(cl.Addrs()[1]); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode under load: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := cl.RemoveNode(cl.Addrs()[0]); err != nil {
		t.Fatalf("RemoveNode under load: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	halt()

	if n := doubleHold.Load(); n != 0 {
		t.Fatalf("mutual exclusion broke %d times (two holders of one lock)", n)
	}
	for _, ws := range writers {
		if ws.lastAcked == 0 {
			t.Fatalf("writer %s never got an ack; workload did not run", ws.key)
		}
		got, err := cl.Get(ws.key)
		if err != nil {
			t.Fatalf("Get(%s) after chaos: %v", ws.key, err)
		}
		val, _ := strconv.ParseInt(string(got.Value), 10, 64)
		if val < ws.lastAcked || got.Version < ws.ackedVer {
			t.Fatalf("%s: final %d@v%d < acked %d@v%d (acknowledged write lost)",
				ws.key, val, got.Version, ws.lastAcked, ws.ackedVer)
		}
	}
	for _, cs := range casers {
		got, err := cl.Get(cs.key)
		if errors.Is(err, kvstore.ErrNotFound) && cs.acked == 0 {
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s) after chaos: %v", cs.key, err)
		}
		val, _ := strconv.ParseInt(string(got.Value), 10, 64)
		if val < cs.acked {
			t.Fatalf("%s: final %d < %d acked CAS increments (acknowledged CAS lost)", cs.key, val, cs.acked)
		}
	}
	if stall := time.Duration(maxStallNs.Load()); stall > 15*time.Second {
		t.Fatalf("max operation stall %v exceeds the failover bound", stall)
	} else {
		t.Logf("chaos summary: max stall %v, writers acked %d/%d/%d, cas acked %d/%d",
			stall, writers[0].lastAcked, writers[1].lastAcked, writers[2].lastAcked,
			casers[0].acked, casers[1].acked)
	}
}
