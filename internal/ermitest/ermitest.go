// Package ermitest provides the shared fixture for integration tests: a
// miniature deployment of every substrate (cluster manager, key-value
// store, registry) plus helpers to start elastic pools and stubs against
// them, all on loopback TCP with automatic cleanup.
package ermitest

import (
	"testing"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/core"
	"elasticrmi/internal/kvstore"
)

// WaitUntil polls cond until it holds or the deadline fails the test — the
// shared readiness-poll idiom for state that has no completion channel.
// Tests use it instead of hand-rolled sleep loops.
func WaitUntil(t testing.TB, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Env is one test deployment.
type Env struct {
	Cluster  *cluster.Manager
	Store    *kvstore.Cluster
	Registry *core.RegistryServer
	RegCli   *core.RegistryClient
}

// New starts an Env with the given number of single-slice nodes.
func New(t testing.TB, slices int) *Env {
	t.Helper()
	mgr, err := cluster.New(cluster.Config{Nodes: slices, SlicesPerNode: 1})
	if err != nil {
		t.Fatalf("ermitest: cluster: %v", err)
	}
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		t.Fatalf("ermitest: kvstore: %v", err)
	}
	reg, err := core.NewRegistryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ermitest: registry: %v", err)
	}
	regCli, err := core.DialRegistry(reg.Addr())
	if err != nil {
		t.Fatalf("ermitest: registry client: %v", err)
	}
	env := &Env{Cluster: mgr, Store: store, Registry: reg, RegCli: regCli}
	t.Cleanup(func() {
		regCli.Close()
		reg.Close()
		store.Close()
		mgr.Close()
	})
	return env
}

// Deps returns the pool dependencies of this Env.
func (e *Env) Deps() core.Deps {
	return core.Deps{Cluster: e.Cluster, Store: e.Store, Registry: e.RegCli}
}

// StartPool instantiates an elastic pool with cleanup.
func (e *Env) StartPool(t testing.TB, cfg core.Config, factory core.Factory) *core.Pool {
	t.Helper()
	pool, err := core.NewPool(cfg, factory, e.Deps())
	if err != nil {
		t.Fatalf("ermitest: NewPool(%s): %v", cfg.Name, err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// Stub resolves name through the registry with cleanup.
func (e *Env) Stub(t testing.TB, name string, opts ...core.StubOption) *core.Stub {
	t.Helper()
	stub, err := core.LookupStub(name, e.RegCli, opts...)
	if err != nil {
		t.Fatalf("ermitest: stub %s: %v", name, err)
	}
	t.Cleanup(func() { stub.Close() })
	return stub
}
