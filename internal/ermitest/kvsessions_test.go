package ermitest_test

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/kvstore"
)

// TestKVSessionsNoStaleReadsAcrossCrash is the session-cache chaos
// scenario: an R=2 cluster under a read-heavy cached workload loses a
// primary mid-flight (then gains a fresh node, forcing a second view
// change and rebalance). The coherence contract under test:
//
//   - zero stale reads — every read, cached or not, observes a value at
//     least as new as the last write whose ack completed before the read
//     began. The dead primary granted leases it can never revoke; the
//     post-failover write fence is what keeps this invariant across the
//     crash.
//   - sessions re-establish — after the churn the session layer is live
//     again (caching reads against the promoted primaries), not wedged in
//     permanent fallback.
func TestKVSessionsNoStaleReadsAcrossCrash(t *testing.T) {
	cl, err := kvstore.NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()
	// A short session TTL keeps the failover fence (one TTL of delayed
	// write acks) proportionate to the test, exactly as a deployment
	// tuning latency bounds would.
	cl.SetSessionTTL(300 * time.Millisecond)

	const nKeys = 8
	keys := make([]string, nKeys)
	// floor[i] is the newest value of keys[i] whose write ack has
	// completed — the staleness oracle. Writers publish AFTER the ack
	// returns, readers snapshot BEFORE issuing the read: whatever the
	// snapshot holds was acked strictly before the read began, so the read
	// must observe at least it.
	var floor [nKeys]atomic.Int64
	for i := range keys {
		keys[i] = fmt.Sprintf("sess-chaos/%d", i)
	}

	var (
		stop       = make(chan struct{})
		stopOnce   sync.Once
		wg         sync.WaitGroup
		staleReads atomic.Int64
		totalReads atomic.Int64
	)
	halt := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer halt()

	// Two writers cycle disjoint halves of the keyspace with strictly
	// increasing values. Each key has exactly ONE writer: that is what
	// makes the floor oracle sound. With two writers racing one key, a
	// lower value applied after a higher one is a legal linearization of
	// concurrent Puts — a read returning it would be flagged here without
	// being stale.
	for w := 0; w < 2; w++ {
		worker := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := int64(1); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (int(n)%(nKeys/2))*2 + worker
				val := n*2 + int64(worker) // monotone per key, unique across writers
				if _, err := cl.Put(keys[i], []byte(strconv.FormatInt(val, 10))); err != nil {
					continue
				}
				// Ack in hand: every read starting after this point must
				// see >= val (or a successor).
				for {
					cur := floor[i].Load()
					if val <= cur || floor[i].CompareAndSwap(cur, val) {
						break
					}
				}
			}
		}()
	}

	// Read-heavy side: four readers over two shared cluster sessions.
	sessions := []*kvstore.ClusterSession{
		cl.NewSession(kvstore.SessionOptions{}),
		cl.NewSession(kvstore.SessionOptions{}),
	}
	defer func() {
		for _, cs := range sessions {
			cs.Close()
		}
	}()
	for r := 0; r < 4; r++ {
		cs := sessions[r%len(sessions)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := n % nKeys
				before := floor[i].Load()
				v, err := cs.Get(keys[i])
				if err != nil {
					if errors.Is(err, kvstore.ErrNotFound) && before == 0 {
						continue // not written yet, and provably none acked
					}
					t.Errorf("Get(%s): %v (acked floor %d)", keys[i], err, before)
					return
				}
				totalReads.Add(1)
				got, perr := strconv.ParseInt(string(v.Value), 10, 64)
				if perr != nil {
					t.Errorf("Get(%s): unparseable %q", keys[i], v.Value)
					return
				}
				if got < before {
					staleReads.Add(1)
					t.Errorf("stale read: %s = %d, but %d was acked before the read began",
						keys[i], got, before)
				}
			}
		}()
	}

	// Ramp, then kill a node (some keys' primary at R=2) under load, then
	// force a second view change with a fresh node.
	time.Sleep(300 * time.Millisecond)
	if err := cl.CrashNode(cl.Addrs()[1]); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode under load: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	halt()

	if n := staleReads.Load(); n != 0 {
		t.Fatalf("%d stale reads across crash/failover", n)
	}
	if totalReads.Load() == 0 {
		t.Fatal("no reads completed; workload did not run")
	}
	// The session layer must have come back: live sessions serving hits,
	// not a permanent fall-through to uncached reads.
	reestablished := false
	deadline := time.Now().Add(5 * time.Second)
	for !reestablished && time.Now().Before(deadline) {
		for _, cs := range sessions {
			for _, k := range keys {
				if _, err := cs.Get(k); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
					t.Fatalf("post-chaos Get(%s): %v", k, err)
				}
			}
			if st := cs.Stats(); st.LiveSessions > 0 {
				reestablished = true
			}
		}
	}
	if !reestablished {
		t.Fatal("no session re-established after failover")
	}
	var agg kvstore.ClusterSessionStats
	for _, cs := range sessions {
		st := cs.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Invalidations += st.Invalidations
		agg.LiveSessions += st.LiveSessions
	}
	if agg.Hits == 0 {
		t.Fatal("cache never served a hit; session layer was inert")
	}
	t.Logf("session chaos summary: %d reads (%d hits, %d misses, %d invalidations), %d live sessions",
		totalReads.Load(), agg.Hits, agg.Misses, agg.Invalidations, agg.LiveSessions)
}
