package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"elasticrmi/internal/simclock"
)

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore(nil)
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	v1 := s.Put("k", []byte("a"))
	if v1 != 1 {
		t.Fatalf("first version = %d, want 1", v1)
	}
	got, err := s.Get("k")
	if err != nil || string(got.Value) != "a" || got.Version != 1 {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	v2 := s.Put("k", []byte("b"))
	if v2 != 2 {
		t.Fatalf("second version = %d, want 2", v2)
	}
	s.Delete("k")
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
	s.Delete("k") // idempotent
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore(nil)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X' // caller mutation must not leak in
	got, _ := s.Get("k")
	if string(got.Value) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", got.Value)
	}
	got.Value[0] = 'Y' // reader mutation must not leak back
	got2, _ := s.Get("k")
	if string(got2.Value) != "abc" {
		t.Fatalf("reader mutated stored value: %q", got2.Value)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := NewStore(nil)
	// Create iff absent.
	v, _, err := s.CompareAndSwap("k", []byte("a"), 0)
	if err != nil || v != 1 {
		t.Fatalf("CAS create = %d, %v", v, err)
	}
	// Wrong version fails and reports current.
	_, cur, err := s.CompareAndSwap("k", []byte("b"), 0)
	if !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS stale = %v, want mismatch", err)
	}
	if cur.Version != 1 || string(cur.Value) != "a" {
		t.Fatalf("current = %+v", cur)
	}
	// Correct version succeeds.
	v, _, err = s.CompareAndSwap("k", []byte("b"), 1)
	if err != nil || v != 2 {
		t.Fatalf("CAS update = %d, %v", v, err)
	}
}

func TestAddInt64(t *testing.T) {
	s := NewStore(nil)
	for i := int64(1); i <= 5; i++ {
		got, err := s.AddInt64("n", 1)
		if err != nil || got != i {
			t.Fatalf("Add #%d = %d, %v", i, got, err)
		}
	}
	got, err := s.AddInt64("n", -10)
	if err != nil || got != -5 {
		t.Fatalf("Add(-10) = %d, %v", got, err)
	}
	s.Put("s", []byte("not-a-number"))
	if _, err := s.AddInt64("s", 1); err == nil {
		t.Fatal("Add on non-integer succeeded")
	}
}

func TestAddInt64Concurrent(t *testing.T) {
	s := NewStore(nil)
	const workers, per = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.AddInt64("c", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := s.AddInt64("c", 0)
	if got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := NewStore(nil)
	s.Put("a/1", nil)
	s.Put("a/2", nil)
	s.Put("b/1", nil)
	keys := s.Keys("a/")
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("Keys(a/) = %v", keys)
	}
	if got := s.Keys(""); len(got) != 3 {
		t.Fatalf("Keys(\"\") = %v", got)
	}
}

func TestLocksMutualExclusion(t *testing.T) {
	s := NewStore(nil)
	if err := s.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("alice lock: %v", err)
	}
	if err := s.TryLock("L", "bob", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("bob lock = %v, want ErrLockHeld", err)
	}
	// Same owner renews.
	if err := s.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("alice renew: %v", err)
	}
	if err := s.Unlock("L", "bob"); !errors.Is(err, ErrNotLockOwner) {
		t.Fatalf("bob unlock = %v, want ErrNotLockOwner", err)
	}
	if err := s.Unlock("L", "alice"); err != nil {
		t.Fatalf("alice unlock: %v", err)
	}
	if err := s.TryLock("L", "bob", time.Minute); err != nil {
		t.Fatalf("bob lock after release: %v", err)
	}
}

func TestLockLeaseExpiry(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	s := NewStore(clock)
	if err := s.TryLock("L", "alice", 10*time.Second); err != nil {
		t.Fatalf("lock: %v", err)
	}
	clock.Advance(5 * time.Second)
	if err := s.TryLock("L", "bob", time.Second); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("bob before expiry = %v, want held", err)
	}
	clock.Advance(6 * time.Second)
	if err := s.TryLock("L", "bob", time.Second); err != nil {
		t.Fatalf("bob after expiry: %v (lease must break)", err)
	}
	if owner, held := s.LockOwner("L"); !held || owner != "bob" {
		t.Fatalf("owner = %q/%v, want bob", owner, held)
	}
}

func TestExportImport(t *testing.T) {
	s := NewStore(nil)
	s.Put("x/1", []byte("a"))
	s.Put("x/1", []byte("b")) // version 2
	s.Put("y/1", []byte("c"))
	snap := s.Export(func(k string) bool { return k[0] == 'x' })
	if len(snap) != 1 || snap["x/1"].Version != 2 {
		t.Fatalf("export = %+v", snap)
	}
	dst := NewStore(nil)
	dst.Import(snap)
	got, err := dst.Get("x/1")
	if err != nil || string(got.Value) != "b" || got.Version != 2 {
		t.Fatalf("imported = %+v, %v (version must be preserved)", got, err)
	}
}

// Property: Put then Get always returns the stored value with an increased
// version, for arbitrary keys and values.
func TestPutGetProperty(t *testing.T) {
	s := NewStore(nil)
	prop := func(key string, value []byte) bool {
		before, _ := s.Get(key)
		v := s.Put(key, value)
		if v != before.Version+1 {
			return false
		}
		got, err := s.Get(key)
		return err == nil && string(got.Value) == string(value) && got.Version == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddInt64 over any sequence of deltas equals their running sum.
func TestAddInt64Property(t *testing.T) {
	prop := func(deltas []int32) bool {
		s := NewStore(nil)
		var sum int64
		for _, d := range deltas {
			sum += int64(d)
			got, err := s.AddInt64("k", int64(d))
			if err != nil || got != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClientServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	if _, err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("k")
	if err != nil || string(got.Value) != "v" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound over the wire", err)
	}
	if _, err := c.CompareAndSwap("k", []byte("w"), 99); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS = %v, want ErrCASMismatch over the wire", err)
	}
	if err := c.TryLock("L", "a", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if err := c.TryLock("L", "b", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryLock(b) = %v, want ErrLockHeld over the wire", err)
	}
	n, err := c.AddInt64("cnt", 7)
	if err != nil || n != 7 {
		t.Fatalf("AddInt64 = %d, %v", n, err)
	}
	if s, err := c.GetString("nope"); err != nil || s != "" {
		t.Fatalf("GetString(missing) = %q, %v", s, err)
	}
	if err := c.PutInt64("i", -3); err != nil {
		t.Fatalf("PutInt64: %v", err)
	}
	if i, err := c.GetInt64("i"); err != nil || i != -3 {
		t.Fatalf("GetInt64 = %d, %v", i, err)
	}
}

func TestClusterShardingAndMigration(t *testing.T) {
	cl, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := cl.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if cl.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", cl.Nodes())
	}
	// Every key must still be readable after migration.
	for i := 0; i < n; i++ {
		got, err := cl.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatalf("Get(key-%03d) after migration: %v", i, err)
		}
		if string(got.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key-%03d = %q", i, got.Value)
		}
	}
	// No key may exist on two nodes.
	keys, err := cl.Keys("key-")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("cluster holds %d copies of %d keys (duplicates after migration)", len(keys), n)
	}
}

func TestClusterLocksRouteByName(t *testing.T) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if err := cl.TryLock("L", "a", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if err := cl.TryLock("L", "b", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second TryLock = %v, want ErrLockHeld (same shard)", err)
	}
	if err := cl.Unlock("L", "a"); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
}

func TestGoPutPipelines(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	// Submit a whole window of puts before collecting a single version:
	// throughput bounded by the store, not by per-put round trips.
	const n = 100
	puts := make([]*AsyncPut, n)
	for i := 0; i < n; i++ {
		puts[i] = c.GoPut(fmt.Sprintf("pipe/%03d", i), []byte{byte(i)})
	}
	for i, p := range puts {
		v, err := p.Version()
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if v == 0 {
			t.Fatalf("put %d: version 0", i)
		}
		if v2, err2 := p.Version(); v2 != v || err2 != nil {
			t.Fatalf("put %d: repeated Version drifted: %d/%v vs %d", i, v2, err2, v)
		}
	}
	for i := 0; i < n; i++ {
		got, err := c.Get(fmt.Sprintf("pipe/%03d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(got.Value) != 1 || got.Value[0] != byte(i) {
			t.Fatalf("get %d = %v", i, got.Value)
		}
	}
}
