package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"elasticrmi/internal/simclock"
)

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore(nil)
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	v1 := s.Put("k", []byte("a"))
	if v1 != 1 {
		t.Fatalf("first version = %d, want 1", v1)
	}
	got, err := s.Get("k")
	if err != nil || string(got.Value) != "a" || got.Version != 1 {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	v2 := s.Put("k", []byte("b"))
	if v2 != 2 {
		t.Fatalf("second version = %d, want 2", v2)
	}
	s.Delete("k")
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
	s.Delete("k") // idempotent
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore(nil)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X' // caller mutation must not leak in
	got, _ := s.Get("k")
	if string(got.Value) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", got.Value)
	}
	got.Value[0] = 'Y' // reader mutation must not leak back
	got2, _ := s.Get("k")
	if string(got2.Value) != "abc" {
		t.Fatalf("reader mutated stored value: %q", got2.Value)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := NewStore(nil)
	// Create iff absent.
	v, _, err := s.CompareAndSwap("k", []byte("a"), 0)
	if err != nil || v != 1 {
		t.Fatalf("CAS create = %d, %v", v, err)
	}
	// Wrong version fails and reports current.
	_, cur, err := s.CompareAndSwap("k", []byte("b"), 0)
	if !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS stale = %v, want mismatch", err)
	}
	if cur.Version != 1 || string(cur.Value) != "a" {
		t.Fatalf("current = %+v", cur)
	}
	// Correct version succeeds.
	v, _, err = s.CompareAndSwap("k", []byte("b"), 1)
	if err != nil || v != 2 {
		t.Fatalf("CAS update = %d, %v", v, err)
	}
}

func TestAddInt64(t *testing.T) {
	s := NewStore(nil)
	for i := int64(1); i <= 5; i++ {
		got, err := s.AddInt64("n", 1)
		if err != nil || got != i {
			t.Fatalf("Add #%d = %d, %v", i, got, err)
		}
	}
	got, err := s.AddInt64("n", -10)
	if err != nil || got != -5 {
		t.Fatalf("Add(-10) = %d, %v", got, err)
	}
	s.Put("s", []byte("not-a-number"))
	if _, err := s.AddInt64("s", 1); err == nil {
		t.Fatal("Add on non-integer succeeded")
	}
}

func TestAddInt64Concurrent(t *testing.T) {
	s := NewStore(nil)
	const workers, per = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.AddInt64("c", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := s.AddInt64("c", 0)
	if got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := NewStore(nil)
	s.Put("a/1", nil)
	s.Put("a/2", nil)
	s.Put("b/1", nil)
	keys := s.Keys("a/")
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("Keys(a/) = %v", keys)
	}
	if got := s.Keys(""); len(got) != 3 {
		t.Fatalf("Keys(\"\") = %v", got)
	}
}

func TestLocksMutualExclusion(t *testing.T) {
	s := NewStore(nil)
	if err := s.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("alice lock: %v", err)
	}
	if err := s.TryLock("L", "bob", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("bob lock = %v, want ErrLockHeld", err)
	}
	// Same owner renews.
	if err := s.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("alice renew: %v", err)
	}
	if err := s.Unlock("L", "bob"); !errors.Is(err, ErrNotLockOwner) {
		t.Fatalf("bob unlock = %v, want ErrNotLockOwner", err)
	}
	if err := s.Unlock("L", "alice"); err != nil {
		t.Fatalf("alice unlock: %v", err)
	}
	if err := s.TryLock("L", "bob", time.Minute); err != nil {
		t.Fatalf("bob lock after release: %v", err)
	}
}

func TestLockLeaseExpiry(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	s := NewStore(clock)
	if err := s.TryLock("L", "alice", 10*time.Second); err != nil {
		t.Fatalf("lock: %v", err)
	}
	clock.Advance(5 * time.Second)
	if err := s.TryLock("L", "bob", time.Second); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("bob before expiry = %v, want held", err)
	}
	clock.Advance(6 * time.Second)
	if err := s.TryLock("L", "bob", time.Second); err != nil {
		t.Fatalf("bob after expiry: %v (lease must break)", err)
	}
	if owner, held := s.LockOwner("L"); !held || owner != "bob" {
		t.Fatalf("owner = %q/%v, want bob", owner, held)
	}
}

func TestExportImport(t *testing.T) {
	s := NewStore(nil)
	s.Put("x/1", []byte("a"))
	s.Put("x/1", []byte("b")) // version 2
	s.Put("y/1", []byte("c"))
	snap := s.Export(func(k string) bool { return k[0] == 'x' })
	if len(snap) != 1 || snap["x/1"].Version != 2 {
		t.Fatalf("export = %+v", snap)
	}
	dst := NewStore(nil)
	dst.Import(snap)
	got, err := dst.Get("x/1")
	if err != nil || string(got.Value) != "b" || got.Version != 2 {
		t.Fatalf("imported = %+v, %v (version must be preserved)", got, err)
	}
}

// Property: Put then Get always returns the stored value with an increased
// version, for arbitrary keys and values.
func TestPutGetProperty(t *testing.T) {
	s := NewStore(nil)
	prop := func(key string, value []byte) bool {
		before, _ := s.Get(key)
		v := s.Put(key, value)
		if v != before.Version+1 {
			return false
		}
		got, err := s.Get(key)
		return err == nil && string(got.Value) == string(value) && got.Version == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddInt64 over any sequence of deltas equals their running sum.
func TestAddInt64Property(t *testing.T) {
	prop := func(deltas []int32) bool {
		s := NewStore(nil)
		var sum int64
		for _, d := range deltas {
			sum += int64(d)
			got, err := s.AddInt64("k", int64(d))
			if err != nil || got != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClientServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	if _, err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("k")
	if err != nil || string(got.Value) != "v" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound over the wire", err)
	}
	if _, err := c.CompareAndSwap("k", []byte("w"), 99); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS = %v, want ErrCASMismatch over the wire", err)
	}
	if err := c.TryLock("L", "a", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if err := c.TryLock("L", "b", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryLock(b) = %v, want ErrLockHeld over the wire", err)
	}
	n, err := c.AddInt64("cnt", 7)
	if err != nil || n != 7 {
		t.Fatalf("AddInt64 = %d, %v", n, err)
	}
	if s, err := c.GetString("nope"); err != nil || s != "" {
		t.Fatalf("GetString(missing) = %q, %v", s, err)
	}
	if err := c.PutInt64("i", -3); err != nil {
		t.Fatalf("PutInt64: %v", err)
	}
	if i, err := c.GetInt64("i"); err != nil || i != -3 {
		t.Fatalf("GetInt64 = %d, %v", i, err)
	}
}

func TestClusterShardingAndMigration(t *testing.T) {
	cl, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := cl.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if cl.Nodes() != 3 {
		t.Fatalf("nodes = %d, want 3", cl.Nodes())
	}
	// Every key must still be readable after migration.
	for i := 0; i < n; i++ {
		got, err := cl.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatalf("Get(key-%03d) after migration: %v", i, err)
		}
		if string(got.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key-%03d = %q", i, got.Value)
		}
	}
	// No key may exist on two nodes (R=1: replicas would be duplicates).
	keys, err := cl.Keys("key-")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("Keys returned %d of %d keys", len(keys), n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		copies := 0
		for _, nd := range cl.nodes {
			if _, err := nd.srv.Store().Get(key); err == nil {
				copies++
			}
		}
		if copies != 1 {
			t.Fatalf("%s on %d nodes, want exactly 1 at R=1", key, copies)
		}
	}
}

func TestExportImportLocks(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	src := NewStore(clock)
	if err := src.TryLock("A", "alice", time.Minute); err != nil {
		t.Fatalf("TryLock A: %v", err)
	}
	if err := src.TryLock("B", "bob", time.Second); err != nil {
		t.Fatalf("TryLock B: %v", err)
	}
	if err := src.TryLock("other", "carol", time.Minute); err != nil {
		t.Fatalf("TryLock other: %v", err)
	}
	clock.Advance(2 * time.Second) // B's lease expires

	snap := src.ExportLocks(func(name string) bool { return name != "other" })
	if _, ok := snap["other"]; ok {
		t.Fatal("filter ignored")
	}
	a, ok := snap["A"]
	if !ok || a.Owner != "alice" || !a.Expires.Equal(time.Unix(60, 0)) {
		t.Fatalf("exported A = %+v (owner and absolute expiry must be carried)", a)
	}

	dst := NewStore(clock)
	dst.ImportLocks(snap)
	if owner, held := dst.LockOwner("A"); !held || owner != "alice" {
		t.Fatalf("imported A owner = %q/%v, want alice", owner, held)
	}
	// B expired before export; its state may travel but must not be held.
	if _, held := dst.LockOwner("B"); held {
		t.Fatal("expired lease imported as held")
	}
	if err := dst.TryLock("A", "mallory", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryLock(mallory) on imported lease = %v, want ErrLockHeld", err)
	}
	if err := dst.Unlock("A", "alice"); err != nil {
		t.Fatalf("Unlock(alice) on imported lease: %v", err)
	}
}

// TestImportLocksOrdering: a re-delivered older lease (smaller sequence)
// must never overwrite a newer state — in particular it must not
// resurrect a released lock.
func TestImportLocksOrdering(t *testing.T) {
	src := NewStore(nil)
	if err := src.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatal(err)
	}
	heldSnap := src.ExportLocks(nil) // lease at seq 1
	if err := src.Unlock("L", "alice"); err != nil {
		t.Fatal(err)
	}
	releasedSnap := src.ExportLocks(nil) // tombstone at seq 2

	dst := NewStore(nil)
	dst.ImportLocks(releasedSnap)
	dst.ImportLocks(heldSnap) // delayed re-delivery of the older lease
	if owner, held := dst.LockOwner("L"); held {
		t.Fatalf("released lock resurrected by stale import (owner %q)", owner)
	}
	// Local mutations after an import must outrank everything imported.
	if err := dst.TryLock("L", "bob", time.Minute); err != nil {
		t.Fatal(err)
	}
	dst.ImportLocks(releasedSnap)
	if owner, held := dst.LockOwner("L"); !held || owner != "bob" {
		t.Fatalf("local acquisition lost to stale import: %q/%v", owner, held)
	}
}

// TestImportVersionGate: Import is idempotent and can never roll a key
// back to an older version.
func TestImportVersionGate(t *testing.T) {
	s := NewStore(nil)
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2")) // version 2
	s.Import(map[string]Versioned{"k": {Value: []byte("stale"), Version: 1}})
	got, err := s.Get("k")
	if err != nil || string(got.Value) != "v2" || got.Version != 2 {
		t.Fatalf("stale import rolled key back: %+v, %v", got, err)
	}
	s.Import(map[string]Versioned{"k": {Value: []byte("v5"), Version: 5}})
	if got, _ := s.Get("k"); got.Version != 5 {
		t.Fatalf("newer import rejected: %+v", got)
	}
}

func TestClusterLocksRouteByName(t *testing.T) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if err := cl.TryLock("L", "a", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if err := cl.TryLock("L", "b", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second TryLock = %v, want ErrLockHeld (same shard)", err)
	}
	if err := cl.Unlock("L", "a"); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
}

func TestGoPutPipelines(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	// Submit a whole window of puts before collecting a single version:
	// throughput bounded by the store, not by per-put round trips.
	const n = 100
	puts := make([]*AsyncPut, n)
	for i := 0; i < n; i++ {
		puts[i] = c.GoPut(fmt.Sprintf("pipe/%03d", i), []byte{byte(i)})
	}
	for i, p := range puts {
		v, err := p.Version()
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if v == 0 {
			t.Fatalf("put %d: version 0", i)
		}
		if v2, err2 := p.Version(); v2 != v || err2 != nil {
			t.Fatalf("put %d: repeated Version drifted: %d/%v vs %d", i, v2, err2, v)
		}
	}
	for i := 0; i < n; i++ {
		got, err := c.Get(fmt.Sprintf("pipe/%03d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(got.Value) != 1 || got.Value[0] != byte(i) {
			t.Fatalf("get %d = %v", i, got.Value)
		}
	}
}

// TestDeleteTombstoneOrdering: deletions leave version-stamped tombstones
// invisible to readers but decisive in merges — a stale live copy can
// never outrank (resurrect past) a deletion, and a re-created key
// continues above its tombstone.
func TestDeleteTombstoneOrdering(t *testing.T) {
	s := NewStore(nil)
	s.Put("k", []byte("a")) // v1
	s.Delete("k")           // tombstone v2
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(deleted) = %v, want ErrNotFound", err)
	}
	if s.Len() != 0 || len(s.Keys("")) != 0 {
		t.Fatalf("tombstone visible: Len=%d Keys=%v", s.Len(), s.Keys(""))
	}
	snap := s.Export(nil)
	if e, ok := snap["k"]; !ok || !e.Deleted || e.Version != 2 {
		t.Fatalf("exported tombstone = %+v, %v", snap["k"], ok)
	}
	// A stale live copy (the pre-delete value) must not resurrect the key.
	s.Import(map[string]Versioned{"k": {Value: []byte("stale"), Version: 1}})
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale import resurrected deleted key: %v", err)
	}
	// Re-creation continues above the tombstone.
	if v := s.Put("k", []byte("b")); v != 3 {
		t.Fatalf("re-created version = %d, want 3 (must continue above tombstone)", v)
	}
	s.Delete("k") // tombstone v4
	v, _, err := s.CompareAndSwap("k", []byte("c"), 0)
	if err != nil || v != 5 {
		t.Fatalf("CAS create after delete = %d, %v (deleted key counts as absent)", v, err)
	}
	s.Delete("k") // tombstone v6
	if n, err := s.AddInt64("k", 4); err != nil || n != 4 {
		t.Fatalf("Add after delete = %d, %v (deleted key counts as 0)", n, err)
	}
	if got, _ := s.Get("k"); got.Version != 7 {
		t.Fatalf("Add version = %d, want 7", got.Version)
	}
}
