package kvstore

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"elasticrmi/internal/transport"
)

// defaultCallTimeout bounds individual store operations.
const defaultCallTimeout = 10 * time.Second

// Client talks to a single store node. Safe for concurrent use.
type Client struct {
	mu   sync.Mutex
	conn *transport.Client
	addr string
}

// NewClient connects to the store node at addr.
func NewClient(addr string) (*Client, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore client: %w", err)
	}
	return &Client{conn: conn, addr: addr}, nil
}

// Addr returns the node address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Close releases the connection. The handle lock is not held across the
// close: transport.Client.Close waits for the reader goroutine to drain
// (a blocking receive) and is itself idempotent, so holding mu here
// would only let a slow drain stall every caller snapshotting the
// connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// shedRetries bounds how many times a call the server provably never
// executed (admission shed, queue expiry) is retried before the error
// surfaces to the caller.
const shedRetries = 5

// callShedRetry runs do, retrying with a short doubling backoff while it
// fails with transport.ErrOverloaded or transport.ErrExpired. Both refusal
// statuses guarantee the handler never ran, so the retry is safe even for
// non-idempotent operations (Put, AddInt64, TryLock). Treating them as
// fatal would be wrong twice over: an ordinary caller would surface a
// transient queue blip as an operation failure, and a session keepalive or
// invalidation ack hitting one shed reply would tear down a healthy
// session.
func callShedRetry(sleep func(time.Duration), do func() error) error {
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		err := do()
		if err == nil || attempt >= shedRetries ||
			(!errors.Is(err, transport.ErrOverloaded) && !errors.Is(err, transport.ErrExpired)) {
			return err
		}
		sleep(backoff)
		backoff *= 2
	}
}

func (c *Client) call(method string, req, reply interface{}) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	err := callShedRetry(time.Sleep, func() error {
		return conn.CallDecode(ServiceName, method, req, reply, defaultCallTimeout)
	})
	if err != nil {
		return unwireError(err)
	}
	return nil
}

// AsyncPut is the future of a pipelined Put (see GoPut).
type AsyncPut struct {
	call *transport.Call
	// done is captured at creation: Version releases the pooled call, after
	// which the call object must not be touched, but this channel stays
	// valid (completion always closes it first).
	done    <-chan struct{}
	once    sync.Once
	version uint64
	err     error
}

// Done returns a channel closed when the put completes.
func (p *AsyncPut) Done() <-chan struct{} { return p.done }

// Version blocks (bounded by the store's call timeout, like Put) until the
// put completes and returns the stored version. Repeated calls return the
// same result.
func (p *AsyncPut) Version() (uint64, error) {
	p.once.Do(func() {
		out, err := p.call.Wait(defaultCallTimeout) // releases the call
		if err != nil {
			p.err = unwireError(err)
			return
		}
		var rep putReply
		if err := transport.Decode(out, &rep); err != nil {
			p.err = err
			return
		}
		p.version = rep.Version
	})
	return p.version, p.err
}

// GoPut pipelines a Put: many puts can be in flight on the single store
// connection, so a writer's throughput is bounded by the store, not by the
// round-trip latency of each put. The future resolves to the new version.
func (c *Client) GoPut(key string, value []byte) *AsyncPut {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	call := conn.GoDecode(ServiceName, "Put", &putReq{Key: key, Val: value})
	return &AsyncPut{call: call, done: call.Done()}
}

// Get fetches key.
func (c *Client) Get(key string) (Versioned, error) {
	var rep getReply
	if err := c.call("Get", &getReq{Key: key}, &rep); err != nil {
		return Versioned{}, err
	}
	return rep.Val, nil
}

// Put stores value at key and returns the new version.
func (c *Client) Put(key string, value []byte) (uint64, error) {
	var rep putReply
	if err := c.call("Put", &putReq{Key: key, Val: value}, &rep); err != nil {
		return 0, err
	}
	return rep.Version, nil
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	var rep delReply
	return c.call("Delete", &delReq{Key: key}, &rep)
}

// CompareAndSwap conditionally replaces key at expectVersion.
func (c *Client) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, error) {
	var rep casReply
	if err := c.call("CAS", &casReq{Key: key, Val: value, ExpectVersion: expectVersion}, &rep); err != nil {
		return 0, err
	}
	return rep.Version, nil
}

// AddInt64 atomically adds delta to the integer at key.
func (c *Client) AddInt64(key string, delta int64) (int64, error) {
	var rep addReply
	if err := c.call("Add", &addReq{Key: key, Delta: delta}, &rep); err != nil {
		return 0, err
	}
	return rep.Value, nil
}

// Keys lists keys with the given prefix.
func (c *Client) Keys(prefix string) ([]string, error) {
	var rep keysReply
	if err := c.call("Keys", &keysReq{Prefix: prefix}, &rep); err != nil {
		return nil, err
	}
	return rep.Keys, nil
}

// TryLock attempts to take the named lock.
func (c *Client) TryLock(name, owner string, lease time.Duration) error {
	var rep lockReply
	return c.call("TryLock", &lockReq{Name: name, Owner: owner, Lease: lease}, &rep)
}

// Unlock releases the named lock.
func (c *Client) Unlock(name, owner string) error {
	var rep unlockReply
	return c.call("Unlock", &unlockReq{Name: name, Owner: owner}, &rep)
}

// Export snapshots entries with the prefix (used by shard migration).
func (c *Client) Export(prefix string) (map[string]Versioned, error) {
	var rep exportReply
	if err := c.call("Export", exportReq{Prefix: prefix}, &rep); err != nil {
		return nil, err
	}
	return rep.Entries, nil
}

// Import installs entries preserving versions (used by shard migration).
func (c *Client) Import(entries map[string]Versioned) error {
	var rep importReply
	return c.call("Import", importReq{Entries: entries}, &rep)
}

// ExportLocks snapshots unexpired lock leases with the prefix (owner,
// absolute expiry and sequence intact) — the lock-table counterpart of
// Export, used by shard migration.
func (c *Client) ExportLocks(prefix string) (map[string]LockInfo, error) {
	var rep exportLocksReply
	if err := c.call("ExportLocks", exportLocksReq{Prefix: prefix}, &rep); err != nil {
		return nil, err
	}
	return rep.Locks, nil
}

// ImportLocks installs lock leases (used by shard migration).
func (c *Client) ImportLocks(locks map[string]LockInfo) error {
	var rep importLocksReply
	return c.call("ImportLocks", importLocksReq{Locks: locks}, &rep)
}

// replicate forwards one write's resulting state to a backup. It uses a
// timeout much shorter than ordinary calls so a hung backup costs the
// primary one bounded stall, not one per acknowledged write.
func (c *Client) replicate(r replReq) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	var rep replReply
	if err := conn.CallDecode(ServiceName, "Replicate", r, &rep, replicateTimeout); err != nil {
		return unwireError(err)
	}
	return nil
}

// Convenience typed accessors used by core.State (the preprocessor-
// generated Store.get/Store.put calls of Fig. 6 in the paper).

// GetString fetches key as a string; missing keys return "".
func (c *Client) GetString(key string) (string, error) {
	v, err := c.Get(key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return "", nil
		}
		return "", err
	}
	return string(v.Value), nil
}

// PutString stores a string at key.
func (c *Client) PutString(key, value string) error {
	_, err := c.Put(key, []byte(value))
	return err
}

// GetInt64 fetches key as an int64; missing keys return 0.
func (c *Client) GetInt64(key string) (int64, error) {
	v, err := c.Get(key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return 0, nil
		}
		return 0, err
	}
	n, perr := strconv.ParseInt(string(v.Value), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("key %q is not an integer: %w", key, perr)
	}
	return n, nil
}

// PutInt64 stores an int64 at key.
func (c *Client) PutInt64(key string, value int64) error {
	_, err := c.Put(key, []byte(strconv.FormatInt(value, 10)))
	return err
}
