package kvstore

import (
	"container/list"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// This file is the client half of the session layer (server half:
// session.go): a lease-backed, invalidation-coherent read cache. A cache
// hit is a map lookup — no network — and the protocol guarantees a hit can
// never return a value older than the last acknowledged write (see
// store.go, "Sessions and caching").

// DefaultMaxEntries is the default per-session cache capacity.
const DefaultMaxEntries = 4096

// SessionOptions configures a client session.
type SessionOptions struct {
	// MaxEntries bounds the cache (LRU eviction; an evicted key's server-
	// side interest is dropped with it). <= 0 selects DefaultMaxEntries.
	MaxEntries int
	// Clock is the session's time source (nil = wall clock). The lease
	// window is measured on this clock from each keepalive's *send* instant,
	// so an absolute offset against the server cannot extend serving past
	// the server-side lease.
	Clock simclock.Clock
}

// cacheEntry is one cached key (list.Element value; the list is the LRU
// order, front = most recently used).
type cacheEntry struct {
	key string
	val Versioned
}

// Session is a keepalive-backed session with one store node, holding a
// bounded, version-tagged read cache the node invalidates before it
// acknowledges any conflicting write. Safe for concurrent use.
//
// A session that loses its node (connection failure, keepalive failure,
// lease expiry) goes dead: cached entries stop being served instantly and
// every operation returns ErrNoSession. It does not resurrect — open a new
// session (ClusterSession does this automatically on failover).
type Session struct {
	addr       string
	conn       *transport.Client
	clock      simclock.Clock
	id         uint64
	maxEntries int

	mu sync.Mutex
	// ttl is the lease duration of the most recent grant. It starts at the
	// open reply's value and tracks each keepalive reply thereafter, so the
	// serving window follows the server's current setting.
	ttl     time.Duration
	entries map[string]*list.Element
	lru     list.List
	// lastInval[k] is the newest invalidation sequence seen for k;
	// invalFloor is a lower bound applying to every key (set by flush
	// events and by folding lastInval when it outgrows the cache). A
	// GetLease reply with snapshot S installs only if lastInval[k] <= S and
	// invalFloor <= S: anything newer revoked the very value (or a newer
	// one than) the reply carries.
	lastInval  map[string]uint64
	invalFloor uint64
	// processedSeq is the newest acknowledged-event sequence this session
	// has applied. The keepalive loop advances the lease only when it has
	// caught up to the sequence the server reported at keepalive time —
	// a lease extension must never outrun an unprocessed invalidation.
	processedSeq uint64
	// leaseUntil ends the serving window, anchored at keepalive send time.
	leaseUntil time.Time
	dead       bool
	closed     bool
	watchers   map[string][]chan string

	hits, misses, invals atomic.Uint64

	ackCh chan uint64
	done  chan struct{}
	wg    sync.WaitGroup

	// Test hooks: suspend the keepalive loop (lease-expiry tests) and drop
	// invalidation acks (write-ack-timeout tests).
	noKeepalive atomic.Bool
	dropAcks    atomic.Bool
}

// NewSession opens a session with the store node at addr.
func NewSession(addr string, opts SessionOptions) (*Session, error) {
	clock := opts.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	maxEntries := opts.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	s := &Session{
		addr:       addr,
		clock:      clock,
		maxEntries: maxEntries,
		entries:    make(map[string]*list.Element),
		lastInval:  make(map[string]uint64),
		watchers:   make(map[string][]chan string),
		ackCh:      make(chan uint64, 4096),
		done:       make(chan struct{}),
	}
	conn, err := transport.DialOpts(addr, transport.DialOptions{OnEvent: s.onEvent})
	if err != nil {
		return nil, fmt.Errorf("kvstore session: %w", err)
	}
	s.conn = conn
	t0 := clock.Now()
	var rep sessOpenReply
	if err := s.call("SessOpen", &sessOpenReq{}, &rep); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kvstore session: open: %w", err)
	}
	s.id, s.ttl = rep.ID, rep.TTL
	s.leaseUntil = t0.Add(rep.TTL)
	s.wg.Add(2)
	go s.keepaliveLoop()
	go s.acker()
	return s, nil
}

// Addr returns the node address this session is bound to.
func (s *Session) Addr() string { return s.addr }

// Live reports whether the session can still serve (not dead, not closed).
func (s *Session) Live() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.dead
}

func (s *Session) call(method string, req, reply interface{}) error {
	err := callShedRetry(time.Sleep, func() error {
		return s.conn.CallDecode(ServiceName, method, req, reply, defaultCallTimeout)
	})
	if err != nil {
		return unwireError(err)
	}
	return nil
}

func (s *Session) markDead() {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
}

// onEvent runs on the connection's read loop: it must not block, so acks
// are handed to the acker goroutine through a buffered channel.
func (s *Session) onEvent(ev transport.Event) {
	switch ev.Kind {
	case evInval:
		s.mu.Lock()
		s.removeLocked(ev.Topic)
		if ev.Seq > s.lastInval[ev.Topic] {
			s.lastInval[ev.Topic] = ev.Seq
		}
		s.boundInvalLocked()
		if ev.Seq > s.processedSeq {
			s.processedSeq = ev.Seq
		}
		s.mu.Unlock()
		s.invals.Add(1)
		s.enqueueAck(ev.Seq)
	case evFlush:
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.lastInval = make(map[string]uint64)
		if ev.Seq > s.invalFloor {
			s.invalFloor = ev.Seq
		}
		if ev.Seq > s.processedSeq {
			s.processedSeq = ev.Seq
		}
		s.mu.Unlock()
		s.invals.Add(1)
		s.enqueueAck(ev.Seq)
	case evNotify:
		s.mu.Lock()
		chans := append([]chan string(nil), s.watchers[ev.Topic]...)
		s.mu.Unlock()
		for _, ch := range chans {
			select { // lossy by contract: a slow watcher drops, never blocks
			case ch <- ev.Topic:
			default:
			}
		}
	}
}

func (s *Session) enqueueAck(seq uint64) {
	if s.dropAcks.Load() {
		return
	}
	select {
	case s.ackCh <- seq:
	default:
		// An ack backlog this deep means the acker is wedged; the server
		// will revoke the session at lease timeout — stop serving now.
		s.markDead()
	}
}

// acker delivers invalidation acknowledgments. Acks are cumulative, so a
// burst coalesces into one call carrying the highest sequence.
func (s *Session) acker() {
	defer s.wg.Done()
	for {
		var seq uint64
		select {
		case seq = <-s.ackCh:
		case <-s.done:
			return
		}
		for drained := false; !drained; {
			select {
			case q := <-s.ackCh:
				if q > seq {
					seq = q
				}
			default:
				drained = true
			}
		}
		var rep sessAckReply
		if err := s.call("SessAck", &sessAckReq{ID: s.id, Seq: seq}, &rep); err != nil {
			s.markDead()
			return
		}
	}
}

// keepaliveLoop renews the lease at ttl/3. The lease anchor is the
// keepalive's send instant on the client's own clock: the send happens
// before the server's receipt, so the client-side window always ends at or
// before the server-side one no matter how the two clocks are offset. Each
// reply carries the server's current TTL and the client adopts it — the
// server extends by that value, so extending by the open-time TTL after
// SetSessionTTL lowered it would leave the client window ending after the
// server's (and after every invalidation deadline captured from it).
func (s *Session) keepaliveLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		interval := s.ttl / 3
		s.mu.Unlock()
		if interval <= 0 {
			interval = time.Millisecond
		}
		select {
		case <-s.done:
			return
		case <-s.clock.After(interval):
		}
		if s.noKeepalive.Load() {
			continue
		}
		t0 := s.clock.Now()
		s.mu.Lock()
		processed := s.processedSeq
		s.mu.Unlock()
		var rep sessKeepReply
		if err := s.call("SessKeep", &sessKeepReq{ID: s.id, Processed: processed}, &rep); err != nil {
			s.markDead()
			return
		}
		s.mu.Lock()
		if rep.TTL > 0 {
			s.ttl = rep.TTL
		}
		// Advance only when every event up to the server's sequence at
		// keepalive time has been applied: a keepalive reply that raced
		// past an in-flight invalidation must not extend the serving
		// window of the entry it revokes. A window that SHRANK (the server
		// lowered the TTL) takes effect unconditionally — the server-side
		// lease now ends at receipt+TTL, and serving past the client-side
		// image of that bound would outlive the deadlines invalidations
		// capture from it.
		nu := t0.Add(s.ttl)
		if s.processedSeq >= rep.EventSeq || nu.Before(s.leaseUntil) {
			s.leaseUntil = nu
		}
		s.mu.Unlock()
	}
}

func (s *Session) removeLocked(key string) {
	if el, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.lru.Remove(el)
	}
}

// boundInvalLocked keeps lastInval from growing without bound (keys churn
// through the cache, their guard entries would not). Folding the map into
// invalFloor only tightens the install guard — never loosens it.
func (s *Session) boundInvalLocked() {
	if len(s.lastInval) <= 4*s.maxEntries {
		return
	}
	floor := s.invalFloor
	for _, q := range s.lastInval {
		if q > floor {
			floor = q
		}
	}
	s.invalFloor = floor
	s.lastInval = make(map[string]uint64)
}

// Get returns key's value — from the cache when the lease is live and the
// entry has not been invalidated, otherwise via GetLease (installing the
// result for the next hit).
func (s *Session) Get(key string) (Versioned, error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return Versioned{}, ErrNoSession
	}
	if s.clock.Now().Before(s.leaseUntil) {
		if el, ok := s.entries[key]; ok {
			s.lru.MoveToFront(el)
			v := el.Value.(*cacheEntry).val
			s.mu.Unlock()
			s.hits.Add(1)
			return v, nil
		}
	}
	s.mu.Unlock()
	s.misses.Add(1)
	var rep leaseReply
	if err := s.call("GetLease", &leaseReq{ID: s.id, Key: key}, &rep); err != nil {
		return Versioned{}, err
	}
	var evicted string
	s.mu.Lock()
	if !s.dead && !rep.NoCache &&
		s.invalFloor <= rep.Snapshot && s.lastInval[key] <= rep.Snapshot {
		evicted = s.installLocked(key, rep.Val)
	}
	s.mu.Unlock()
	if evicted != "" {
		// Fire-and-forget: a lost forget leaves a harmless stale interest
		// (the next write pushes one spurious, immediately-acked inval).
		_ = s.conn.OneWayDecode(ServiceName, "SessForget", &sessForgetReq{ID: s.id, Key: evicted})
	}
	return rep.Val, nil
}

// installLocked inserts (or refreshes) a cache entry, copying the value out
// of the transport frame, and returns the key evicted to make room ("" if
// none).
func (s *Session) installLocked(key string, v Versioned) (evicted string) {
	val := Versioned{Value: append([]byte(nil), v.Value...), Version: v.Version, Deleted: v.Deleted}
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.lru.MoveToFront(el)
		return ""
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, val: val})
	if len(s.entries) <= s.maxEntries {
		return ""
	}
	tail := s.lru.Back()
	ent := tail.Value.(*cacheEntry)
	s.removeLocked(ent.key)
	return ent.key
}

// Watch subscribes to lossy change notifications for a data key: the
// channel receives the key after each committed write to it (coalesced
// under load — notifications are a re-read hint, not a change log, and
// never gate a write the way invalidations do). The returned cancel
// releases the subscription.
func (s *Session) Watch(key string) (<-chan string, func(), error) {
	return s.watch(key)
}

// WatchLock is Watch for a named lock: a notification fires on every
// acquire and release of the lock.
func (s *Session) WatchLock(name string) (<-chan string, func(), error) {
	return s.watch(lockWatchTopic(name))
}

func (s *Session) watch(topic string) (<-chan string, func(), error) {
	ch := make(chan string, 16)
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil, nil, ErrNoSession
	}
	s.watchers[topic] = append(s.watchers[topic], ch)
	s.mu.Unlock()
	var rep sessWatchReply
	if err := s.call("SessWatch", &sessWatchReq{ID: s.id, Topic: topic}, &rep); err != nil {
		s.unsubscribe(topic, ch)
		return nil, nil, err
	}
	cancel := func() {
		if s.unsubscribe(topic, ch) {
			var rep sessWatchReply
			_ = s.call("SessUnwatch", &sessWatchReq{ID: s.id, Topic: topic}, &rep)
		}
	}
	return ch, cancel, nil
}

// unsubscribe removes ch from topic's watcher list and reports whether it
// was the last one (so the server-side registration can be dropped).
func (s *Session) unsubscribe(topic string, ch chan string) (last bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chans := s.watchers[topic]
	for i, c := range chans {
		if c == ch {
			chans = append(chans[:i], chans[i+1:]...)
			break
		}
	}
	if len(chans) == 0 {
		delete(s.watchers, topic)
		return true
	}
	s.watchers[topic] = chans
	return false
}

// SessionStats reports a session's cache effectiveness.
type SessionStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Entries       int
	Live          bool
}

// Stats returns cumulative counters and current state.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	entries, live := len(s.entries), !s.dead
	s.mu.Unlock()
	return SessionStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Invalidations: s.invals.Load(),
		Entries:       entries,
		Live:          live,
	}
}

// Close tears the session down on both sides.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.dead = true
	s.mu.Unlock()
	close(s.done)
	var rep sessCloseReply
	_ = s.call("SessClose", &sessCloseReq{ID: s.id}, &rep)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// ClusterSession layers per-primary sessions over a Cluster: reads are
// served from lease-backed caches (one session per shard primary, opened
// on demand and re-established automatically after failover), writes and
// everything else take the ordinary routed path — whose primaries
// invalidate the caches before acknowledging. It implements Shared, so it
// drops into core.State wherever a Cluster does.
type ClusterSession struct {
	c    *Cluster
	opts SessionOptions

	mu       sync.Mutex
	sessions map[string]*Session // by primary address
	closed   bool
}

// NewSession returns a session-caching view of the cluster. The caller
// should Close it to release its per-node sessions.
func (c *Cluster) NewSession(opts SessionOptions) *ClusterSession {
	if opts.Clock == nil {
		opts.Clock = c.clock
	}
	cs := &ClusterSession{c: c, opts: opts, sessions: make(map[string]*Session)}
	c.registerSession(cs)
	return cs
}

// dialSession is NewSession behind a test seam (dial-stall isolation tests
// substitute a delaying dialer).
var dialSession = NewSession

// sessionForKey returns a live session with key's current primary, opening
// one if needed. Returns nil when no session can be established (caller
// falls back to the uncached path, which drives failover).
func (cs *ClusterSession) sessionForKey(key string) *Session {
	cs.c.mu.RLock()
	var addr string
	if !cs.c.closed && cs.c.ring != nil {
		if idx := cs.c.ring.Owner(key); idx >= 0 {
			addr = cs.c.nodes[idx].addr
		}
	}
	cs.c.mu.RUnlock()
	if addr == "" {
		return nil
	}
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return nil
	}
	if sess := cs.sessions[addr]; sess != nil {
		if sess.Live() {
			cs.mu.Unlock()
			return sess
		}
		delete(cs.sessions, addr)
		go sess.Close()
	}
	cs.mu.Unlock()
	// Dial outside cs.mu: opening a session blocks on a dial plus the
	// SessOpen round trip, and one slow or unresponsive node must not stall
	// cached reads for keys on every other shard. Concurrent misses on the
	// same address may race duplicate dials; the loser is closed below.
	sess, err := dialSession(addr, cs.opts)
	if err != nil {
		return nil
	}
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		go sess.Close()
		return nil
	}
	if cur := cs.sessions[addr]; cur != nil {
		if cur.Live() {
			cs.mu.Unlock()
			go sess.Close()
			return cur
		}
		delete(cs.sessions, addr)
		go cur.Close()
	}
	cs.sessions[addr] = sess
	cs.mu.Unlock()
	return sess
}

// dropSession discards a session (dead node, stale view).
func (cs *ClusterSession) dropSession(sess *Session) {
	cs.mu.Lock()
	if cs.sessions[sess.addr] == sess {
		delete(cs.sessions, sess.addr)
	}
	cs.mu.Unlock()
	go sess.Close()
}

// Get serves key from the primary's session cache, falling back to the
// routed (failover-driving) path when the session layer cannot.
func (cs *ClusterSession) Get(key string) (Versioned, error) {
	for attempt := 0; attempt < 3; attempt++ {
		sess := cs.sessionForKey(key)
		if sess == nil {
			break
		}
		v, err := sess.Get(key)
		switch {
		case err == nil:
			return v, nil
		case errors.Is(err, ErrNotFound):
			return Versioned{}, ErrNotFound
		case errors.Is(err, ErrNoSession):
			cs.dropSession(sess) // reopen on the next attempt
		case errors.Is(err, ErrWrongOwner):
			// Routing views disagree (membership change in flight); the
			// fallback path resolves it.
		default:
			// Transport-level failure: discard the session and let the
			// routed path probe the node and fail over.
			cs.dropSession(sess)
			return cs.c.Get(key)
		}
	}
	return cs.c.Get(key)
}

// GetString fetches key as a string through the cache ("" when missing).
func (cs *ClusterSession) GetString(key string) (string, error) {
	v, err := cs.Get(key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return "", nil
		}
		return "", err
	}
	return string(v.Value), nil
}

// GetInt64 fetches key as an int64 through the cache (0 when missing).
func (cs *ClusterSession) GetInt64(key string) (int64, error) {
	v, err := cs.Get(key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return 0, nil
		}
		return 0, err
	}
	n, perr := strconv.ParseInt(string(v.Value), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("key %q is not an integer: %w", key, perr)
	}
	return n, nil
}

// Writes (and scans, and locks) take the routed path: the shard primary
// invalidates every caching session before the ack comes back, so the
// cache layer needs no write-through logic of its own.

func (cs *ClusterSession) Put(key string, value []byte) (uint64, error) { return cs.c.Put(key, value) }
func (cs *ClusterSession) Delete(key string) error                      { return cs.c.Delete(key) }
func (cs *ClusterSession) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, error) {
	return cs.c.CompareAndSwap(key, value, expectVersion)
}
func (cs *ClusterSession) AddInt64(key string, delta int64) (int64, error) {
	return cs.c.AddInt64(key, delta)
}
func (cs *ClusterSession) PutString(key, value string) error { return cs.c.PutString(key, value) }
func (cs *ClusterSession) PutInt64(key string, value int64) error {
	return cs.c.PutInt64(key, value)
}
func (cs *ClusterSession) TryLock(name, owner string, lease time.Duration) error {
	return cs.c.TryLock(name, owner, lease)
}
func (cs *ClusterSession) Unlock(name, owner string) error      { return cs.c.Unlock(name, owner) }
func (cs *ClusterSession) Keys(prefix string) ([]string, error) { return cs.c.Keys(prefix) }

// Watch subscribes to change notifications for a data key on its current
// primary. The subscription lives as long as that session: after a
// failover the caller re-subscribes (a Watch is a hint stream, not
// durable state).
func (cs *ClusterSession) Watch(key string) (<-chan string, func(), error) {
	sess := cs.sessionForKey(key)
	if sess == nil {
		return nil, nil, ErrUnavailable
	}
	return sess.Watch(key)
}

// WatchLock is Watch for a named lock.
func (cs *ClusterSession) WatchLock(name string) (<-chan string, func(), error) {
	sess := cs.sessionForKey(lockRouteKey(name))
	if sess == nil {
		return nil, nil, ErrUnavailable
	}
	return sess.WatchLock(name)
}

// ClusterSessionStats aggregates the per-primary session counters.
type ClusterSessionStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	LiveSessions  int
}

// Stats sums the counters across the per-primary sessions.
func (cs *ClusterSession) Stats() ClusterSessionStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out ClusterSessionStats
	for _, sess := range cs.sessions {
		st := sess.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Invalidations += st.Invalidations
		if st.Live {
			out.LiveSessions++
		}
	}
	return out
}

// Close releases every per-node session.
func (cs *ClusterSession) Close() error {
	cs.c.dropSessionClient(cs)
	cs.mu.Lock()
	sessions := cs.sessions
	cs.sessions = make(map[string]*Session)
	cs.closed = true
	cs.mu.Unlock()
	var err error
	for _, sess := range sessions {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var _ Shared = (*ClusterSession)(nil)
