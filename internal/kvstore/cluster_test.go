package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"elasticrmi/internal/route"
)

// ownerAddr resolves the member address owning key under tab.
func ownerAddr(tab route.Table, key string) string {
	return tab.Members[route.BuildRing(tab).Owner(key)].Addr
}

// TestAddNodeMigratesLocks is the regression test for the lock-migration
// hole: AddNode moved data but not the lock table, so a held lock whose
// routed owner changed appeared free on the new node and a second owner
// could enter the same critical section during a scale-out.
func TestAddNodeMigratesLocks(t *testing.T) {
	cl, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	const n = 32
	for i := 0; i < n; i++ {
		if err := cl.TryLock(fmt.Sprintf("L%02d", i), "alice", time.Minute); err != nil {
			t.Fatalf("TryLock L%02d: %v", i, err)
		}
	}
	before := cl.Table()
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	after := cl.Table()

	moved := 0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("L%02d", i)
		if ownerAddr(before, lockRouteKey(name)) != ownerAddr(after, lockRouteKey(name)) {
			moved++
		}
		// Held is held, whether or not the lock's shard moved.
		if err := cl.TryLock(name, "bob", time.Minute); !errors.Is(err, ErrLockHeld) {
			t.Fatalf("TryLock(bob, %s) after AddNode = %v, want ErrLockHeld (lock table must migrate)", name, err)
		}
		if err := cl.Unlock(name, "alice"); err != nil {
			t.Fatalf("Unlock(alice, %s) after AddNode: %v", name, err)
		}
	}
	if moved == 0 {
		t.Fatal("no lock shard moved during AddNode; test exercised nothing")
	}
}

// TestRemoveNodeHandsOffDataAndLocks: planned scale-in hands every shard —
// values with versions and held leases — to the survivors before the node
// departs, even at R=1.
func TestRemoveNodeHandsOffDataAndLocks(t *testing.T) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	const n = 48
	vers := make(map[string]uint64)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		cl.Put(key, []byte("a"))
		v, err := cl.Put(key, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		vers[key] = v
	}
	if err := cl.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	// Remove the node owning the lock's shard — the hardest case.
	victim := ownerAddr(cl.Table(), lockRouteKey("L"))
	if err := cl.RemoveNode(victim); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if cl.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", cl.Nodes())
	}
	for key, want := range vers {
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("Get(%s) after RemoveNode: %v", key, err)
		}
		if got.Version != want {
			t.Fatalf("Get(%s) version = %d, want %d (handoff must preserve versions)", key, got.Version, want)
		}
	}
	if err := cl.TryLock("L", "bob", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryLock(bob) after RemoveNode = %v, want ErrLockHeld", err)
	}
	if err := cl.Unlock("L", "alice"); err != nil {
		t.Fatalf("Unlock(alice) after RemoveNode: %v", err)
	}
	if err := cl.RemoveNode(victim); err == nil {
		t.Fatal("removing a departed node must fail")
	}
}

// TestCASPreservedAcrossMigration: after AddNode and RemoveNode move a
// key, CompareAndSwap with the pre-migration version still succeeds
// through the cluster router — migration preserves versions end to end.
func TestCASPreservedAcrossMigration(t *testing.T) {
	cl, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	const n = 64
	vers := make(map[string]uint64)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cas-%03d", i)
		cl.Put(key, []byte("one"))
		v, err := cl.Put(key, []byte("two"))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		vers[key] = v
	}
	before := cl.Table()
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	after := cl.Table()

	movedKey := ""
	for key := range vers {
		if ownerAddr(before, key) != ownerAddr(after, key) {
			movedKey = key
			break
		}
	}
	if movedKey == "" {
		t.Fatal("no key moved during AddNode; test exercised nothing")
	}
	v2, err := cl.CompareAndSwap(movedKey, []byte("three"), vers[movedKey])
	if err != nil {
		t.Fatalf("CAS(%s, pre-migration version %d) after AddNode: %v", movedKey, vers[movedKey], err)
	}

	// And again across a planned removal of the key's current owner.
	if err := cl.RemoveNode(ownerAddr(cl.Table(), movedKey)); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if _, err := cl.CompareAndSwap(movedKey, []byte("four"), v2); err != nil {
		t.Fatalf("CAS(%s, version %d) after RemoveNode: %v", movedKey, v2, err)
	}
	if _, err := cl.CompareAndSwap(movedKey, []byte("stale"), vers[movedKey]); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale CAS = %v, want ErrCASMismatch", err)
	}
}

// TestStableUIDsAcrossMembershipChanges: ring identity is a monotonic
// per-cluster counter, so removing and adding nodes can never alias two
// distinct nodes onto one UID.
func TestStableUIDsAcrossMembershipChanges(t *testing.T) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	uidsByAddr := func() map[string]int64 {
		out := make(map[string]int64)
		for _, m := range cl.Table().Members {
			out[m.Addr] = m.UID
		}
		return out
	}
	seen := make(map[int64]string) // uid -> addr first carrying it
	record := func() {
		for addr, uid := range uidsByAddr() {
			if prev, ok := seen[uid]; ok && prev != addr {
				t.Fatalf("UID %d aliased: first %s, now %s", uid, prev, addr)
			}
			seen[uid] = addr
		}
	}
	record()
	before := uidsByAddr()
	victim := cl.Addrs()[1]
	if err := cl.RemoveNode(victim); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	record()
	for addr, uid := range uidsByAddr() {
		if prev, ok := before[addr]; ok && prev != uid {
			t.Fatalf("surviving node %s changed UID %d -> %d", addr, prev, uid)
		}
	}
}

// TestReplicationWritesReachBackups: with R=2, every acknowledged write
// (data and lock) is present on exactly two node-local stores.
func TestReplicationWritesReachBackups(t *testing.T) {
	cl, err := NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()

	const n = 32
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rep-%03d", i)
		if _, err := cl.Put(key, []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		copies := 0
		for _, nd := range cl.nodes {
			if _, err := nd.srv.Store().Get(key); err == nil {
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("%s present on %d nodes, want 2 (primary + backup)", key, copies)
		}
	}
	if err := cl.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	holders := 0
	for _, nd := range cl.nodes {
		if owner, held := nd.srv.Store().LockOwner("L"); held && owner == "alice" {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("lock lease on %d nodes, want 2", holders)
	}
}

// TestCrashFailoverReplicated: killing one node of an R=2 cluster loses no
// acknowledged write and no held lock; the router promotes backups on the
// first failed operation and the cluster keeps serving.
func TestCrashFailoverReplicated(t *testing.T) {
	cl, err := NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()

	const n = 64
	vers := make(map[string]uint64)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("f-%03d", i)
		v, err := cl.Put(key, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		vers[key] = v
	}
	if err := cl.TryLock("L", "alice", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	// Kill the node that is primary for the lock — failover must promote
	// the backup that holds the replicated lease.
	victim := ownerAddr(cl.Table(), lockRouteKey("L"))
	if err := cl.CrashNode(victim); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	for key, want := range vers {
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("Get(%s) after crash: %v", key, err)
		}
		if got.Version != want {
			t.Fatalf("Get(%s) version = %d, want %d (acked write lost)", key, got.Version, want)
		}
	}
	if err := cl.TryLock("L", "bob", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("TryLock(bob) after crash = %v, want ErrLockHeld (lease must survive failover)", err)
	}
	if err := cl.Unlock("L", "alice"); err != nil {
		t.Fatalf("Unlock(alice) after crash: %v", err)
	}
	if cl.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2 after failover", cl.Nodes())
	}
	// The cluster is fully writable afterwards, including re-replication.
	if _, err := cl.Put("post-crash", []byte("x")); err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
}

// TestDeleteNotResurrectedByRebalance: a node holding a stale pre-delete
// copy of a key (a missed cleanup or forward) must not resurrect the key
// when a membership change merges every node's state — the deletion's
// tombstone outranks it.
func TestDeleteNotResurrectedByRebalance(t *testing.T) {
	cl, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()

	if _, err := cl.Put("zombie", []byte("alive")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := cl.Delete("zombie"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Plant the stale copy on the non-owner node, simulating a replica that
	// missed the delete.
	stale := cl.nodes[1-cl.ring.Owner("zombie")]
	stale.srv.Store().Import(map[string]Versioned{"zombie": {Value: []byte("alive"), Version: 1}})

	if err := cl.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if _, err := cl.Get("zombie"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after rebalance = %v, want ErrNotFound (deleted key resurrected)", err)
	}
	keys, err := cl.Keys("zom")
	if err != nil || len(keys) != 0 {
		t.Fatalf("Keys = %v, %v; deleted key must stay invisible", keys, err)
	}
}

// TestReplFailureTriggersRepair: a write whose backup forward fails must
// not leave the cluster silently under-replicated — the repl-failure hook
// probes the accused backup and fails it over, without any client
// operation ever routing to the dead node.
func TestReplFailureTriggersRepair(t *testing.T) {
	cl, err := NewReplicated(2, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()

	// Crash the node that is NOT the key's primary: the only way the
	// router can learn of this death is the primary's failed forward.
	key := "repair-probe-key"
	primary := cl.nodes[cl.ring.Owner(key)]
	var backup *clusterNode
	for _, n := range cl.nodes {
		if n != primary {
			backup = n
		}
	}
	if err := backup.srv.Close(); err != nil {
		t.Fatalf("crash backup: %v", err)
	}
	if _, err := cl.Put(key, []byte("v")); err != nil {
		t.Fatalf("Put with dead backup: %v (write must still be acknowledged)", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cl.Nodes() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("nodes = %d, want 1: replication failure never triggered failover", cl.Nodes())
		}
		time.Sleep(time.Millisecond)
	}
	if got, err := cl.Get(key); err != nil || string(got.Value) != "v" {
		t.Fatalf("Get after repair = %+v, %v", got, err)
	}
}

// TestKeysFailsOver: the cross-shard key scan (backing State.Fields) rides
// out a node crash like keyed operations do.
func TestKeysFailsOver(t *testing.T) {
	cl, err := NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer cl.Close()
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := cl.Put(fmt.Sprintf("scan-%02d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := cl.CrashNode(cl.Addrs()[2]); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	keys, err := cl.Keys("scan-")
	if err != nil {
		t.Fatalf("Keys after crash: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("Keys after crash = %d, want %d", len(keys), n)
	}
	if cl.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2 (scan must fail the dead node over)", cl.Nodes())
	}
}
