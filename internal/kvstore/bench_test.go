package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkStorePut(b *testing.B) {
	s := NewStore(nil)
	val := []byte("value-payload-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i%1024), val)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(nil)
	for i := 0; i < 1024; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreAddInt64(b *testing.B) {
	s := NewStore(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AddInt64("ctr", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientPutOverTCP(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := []byte("value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put("k", val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRouting(b *testing.B) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k-%d", i%4096)
		if _, err := cl.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockAcquireRelease(b *testing.B) {
	s := NewStore(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.TryLock("L", "owner", time.Minute); err != nil {
			b.Fatal(err)
		}
		if err := s.Unlock("L", "owner"); err != nil {
			b.Fatal(err)
		}
	}
}

// Replication benchmarks: the same 3-node cluster at R=1 (single copy, the
// pre-replication deployment) vs R=2 (every write synchronously forwarded
// to one backup before the ack). The spread is the price of surviving a
// node loss; BENCH_kvstore.json records it next to the failover blip.

func newBenchCluster(b *testing.B, rf int) *Cluster {
	b.Helper()
	cl, err := NewReplicated(3, rf, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	return cl
}

func benchClusterPut(b *testing.B, rf int) {
	cl := newBenchCluster(b, rf)
	val := []byte("value-payload-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Put(fmt.Sprintf("k-%d", i%1024), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterR1Put(b *testing.B) { benchClusterPut(b, 1) }
func BenchmarkClusterR2Put(b *testing.B) { benchClusterPut(b, 2) }

func benchClusterGet(b *testing.B, rf int) {
	cl := newBenchCluster(b, rf)
	for i := 0; i < 1024; i++ {
		if _, err := cl.Put(fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Get(fmt.Sprintf("k-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterR1Get(b *testing.B) { benchClusterGet(b, 1) }
func BenchmarkClusterR2Get(b *testing.B) { benchClusterGet(b, 2) }

func benchClusterLock(b *testing.B, rf int) {
	cl := newBenchCluster(b, rf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("L-%d", i%64)
		if err := cl.TryLock(name, "owner", time.Minute); err != nil {
			b.Fatal(err)
		}
		if err := cl.Unlock(name, "owner"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterR1Lock(b *testing.B) { benchClusterLock(b, 1) }
func BenchmarkClusterR2Lock(b *testing.B) { benchClusterLock(b, 2) }

// Durability benchmarks: the same parallel put workload against an
// in-memory store, a WAL paying one fsync per write (the naive
// write-ahead baseline), and a group-committed WAL (one fsync amortized
// across the concurrently admitted batch). The spread between the last
// two is the cost group commit recovers; BENCH_kvstore.json records all
// three. Parallel on purpose — group commit's whole point is concurrent
// writers sharing a sync.

func benchStorePutDur(b *testing.B, opts DurOptions) {
	s, err := NewStoreDur(nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	val := []byte("value-payload-0123456789")
	var ctr atomic.Uint64
	// Force a real writer pool even on small machines: group commit's
	// batch is exactly the set of concurrently admitted writers, and
	// RunParallel defaults to GOMAXPROCS goroutines (1 on a 1-core box,
	// which would degenerate the comparison to fsync-per-write thrice).
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			s.Put(fmt.Sprintf("key-%d", i%1024), val)
		}
	})
}

func BenchmarkStorePutNoWAL(b *testing.B) { benchStorePutDur(b, DurOptions{}) }
func BenchmarkStorePutWALSync(b *testing.B) {
	benchStorePutDur(b, DurOptions{Dir: b.TempDir()})
}
func BenchmarkStorePutWALGroup(b *testing.B) {
	benchStorePutDur(b, DurOptions{Dir: b.TempDir(), GroupCommit: true})
}

// BenchmarkClusterFailoverBlip is one fixed-duration experiment (run with
// -benchtime 1x): a single writer streams puts against an R=2 cluster, one
// node is killed mid-stream, and the metrics report the availability blip —
// the longest gap between two consecutive acknowledged writes — plus how
// many operations failed outright (target: none; the router retries
// through the failover).
func BenchmarkClusterFailoverBlip(b *testing.B) {
	for iter := 0; iter < b.N; iter++ {
		cl, err := NewReplicated(3, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		val := []byte("value-payload-0123456789")
		var (
			failed  int
			acked   int
			maxGap  time.Duration
			lastAck = time.Now()
		)
		start := time.Now()
		crashed := false
		for i := 0; time.Since(start) < 1200*time.Millisecond; i++ {
			if !crashed && time.Since(start) > 200*time.Millisecond {
				if err := cl.CrashNode(cl.Addrs()[0]); err != nil {
					b.Fatal(err)
				}
				crashed = true
			}
			if _, err := cl.Put(fmt.Sprintf("k-%d", i%1024), val); err != nil {
				failed++
				continue
			}
			acked++
			now := time.Now()
			if gap := now.Sub(lastAck); gap > maxGap {
				maxGap = gap
			}
			lastAck = now
		}
		cl.Close()
		b.ReportMetric(float64(maxGap.Microseconds())/1000.0, "blip-ms")
		b.ReportMetric(float64(failed), "failed-ops")
		b.ReportMetric(float64(acked), "acked-ops")
	}
}

// Session benchmarks: the lease-cached read path vs the per-call path at
// 16 concurrent clients (the PR-8 figure — a cache hit is a local map
// lookup under a live lease, no network), plus the invalidation storm: one
// writer against a hot key every caching session holds, measuring the
// write's ack latency with invalidate-before-ack on the critical path.

const sessionBenchWorkers = 16

// benchSessionWorkers splits b.N across exactly `workers` goroutines (one
// per simulated client), each running get() over its own 64-key working
// set. RunParallel is avoided on purpose: its worker count tracks
// GOMAXPROCS, which would change the client count across machines.
func benchSessionWorkers(b *testing.B, workers int, get func(worker int, key string) error) {
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				key := fmt.Sprintf("bench/%d/%d", worker, i%64)
				if err := get(worker, key); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}

func benchSessionSeed(b *testing.B, cli *Client, workers int) {
	b.Helper()
	val := []byte("value-payload-0123456789")
	for w := 0; w < workers; w++ {
		for i := 0; i < 64; i++ {
			if _, err := cli.Put(fmt.Sprintf("bench/%d/%d", w, i), val); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSessionGetCached: every worker owns a Session; after one cold
// pass its whole working set is cache-resident under the lease.
func BenchmarkSessionGetCached(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	benchSessionSeed(b, cli, sessionBenchWorkers)
	sessions := make([]*Session, sessionBenchWorkers)
	for w := range sessions {
		sess, err := NewSession(srv.Addr(), SessionOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		sessions[w] = sess
		for i := 0; i < 64; i++ { // prime the cache
			if _, err := sess.Get(fmt.Sprintf("bench/%d/%d", w, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	benchSessionWorkers(b, sessionBenchWorkers, func(w int, key string) error {
		_, err := sessions[w].Get(key)
		return err
	})
}

// BenchmarkSessionGetUncached is the same 16-client workload on the plain
// per-call path: every read is a full round trip.
func BenchmarkSessionGetUncached(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	seedCli, err := NewClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer seedCli.Close()
	benchSessionSeed(b, seedCli, sessionBenchWorkers)
	clients := make([]*Client, sessionBenchWorkers)
	for w := range clients {
		cli, err := NewClient(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		clients[w] = cli
	}
	benchSessionWorkers(b, sessionBenchWorkers, func(w int, key string) error {
		_, err := clients[w].Get(key)
		return err
	})
}

// BenchmarkSessionInvalidationStorm: 16 sessions all hold one hot key
// under lease, and a single writer updates it — every Put pushes 16
// invalidations and withholds its ack until all are acknowledged. Each
// reader watches the key and re-leases on the change notification, so the
// next write again finds a full house of interested sessions. Readers are
// event-driven, not spinning: a polling loop would measure scheduler
// starvation on small machines, not invalidation cost. Reported per-op
// time is the storm-write ack latency; p50-us/p99-us give the
// distribution.
func BenchmarkSessionInvalidationStorm(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Put("hot", []byte("seed")); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < sessionBenchWorkers; w++ {
		sess, err := NewSession(srv.Addr(), SessionOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		ch, cancel, err := sess.Watch("hot")
		if err != nil {
			b.Fatal(err)
		}
		defer cancel()
		if _, err := sess.Get("hot"); err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(sess *Session, ch <-chan string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-ch:
					if _, err := sess.Get("hot"); err != nil {
						return
					}
				}
			}
		}(sess, ch)
	}
	defer func() { close(stop); wg.Wait() }()

	lat := make([]time.Duration, b.N)
	val := []byte("value-payload-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := cli.Put("hot", val); err != nil {
			b.Fatal(err)
		}
		lat[i] = time.Since(t0)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-us")
	b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-us")
}
