package kvstore

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkStorePut(b *testing.B) {
	s := NewStore(nil)
	val := []byte("value-payload-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i%1024), val)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore(nil)
	for i := 0; i < 1024; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreAddInt64(b *testing.B) {
	s := NewStore(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AddInt64("ctr", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientPutOverTCP(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := NewClient(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := []byte("value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put("k", val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRouting(b *testing.B) {
	cl, err := NewCluster(3, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k-%d", i%4096)
		if _, err := cl.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockAcquireRelease(b *testing.B) {
	s := NewStore(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.TryLock("L", "owner", time.Minute); err != nil {
			b.Fatal(err)
		}
		if err := s.Unlock("L", "owner"); err != nil {
			b.Fatal(err)
		}
	}
}
