// Package kvstore implements the strongly consistent in-memory key-value
// store that ElasticRMI uses for the shared state of elastic object pools
// (the role HyperDex plays in the paper, §2.2/§4.1).
//
// The package provides the storage engine (Store), a network server exposing
// it over the transport protocol (Server), a client (Client), and a sharded,
// replicated multi-node deployment with online node addition and removal
// (Cluster) — the paper's runtime "may add additional nodes to HyperDex as
// necessary" (§4.2), and HyperDex itself replicates for fault tolerance.
//
// Consistency model: every key (and every lock name) has a replica set of R
// nodes — the first R distinct successors of its hash on the routing ring
// (internal/route.Ring.Owners), where R is the cluster's replication
// factor. The first replica is the key's primary: all client operations are
// routed to it, it serializes operations per key, and it synchronously
// forwards the resulting state (value+version, or lock lease) to the
// backups before acknowledging, so reads observe the latest completed write
// and every acknowledged write exists on every reachable replica. Named
// locks with leases implement the per-class mutual exclusion that the
// preprocessor emits for synchronized methods (Fig. 6); lock state is
// replicated and migrated exactly like data, so a lease held across a
// failover, an AddNode or a RemoveNode is still held by the same owner
// afterwards — a second acquirer keeps getting ErrLockHeld until the lease
// expires or the owner unlocks.
//
// Departures come in two flavors. Planned (Cluster.RemoveNode): the
// departing node's shards are handed off — exported with versions and
// unexpired lock leases intact — before the node leaves the ring, so
// nothing is lost even at R=1. Unplanned (crash): the router classifies the
// failed operation, drops the dead node from the ring, promotes the next
// replica of each affected key to primary, and re-replicates survivors'
// state to restore R; with R>=2 no acknowledged write and no held lock is
// lost, and operations retry transparently (bounded, surfacing
// ErrUnavailable only when every replica of a key is gone).
//
// # Sessions and client caching
//
// A client may open a Session (or a ClusterSession spanning all shards):
// reads then install lease-stamped entries in a bounded local cache, and
// repeated reads of an unchanged key cost no round trip. Coherence is
// server-pushed, Chubby-style: before acknowledging any conflicting write
// (Put/Delete/CAS/AddInt64, or a lock transition for watched locks), the
// key's primary pushes an invalidation event to every session holding that
// key and waits for the acks — so by the time a writer's ack returns, no
// live cache anywhere still holds the old value. A session that does not
// ack within its lease is killed instead of waited on forever, which bounds
// write latency at one session TTL in the worst case.
//
// The lease is session-wide and renewed by keepalives. The client anchors
// each lease extension at the time it SENT the keepalive on its own clock,
// which is necessarily earlier than the server's receipt anchor — so the
// client always expires its cache before the server believes the session
// could still be serving it, and clock skew can only shorten the effective
// lease, never stretch it. A keepalive advances the lease only if the
// client has already processed every invalidation the server had issued at
// reply time (the EventSeq gate), closing the race where a renewal
// overtakes an in-flight invalidation. Each keepalive reply also carries
// the server's current session TTL and the client adopts it: a shrunken
// window takes effect immediately (unconditionally pulling the lease in),
// so lowering the TTL mid-flight (SetSessionTTL) never leaves a client
// whose lease outruns the server's. Install is snapshot-guarded: the
// server registers interest and snapshots its event sequence before the
// read, and the client installs the entry only if no invalidation at or
// below that snapshot touched the key — a write that raced the read can
// never leave a stale entry behind.
//
// Failures: when a node crashes, the leases it granted cannot be revoked,
// so the cluster fences — survivors delay conflicting write acks until one
// full session TTL has passed since the failure, by which point every
// orphaned cache entry has expired on its own clock. View changes
// (AddNode/RemoveNode/failover promotion) flush all session caches, since
// key ownership may have moved. One documented hole remains: a
// whole-cluster halt and disk restart (Halt + NewDurable) within a single
// TTL restores no fence, so a client of the previous generation could in
// principle serve one cached read against a write acked by the rebooted
// cluster; restart paths that care should wait one TTL before accepting
// writes.
//
// # Durability contract
//
// A store created with NewStoreDur additionally writes every mutation to a
// write-ahead log (internal/wal) before it is acknowledged: when a mutating
// method returns, the mutation's log record is fsynced — so an ack a
// client observes implies the write survives a power cut of the whole
// node. With DurOptions.GroupCommit the fsync is amortized: concurrently
// admitted mutations share one fsync (the group-commit window is exactly
// the set of records buffered while the previous fsync was in flight), so
// each still returns only after ITS record is durable, but a batch of N
// concurrent writers pays ~1 fsync rather than N.
//
// Every DurOptions.SnapshotEvery mutations the store writes a compacted
// snapshot — the Export/ExportLocks image captured at a recorded log
// position, atomically renamed into place — and drops the log segments the
// snapshot covers. Snapshotting never blocks the write path: the image is
// read in chunks (see Export), and mutations admitted while the image is
// being read are harmless to recovery because replay is version/sequence
// gated (Import semantics) — re-applying a logged mutation an image
// already contains converges to the same state. Snapshot compaction is
// also where tombstone GC runs (see SetTombstoneTTL).
//
// Recovery (NewStoreDur on a non-empty directory) loads the newest intact
// snapshot, replays the log tail past it, and only then exposes the store:
// every acked write and every unexpired lock lease is restored with its
// original version/owner/expiry; released or expired leases come back only
// as invisible tombstones; a torn or corrupt log tail is truncated at the
// last intact record (those records were never acked — Commit had not
// returned). Recovery is per node and composes with replication: a cluster
// restart (Cluster.NewDurable over existing node directories) first
// recovers each node from its own disk, then runs the normal rebalance
// merge, so per-key max-version / per-lock max-seq wins across replicas
// exactly as it does after a failover.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// Exported errors.
var (
	// ErrNotFound is returned by Get for a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrCASMismatch is returned by CompareAndSwap on version conflict.
	ErrCASMismatch = errors.New("kvstore: compare-and-swap version mismatch")
	// ErrLockHeld is returned by TryLock when another owner holds the lock.
	ErrLockHeld = errors.New("kvstore: lock held")
	// ErrNotLockOwner is returned by Unlock when the caller does not hold it.
	ErrNotLockOwner = errors.New("kvstore: not lock owner")
)

// Versioned is a value with its monotonically increasing version. Deleted
// marks a deletion tombstone: readers see the key as missing, but the
// tombstone's version keeps replicated and migrated states ordered — a
// stale live copy on a node that missed the delete can never outrank the
// deletion in a rebalance merge and resurrect the key. Versions are
// monotonic across a key's whole history, deletions included (a re-created
// key continues above its tombstone).
//
// The //ermi:codec mark gives it a generated binary codec (nested in the
// hot wire messages); Value decodes as a zero-copy view into the frame.
//
//ermi:codec
type Versioned struct {
	Value   []byte
	Version uint64
	Deleted bool
}

// LockInfo is the exportable state of one named lock: the holder, the
// absolute lease expiry, and a store-local monotonic mutation sequence.
// The sequence orders replicated lock updates (a backup installs an update
// only if it is newer than what it already holds), so a delayed
// re-delivery can never resurrect a released or superseded lease. An empty
// Owner is a release tombstone.
type LockInfo struct {
	Owner   string
	Expires time.Time
	Seq     uint64
}

type entry struct {
	value   []byte
	version uint64
	deleted bool
	tombAt  time.Time // when the tombstone was installed here (GC horizon)
}

type lockState struct {
	owner   string // "" = released tombstone (kept for its seq)
	expires time.Time
	seq     uint64
	stamp   time.Time // when this state was installed here (GC horizon)
}

// defaultTombTTL is the default tombstone retention horizon. It must
// comfortably exceed the maximum replication/migration staleness — the
// longest a stale copy of a key or lock can survive on any node before a
// rebalance merge or repair reconciles it (seconds in practice: forwards
// are synchronous and rebalance runs inline with membership changes).
// After the horizon a tombstone has done its ordering work and only costs
// memory.
const defaultTombTTL = 5 * time.Minute

// gcEvery is how many mutations pass between amortized inline GC sweeps.
const gcEvery = 1024

// Store is the single-node storage engine. Safe for concurrent use.
type Store struct {
	clock simclock.Clock

	mu      sync.Mutex
	data    map[string]entry
	locks   map[string]lockState
	lockSeq uint64 // monotonic across all lock mutations on this store

	tombTTL  time.Duration
	opsSince int         // mutations since the last inline GC sweep
	dur      *durability // nil for a purely in-memory store
}

// NewStore creates an empty in-memory store; clock may be nil for the wall
// clock. See NewStoreDur for a durable one.
func NewStore(clock simclock.Clock) *Store {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Store{
		clock:   clock,
		data:    make(map[string]entry),
		locks:   make(map[string]lockState),
		tombTTL: defaultTombTTL,
	}
}

// SetTombstoneTTL sets the retention horizon after which deletion
// tombstones, lock release-tombstones and long-expired leases are pruned.
// The horizon must exceed the maximum replication staleness (see
// defaultTombTTL); shorter values are for tests.
func (s *Store) SetTombstoneTTL(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d > 0 {
		s.tombTTL = d
	}
}

// CompactTombstones runs a full tombstone GC sweep immediately.
func (s *Store) CompactTombstones() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked(s.clock.Now())
}

// gcLocked prunes tombstones past the retention horizon: deletion
// tombstones installed more than tombTTL ago, lock release-tombstones
// likewise, and held leases whose lease expired more than tombTTL ago
// (their sequence can no longer be outrun by any in-flight replica
// traffic). Fixes the unbounded-growth bug where a sustained put/delete
// or lock-churn workload grew the maps forever.
func (s *Store) gcLocked(now time.Time) {
	for k, e := range s.data {
		if e.deleted && !e.tombAt.IsZero() && now.Sub(e.tombAt) > s.tombTTL {
			delete(s.data, k)
		}
	}
	for name, st := range s.locks {
		switch {
		case st.owner == "" && !st.stamp.IsZero() && now.Sub(st.stamp) > s.tombTTL:
			delete(s.locks, name)
		case st.owner != "" && !st.expires.After(now) && now.Sub(st.expires) > s.tombTTL:
			delete(s.locks, name)
		}
	}
	s.opsSince = 0
}

// maybeGCLocked amortizes gcLocked over mutations so the sweep cost stays
// O(1) per operation.
func (s *Store) maybeGCLocked() {
	s.opsSince++
	if s.opsSince >= gcEvery {
		s.gcLocked(s.clock.Now())
	}
}

// Get returns the value and version stored at key.
func (s *Store) Get(key string) (Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok || e.deleted {
		return Versioned{}, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	val := make([]byte, len(e.value))
	copy(val, e.value)
	return Versioned{Value: val, Version: e.version}, nil
}

// Put stores value at key and returns the new version. On a durable store
// it returns only after the write's log record is fsynced.
func (s *Store) Put(key string, value []byte) uint64 {
	s.mu.Lock()
	e := s.data[key]
	e.version++
	e.deleted = false
	e.tombAt = time.Time{}
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	rec := s.entryRecLocked(key, e)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return e.version
}

// Delete removes key, leaving a version-stamped tombstone so replicas and
// rebalance merges order the deletion against stale live copies (see
// Versioned.Deleted). Deleting a missing key is a no-op.
func (s *Store) Delete(key string) {
	s.DeleteV(key)
}

// DeleteV is Delete returning the resulting tombstone (for replication);
// ok is false when the key did not exist.
func (s *Store) DeleteV(key string) (Versioned, bool) {
	s.mu.Lock()
	e, ok := s.data[key]
	if !ok || e.deleted {
		s.mu.Unlock()
		return Versioned{}, false
	}
	e.version++
	e.deleted = true
	e.value = nil
	e.tombAt = s.clock.Now()
	s.data[key] = e
	rec := s.entryRecLocked(key, e)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return Versioned{Version: e.version, Deleted: true}, true
}

// Drop hard-removes keys — values, tombstones and version history. Used by
// rebalance cleanup on nodes leaving a key's replica set, so no stale copy
// survives to resurface in a later membership change.
func (s *Store) Drop(keys []string) {
	s.mu.Lock()
	for _, k := range keys {
		delete(s.data, k)
	}
	rec := s.dropRecLocked(durDrop, keys)
	s.mu.Unlock()
	s.durCommit(rec)
}

// CompareAndSwap stores value at key iff the current version equals
// expectVersion (0 means "key must not exist"). On success it returns the
// new version; on conflict it returns ErrCASMismatch and the current value.
func (s *Store) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, Versioned, error) {
	s.mu.Lock()
	e, exists := s.data[key]
	cur := uint64(0)
	if exists && !e.deleted {
		cur = e.version
	}
	if cur != expectVersion {
		val := make([]byte, len(e.value))
		copy(val, e.value)
		s.mu.Unlock()
		return 0, Versioned{Value: val, Version: cur}, ErrCASMismatch
	}
	// A re-creation continues above the tombstone's version (e.version is
	// the tombstone when the key was deleted), keeping per-key history
	// monotonic for replication ordering.
	e.version++
	e.deleted = false
	e.tombAt = time.Time{}
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	rec := s.entryRecLocked(key, e)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return e.version, Versioned{}, nil
}

// AddInt64 atomically adds delta to the integer stored at key (missing keys
// count as 0) and returns the new value. The value is stored in decimal form
// so it remains readable through Get.
func (s *Store) AddInt64(key string, delta int64) (int64, error) {
	s.mu.Lock()
	e := s.data[key]
	var cur int64
	if !e.deleted && len(e.value) > 0 {
		v, err := strconv.ParseInt(string(e.value), 10, 64)
		if err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("add %q: %w", key, err)
		}
		cur = v
	}
	cur += delta
	e.version++
	e.deleted = false
	e.tombAt = time.Time{}
	e.value = []byte(strconv.FormatInt(cur, 10))
	s.data[key] = e
	rec := s.entryRecLocked(key, e)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return cur, nil
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k, e := range s.data {
		if !e.deleted && strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored (live) keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.data {
		if !e.deleted {
			n++
		}
	}
	return n
}

// TryLock attempts to acquire the named lock for owner with the given lease.
// Expired leases are broken. Re-acquiring a held lock by the same owner
// renews the lease.
func (s *Store) TryLock(name, owner string, lease time.Duration) error {
	if lease <= 0 {
		lease = 30 * time.Second
	}
	now := s.clock.Now()
	s.mu.Lock()
	st, held := s.locks[name]
	if held && st.owner != "" && st.owner != owner && st.expires.After(now) {
		s.mu.Unlock()
		return fmt.Errorf("lock %q owned by %s: %w", name, st.owner, ErrLockHeld)
	}
	s.lockSeq++
	st = lockState{owner: owner, expires: now.Add(lease), seq: s.lockSeq, stamp: now}
	s.locks[name] = st
	rec := s.lockRecLocked(name, st)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return nil
}

// Unlock releases the named lock held by owner. The release leaves a
// sequence-stamped tombstone so replicas can order it against in-flight
// lease updates.
func (s *Store) Unlock(name, owner string) error {
	s.mu.Lock()
	st, held := s.locks[name]
	if !held || st.owner != owner {
		s.mu.Unlock()
		return fmt.Errorf("unlock %q by %s: %w", name, owner, ErrNotLockOwner)
	}
	s.lockSeq++
	st = lockState{owner: "", expires: time.Time{}, seq: s.lockSeq, stamp: s.clock.Now()}
	s.locks[name] = st
	rec := s.lockRecLocked(name, st)
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(rec)
	return nil
}

// LockOwner reports the current owner of the named lock, if unexpired.
func (s *Store) LockOwner(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held || st.owner == "" || !st.expires.After(s.clock.Now()) {
		return "", false
	}
	return st.owner, true
}

// LockSnapshot returns the replication image of one lock (including release
// tombstones) for forwarding to backups. ok is false when the lock was
// never touched on this store.
func (s *Store) LockSnapshot(name string) (LockInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held {
		return LockInfo{}, false
	}
	return LockInfo{Owner: st.owner, Expires: st.expires, Seq: st.seq}, true
}

// exportChunkSize bounds how many entries are copied per lock
// acquisition in Export/ExportLocks, so a large snapshot never stalls
// the write path for more than one chunk's copy time.
const exportChunkSize = 512

// exportPause is a test hook invoked between export chunks with the store
// mutex released; it lets tests prove concurrent mutations are admitted
// mid-export.
var exportPause func()

// Export returns a snapshot of all entries whose key satisfies keep —
// live values and deletion tombstones alike, so migration and repair
// preserve deletion ordering. Used when the cluster membership changes and
// by the durability snapshotter.
//
// The image is taken in chunks, releasing the store mutex between them,
// so a concurrent Put never waits behind a full-image copy. The result is
// therefore a consistent-per-key (not point-in-time) snapshot: a key
// mutated mid-export may appear at either version. Every consumer merges
// with version/sequence gating (Import semantics), for which
// per-key-atomic is sufficient — a newer version observed early can only
// win again later.
func (s *Store) Export(keep func(key string) bool) map[string]Versioned {
	s.mu.Lock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		if keep == nil || keep(k) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	out := make(map[string]Versioned, len(keys))
	for start := 0; start < len(keys); start += exportChunkSize {
		end := min(start+exportChunkSize, len(keys))
		s.mu.Lock()
		for _, k := range keys[start:end] {
			e, ok := s.data[k]
			if !ok {
				continue // dropped between chunks
			}
			val := make([]byte, len(e.value))
			copy(val, e.value)
			out[k] = Versioned{Value: val, Version: e.version, Deleted: e.deleted}
		}
		s.mu.Unlock()
		if exportPause != nil && end < len(keys) {
			exportPause()
		}
	}
	return out
}

// Import installs entries preserving versions; newer-or-equal versions win,
// so re-delivered or overlapping imports (migration retries, replica
// repair) are idempotent and can never roll a key back — nor resurrect a
// deletion, since tombstones outrank the values they superseded.
func (s *Store) Import(entries map[string]Versioned) {
	now := s.clock.Now()
	s.mu.Lock()
	var recs [][]byte
	for k, v := range entries {
		if !s.installEntryLocked(k, v, now) {
			continue
		}
		if rec := s.entryRecLocked(k, s.data[k]); rec != nil {
			recs = append(recs, rec)
		}
	}
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(recs...)
}

// installEntryLocked applies one versioned entry with the Import gate
// (newer-or-equal versions win). Shared by Import and WAL replay.
func (s *Store) installEntryLocked(k string, v Versioned, now time.Time) bool {
	if cur, ok := s.data[k]; ok && cur.version > v.Version {
		return false
	}
	e := entry{version: v.Version, deleted: v.Deleted}
	if v.Deleted {
		e.tombAt = now
	} else {
		e.value = make([]byte, len(v.Value))
		copy(e.value, v.Value)
	}
	s.data[k] = e
	return true
}

// ExportLocks snapshots the lock states whose name satisfies keep: the
// unexpired held leases with owners, absolute expiries and mutation
// sequences intact, plus release tombstones and expired leases (invisible
// to readers, but their sequences keep replicated updates ordered). It is
// the lock-table counterpart of Export: AddNode/RemoveNode migration must
// carry it alongside the data, or a held lock whose routed owner changes
// would appear free on the node that takes the name over. Chunked like
// Export: per-name-atomic, never stalls the write path.
func (s *Store) ExportLocks(keep func(name string) bool) map[string]LockInfo {
	s.mu.Lock()
	names := make([]string, 0, len(s.locks))
	for name := range s.locks {
		if keep == nil || keep(name) {
			names = append(names, name)
		}
	}
	s.mu.Unlock()
	out := make(map[string]LockInfo, len(names))
	for start := 0; start < len(names); start += exportChunkSize {
		end := min(start+exportChunkSize, len(names))
		s.mu.Lock()
		for _, name := range names[start:end] {
			st, ok := s.locks[name]
			if !ok {
				continue // dropped between chunks
			}
			out[name] = LockInfo{Owner: st.owner, Expires: st.expires, Seq: st.seq}
		}
		s.mu.Unlock()
		if exportPause != nil && end < len(names) {
			exportPause()
		}
	}
	return out
}

// DropLocks removes the named locks' state entirely (leases, tombstones
// and their sequence history). Used by rebalance cleanup on nodes leaving
// a lock's replica set, so no stale copy survives to resurface in a later
// membership change.
func (s *Store) DropLocks(names []string) {
	s.mu.Lock()
	for _, name := range names {
		delete(s.locks, name)
	}
	rec := s.dropRecLocked(durLockDrop, names)
	s.mu.Unlock()
	s.durCommit(rec)
}

// ImportLocks installs lock leases (held states and release tombstones).
// Per name, a newer sequence wins; the store's own sequence counter is
// advanced past every installed value so local mutations made after a
// promotion keep winning over anything replicated before it.
func (s *Store) ImportLocks(locks map[string]LockInfo) {
	now := s.clock.Now()
	s.mu.Lock()
	var recs [][]byte
	for name, info := range locks {
		if !s.installLockLocked(name, info, now) {
			continue
		}
		if rec := s.lockRecLocked(name, s.locks[name]); rec != nil {
			recs = append(recs, rec)
		}
	}
	s.maybeGCLocked()
	s.mu.Unlock()
	s.durCommit(recs...)
}

// installLockLocked applies one lock state with the ImportLocks gate (a
// newer sequence wins) and advances the local sequence counter past it.
// A lease that is already expired on arrival is installed as a release
// tombstone instead of verbatim: it is invisible to readers either way,
// but installing it held would let a dead lease occupy the table and win
// sequence comparisons as if it were live state. Shared by ImportLocks
// and WAL replay.
func (s *Store) installLockLocked(name string, info LockInfo, now time.Time) bool {
	if cur, ok := s.locks[name]; ok && cur.seq >= info.Seq {
		return false
	}
	st := lockState{owner: info.Owner, expires: info.Expires, seq: info.Seq, stamp: now}
	if st.owner != "" && !st.expires.After(now) {
		st.owner = ""
		st.expires = time.Time{}
	}
	s.locks[name] = st
	if info.Seq > s.lockSeq {
		s.lockSeq = info.Seq
	}
	return true
}
