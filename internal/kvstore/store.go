// Package kvstore implements the strongly consistent in-memory key-value
// store that ElasticRMI uses for the shared state of elastic object pools
// (the role HyperDex plays in the paper, §2.2/§4.1).
//
// The package provides the storage engine (Store), a network server exposing
// it over the transport protocol (Server), a client (Client), and a sharded
// multi-node deployment with online node addition (Cluster) — the paper's
// runtime "may add additional nodes to HyperDex as necessary" (§4.2).
//
// Consistency model: each key is owned by exactly one node (hash sharding),
// and each node serializes operations on its keys, so reads observe the
// latest completed write — the same strong per-key consistency HyperDex
// provides. Named locks with leases implement the per-class mutual exclusion
// that the preprocessor emits for synchronized methods (Fig. 6).
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// Exported errors.
var (
	// ErrNotFound is returned by Get for a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrCASMismatch is returned by CompareAndSwap on version conflict.
	ErrCASMismatch = errors.New("kvstore: compare-and-swap version mismatch")
	// ErrLockHeld is returned by TryLock when another owner holds the lock.
	ErrLockHeld = errors.New("kvstore: lock held")
	// ErrNotLockOwner is returned by Unlock when the caller does not hold it.
	ErrNotLockOwner = errors.New("kvstore: not lock owner")
)

// Versioned is a value with its monotonically increasing version.
type Versioned struct {
	Value   []byte
	Version uint64
}

type entry struct {
	value   []byte
	version uint64
}

type lockState struct {
	owner   string
	expires time.Time
}

// Store is the single-node storage engine. Safe for concurrent use.
type Store struct {
	clock simclock.Clock

	mu    sync.Mutex
	data  map[string]entry
	locks map[string]lockState
}

// NewStore creates an empty store; clock may be nil for the wall clock.
func NewStore(clock simclock.Clock) *Store {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Store{
		clock: clock,
		data:  make(map[string]entry),
		locks: make(map[string]lockState),
	}
}

// Get returns the value and version stored at key.
func (s *Store) Get(key string) (Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return Versioned{}, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	val := make([]byte, len(e.value))
	copy(val, e.value)
	return Versioned{Value: val, Version: e.version}, nil
}

// Put stores value at key and returns the new version.
func (s *Store) Put(key string, value []byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[key]
	e.version++
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	return e.version
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// CompareAndSwap stores value at key iff the current version equals
// expectVersion (0 means "key must not exist"). On success it returns the
// new version; on conflict it returns ErrCASMismatch and the current value.
func (s *Store) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.data[key]
	cur := uint64(0)
	if exists {
		cur = e.version
	}
	if cur != expectVersion {
		val := make([]byte, len(e.value))
		copy(val, e.value)
		return 0, Versioned{Value: val, Version: cur}, ErrCASMismatch
	}
	e.version++
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	return e.version, Versioned{}, nil
}

// AddInt64 atomically adds delta to the integer stored at key (missing keys
// count as 0) and returns the new value. The value is stored in decimal form
// so it remains readable through Get.
func (s *Store) AddInt64(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[key]
	var cur int64
	if len(e.value) > 0 {
		v, err := strconv.ParseInt(string(e.value), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("add %q: %w", key, err)
		}
		cur = v
	}
	cur += delta
	e.version++
	e.value = []byte(strconv.FormatInt(cur, 10))
	s.data[key] = e
	return cur, nil
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// TryLock attempts to acquire the named lock for owner with the given lease.
// Expired leases are broken. Re-acquiring a held lock by the same owner
// renews the lease.
func (s *Store) TryLock(name, owner string, lease time.Duration) error {
	if lease <= 0 {
		lease = 30 * time.Second
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if held && st.owner != owner && st.expires.After(now) {
		return fmt.Errorf("lock %q owned by %s: %w", name, st.owner, ErrLockHeld)
	}
	s.locks[name] = lockState{owner: owner, expires: now.Add(lease)}
	return nil
}

// Unlock releases the named lock held by owner.
func (s *Store) Unlock(name, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held || st.owner != owner {
		return fmt.Errorf("unlock %q by %s: %w", name, owner, ErrNotLockOwner)
	}
	delete(s.locks, name)
	return nil
}

// LockOwner reports the current owner of the named lock, if unexpired.
func (s *Store) LockOwner(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held || !st.expires.After(s.clock.Now()) {
		return "", false
	}
	return st.owner, true
}

// Export returns a snapshot of all entries whose key satisfies keep. Used by
// shard migration when nodes are added to the cluster.
func (s *Store) Export(keep func(key string) bool) map[string]Versioned {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Versioned)
	for k, e := range s.data {
		if keep == nil || keep(k) {
			val := make([]byte, len(e.value))
			copy(val, e.value)
			out[k] = Versioned{Value: val, Version: e.version}
		}
	}
	return out
}

// Import installs entries (preserving versions) and is used by shard
// migration.
func (s *Store) Import(entries map[string]Versioned) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range entries {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		s.data[k] = entry{value: val, version: v.Version}
	}
}
