// Package kvstore implements the strongly consistent in-memory key-value
// store that ElasticRMI uses for the shared state of elastic object pools
// (the role HyperDex plays in the paper, §2.2/§4.1).
//
// The package provides the storage engine (Store), a network server exposing
// it over the transport protocol (Server), a client (Client), and a sharded,
// replicated multi-node deployment with online node addition and removal
// (Cluster) — the paper's runtime "may add additional nodes to HyperDex as
// necessary" (§4.2), and HyperDex itself replicates for fault tolerance.
//
// Consistency model: every key (and every lock name) has a replica set of R
// nodes — the first R distinct successors of its hash on the routing ring
// (internal/route.Ring.Owners), where R is the cluster's replication
// factor. The first replica is the key's primary: all client operations are
// routed to it, it serializes operations per key, and it synchronously
// forwards the resulting state (value+version, or lock lease) to the
// backups before acknowledging, so reads observe the latest completed write
// and every acknowledged write exists on every reachable replica. Named
// locks with leases implement the per-class mutual exclusion that the
// preprocessor emits for synchronized methods (Fig. 6); lock state is
// replicated and migrated exactly like data, so a lease held across a
// failover, an AddNode or a RemoveNode is still held by the same owner
// afterwards — a second acquirer keeps getting ErrLockHeld until the lease
// expires or the owner unlocks.
//
// Departures come in two flavors. Planned (Cluster.RemoveNode): the
// departing node's shards are handed off — exported with versions and
// unexpired lock leases intact — before the node leaves the ring, so
// nothing is lost even at R=1. Unplanned (crash): the router classifies the
// failed operation, drops the dead node from the ring, promotes the next
// replica of each affected key to primary, and re-replicates survivors'
// state to restore R; with R>=2 no acknowledged write and no held lock is
// lost, and operations retry transparently (bounded, surfacing
// ErrUnavailable only when every replica of a key is gone).
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// Exported errors.
var (
	// ErrNotFound is returned by Get for a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrCASMismatch is returned by CompareAndSwap on version conflict.
	ErrCASMismatch = errors.New("kvstore: compare-and-swap version mismatch")
	// ErrLockHeld is returned by TryLock when another owner holds the lock.
	ErrLockHeld = errors.New("kvstore: lock held")
	// ErrNotLockOwner is returned by Unlock when the caller does not hold it.
	ErrNotLockOwner = errors.New("kvstore: not lock owner")
)

// Versioned is a value with its monotonically increasing version. Deleted
// marks a deletion tombstone: readers see the key as missing, but the
// tombstone's version keeps replicated and migrated states ordered — a
// stale live copy on a node that missed the delete can never outrank the
// deletion in a rebalance merge and resurrect the key. Versions are
// monotonic across a key's whole history, deletions included (a re-created
// key continues above its tombstone).
//
// The //ermi:codec mark gives it a generated binary codec (nested in the
// hot wire messages); Value decodes as a zero-copy view into the frame.
//
//ermi:codec
type Versioned struct {
	Value   []byte
	Version uint64
	Deleted bool
}

// LockInfo is the exportable state of one named lock: the holder, the
// absolute lease expiry, and a store-local monotonic mutation sequence.
// The sequence orders replicated lock updates (a backup installs an update
// only if it is newer than what it already holds), so a delayed
// re-delivery can never resurrect a released or superseded lease. An empty
// Owner is a release tombstone.
type LockInfo struct {
	Owner   string
	Expires time.Time
	Seq     uint64
}

type entry struct {
	value   []byte
	version uint64
	deleted bool
}

type lockState struct {
	owner   string // "" = released tombstone (kept for its seq)
	expires time.Time
	seq     uint64
}

// Store is the single-node storage engine. Safe for concurrent use.
type Store struct {
	clock simclock.Clock

	mu      sync.Mutex
	data    map[string]entry
	locks   map[string]lockState
	lockSeq uint64 // monotonic across all lock mutations on this store
}

// NewStore creates an empty store; clock may be nil for the wall clock.
func NewStore(clock simclock.Clock) *Store {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Store{
		clock: clock,
		data:  make(map[string]entry),
		locks: make(map[string]lockState),
	}
}

// Get returns the value and version stored at key.
func (s *Store) Get(key string) (Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok || e.deleted {
		return Versioned{}, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	val := make([]byte, len(e.value))
	copy(val, e.value)
	return Versioned{Value: val, Version: e.version}, nil
}

// Put stores value at key and returns the new version.
func (s *Store) Put(key string, value []byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[key]
	e.version++
	e.deleted = false
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	return e.version
}

// Delete removes key, leaving a version-stamped tombstone so replicas and
// rebalance merges order the deletion against stale live copies (see
// Versioned.Deleted). Deleting a missing key is a no-op.
func (s *Store) Delete(key string) {
	s.DeleteV(key)
}

// DeleteV is Delete returning the resulting tombstone (for replication);
// ok is false when the key did not exist.
func (s *Store) DeleteV(key string) (Versioned, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok || e.deleted {
		return Versioned{}, false
	}
	e.version++
	e.deleted = true
	e.value = nil
	s.data[key] = e
	return Versioned{Version: e.version, Deleted: true}, true
}

// Drop hard-removes keys — values, tombstones and version history. Used by
// rebalance cleanup on nodes leaving a key's replica set, so no stale copy
// survives to resurface in a later membership change.
func (s *Store) Drop(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.data, k)
	}
}

// CompareAndSwap stores value at key iff the current version equals
// expectVersion (0 means "key must not exist"). On success it returns the
// new version; on conflict it returns ErrCASMismatch and the current value.
func (s *Store) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.data[key]
	cur := uint64(0)
	if exists && !e.deleted {
		cur = e.version
	}
	if cur != expectVersion {
		val := make([]byte, len(e.value))
		copy(val, e.value)
		return 0, Versioned{Value: val, Version: cur}, ErrCASMismatch
	}
	// A re-creation continues above the tombstone's version (e.version is
	// the tombstone when the key was deleted), keeping per-key history
	// monotonic for replication ordering.
	e.version++
	e.deleted = false
	e.value = make([]byte, len(value))
	copy(e.value, value)
	s.data[key] = e
	return e.version, Versioned{}, nil
}

// AddInt64 atomically adds delta to the integer stored at key (missing keys
// count as 0) and returns the new value. The value is stored in decimal form
// so it remains readable through Get.
func (s *Store) AddInt64(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[key]
	var cur int64
	if !e.deleted && len(e.value) > 0 {
		v, err := strconv.ParseInt(string(e.value), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("add %q: %w", key, err)
		}
		cur = v
	}
	cur += delta
	e.version++
	e.deleted = false
	e.value = []byte(strconv.FormatInt(cur, 10))
	s.data[key] = e
	return cur, nil
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k, e := range s.data {
		if !e.deleted && strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored (live) keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.data {
		if !e.deleted {
			n++
		}
	}
	return n
}

// TryLock attempts to acquire the named lock for owner with the given lease.
// Expired leases are broken. Re-acquiring a held lock by the same owner
// renews the lease.
func (s *Store) TryLock(name, owner string, lease time.Duration) error {
	if lease <= 0 {
		lease = 30 * time.Second
	}
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if held && st.owner != "" && st.owner != owner && st.expires.After(now) {
		return fmt.Errorf("lock %q owned by %s: %w", name, st.owner, ErrLockHeld)
	}
	s.lockSeq++
	s.locks[name] = lockState{owner: owner, expires: now.Add(lease), seq: s.lockSeq}
	return nil
}

// Unlock releases the named lock held by owner. The release leaves a
// sequence-stamped tombstone so replicas can order it against in-flight
// lease updates.
func (s *Store) Unlock(name, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held || st.owner != owner {
		return fmt.Errorf("unlock %q by %s: %w", name, owner, ErrNotLockOwner)
	}
	s.lockSeq++
	s.locks[name] = lockState{owner: "", expires: time.Time{}, seq: s.lockSeq}
	return nil
}

// LockOwner reports the current owner of the named lock, if unexpired.
func (s *Store) LockOwner(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held || st.owner == "" || !st.expires.After(s.clock.Now()) {
		return "", false
	}
	return st.owner, true
}

// LockSnapshot returns the replication image of one lock (including release
// tombstones) for forwarding to backups. ok is false when the lock was
// never touched on this store.
func (s *Store) LockSnapshot(name string) (LockInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, held := s.locks[name]
	if !held {
		return LockInfo{}, false
	}
	return LockInfo{Owner: st.owner, Expires: st.expires, Seq: st.seq}, true
}

// Export returns a snapshot of all entries whose key satisfies keep —
// live values and deletion tombstones alike, so migration and repair
// preserve deletion ordering. Used when the cluster membership changes.
func (s *Store) Export(keep func(key string) bool) map[string]Versioned {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Versioned)
	for k, e := range s.data {
		if keep == nil || keep(k) {
			val := make([]byte, len(e.value))
			copy(val, e.value)
			out[k] = Versioned{Value: val, Version: e.version, Deleted: e.deleted}
		}
	}
	return out
}

// Import installs entries preserving versions; newer-or-equal versions win,
// so re-delivered or overlapping imports (migration retries, replica
// repair) are idempotent and can never roll a key back — nor resurrect a
// deletion, since tombstones outrank the values they superseded.
func (s *Store) Import(entries map[string]Versioned) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range entries {
		if cur, ok := s.data[k]; ok && cur.version > v.Version {
			continue
		}
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		s.data[k] = entry{value: val, version: v.Version, deleted: v.Deleted}
	}
}

// ExportLocks snapshots the lock states whose name satisfies keep: the
// unexpired held leases with owners, absolute expiries and mutation
// sequences intact, plus release tombstones and expired leases (invisible
// to readers, but their sequences keep replicated updates ordered). It is
// the lock-table counterpart of Export: AddNode/RemoveNode migration must
// carry it alongside the data, or a held lock whose routed owner changes
// would appear free on the node that takes the name over.
func (s *Store) ExportLocks(keep func(name string) bool) map[string]LockInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]LockInfo)
	for name, st := range s.locks {
		if keep == nil || keep(name) {
			out[name] = LockInfo{Owner: st.owner, Expires: st.expires, Seq: st.seq}
		}
	}
	return out
}

// DropLocks removes the named locks' state entirely (leases, tombstones
// and their sequence history). Used by rebalance cleanup on nodes leaving
// a lock's replica set, so no stale copy survives to resurface in a later
// membership change.
func (s *Store) DropLocks(names []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		delete(s.locks, name)
	}
}

// ImportLocks installs lock leases (held states and release tombstones).
// Per name, a newer sequence wins; the store's own sequence counter is
// advanced past every installed value so local mutations made after a
// promotion keep winning over anything replicated before it.
func (s *Store) ImportLocks(locks map[string]LockInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, info := range locks {
		if cur, ok := s.locks[name]; ok && cur.seq >= info.Seq {
			continue
		}
		s.locks[name] = lockState{owner: info.Owner, expires: info.Expires, seq: info.Seq}
		if info.Seq > s.lockSeq {
			s.lockSeq = info.Seq
		}
	}
}
