package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

// newSessionNode boots one store node plus a plain (uncached) client for
// driving writes at it.
func newSessionNode(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func openSession(t *testing.T, addr string, opts SessionOptions) *Session {
	t.Helper()
	sess, err := NewSession(addr, opts)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func TestSessionCachedGet(t *testing.T) {
	srv, cli := newSessionNode(t)
	if _, err := cli.Put("k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	sess := openSession(t, srv.Addr(), SessionOptions{})
	for i := 0; i < 3; i++ {
		v, err := sess.Get("k")
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(v.Value, []byte("v1")) {
			t.Fatalf("Get %d: got %q", i, v.Value)
		}
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits/misses drifted: %+v", st)
	}
	if n := srv.sessions.interestCount("k"); n != 1 {
		t.Fatalf("interestCount(k) = %d, want 1", n)
	}
}

// TestSessionInvalidationBeforeAck is the coherence core: once a write is
// acknowledged, no session Get may return an older version — the server
// must have revoked (and the client processed the revocation of) any
// cached copy before the ack escaped.
func TestSessionInvalidationBeforeAck(t *testing.T) {
	srv, cli := newSessionNode(t)
	sess := openSession(t, srv.Addr(), SessionOptions{})
	for i := 0; i < 200; i++ {
		ver, err := cli.Put("hot", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		v, err := sess.Get("hot")
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if v.Version < ver {
			t.Fatalf("stale read after acked write: read v%d, acked v%d", v.Version, ver)
		}
		// Re-prime the cache so the next write actually invalidates.
		if _, err := sess.Get("hot"); err != nil {
			t.Fatalf("re-Get %d: %v", i, err)
		}
	}
	if st := sess.Stats(); st.Invalidations == 0 {
		t.Fatalf("no invalidations observed: %+v", st)
	}
}

// TestSessionDeleteAndCASInvalidate covers the non-Put conflicting writes.
func TestSessionDeleteAndCASInvalidate(t *testing.T) {
	srv, cli := newSessionNode(t)
	sess := openSession(t, srv.Addr(), SessionOptions{})

	ver, err := cli.Put("k", []byte("a"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := sess.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := cli.CompareAndSwap("k", []byte("b"), ver); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if v, err := sess.Get("k"); err != nil || !bytes.Equal(v.Value, []byte("b")) {
		t.Fatalf("after CAS: %q, %v", v.Value, err)
	}
	if err := cli.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := sess.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after Delete: %v, want ErrNotFound", err)
	}
	if _, err := cli.AddInt64("n", 5); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if v, err := sess.Get("n"); err != nil || string(v.Value) != "5" {
		t.Fatalf("counter: %q, %v", v.Value, err)
	}
	if _, err := cli.AddInt64("n", 2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if v, err := sess.Get("n"); err != nil || string(v.Value) != "7" {
		t.Fatalf("counter after invalidating add: %q, %v", v.Value, err)
	}
	_ = srv
}

// TestSessionLeaseExpiry pins the client side of the lease clock: with
// keepalives suppressed, a session past its TTL serves nothing from cache
// — the Get goes back to the wire and the server (which reaped the
// session) answers ErrNoSession. The client measures the lease on its own
// clock from its own send instant, so no skew against the server can let
// it serve longer than the server granted.
func TestSessionLeaseExpiry(t *testing.T) {
	srv, cli := newSessionNode(t)
	srv.SetSessionTTL(150 * time.Millisecond)
	if _, err := cli.Put("k", []byte("cached")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	sess := openSession(t, srv.Addr(), SessionOptions{})
	sess.noKeepalive.Store(true)
	if _, err := sess.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	hitsBefore := sess.Stats().Hits
	time.Sleep(300 * time.Millisecond)
	if _, err := sess.Get("k"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Get past lease end: %v, want ErrNoSession", err)
	}
	if hits := sess.Stats().Hits; hits != hitsBefore {
		t.Fatalf("cache served %d hits past lease end", hits-hitsBefore)
	}
}

// TestSessionDroppedMidInvalidation: a client that goes fully unresponsive
// (no acks, no keepalives — a frozen or partitioned process) delays the
// conflicting write only until its lease runs out, at which point the
// server kills the session and acks.
func TestSessionDroppedMidInvalidation(t *testing.T) {
	srv, cli := newSessionNode(t)
	const ttl = 300 * time.Millisecond
	srv.SetSessionTTL(ttl)
	sess := openSession(t, srv.Addr(), SessionOptions{})
	if _, err := cli.Put("k", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := sess.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	sess.dropAcks.Store(true)
	sess.noKeepalive.Store(true)
	start := time.Now()
	if _, err := cli.Put("k", []byte("v2")); err != nil {
		t.Fatalf("Put under dropped acks: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed > ttl+2*time.Second {
		t.Fatalf("write ack delayed %v, bound is lease TTL (%v)", elapsed, ttl)
	}
	if n := srv.sessions.sessionCount(); n != 0 {
		t.Fatalf("unresponsive session survived the timed-out invalidation (%d live)", n)
	}
}

// TestSessionSlowAckerSurvives is the regression test for a coherence hole:
// a session whose ACK path is slow (events still processed, keepalives
// still renewing) must NOT be killed when an invalidation ack misses the
// lease deadline captured at issue. Killing it silently dropped its other
// interests server-side while the client — holding a legitimately renewed
// lease — kept serving them with nobody left to invalidate. The write must
// still be bounded (the renewed lease proves the event was applied; the
// next keepalive acks it cumulatively), the session must stay live, and
// coherence on its other cached keys must hold.
func TestSessionSlowAckerSurvives(t *testing.T) {
	srv, cli := newSessionNode(t)
	const ttl = 300 * time.Millisecond
	srv.SetSessionTTL(ttl)
	sess := openSession(t, srv.Addr(), SessionOptions{})
	for _, k := range []string{"a", "b"} {
		if _, err := cli.Put(k, []byte("v1")); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
		if _, err := sess.Get(k); err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
	}
	sess.dropAcks.Store(true)
	start := time.Now()
	if _, err := cli.Put("a", []byte("v2")); err != nil {
		t.Fatalf("Put under dropped acks: %v", err)
	}
	if elapsed := time.Since(start); elapsed > ttl+2*time.Second {
		t.Fatalf("write ack delayed %v, bound is lease TTL (%v)", elapsed, ttl)
	}
	if n := srv.sessions.sessionCount(); n != 1 {
		t.Fatalf("slow-acking (but live) session killed: %d sessions", n)
	}
	// The session's OTHER key must still be coherent: the write below finds
	// the interest, invalidates, and the next session read re-fetches.
	if _, err := cli.Put("b", []byte("v2")); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	v, err := sess.Get("b")
	if err != nil {
		t.Fatalf("Get b: %v", err)
	}
	if string(v.Value) != "v2" {
		t.Fatalf("stale read through surviving session: b = %q, want v2", v.Value)
	}
}

// TestSessionEvictionDropsInterest: LRU eviction releases the server-side
// interest, so a bounded cache cannot pin unbounded server state.
func TestSessionEvictionDropsInterest(t *testing.T) {
	srv, cli := newSessionNode(t)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := cli.Put(k, []byte(k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	sess := openSession(t, srv.Addr(), SessionOptions{MaxEntries: 2})
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, err := sess.Get(k); err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
	}
	if st := sess.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", st.Entries)
	}
	// The forget travels one-way; give it a bounded moment to land.
	deadline := time.Now().Add(2 * time.Second)
	for srv.sessions.interestCount("a") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("evicted key kept server-side interest")
		}
		time.Sleep(time.Millisecond)
	}
	if srv.sessions.interestCount("b") != 1 || srv.sessions.interestCount("c") != 1 {
		t.Fatalf("surviving entries lost interest: b=%d c=%d",
			srv.sessions.interestCount("b"), srv.sessions.interestCount("c"))
	}
}

// TestSessionInterestTableFull: past the server's interest cap, reads are
// served but not cached (NoCache), and the server tracks nothing for them.
func TestSessionInterestTableFull(t *testing.T) {
	srv, cli := newSessionNode(t)
	srv.sessions.mu.Lock()
	srv.sessions.maxInterest = 1
	srv.sessions.mu.Unlock()
	for _, k := range []string{"a", "b"} {
		if _, err := cli.Put(k, []byte(k)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	sess := openSession(t, srv.Addr(), SessionOptions{})
	if _, err := sess.Get("a"); err != nil { // takes the single interest slot
		t.Fatalf("Get a: %v", err)
	}
	for i := 0; i < 2; i++ {
		if v, err := sess.Get("b"); err != nil || !bytes.Equal(v.Value, []byte("b")) {
			t.Fatalf("Get b (%d): %q, %v", i, v.Value, err)
		}
	}
	st := sess.Stats()
	if st.Entries != 1 || st.Misses != 3 {
		t.Fatalf("NoCache read was cached anyway: %+v", st)
	}
	if n := srv.sessions.interestCount("b"); n != 0 {
		t.Fatalf("full interest table still registered b (%d)", n)
	}
}

func TestSessionWatch(t *testing.T) {
	srv, cli := newSessionNode(t)
	sess := openSession(t, srv.Addr(), SessionOptions{})

	keyCh, cancelKey, err := sess.Watch("wk")
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	lockCh, cancelLock, err := sess.WatchLock("wl")
	if err != nil {
		t.Fatalf("WatchLock: %v", err)
	}
	defer cancelLock()
	if _, err := cli.Put("wk", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case got := <-keyCh:
		if got != "wk" {
			t.Fatalf("key notification drifted: %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("key write never notified")
	}
	if err := cli.TryLock("wl", "me", time.Minute); err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	select {
	case <-lockCh:
	case <-time.After(2 * time.Second):
		t.Fatal("lock acquire never notified")
	}
	if err := cli.Unlock("wl", "me"); err != nil {
		t.Fatalf("Unlock: %v", err)
	}
	select {
	case <-lockCh:
	case <-time.After(2 * time.Second):
		t.Fatal("lock release never notified")
	}

	cancelKey()
	if _, err := cli.Put("wk", []byte("y")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	select {
	case got := <-keyCh:
		t.Fatalf("cancelled watch still notified: %q", got)
	case <-time.After(150 * time.Millisecond):
	}
}

// TestClusterSessionCoherence drives the cached view of a replicated
// cluster through the Shared surface and across a membership change.
func TestClusterSessionCoherence(t *testing.T) {
	c, err := NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer c.Close()
	cs := c.NewSession(SessionOptions{})
	defer cs.Close()

	if err := cs.PutString("greeting", "hello"); err != nil {
		t.Fatalf("PutString: %v", err)
	}
	for i := 0; i < 3; i++ {
		s, err := cs.GetString("greeting")
		if err != nil || s != "hello" {
			t.Fatalf("GetString (%d): %q, %v", i, s, err)
		}
	}
	if st := cs.Stats(); st.Hits == 0 {
		t.Fatalf("repeated reads never hit the cache: %+v", st)
	}
	if err := cs.PutString("greeting", "goodbye"); err != nil {
		t.Fatalf("PutString: %v", err)
	}
	if s, err := cs.GetString("greeting"); err != nil || s != "goodbye" {
		t.Fatalf("read after write: %q, %v", s, err)
	}

	// A membership change flushes every cache before completing: no
	// pre-change entry may outlive the view that created it.
	if err := c.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if s, err := cs.GetString("greeting"); err != nil || s != "goodbye" {
		t.Fatalf("read after view change: %q, %v", s, err)
	}
	if n, err := cs.AddInt64("counter", 41); err != nil || n != 41 {
		t.Fatalf("AddInt64: %d, %v", n, err)
	}
	if n, err := cs.GetInt64("counter"); err != nil || n != 41 {
		t.Fatalf("GetInt64: %d, %v", n, err)
	}
}

// TestClusterSessionFailover kills a node under a cached workload: reads
// keep succeeding at the newest acked value and sessions re-establish with
// the promoted primaries.
func TestClusterSessionFailover(t *testing.T) {
	c, err := NewReplicated(3, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer c.Close()
	c.SetSessionTTL(200 * time.Millisecond) // keep the failover fence short
	cs := c.NewSession(SessionOptions{})
	defer cs.Close()

	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("fo/%d", i)
		if err := cs.PutString(keys[i], "v1"); err != nil {
			t.Fatalf("seed %s: %v", keys[i], err)
		}
		if _, err := cs.GetString(keys[i]); err != nil {
			t.Fatalf("prime %s: %v", keys[i], err)
		}
	}
	if err := c.CrashNode(c.Addrs()[0]); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	// Writes drive failover detection; each acked write must then be
	// visible through the session layer despite dead sessions and the
	// post-failover fence.
	for _, k := range keys {
		if err := cs.PutString(k, "v2"); err != nil {
			t.Fatalf("write across failover (%s): %v", k, err)
		}
		if s, err := cs.GetString(k); err != nil || s != "v2" {
			t.Fatalf("stale read across failover (%s): %q, %v", k, s, err)
		}
	}
	if st := cs.Stats(); st.LiveSessions == 0 {
		t.Fatalf("no session re-established after failover: %+v", st)
	}
}

// --- satellite: shed/expiry retry taxonomy ---

func TestCallShedRetryTaxonomy(t *testing.T) {
	var slept []time.Duration
	sleep := func(d time.Duration) { slept = append(slept, d) }

	// Transient sheds are retried with doubling backoff until success.
	calls := 0
	err := callShedRetry(sleep, func() error {
		calls++
		if calls <= 2 {
			return transport.ErrOverloaded
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("shed retry: err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff drifted: %v", slept)
	}

	// Wrapped expiry statuses count too (errors.Is, not equality).
	calls, slept = 0, nil
	err = callShedRetry(sleep, func() error {
		calls++
		if calls == 1 {
			return fmt.Errorf("queued too long: %w", transport.ErrExpired)
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("expired retry: err=%v calls=%d", err, calls)
	}

	// A persistent shed surfaces after the retry budget.
	calls, slept = 0, nil
	err = callShedRetry(sleep, func() error { calls++; return transport.ErrOverloaded })
	if !errors.Is(err, transport.ErrOverloaded) || calls != shedRetries+1 {
		t.Fatalf("budget exhaustion: err=%v calls=%d", err, calls)
	}

	// Anything else is not retried: the handler may have run.
	calls, slept = 0, nil
	boom := errors.New("boom")
	err = callShedRetry(sleep, func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 || len(slept) != 0 {
		t.Fatalf("non-refusal retried: err=%v calls=%d slept=%v", err, calls, slept)
	}
}

// TestClientRidesOutShed is the end-to-end regression for the old
// behavior, where one statusOverload reply failed the store call outright:
// a Get against a saturated admission queue must succeed once load drains.
func TestClientRidesOutShed(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	srv, err := transport.ServeOpts("127.0.0.1:0", func(req *transport.Request) ([]byte, error) {
		switch req.Method {
		case "Block":
			started <- struct{}{}
			<-release
			return nil, nil
		case "Get":
			return transport.Encode(&getReply{Val: Versioned{Value: []byte("ok"), Version: 7}})
		}
		return nil, errors.New("unknown method")
	}, transport.ServerOptions{MaxConcurrent: 1, MaxQueue: 1})
	if err != nil {
		t.Fatalf("ServeOpts: %v", err)
	}
	defer srv.Close()
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()

	// One call holds the only execution slot, a second fills the queue.
	blocker, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer blocker.Close()
	for i := 0; i < 2; i++ {
		go blocker.Call("kv", "Block", nil, 30*time.Second)
	}
	<-started // slot occupied; the second Block is queued or about to be

	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cli.Close()
	got := make(chan error, 1)
	go func() {
		v, err := cli.Get("k")
		if err == nil && string(v.Value) != "ok" {
			err = fmt.Errorf("wrong value %q", v.Value)
		}
		got <- err
	}()
	// Once the server sheds something, drain the blockers so a retry can
	// land. (If the Get slipped into the queue before it filled, nothing is
	// shed and it simply completes — either way it must not error.)
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Shed == 0 && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
	released = true
	close(release)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Get under shedding admission: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get never completed")
	}
}

// recordingPusher plays a well-behaved client against the sessionMgr
// directly: it records the sequence order in which events actually reach
// the "wire" and acknowledges each immediately, the way the real client's
// acker would.
type recordingPusher struct {
	mgr *sessionMgr
	id  uint64

	mu   sync.Mutex
	seqs []uint64
}

func (p *recordingPusher) Send(kind, seq uint64, topic string, payload []byte) error {
	if kind == evNotify {
		return nil
	}
	// Stagger odd sequences, standing in for network-send jitter: an
	// implementation that pushes from the issuing goroutines concurrently
	// (instead of through the per-session FIFO sender) then reliably lands
	// an even sequence on the wire before its odd predecessor.
	if seq%2 == 1 {
		time.Sleep(200 * time.Microsecond)
	}
	p.mu.Lock()
	p.seqs = append(p.seqs, seq)
	p.mu.Unlock()
	p.mgr.ack(p.id, seq)
	return nil
}

func (p *recordingPusher) Closed() bool { return false }

// TestSessionEventOrderUnderConcurrentWrites pins the wire order of
// invalidation pushes to their sequence order. Events used to be pushed
// after the manager mutex was released, so two concurrent writes to
// different keys could land newest-sequence-first — and with cumulative
// acks, the client's ack for the newer event released the older write's
// waiter before that write's invalidation was even sent, acknowledging a
// write while its stale cached copy was still being served.
func TestSessionEventOrderUnderConcurrentWrites(t *testing.T) {
	m := newSessionMgr(nil)
	defer m.closeAll()
	m.setTTL(time.Minute) // no keepalives run here; keep the session live throughout
	p := &recordingPusher{mgr: m}
	id, _ := m.open(p)
	p.id = id

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const rounds = 50
	for round := 0; round < rounds; round++ {
		for _, k := range keys {
			if _, _, err := m.lease(id, k); err != nil {
				t.Fatalf("lease round %d: %v", round, err)
			}
		}
		var wg sync.WaitGroup
		for _, k := range keys {
			wg.Add(1)
			go func(k string) {
				defer wg.Done()
				m.invalidate(k)
			}(k)
		}
		wg.Wait()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.seqs) != rounds*len(keys) {
		t.Fatalf("pushed %d events, want %d", len(p.seqs), rounds*len(keys))
	}
	for i := 1; i < len(p.seqs); i++ {
		if p.seqs[i] <= p.seqs[i-1] {
			t.Fatalf("event pushed out of order: seq %d after seq %d (index %d)",
				p.seqs[i], p.seqs[i-1], i)
		}
	}
}

// TestSessionAdoptsLoweredTTL: lowering the server's session TTL while
// sessions are open must shrink the client's serving window on its next
// keepalive. The server extends leases by its *current* TTL, so a client
// still extending by the open-time value would hold a window ending after
// the server's — and after every invalidation deadline captured from it —
// serving stale entries past the point where a blocked write gets acked.
func TestSessionAdoptsLoweredTTL(t *testing.T) {
	srv, cli := newSessionNode(t)
	if _, err := cli.Put("k", []byte("cached")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	sess := openSession(t, srv.Addr(), SessionOptions{})
	if _, err := sess.Get("k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	const shortTTL = 150 * time.Millisecond
	srv.SetSessionTTL(shortTTL)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		ttl := sess.ttl
		sess.mu.Unlock()
		if ttl == shortTTL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never adopted the lowered TTL from a keepalive reply")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// With keepalives now suppressed, the client must stop serving within
	// the NEW window, not the one it opened with.
	sess.noKeepalive.Store(true)
	time.Sleep(2 * shortTTL)
	hitsBefore := sess.Stats().Hits
	if _, err := sess.Get("k"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Get past shortened lease: %v, want ErrNoSession", err)
	}
	if hits := sess.Stats().Hits; hits != hitsBefore {
		t.Fatalf("cache served %d hits past the shortened lease", hits-hitsBefore)
	}
}

// newTinyPoolServer boots a store server whose transport pool is small
// enough for a handful of blocked writers to saturate — the scenario in
// which session-control calls must ride the express lane or starve.
func newTinyPoolServer(t *testing.T) *Server {
	t.Helper()
	store, err := NewStoreDur(nil, DurOptions{})
	if err != nil {
		t.Fatalf("NewStoreDur: %v", err)
	}
	s := &Server{store: store, sessions: newSessionMgr(nil)}
	srv, err := transport.ServeOpts("127.0.0.1:0", s.handle,
		transport.ServerOptions{MaxConcurrent: 2, MaxQueue: 2, Express: sessionControlExpress})
	if err != nil {
		store.Close()
		t.Fatalf("ServeOpts: %v", err)
	}
	s.srv = srv
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSessionControlRidesExpressLane: a burst of writes wider than the
// worker pool, every one parked in an invalidation wait, must not starve
// the acks and keepalives that would release them. Routed through the same
// admission pool those calls were shed past the client's retry budget, the
// acker marked the session dead, and every write degraded to a full
// lease-deadline wait.
func TestSessionControlRidesExpressLane(t *testing.T) {
	srv := newTinyPoolServer(t)
	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cli.Close()
	sess := openSession(t, srv.Addr(), SessionOptions{})
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		if _, err := cli.Put(k, []byte("v1")); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
		if _, err := sess.Get(k); err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(keys))
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if _, err := cli.Put(k, []byte("v2")); err != nil {
				errs <- fmt.Errorf("Put %s under saturation: %w", k, err)
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The writers must have been released by acks, not by lease timeouts,
	// and the acking session must have survived the burst.
	if elapsed := time.Since(start); elapsed > DefaultSessionTTL {
		t.Fatalf("write burst took %v — writers waited out lease deadlines", elapsed)
	}
	if !sess.Live() || srv.sessions.sessionCount() != 1 {
		t.Fatalf("session did not survive the write burst (live=%v, sessions=%d)",
			sess.Live(), srv.sessions.sessionCount())
	}
	for _, k := range keys {
		if v, err := sess.Get(k); err != nil || string(v.Value) != "v2" {
			t.Fatalf("read after burst (%s): %q, %v", k, v.Value, err)
		}
	}
}

// TestClusterSessionDialStallIsolation: opening a session blocks on a dial
// plus a SessOpen round trip; one stalled node must not hold the
// ClusterSession lock and freeze cached reads for keys on healthy shards.
func TestClusterSessionDialStallIsolation(t *testing.T) {
	c, err := NewCluster(2, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	cs := c.NewSession(SessionOptions{})
	defer cs.Close()

	ownerOf := func(key string) string {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.nodes[c.ring.Owner(key)].addr
	}
	addrs := c.Addrs()
	keyFor := func(addr string) string {
		for i := 0; i < 10000; i++ {
			k := fmt.Sprintf("iso/%d", i)
			if ownerOf(k) == addr {
				return k
			}
		}
		t.Fatalf("no key routed to %s", addr)
		return ""
	}
	stalled, healthy := addrs[0], addrs[1]
	kStall, kOK := keyFor(stalled), keyFor(healthy)
	if err := c.PutString(kOK, "v"); err != nil {
		t.Fatalf("PutString: %v", err)
	}

	gate := make(chan struct{})
	var entered sync.Once
	enteredCh := make(chan struct{})
	orig := dialSession
	dialSession = func(addr string, opts SessionOptions) (*Session, error) {
		if addr == stalled {
			entered.Do(func() { close(enteredCh) })
			<-gate
		}
		return orig(addr, opts)
	}
	defer func() { dialSession = orig }()

	stallDone := make(chan struct{})
	go func() {
		defer close(stallDone)
		_, _ = cs.Get(kStall) // parks inside the stalled dial
	}()
	<-enteredCh

	got := make(chan error, 1)
	go func() {
		s, err := cs.GetString(kOK)
		if err == nil && s != "v" {
			err = fmt.Errorf("wrong value %q", s)
		}
		got <- err
	}()
	var failure string
	select {
	case err := <-got:
		if err != nil {
			failure = fmt.Sprintf("healthy-shard read: %v", err)
		}
	case <-time.After(2 * time.Second):
		failure = "healthy-shard read stalled behind another shard's dialing session"
	}
	close(gate)
	<-stallDone
	if failure != "" {
		t.Fatal(failure)
	}
}
