package kvstore

// Durability layer: every Store mutation appends a binary record to an
// internal/wal log and returns only after the record is fsynced (group
// committed when DurOptions.GroupCommit). Periodically the store writes a
// compacted snapshot — the Export/ExportLocks image at a recorded log
// position — and drops the covered log segments. See the package comment's
// "Durability contract" section for the externally visible guarantees.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/ermic"
	"elasticrmi/internal/simclock"
	"elasticrmi/internal/wal"
)

// DurOptions configures a durable store. A zero Dir means in-memory only.
type DurOptions struct {
	// Dir is the directory for log segments and snapshots.
	Dir string
	// GroupCommit amortizes one fsync across concurrently admitted
	// mutations (see wal.Options.GroupCommit).
	GroupCommit bool
	// SnapshotEvery is the number of logged mutations between compacted
	// snapshots (default 4096).
	SnapshotEvery int
	// SegmentSize overrides the log segment size (default wal's).
	SegmentSize int
	// TombstoneTTL overrides the tombstone retention horizon (default 5m).
	TombstoneTTL time.Duration
}

// WAL record kinds.
const (
	durEntry    = 1 // key, version, deleted, value
	durLock     = 2 // name, owner, expires, seq
	durDrop     = 3 // hard-removed keys (rebalance cleanup)
	durLockDrop = 4 // hard-removed lock names
)

type durability struct {
	log   *wal.Log
	dir   string
	every uint64

	snapMu    sync.Mutex // serializes snapshotting against clean Close
	snapping  atomic.Bool
	sinceSnap atomic.Uint64

	// Background snapshot failures: silently losing one would leave the
	// log growing unbounded with nothing ever saying why. The last error
	// (cleared on the next success) and a cumulative count are surfaced
	// through Store.SnapshotStats.
	snapErr   atomic.Value // errBox
	snapFails atomic.Uint64
}

// errBox wraps an error for atomic.Value (which cannot hold a bare nil).
type errBox struct{ err error }

// NewStoreDur creates a store persisted under opts.Dir, recovering any
// existing state there first: newest intact snapshot, then the log tail
// past it, both applied through the same version/sequence gates as
// replication — so recovery can never roll a key back or resurrect a
// released lock. With opts.Dir == "" it is NewStore.
func NewStoreDur(clock simclock.Clock, opts DurOptions) (*Store, error) {
	s := NewStore(clock)
	if opts.Dir == "" {
		return s, nil
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 4096
	}
	if opts.TombstoneTTL > 0 {
		s.tombTTL = opts.TombstoneTTL
	}
	snapLSN, img, ok, err := wal.LoadSnapshot(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: recover %s: %w", opts.Dir, err)
	}
	if ok {
		if err := s.installImage(img); err != nil {
			return nil, fmt.Errorf("kvstore: recover %s: %w", opts.Dir, err)
		}
	}
	log, err := wal.Open(opts.Dir, wal.Options{SegmentSize: opts.SegmentSize, GroupCommit: opts.GroupCommit})
	if err != nil {
		return nil, fmt.Errorf("kvstore: recover %s: %w", opts.Dir, err)
	}
	if log.LSN() < snapLSN {
		// A torn tail ate records the snapshot already covers; restart
		// LSNs past the snapshot so future records are never skipped.
		if err := log.Reset(snapLSN); err != nil {
			log.Close()
			return nil, fmt.Errorf("kvstore: recover %s: %w", opts.Dir, err)
		}
	}
	now := s.clock.Now()
	if err := log.Replay(snapLSN, func(_ uint64, rec []byte) error {
		return s.applyRecord(rec, now)
	}); err != nil {
		log.Close()
		return nil, fmt.Errorf("kvstore: recover %s: %w", opts.Dir, err)
	}
	s.dur = &durability{log: log, dir: opts.Dir, every: uint64(opts.SnapshotEvery)}
	return s, nil
}

// Close cleanly shuts the durability layer down (flush + fsync). Waits out
// an in-flight snapshot. No-op for in-memory stores.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return d.log.Close()
}

// Crash abandons the durability layer as a power cut would: buffered
// unfsynced log records are dropped. Only mutations whose call had
// returned (i.e. were acked) are guaranteed to survive recovery. No-op
// for in-memory stores.
func (s *Store) Crash() error {
	d := s.dur
	if d == nil {
		return nil
	}
	return d.log.Crash()
}

// durCommit appends the non-nil records and blocks until they are durable,
// then triggers a snapshot if enough mutations accumulated. A closed log
// (concurrent Crash/Close) is tolerated — the caller is past its ack point
// or will never ack; any other log failure is fatal, because returning
// would silently break the ack-implies-durable contract.
func (s *Store) durCommit(recs ...[]byte) {
	d := s.dur
	if d == nil {
		return
	}
	var last uint64
	n := 0
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		lsn, err := d.log.Append(rec)
		if err != nil {
			if errors.Is(err, wal.ErrClosed) {
				return
			}
			panic(fmt.Sprintf("kvstore: wal append: %v", err))
		}
		last = lsn
		n++
	}
	if n == 0 {
		return
	}
	if err := d.log.Commit(last); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return
		}
		panic(fmt.Sprintf("kvstore: wal commit: %v", err))
	}
	if d.sinceSnap.Add(uint64(n)) >= d.every {
		s.maybeSnapshot()
	}
}

// maybeSnapshot starts a background snapshot unless one is running.
func (s *Store) maybeSnapshot() {
	d := s.dur
	if !d.snapping.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer d.snapping.Store(false)
		err := s.snapshotNow()
		if err != nil && errors.Is(err, wal.ErrClosed) {
			// Lost the race with a clean Close: nothing was lost, the
			// final snapshot happens (or already happened) under snapMu.
			err = nil
		}
		if err != nil {
			d.snapFails.Add(1)
		}
		d.snapErr.Store(errBox{err})
	}()
}

// SnapshotStats reports background compaction health: how many background
// snapshots have failed since the store opened, and the most recent
// failure (nil after a succeeding attempt). A persistent error here means
// the log is growing without compaction even though writes still commit.
func (s *Store) SnapshotStats() (fails uint64, last error) {
	d := s.dur
	if d == nil {
		return 0, nil
	}
	if box, ok := d.snapErr.Load().(errBox); ok {
		last = box.err
	}
	return d.snapFails.Load(), last
}

// snapshotNow writes a compacted snapshot and drops covered log segments.
// The LSN is captured BEFORE the image is read, so the image is a
// superset of the state at that position; replaying the tail past it
// re-applies some mutations the image already holds, which the
// version/sequence gates make idempotent. Tombstone GC runs first, so the
// snapshot is also the compaction point that sheds tombstones past the
// retention horizon.
func (s *Store) snapshotNow() error {
	d := s.dur
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	lsn := d.log.LSN()
	s.CompactTombstones()
	img := s.encodeImage()
	if err := wal.SaveSnapshot(d.dir, lsn, img); err != nil {
		return err
	}
	if _, err := d.log.DropBefore(lsn); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	d.sinceSnap.Store(0)
	return nil
}

// --- record and image encoding (internal/ermic primitives) ---

func appendTime(b []byte, t time.Time) []byte {
	// An explicit zero flag: with a simulated clock UnixNano can be 0 for
	// a real instant, so the zero value needs its own bit.
	b = ermic.AppendBool(b, t.IsZero())
	if !t.IsZero() {
		b = ermic.AppendVarint(b, t.UnixNano())
	}
	return b
}

func consumeTime(b []byte) (time.Time, []byte, error) {
	zero, b, err := ermic.ConsumeBool(b)
	if err != nil {
		return time.Time{}, nil, err
	}
	if zero {
		return time.Time{}, b, nil
	}
	ns, b, err := ermic.ConsumeVarint(b)
	if err != nil {
		return time.Time{}, nil, err
	}
	return time.Unix(0, ns), b, nil
}

// entryRecLocked encodes one data entry's post-state; nil when the store
// is not durable. Caller holds s.mu.
func (s *Store) entryRecLocked(key string, e entry) []byte {
	if s.dur == nil {
		return nil
	}
	b := make([]byte, 0, 2+len(key)+len(e.value)+12)
	b = ermic.AppendUvarint(b, durEntry)
	b = ermic.AppendString(b, key)
	b = ermic.AppendUvarint(b, e.version)
	b = ermic.AppendBool(b, e.deleted)
	b = ermic.AppendBytes(b, e.value)
	return b
}

// lockRecLocked encodes one lock's post-state; nil when not durable.
func (s *Store) lockRecLocked(name string, st lockState) []byte {
	if s.dur == nil {
		return nil
	}
	b := make([]byte, 0, 2+len(name)+len(st.owner)+20)
	b = ermic.AppendUvarint(b, durLock)
	b = ermic.AppendString(b, name)
	b = ermic.AppendString(b, st.owner)
	b = appendTime(b, st.expires)
	b = ermic.AppendUvarint(b, st.seq)
	return b
}

// dropRecLocked encodes a hard-removal (kind durDrop or durLockDrop).
func (s *Store) dropRecLocked(kind uint64, names []string) []byte {
	if s.dur == nil || len(names) == 0 {
		return nil
	}
	size := 4
	for _, n := range names {
		size += len(n) + 2
	}
	b := make([]byte, 0, size)
	b = ermic.AppendUvarint(b, kind)
	b = ermic.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = ermic.AppendString(b, n)
	}
	return b
}

// applyRecord replays one log record through the same gates as
// replication. now stamps recovered tombstones, restarting their GC
// horizon at recovery time (conservative: never earlier than original).
func (s *Store) applyRecord(rec []byte, now time.Time) error {
	kind, rec, err := ermic.ConsumeUvarint(rec)
	if err != nil {
		return fmt.Errorf("kvstore: wal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch kind {
	case durEntry:
		key, rec, err := ermic.ConsumeString(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal entry record: %w", err)
		}
		version, rec, err := ermic.ConsumeUvarint(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal entry record: %w", err)
		}
		deleted, rec, err := ermic.ConsumeBool(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal entry record: %w", err)
		}
		value, _, err := ermic.ConsumeBytesView(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal entry record: %w", err)
		}
		s.installEntryLocked(key, Versioned{Value: value, Version: version, Deleted: deleted}, now)
	case durLock:
		name, rec, err := ermic.ConsumeString(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal lock record: %w", err)
		}
		owner, rec, err := ermic.ConsumeString(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal lock record: %w", err)
		}
		expires, rec, err := consumeTime(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal lock record: %w", err)
		}
		seq, _, err := ermic.ConsumeUvarint(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal lock record: %w", err)
		}
		s.installLockLocked(name, LockInfo{Owner: owner, Expires: expires, Seq: seq}, now)
	case durDrop, durLockDrop:
		count, rec, err := ermic.ConsumeCount(rec)
		if err != nil {
			return fmt.Errorf("kvstore: wal drop record: %w", err)
		}
		for i := 0; i < count; i++ {
			var name string
			name, rec, err = ermic.ConsumeString(rec)
			if err != nil {
				return fmt.Errorf("kvstore: wal drop record: %w", err)
			}
			if kind == durDrop {
				delete(s.data, name)
			} else {
				delete(s.locks, name)
			}
		}
	default:
		return fmt.Errorf("kvstore: wal record: unknown kind %d", kind)
	}
	return nil
}

// encodeImage serializes the full store state for a snapshot. Reads the
// maps through the chunked exporters, so a large image never stalls the
// write path.
func (s *Store) encodeImage() []byte {
	entries := s.Export(nil)
	locks := s.ExportLocks(nil)
	s.mu.Lock()
	lockSeq := s.lockSeq
	s.mu.Unlock()
	b := make([]byte, 0, 1024)
	b = ermic.AppendUvarint(b, lockSeq)
	b = ermic.AppendUvarint(b, uint64(len(entries)))
	for k, v := range entries {
		b = ermic.AppendString(b, k)
		b = ermic.AppendUvarint(b, v.Version)
		b = ermic.AppendBool(b, v.Deleted)
		b = ermic.AppendBytes(b, v.Value)
	}
	b = ermic.AppendUvarint(b, uint64(len(locks)))
	for name, info := range locks {
		b = ermic.AppendString(b, name)
		b = ermic.AppendString(b, info.Owner)
		b = appendTime(b, info.Expires)
		b = ermic.AppendUvarint(b, info.Seq)
	}
	return b
}

// installImage loads a snapshot image into an empty store (recovery,
// before the log tail replays on top).
func (s *Store) installImage(img []byte) error {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	lockSeq, img, err := ermic.ConsumeUvarint(img)
	if err != nil {
		return fmt.Errorf("snapshot image: %w", err)
	}
	n, img, err := ermic.ConsumeCount(img)
	if err != nil {
		return fmt.Errorf("snapshot image: %w", err)
	}
	for i := 0; i < n; i++ {
		var key string
		var version uint64
		var deleted bool
		var value []byte
		key, img, err = ermic.ConsumeString(img)
		if err == nil {
			version, img, err = ermic.ConsumeUvarint(img)
		}
		if err == nil {
			deleted, img, err = ermic.ConsumeBool(img)
		}
		if err == nil {
			value, img, err = ermic.ConsumeBytesView(img)
		}
		if err != nil {
			return fmt.Errorf("snapshot image entry: %w", err)
		}
		s.installEntryLocked(key, Versioned{Value: value, Version: version, Deleted: deleted}, now)
	}
	n, img, err = ermic.ConsumeCount(img)
	if err != nil {
		return fmt.Errorf("snapshot image: %w", err)
	}
	for i := 0; i < n; i++ {
		var name, owner string
		var expires time.Time
		var seq uint64
		name, img, err = ermic.ConsumeString(img)
		if err == nil {
			owner, img, err = ermic.ConsumeString(img)
		}
		if err == nil {
			expires, img, err = consumeTime(img)
		}
		if err == nil {
			seq, img, err = ermic.ConsumeUvarint(img)
		}
		if err != nil {
			return fmt.Errorf("snapshot image lock: %w", err)
		}
		s.installLockLocked(name, LockInfo{Owner: owner, Expires: expires, Seq: seq}, now)
	}
	if lockSeq > s.lockSeq {
		s.lockSeq = lockSeq
	}
	return nil
}
