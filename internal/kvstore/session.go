package kvstore

import (
	"errors"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// This file is the server half of the session layer: Chubby-style
// keepalive-backed sessions whose cached reads the store invalidates
// *before* acknowledging any conflicting write. The client half lives in
// sessclient.go; the coherence contract is documented on the package
// (store.go, "Sessions and caching").

// ErrNoSession is returned for session operations against a session the
// server does not know — never opened, expired, or killed. Clients react by
// reopening the session (with an empty cache).
var ErrNoSession = errors.New("kvstore: unknown or expired session")

// ErrWrongOwner is returned by GetLease when the addressed node is not the
// primary of the key's shard under its installed view — only primaries
// grant leases, because only the primary of a key sees (and therefore can
// invalidate before) every write to it. Clients re-route and retry.
var ErrWrongOwner = errors.New("kvstore: not the primary for this key")

// DefaultSessionTTL is the lease a session holds after each keepalive (and
// after open). Clients anchor the lease at keepalive *send* time, so the
// client-side lease always ends at or before the server-side one,
// regardless of clock offset between the two.
const DefaultSessionTTL = 2 * time.Second

// defaultMaxInterest caps how many keys one session may hold under lease.
// Past the cap GetLease still serves reads but stops granting cache
// permission (NoCache), so a client with an oversized cache cannot make the
// server track unbounded interest state.
const defaultMaxInterest = 65536

// Event kinds pushed on session connections (transport.Event.Kind).
const (
	// evInval invalidates one cached key (Topic). The client must drop the
	// entry and acknowledge with SessAck; the conflicting write's reply is
	// withheld until every affected session acks or its lease expires.
	evInval = 1
	// evFlush invalidates the whole cache (view change, lock migration).
	// Acknowledged like evInval.
	evFlush = 2
	// evNotify is a lossy watch notification (Topic = key or lock topic).
	// Never acknowledged, never blocks a write; Seq is always 0.
	evNotify = 3
)

// lockWatchTopic is the notification topic of a named lock. The \x00 prefix
// keeps it out of the data keyspace, so watching lock "x" never aliases
// watching data key "lock/x".
func lockWatchTopic(name string) string { return "\x00lock:" + name }

// Session-protocol wire messages (hot path: every cache miss is a GetLease,
// every invalidation round trips a SessAck).
//
//ermi:codec
type (
	sessOpenReq   struct{}
	sessOpenReply struct {
		ID  uint64
		TTL time.Duration
	}
	sessKeepReq struct {
		ID uint64
		// Processed is the newest event sequence the client has applied to
		// its cache. It doubles as a cumulative acknowledgment: a lost or
		// delayed SessAck frame is repaired by the next keepalive, so a
		// writer never waits longer than a keepalive interval on a client
		// whose ack path (not its event path) is slow.
		Processed uint64
	}
	sessKeepReply struct {
		// EventSeq is the session's last issued invalidation sequence at the
		// time of the keepalive. The client may extend its lease from this
		// reply only once it has processed every event up to EventSeq —
		// otherwise a keepalive racing an unprocessed invalidation could
		// extend the serving window of an entry the server believes revoked.
		EventSeq uint64
		// TTL is the lease duration this keepalive granted — the server's
		// current setting, not the one the session opened with. The client
		// adopts it: the server extends by its *current* TTL, so a client
		// still extending by the open-time value after SetSessionTTL lowered
		// it would hold a window ending after the server's, and every
		// invalidation deadline captured from that server window would pass
		// while the client kept serving.
		TTL time.Duration
	}
	sessCloseReq   struct{ ID uint64 }
	sessCloseReply struct{}
	leaseReq       struct {
		ID  uint64
		Key string
	}
	leaseReply struct {
		Val Versioned
		// Snapshot is the session's invalidation sequence captured when the
		// key's interest was registered — before the value was read. The
		// client installs the entry only if it has seen no invalidation
		// newer than Snapshot for this key: any write applied after this
		// read carries a sequence > Snapshot, and any event <= Snapshot was
		// for a write the read already reflects.
		Snapshot uint64
		// NoCache means the value may be served but not cached: the
		// session's interest table is full.
		NoCache bool
	}
	sessAckReq struct {
		ID uint64
		// Seq acknowledges every outstanding invalidation with sequence <=
		// Seq (cumulative, so a client can coalesce a burst into one ack).
		Seq uint64
	}
	sessAckReply  struct{}
	sessForgetReq struct {
		ID  uint64
		Key string
	}
	sessForgetReply struct{}
	sessWatchReq    struct {
		ID    uint64
		Topic string
	}
	sessWatchReply struct{}
)

// eventPusher is the slice of transport.Pusher the session layer uses —
// an interface so ordering tests can put a recorder on the wire.
type eventPusher interface {
	Send(kind, seq uint64, topic string, payload []byte) error
	Closed() bool
}

// outEvent is one queued server-push event awaiting transmission by its
// session's sender goroutine.
type outEvent struct {
	kind  uint64
	seq   uint64
	topic string
}

// serverSession is one client session. All fields are guarded by the
// owning sessionMgr's mutex except pusher and dead, which are safe to use
// outside it (the pusher is internally synchronized; dead is only closed
// once, under the mutex, via killLocked).
type serverSession struct {
	id      uint64
	pusher  eventPusher
	expires time.Time
	// seq numbers this session's acknowledged events (evInval/evFlush). It
	// increments under the manager mutex, so the sequence a GetLease
	// snapshot observes and the sequence an invalidation issues are totally
	// ordered.
	seq      uint64
	interest map[string]struct{}
	topics   map[string]struct{}
	acks     map[uint64]chan struct{}
	dead     chan struct{}
	// outbox holds queued events in seq-assignment order; sendSig (capacity
	// 1) wakes the session's sender goroutine. Events are appended under
	// the manager mutex and drained by that single goroutine, so they reach
	// the wire in exactly seq order. Pushing from the issuing goroutine
	// after releasing the mutex — the obvious alternative — reorders: two
	// concurrent writes could put their events on the wire newest-first,
	// and because acks are cumulative, the ack for the newer sequence would
	// release the older write's waiter while the client still holds the
	// stale entry that write was supposed to revoke.
	outbox  []outEvent
	sendSig chan struct{}
}

// sessionMgr tracks every live session of one Server: who caches which key,
// who watches which topic, and the write fence. One invalidation may be
// outstanding per key per session — interest is dropped at issue time, so a
// later write to the same key finds no interest and pushes nothing until
// the client re-leases the key.
type sessionMgr struct {
	clock simclock.Clock

	mu          sync.Mutex
	ttl         time.Duration
	maxInterest int
	nextID      uint64
	sessions    map[uint64]*serverSession
	byKey       map[string]map[*serverSession]struct{}
	watches     map[string]map[*serverSession]struct{}
	// fence is the instant before which no write may be acknowledged (see
	// Server.FenceWrites). Zero when no fence is active.
	fence time.Time
}

func newSessionMgr(clock simclock.Clock) *sessionMgr {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &sessionMgr{
		clock:       clock,
		ttl:         DefaultSessionTTL,
		maxInterest: defaultMaxInterest,
		sessions:    make(map[uint64]*serverSession),
		byKey:       make(map[string]map[*serverSession]struct{}),
		watches:     make(map[string]map[*serverSession]struct{}),
	}
}

// setTTL changes the lease granted to future keepalives (test/deployment
// tuning; existing sessions adopt the new duration — shrinking their
// serving window if it shortened — on their next keepalive, whose reply
// carries it).
func (m *sessionMgr) setTTL(d time.Duration) {
	m.mu.Lock()
	m.ttl = d
	m.mu.Unlock()
}

// open creates a session bound to the connection behind p and starts its
// sender goroutine (retired when the session dies).
func (m *sessionMgr) open(p eventPusher) (id uint64, ttl time.Duration) {
	m.mu.Lock()
	m.nextID++
	sess := &serverSession{
		id:       m.nextID,
		pusher:   p,
		expires:  m.clock.Now().Add(m.ttl),
		interest: make(map[string]struct{}),
		topics:   make(map[string]struct{}),
		acks:     make(map[uint64]chan struct{}),
		dead:     make(chan struct{}),
		sendSig:  make(chan struct{}, 1),
	}
	m.sessions[sess.id] = sess
	ttl = m.ttl
	m.mu.Unlock()
	go m.sender(sess)
	return sess.id, ttl
}

// queueEventLocked appends one event to the session's outbox and wakes its
// sender. Callers hold m.mu, so outbox order is exactly the order sequences
// were assigned — the invariant the cumulative-ack protocol stands on.
func (m *sessionMgr) queueEventLocked(sess *serverSession, kind, seq uint64, topic string) {
	sess.outbox = append(sess.outbox, outEvent{kind: kind, seq: seq, topic: topic})
	select {
	case sess.sendSig <- struct{}{}:
	default: // a wake-up is already pending; the sender re-drains
	}
}

// sender is the session's single transmission goroutine: it drains the
// outbox in FIFO order so events hit the wire in seq order, and kills the
// session on the first failed push (the connection is gone; writers
// waiting on its acks are released through dead).
func (m *sessionMgr) sender(sess *serverSession) {
	for {
		select {
		case <-sess.sendSig:
		case <-sess.dead:
			return
		}
		for {
			m.mu.Lock()
			evs := sess.outbox
			sess.outbox = nil
			m.mu.Unlock()
			if len(evs) == 0 {
				break
			}
			for _, ev := range evs {
				if err := sess.pusher.Send(ev.kind, ev.seq, ev.topic, nil); err != nil {
					m.kill(sess)
					return
				}
			}
		}
	}
}

// liveLocked returns the session if it exists and its lease has not
// expired; an expired or connection-dead session is reaped on sight.
func (m *sessionMgr) liveLocked(id uint64) *serverSession {
	sess := m.sessions[id]
	if sess == nil {
		return nil
	}
	if !sess.expires.After(m.clock.Now()) || sess.pusher.Closed() {
		m.killLocked(sess)
		return nil
	}
	return sess
}

// keepalive extends the session's lease and reports its event sequence for
// the client's lease-advance gate, plus the granted TTL so the client's
// window tracks the server's current setting. processed is the client's
// applied-event watermark and acknowledges cumulatively, exactly like ack.
func (m *sessionMgr) keepalive(id, processed uint64) (eventSeq uint64, ttl time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sess := m.liveLocked(id)
	if sess == nil {
		return 0, 0, ErrNoSession
	}
	sess.expires = m.clock.Now().Add(m.ttl)
	for q, ch := range sess.acks {
		if q <= processed {
			close(ch)
			delete(sess.acks, q)
		}
	}
	return sess.seq, m.ttl, nil
}

// close tears the session down: interest and watches dropped, writers
// waiting on its acks released.
func (m *sessionMgr) close(id uint64) {
	m.mu.Lock()
	if sess := m.sessions[id]; sess != nil {
		m.killLocked(sess)
	}
	m.mu.Unlock()
}

// killLocked removes the session and wakes every writer waiting on one of
// its acknowledgments (they select on dead).
func (m *sessionMgr) killLocked(sess *serverSession) {
	if _, live := m.sessions[sess.id]; !live {
		return
	}
	delete(m.sessions, sess.id)
	for k := range sess.interest {
		m.dropIndexLocked(m.byKey, k, sess)
	}
	for t := range sess.topics {
		m.dropIndexLocked(m.watches, t, sess)
	}
	close(sess.dead)
}

func (m *sessionMgr) kill(sess *serverSession) {
	m.mu.Lock()
	m.killLocked(sess)
	m.mu.Unlock()
}

func (m *sessionMgr) dropIndexLocked(idx map[string]map[*serverSession]struct{}, key string, sess *serverSession) {
	if set := idx[key]; set != nil {
		delete(set, sess)
		if len(set) == 0 {
			delete(idx, key)
		}
	}
}

// lease registers the session's interest in key and returns the event-
// sequence snapshot the client's install guard needs. It MUST be called
// before the store read it covers: registration and invalidation issue are
// ordered by the manager mutex, so a write applied after the read is
// guaranteed to find the interest (sequence > snapshot), and any event with
// sequence <= snapshot belongs to a write the read already observed.
func (m *sessionMgr) lease(id uint64, key string) (snapshot uint64, noCache bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sess := m.liveLocked(id)
	if sess == nil {
		return 0, false, ErrNoSession
	}
	if _, have := sess.interest[key]; !have {
		if len(sess.interest) >= m.maxInterest {
			return sess.seq, true, nil
		}
		sess.interest[key] = struct{}{}
		set := m.byKey[key]
		if set == nil {
			set = make(map[*serverSession]struct{})
			m.byKey[key] = set
		}
		set[sess] = struct{}{}
	}
	return sess.seq, false, nil
}

// forget drops the session's interest in key (client-side eviction). The
// client keeps its install guard, so a forget racing an in-flight
// invalidation is harmless on both sides.
func (m *sessionMgr) forget(id uint64, key string) {
	m.mu.Lock()
	if sess := m.sessions[id]; sess != nil {
		delete(sess.interest, key)
		m.dropIndexLocked(m.byKey, key, sess)
	}
	m.mu.Unlock()
}

// ack acknowledges every outstanding invalidation of the session with
// sequence <= upTo.
func (m *sessionMgr) ack(id, upTo uint64) {
	m.mu.Lock()
	if sess := m.sessions[id]; sess != nil {
		for q, ch := range sess.acks {
			if q <= upTo {
				close(ch)
				delete(sess.acks, q)
			}
		}
	}
	m.mu.Unlock()
}

// watch registers (or, with on=false, removes) the session's interest in
// lossy change notifications on topic.
func (m *sessionMgr) watch(id uint64, topic string, on bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sess := m.liveLocked(id)
	if sess == nil {
		return ErrNoSession
	}
	if !on {
		delete(sess.topics, topic)
		m.dropIndexLocked(m.watches, topic, sess)
		return nil
	}
	sess.topics[topic] = struct{}{}
	set := m.watches[topic]
	if set == nil {
		set = make(map[*serverSession]struct{})
		m.watches[topic] = set
	}
	set[sess] = struct{}{}
	return nil
}

// pendingAck is one issued invalidation awaiting its client ack.
type pendingAck struct {
	sess *serverSession
	seq  uint64
	// deadline is the session's lease end captured at issue time. Later
	// keepalives never extend the wait: the client's own lease anchor is at
	// or before the server's, so once deadline passes the client has
	// provably stopped serving the revoked entry.
	deadline time.Time
	ch       chan struct{}
}

// invalidate revokes key from every session caching it and blocks until
// each has acknowledged or provably expired — the write that triggered it
// must not be acknowledged before cached copies are gone. Interest is
// dropped at issue, so at most one invalidation per key per session is ever
// outstanding. Watchers of the key get a (non-blocking) notification.
func (m *sessionMgr) invalidate(key string) {
	m.mu.Lock()
	var pend []pendingAck
	if set := m.byKey[key]; len(set) > 0 {
		now := m.clock.Now()
		for sess := range set {
			delete(sess.interest, key)
			if !sess.expires.After(now) || sess.pusher.Closed() {
				m.killLocked(sess)
				continue
			}
			sess.seq++
			ch := make(chan struct{})
			sess.acks[sess.seq] = ch
			pend = append(pend, pendingAck{sess: sess, seq: sess.seq, deadline: sess.expires, ch: ch})
			m.queueEventLocked(sess, evInval, sess.seq, key)
		}
		delete(m.byKey, key)
	}
	for _, sess := range m.watchersLocked(key) {
		m.queueEventLocked(sess, evNotify, 0, key)
	}
	m.mu.Unlock()
	m.await(pend)
}

// flushAll revokes every cached entry of every session and waits for the
// acks — the coherence hammer membership changes swing: after a view
// change, lock migration, or rebalance, no pre-change cache entry survives.
func (m *sessionMgr) flushAll() {
	m.mu.Lock()
	var pend []pendingAck
	now := m.clock.Now()
	for _, sess := range m.sessions {
		if !sess.expires.After(now) || sess.pusher.Closed() {
			m.killLocked(sess)
			continue
		}
		for k := range sess.interest {
			m.dropIndexLocked(m.byKey, k, sess)
		}
		sess.interest = make(map[string]struct{})
		sess.seq++
		ch := make(chan struct{})
		sess.acks[sess.seq] = ch
		pend = append(pend, pendingAck{sess: sess, seq: sess.seq, deadline: sess.expires, ch: ch})
		m.queueEventLocked(sess, evFlush, sess.seq, "")
	}
	m.mu.Unlock()
	m.await(pend)
}

// await blocks until every pending invalidation is acknowledged, its
// session dies, or its lease deadline passes. Whichever fires, the entry
// under revocation is provably no longer served — past the deadline the
// client either never processed the event (then its own lease, anchored at
// or before ours, has ended) or processed it (the keepalive gate admits no
// other renewal), so the entry is gone from its cache either way.
func (m *sessionMgr) await(pend []pendingAck) {
	for _, p := range pend {
		d := p.deadline.Sub(m.clock.Now())
		if d < 0 {
			d = 0
		}
		select {
		case <-p.ch:
		case <-p.sess.dead:
		case <-m.clock.After(d):
			m.resolveOverdue(p)
		}
	}
}

// resolveOverdue settles an invalidation whose ack missed the lease
// deadline captured at issue. The session is killed ONLY if its lease
// really lapsed: a renewal since issue passes the client's EventSeq gate
// only after this event was applied, so the entry is already dropped and
// merely the ack is slow or lost — killing such a session would silently
// drop its other interests while the client, holding a valid lease, keeps
// serving them with nobody left to invalidate (a coherence hole, not a
// cleanup).
func (m *sessionMgr) resolveOverdue(p pendingAck) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, live := m.sessions[p.sess.id]; !live {
		return
	}
	if p.sess.expires.After(m.clock.Now()) {
		delete(p.sess.acks, p.seq)
		return
	}
	m.killLocked(p.sess)
}

// watchersLocked snapshots the sessions watching topic.
func (m *sessionMgr) watchersLocked(topic string) []*serverSession {
	set := m.watches[topic]
	if len(set) == 0 {
		return nil
	}
	out := make([]*serverSession, 0, len(set))
	for sess := range set {
		out = append(out, sess)
	}
	return out
}

// notify pushes a lossy change notification to every watcher of topic.
func (m *sessionMgr) notify(topic string) {
	m.mu.Lock()
	for _, sess := range m.watchersLocked(topic) {
		m.queueEventLocked(sess, evNotify, 0, topic)
	}
	m.mu.Unlock()
}

// fenceWrites forbids write acknowledgments before until (monotone: an
// earlier fence never shortens a later one).
func (m *sessionMgr) fenceWrites(until time.Time) {
	m.mu.Lock()
	if until.After(m.fence) {
		m.fence = until
	}
	m.mu.Unlock()
}

// barrier delays the calling write handler until any active fence has
// passed. The write is already applied (and replicated) when the barrier
// runs — only its acknowledgment waits, so a reader can observe the new
// value early but no writer can claim success while a dead primary's
// leases might still be serving the old one.
func (m *sessionMgr) barrier() {
	m.mu.Lock()
	until := m.fence
	m.mu.Unlock()
	if d := until.Sub(m.clock.Now()); d > 0 {
		m.clock.Sleep(d)
	}
}

// closeAll kills every session (server shutdown), releasing any writer
// still waiting on an acknowledgment.
func (m *sessionMgr) closeAll() {
	m.mu.Lock()
	for _, sess := range m.sessions {
		m.killLocked(sess)
	}
	m.mu.Unlock()
}

// Test hooks (in-package tests only).

// sessionCount reports the number of live sessions.
func (m *sessionMgr) sessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// interestCount reports how many sessions hold a lease on key.
func (m *sessionMgr) interestCount(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byKey[key])
}
