package kvstore

import (
	"errors"
	"fmt"
	"time"

	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// ServiceName is the transport service name of the key-value store.
const ServiceName = "kv"

// Wire messages. Every op has a request and reply struct; errors travel as
// string codes so clients can re-map them to the exported sentinel errors.
type (
	getReq   struct{ Key string }
	getReply struct{ Val Versioned }
	putReq   struct {
		Key string
		Val []byte
	}
	putReply struct{ Version uint64 }
	delReq   struct{ Key string }
	delReply struct{}
	casReq   struct {
		Key           string
		Val           []byte
		ExpectVersion uint64
	}
	casReply struct {
		Version uint64
		Current Versioned
	}
	addReq struct {
		Key   string
		Delta int64
	}
	addReply  struct{ Value int64 }
	keysReq   struct{ Prefix string }
	keysReply struct{ Keys []string }
	lockReq   struct {
		Name  string
		Owner string
		Lease time.Duration
	}
	lockReply struct{}
	unlockReq struct {
		Name  string
		Owner string
	}
	unlockReply struct{}
	exportReq   struct{ Prefix string }
	exportReply struct{ Entries map[string]Versioned }
	importReq   struct{ Entries map[string]Versioned }
	importReply struct{}
)

// Error codes used on the wire.
const (
	codeNotFound     = "NOT_FOUND"
	codeCASMismatch  = "CAS_MISMATCH"
	codeLockHeld     = "LOCK_HELD"
	codeNotLockOwner = "NOT_LOCK_OWNER"
)

func wireError(err error) error {
	switch {
	case errors.Is(err, ErrNotFound):
		return errors.New(codeNotFound)
	case errors.Is(err, ErrCASMismatch):
		return errors.New(codeCASMismatch)
	case errors.Is(err, ErrLockHeld):
		return errors.New(codeLockHeld)
	case errors.Is(err, ErrNotLockOwner):
		return errors.New(codeNotLockOwner)
	default:
		return err
	}
}

func unwireError(err error) error {
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		return err
	}
	switch remote.Msg {
	case codeNotFound:
		return ErrNotFound
	case codeCASMismatch:
		return ErrCASMismatch
	case codeLockHeld:
		return ErrLockHeld
	case codeNotLockOwner:
		return ErrNotLockOwner
	default:
		return err
	}
}

// Server exposes a Store over the transport protocol.
type Server struct {
	store *Store
	srv   *transport.Server
}

// NewServer starts a store server on addr (":0" for any free port).
func NewServer(addr string, clock simclock.Clock) (*Server, error) {
	s := &Server{store: NewStore(clock)}
	srv, err := transport.Serve(addr, s.handle)
	if err != nil {
		return nil, fmt.Errorf("kvstore server: %w", err)
	}
	s.srv = srv
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Store exposes the underlying engine (used in tests and by migration).
func (s *Server) Store() *Store { return s.store }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(req *transport.Request) ([]byte, error) {
	if req.Service != ServiceName {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	switch req.Method {
	case "Get":
		var r getReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		v, err := s.store.Get(r.Key)
		if err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(getReply{Val: v})
	case "Put":
		var r putReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		ver := s.store.Put(r.Key, r.Val)
		return transport.Encode(putReply{Version: ver})
	case "Delete":
		var r delReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.store.Delete(r.Key)
		return transport.Encode(delReply{})
	case "CAS":
		var r casReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		ver, _, err := s.store.CompareAndSwap(r.Key, r.Val, r.ExpectVersion)
		if err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(casReply{Version: ver})
	case "Add":
		var r addReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		v, err := s.store.AddInt64(r.Key, r.Delta)
		if err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(addReply{Value: v})
	case "Keys":
		var r keysReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		return transport.Encode(keysReply{Keys: s.store.Keys(r.Prefix)})
	case "TryLock":
		var r lockReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		if err := s.store.TryLock(r.Name, r.Owner, r.Lease); err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(lockReply{})
	case "Unlock":
		var r unlockReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		if err := s.store.Unlock(r.Name, r.Owner); err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(unlockReply{})
	case "Export":
		var r exportReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		entries := s.store.Export(func(k string) bool {
			return r.Prefix == "" || len(k) >= len(r.Prefix) && k[:len(r.Prefix)] == r.Prefix
		})
		return transport.Encode(exportReply{Entries: entries})
	case "Import":
		var r importReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.store.Import(r.Entries)
		return transport.Encode(importReply{})
	default:
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
}
