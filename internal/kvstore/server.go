package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// ServiceName is the transport service name of the key-value store.
const ServiceName = "kv"

//go:generate go run elasticrmi/cmd/ermi-gen -in server.go,store.go,session.go -out codec_ermi.go

// Wire messages. Every op has a request and reply struct; errors travel as
// string codes so clients can re-map them to the exported sentinel errors.
//
// The hot data-path messages are //ermi:codec-marked: Get/Put/Delete/CAS/
// Add/Keys and the lock calls travel in the generated binary encoding, with
// values ([]byte) decoding server-side as zero-copy views into the
// transport frame.
//
//ermi:codec
type (
	getReq   struct{ Key string }
	getReply struct{ Val Versioned }
	putReq   struct {
		Key string
		Val []byte
	}
	putReply struct{ Version uint64 }
	delReq   struct{ Key string }
	delReply struct{}
	casReq   struct {
		Key           string
		Val           []byte
		ExpectVersion uint64
	}
	casReply struct {
		Version uint64
		Current Versioned
	}
	addReq struct {
		Key   string
		Delta int64
	}
	addReply  struct{ Value int64 }
	keysReq   struct{ Prefix string }
	keysReply struct{ Keys []string }
	lockReq   struct {
		Name  string
		Owner string
		Lease time.Duration
	}
	lockReply struct{}
	unlockReq struct {
		Name  string
		Owner string
	}
	unlockReply struct{}
)

// Bulk migration/replication messages stay on the gob fallback: they carry
// LockInfo (absolute time.Time expiries), which the binary codec does not
// encode, and they are off the per-operation hot path.
type (
	exportReq   struct{ Prefix string }
	exportReply struct{ Entries map[string]Versioned }
	importReq   struct{ Entries map[string]Versioned }
	importReply struct{}
	// exportLocksReq/importLocksReq migrate the lock table alongside the
	// data; replReq carries primary→backup write deltas and rebalance
	// cleanup directives.
	exportLocksReq   struct{ Prefix string }
	exportLocksReply struct{ Locks map[string]LockInfo }
	importLocksReq   struct{ Locks map[string]LockInfo }
	importLocksReply struct{}
	replReq          struct {
		Entries map[string]Versioned // write deltas: live values and deletion tombstones
		Locks   map[string]LockInfo
		// Dels/LockDrops hard-remove state (history included) from a node
		// leaving a shard's replica set — rebalance cleanup only, never a
		// client-visible delete (those travel as tombstoned Entries).
		Dels      []string
		LockDrops []string
	}
	replReply struct{}
)

// lockRouteKey is the routing key of a named lock: locks shard (and
// replicate) over the same ring as data, under a reserved prefix.
func lockRouteKey(name string) string { return "lock/" + name }

// Error codes used on the wire.
const (
	codeNotFound     = "NOT_FOUND"
	codeCASMismatch  = "CAS_MISMATCH"
	codeLockHeld     = "LOCK_HELD"
	codeNotLockOwner = "NOT_LOCK_OWNER"
	codeNoSession    = "NO_SESSION"
	codeWrongOwner   = "WRONG_OWNER"
)

func wireError(err error) error {
	switch {
	case errors.Is(err, ErrNotFound):
		return errors.New(codeNotFound)
	case errors.Is(err, ErrCASMismatch):
		return errors.New(codeCASMismatch)
	case errors.Is(err, ErrLockHeld):
		return errors.New(codeLockHeld)
	case errors.Is(err, ErrNotLockOwner):
		return errors.New(codeNotLockOwner)
	case errors.Is(err, ErrNoSession):
		return errors.New(codeNoSession)
	case errors.Is(err, ErrWrongOwner):
		return errors.New(codeWrongOwner)
	default:
		return err
	}
}

func unwireError(err error) error {
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		return err
	}
	switch remote.Msg {
	case codeNotFound:
		return ErrNotFound
	case codeCASMismatch:
		return ErrCASMismatch
	case codeLockHeld:
		return ErrLockHeld
	case codeNotLockOwner:
		return ErrNotLockOwner
	case codeNoSession:
		return ErrNoSession
	case codeWrongOwner:
		return ErrWrongOwner
	default:
		return err
	}
}

// replStripes is the number of per-key ordering stripes. A stripe mutex is
// held across local-apply + backup-forward of each write, so replication
// deltas for one key reach a backup in apply order (two stripes never
// conflict semantically — a collision just serializes two unrelated keys).
const replStripes = 64

// replicateTimeout bounds one primary→backup forward. It is deliberately
// much shorter than the client call timeout: a hung backup costs writers
// one bounded stall before it is marked suspect, not a stall per write.
const replicateTimeout = 2 * time.Second

// Server exposes a Store over the transport protocol. When a cluster view
// is installed (SetView) the server is replication-aware: it is the
// primary for the keys whose replica set it heads and synchronously
// forwards every local write's resulting state to the key's backups
// before acknowledging.
type Server struct {
	store    *Store
	srv      *transport.Server
	sessions *sessionMgr

	viewMu   sync.Mutex
	rf       int
	ring     *route.Ring
	members  []route.Member
	links    map[string]*Client // replication clients by member addr
	suspects map[string]bool    // backups that failed a forward; skipped until the next view

	forwards    atomic.Uint64 // successful backup forwards
	forwardErrs atomic.Uint64 // forwards lost to suspect/failed backups

	// onReplFailure, when set, is invoked (asynchronously, once per
	// suspicion transition) with the address of a backup that failed a
	// forward. The cluster router uses it to close the replication loop:
	// probe the accused node, then either fail it over (dead) or reinstall
	// the view and re-sync the writes it missed (transient) — without it a
	// suspect backup would silently degrade R until the next membership
	// change.
	onReplFailure func(addr string)

	stripes [replStripes]sync.Mutex
}

// OnReplFailure installs the replication-failure callback. Call before the
// server participates in a replicated view.
func (s *Server) OnReplFailure(fn func(addr string)) {
	s.viewMu.Lock()
	s.onReplFailure = fn
	s.viewMu.Unlock()
}

// NewServer starts an in-memory store server on addr (":0" for any free
// port).
func NewServer(addr string, clock simclock.Clock) (*Server, error) {
	return NewServerDur(addr, clock, DurOptions{})
}

// NewServerDur starts a store server whose engine is durable under
// opts.Dir (recovering existing state there first); with opts.Dir == ""
// it is NewServer.
func NewServerDur(addr string, clock simclock.Clock, opts DurOptions) (*Server, error) {
	store, err := NewStoreDur(clock, opts)
	if err != nil {
		return nil, fmt.Errorf("kvstore server: %w", err)
	}
	s := &Server{store: store, sessions: newSessionMgr(clock)}
	srv, err := transport.ServeOpts(addr, s.handle, transport.ServerOptions{Express: sessionControlExpress})
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("kvstore server: %w", err)
	}
	s.srv = srv
	return s, nil
}

// sessionControlExpress puts the session control plane (keepalives,
// invalidation acks, interest drops, teardown) on the transport's express
// lane, outside the bounded worker pool. Write handlers park IN that pool
// waiting for exactly these calls: admitted through the same pool, a burst
// of writes blocked in invalidate could occupy every worker and shed the
// acks that would release them — each write would then degrade to a full
// lease-deadline wait, and keepalives shed past their retry budget would
// kill healthy sessions. All four handlers are sub-microsecond map updates
// that never block, as the lane requires.
func sessionControlExpress(service, method string) bool {
	if service != ServiceName {
		return false
	}
	switch method {
	case "SessKeep", "SessAck", "SessForget", "SessClose":
		return true
	}
	return false
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Store exposes the underlying engine (used in tests and by migration).
func (s *Server) Store() *Store { return s.store }

// Close cleanly shuts the server down: stops the transport, releases the
// replication links, and flushes the store's durability layer.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.sessions.closeAll()
	s.viewMu.Lock()
	links := s.links
	s.links = nil
	s.ring = nil
	s.viewMu.Unlock()
	for _, cli := range links {
		cli.Close()
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash kills the server as a power cut would: the transport dies first,
// then the store's log is abandoned with buffered records unflushed. The
// ordering matters — once the transport is down no new ack can escape, so
// every reply a client DID receive had already passed its fsync point and
// survives recovery.
func (s *Server) Crash() error {
	err := s.srv.Close()
	s.sessions.closeAll()
	s.viewMu.Lock()
	links := s.links
	s.links = nil
	s.ring = nil
	s.viewMu.Unlock()
	for _, cli := range links {
		cli.Close()
	}
	if cerr := s.store.Crash(); err == nil {
		err = cerr
	}
	return err
}

// SetView installs the cluster's routing view on this node: the member
// table, the replication factor, and dialed links to the peers this node
// may need to forward to. The cluster router calls it on every membership
// change; installing a view clears backup suspicions (a repaired view is
// the signal a formerly failed peer is gone or healthy again). A server
// without a view (or with rf <= 1) replicates nothing.
//
// Installing a view also flushes every client session cache and waits for
// the acknowledgments: ownership may have moved (failover, lock migration,
// rebalance), so no cache entry granted under the old view may survive into
// the new one. The flush is bounded by the session lease — an unresponsive
// caching client delays a membership change by at most one TTL before its
// session is killed.
func (s *Server) SetView(t route.Table, rf int) {
	s.installView(t, rf)
	s.sessions.flushAll()
}

func (s *Server) installView(t route.Table, rf int) {
	// The ring is built for any multi-member view — even unreplicated ones,
	// where forward() ignores it — because isPrimary needs it: a lease
	// granted by a non-owner (stale client routing) would never be
	// invalidated by the key's writes.
	var ring *route.Ring
	if rf > 1 || len(t.Members) > 1 {
		ring = route.BuildRing(t)
	}
	s.viewMu.Lock()
	if s.links == nil {
		s.links = make(map[string]*Client)
	}
	s.rf = rf
	s.ring = ring
	s.members = t.Members
	s.suspects = make(map[string]bool)
	// Drop links to departed members; collect the peers that still need a
	// link. The dials themselves happen after the unlock: forward() takes
	// viewMu to pick its targets on every replicated write, so one
	// unreachable new member dialed under the lock would stall every write
	// on the node for a full dial timeout.
	current := make(map[string]bool, len(t.Members))
	for _, m := range t.Members {
		current[m.Addr] = true
	}
	var stale []*Client
	for addr, cli := range s.links {
		if !current[addr] {
			stale = append(stale, cli)
			delete(s.links, addr)
		}
	}
	var missing []string
	if rf > 1 {
		self := s.Addr()
		for _, m := range t.Members {
			if m.Addr != self && s.links[m.Addr] == nil {
				missing = append(missing, m.Addr)
			}
		}
	}
	s.viewMu.Unlock()

	for _, cli := range stale {
		cli.Close()
	}
	if len(missing) == 0 {
		return
	}
	dialed := make(map[string]*Client, len(missing))
	var failed []string
	for _, addr := range missing {
		if cli, err := NewClient(addr); err == nil {
			dialed[addr] = cli
		} else {
			failed = append(failed, addr)
		}
	}
	// Re-acquire to install the links. A concurrent installView (or Crash,
	// which nils the link map) may have superseded this view while dialing,
	// so every link is re-validated against the state now present.
	// Superseded dials are only collected here and closed after the unlock:
	// Close waits for the connection's reader to drain, and forward() takes
	// viewMu on every replicated write.
	s.viewMu.Lock()
	member := make(map[string]bool, len(s.members))
	for _, m := range s.members {
		member[m.Addr] = true
	}
	var discard []*Client
	for addr, cli := range dialed {
		if s.links != nil && s.rf > 1 && member[addr] && s.links[addr] == nil {
			s.links[addr] = cli
		} else {
			discard = append(discard, cli)
		}
	}
	for _, addr := range failed {
		if member[addr] {
			s.suspects[addr] = true
		}
	}
	s.viewMu.Unlock()
	for _, cli := range discard {
		cli.Close()
	}
}

// ReplStats reports cumulative backup forwards and forward failures.
func (s *Server) ReplStats() (forwards, failures uint64) {
	return s.forwards.Load(), s.forwardErrs.Load()
}

// SetSessionTTL changes the lease granted to session keepalives (existing
// sessions converge on their next keepalive). Deployment/test tuning; the
// default is DefaultSessionTTL.
func (s *Server) SetSessionTTL(d time.Duration) { s.sessions.setTTL(d) }

// FenceWrites forbids this node from acknowledging any write before until.
// The cluster router fences the survivors of a primary crash for one
// session TTL: a backup promoted over a dead primary must not confirm a
// conflicting write while the dead node's lease grants — which it cannot
// invalidate — may still be serving cached reads. Writes are applied and
// replicated immediately; only their acknowledgment waits.
func (s *Server) FenceWrites(until time.Time) { s.sessions.fenceWrites(until) }

// isPrimary reports whether this node heads the replica set of routeKey
// under its installed view. Servers without a view (single node, or rf <=
// 1 where no ring is installed) own everything they hold.
func (s *Server) isPrimary(routeKey string) bool {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	if s.ring == nil {
		return true
	}
	idx := s.ring.Owner(routeKey)
	return idx >= 0 && idx < len(s.members) && s.members[idx].Addr == s.Addr()
}

// stripeFor locks the ordering stripe of routeKey and returns its unlock.
func (s *Server) stripeFor(routeKey string) func() {
	h := fnv.New32a()
	h.Write([]byte(routeKey))
	m := &s.stripes[h.Sum32()%replStripes]
	m.Lock()
	return m.Unlock
}

// forward synchronously replicates one write's resulting state to the
// backups of routeKey. It is called with routeKey's stripe held, so a
// backup observes this key's deltas in apply order. A backup that fails a
// forward is marked suspect and skipped until the next view install — the
// write is still acknowledged (availability over strict R; the router's
// next repair restores the replica).
func (s *Server) forward(routeKey string, entries map[string]Versioned, locks map[string]LockInfo) {
	s.viewMu.Lock()
	ring, rf := s.ring, s.rf
	if ring == nil || rf <= 1 {
		s.viewMu.Unlock()
		return
	}
	self := s.Addr()
	var targets []*Client
	var addrs []string
	for _, idx := range ring.Owners(routeKey, rf) {
		addr := s.members[idx].Addr
		if addr == self || s.suspects[addr] {
			continue
		}
		if cli := s.links[addr]; cli != nil {
			targets = append(targets, cli)
			addrs = append(addrs, addr)
		}
	}
	s.viewMu.Unlock()
	for i, cli := range targets {
		err := cli.replicate(replReq{Entries: entries, Locks: locks})
		if err != nil {
			s.forwardErrs.Add(1)
			s.viewMu.Lock()
			newlySuspect := s.suspects != nil && !s.suspects[addrs[i]]
			if s.suspects != nil {
				s.suspects[addrs[i]] = true
			}
			hook := s.onReplFailure
			s.viewMu.Unlock()
			if newlySuspect && hook != nil {
				// Asynchronous: the stripe is held and the repair needs the
				// cluster's membership gate.
				go hook(addrs[i])
			}
			continue
		}
		s.forwards.Add(1)
	}
}

func (s *Server) handle(req *transport.Request) ([]byte, error) {
	if req.Service != ServiceName {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	// Every successful reply below is transport.Encode output the handler
	// hands over outright: the server returns it to the payload arena once
	// the response frame is written. (Error returns carry a nil payload, for
	// which the release is a no-op.)
	req.ReleaseReply = true
	switch req.Method {
	case "Get":
		var r getReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		v, err := s.store.Get(r.Key)
		if err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(&getReply{Val: v})
	case "Put":
		var r putReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(r.Key)
		ver := s.store.Put(r.Key, r.Val)
		//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
		s.forward(r.Key, map[string]Versioned{r.Key: {Value: r.Val, Version: ver}}, nil)
		unlock()
		// Coherence: revoke cached copies (and wait for the acks), then
		// respect any write fence, before the ack below can escape.
		s.sessions.invalidate(r.Key)
		s.sessions.barrier()
		return transport.Encode(&putReply{Version: ver})
	case "Delete":
		var r delReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(r.Key)
		if tomb, ok := s.store.DeleteV(r.Key); ok {
			//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
			s.forward(r.Key, map[string]Versioned{r.Key: tomb}, nil)
		}
		unlock()
		s.sessions.invalidate(r.Key)
		s.sessions.barrier()
		return transport.Encode(&delReply{})
	case "CAS":
		var r casReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(r.Key)
		ver, _, err := s.store.CompareAndSwap(r.Key, r.Val, r.ExpectVersion)
		if err == nil {
			//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
			s.forward(r.Key, map[string]Versioned{r.Key: {Value: r.Val, Version: ver}}, nil)
		}
		unlock()
		if err != nil {
			return nil, wireError(err)
		}
		s.sessions.invalidate(r.Key)
		s.sessions.barrier()
		return transport.Encode(&casReply{Version: ver})
	case "Add":
		var r addReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(r.Key)
		v, err := s.store.AddInt64(r.Key, r.Delta)
		if err == nil {
			if cur, gerr := s.store.Get(r.Key); gerr == nil {
				//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
				s.forward(r.Key, map[string]Versioned{r.Key: cur}, nil)
			}
		}
		unlock()
		if err != nil {
			return nil, wireError(err)
		}
		s.sessions.invalidate(r.Key)
		s.sessions.barrier()
		return transport.Encode(&addReply{Value: v})
	case "Keys":
		var r keysReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		return transport.Encode(&keysReply{Keys: s.store.Keys(r.Prefix)})
	case "TryLock":
		var r lockReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(lockRouteKey(r.Name))
		err := s.store.TryLock(r.Name, r.Owner, r.Lease)
		if err == nil {
			if snap, ok := s.store.LockSnapshot(r.Name); ok {
				//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
				s.forward(lockRouteKey(r.Name), nil, map[string]LockInfo{r.Name: snap})
			}
		}
		unlock()
		if err != nil {
			return nil, wireError(err)
		}
		s.sessions.notify(lockWatchTopic(r.Name))
		s.sessions.barrier()
		return transport.Encode(&lockReply{})
	case "Unlock":
		var r unlockReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		unlock := s.stripeFor(lockRouteKey(r.Name))
		err := s.store.Unlock(r.Name, r.Owner)
		if err == nil {
			if snap, ok := s.store.LockSnapshot(r.Name); ok {
				//ermi:ignore budgetprop replication deliberately runs under its own replicateTimeout: the write is already applied locally, and backup health must not depend on the caller's remaining budget
				s.forward(lockRouteKey(r.Name), nil, map[string]LockInfo{r.Name: snap})
			}
		}
		unlock()
		if err != nil {
			return nil, wireError(err)
		}
		s.sessions.notify(lockWatchTopic(r.Name))
		s.sessions.barrier()
		return transport.Encode(&unlockReply{})
	case "SessOpen":
		var r sessOpenReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		p := req.Pusher()
		if p == nil {
			return nil, errors.New("sessions require a pushable connection")
		}
		id, ttl := s.sessions.open(p)
		return transport.Encode(&sessOpenReply{ID: id, TTL: ttl})
	case "SessKeep":
		var r sessKeepReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		seq, ttl, err := s.sessions.keepalive(r.ID, r.Processed)
		if err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(&sessKeepReply{EventSeq: seq, TTL: ttl})
	case "SessClose":
		var r sessCloseReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.sessions.close(r.ID)
		return transport.Encode(&sessCloseReply{})
	case "GetLease":
		var r leaseReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		if !s.isPrimary(r.Key) {
			return nil, wireError(ErrWrongOwner)
		}
		// Interest registration (and its sequence snapshot) precedes the
		// read: a write applied after the read is then guaranteed to find
		// the interest and carry a sequence above the snapshot, so the
		// client's install guard can tell "already reflected in this value"
		// from "revokes this value".
		snap, noCache, err := s.sessions.lease(r.ID, r.Key)
		if err != nil {
			return nil, wireError(err)
		}
		v, err := s.store.Get(r.Key)
		if err != nil {
			if !noCache {
				s.sessions.forget(r.ID, r.Key)
			}
			return nil, wireError(err)
		}
		return transport.Encode(&leaseReply{Val: v, Snapshot: snap, NoCache: noCache})
	case "SessAck":
		var r sessAckReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.sessions.ack(r.ID, r.Seq)
		return transport.Encode(&sessAckReply{})
	case "SessForget":
		var r sessForgetReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.sessions.forget(r.ID, r.Key)
		return transport.Encode(&sessForgetReply{})
	case "SessWatch", "SessUnwatch":
		var r sessWatchReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		if err := s.sessions.watch(r.ID, r.Topic, req.Method == "SessWatch"); err != nil {
			return nil, wireError(err)
		}
		return transport.Encode(&sessWatchReply{})
	case "Export":
		var r exportReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		entries := s.store.Export(func(k string) bool {
			return r.Prefix == "" || len(k) >= len(r.Prefix) && k[:len(r.Prefix)] == r.Prefix
		})
		return transport.Encode(&exportReply{Entries: entries})
	case "Import":
		// Bulk install during migration/repair. Applied directly, never
		// re-forwarded: membership changes run under the cluster's write
		// gate and the router writes every replica itself.
		var r importReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.store.Import(r.Entries)
		return transport.Encode(&importReply{})
	case "ExportLocks":
		var r exportLocksReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		locks := s.store.ExportLocks(func(name string) bool {
			return r.Prefix == "" || len(name) >= len(r.Prefix) && name[:len(r.Prefix)] == r.Prefix
		})
		return transport.Encode(&exportLocksReply{Locks: locks})
	case "ImportLocks":
		var r importLocksReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.store.ImportLocks(r.Locks)
		return transport.Encode(&importLocksReply{})
	case "Replicate":
		// Primary→backup delta. Applied directly, never re-forwarded.
		var r replReq
		if err := transport.Decode(req.Payload, &r); err != nil {
			return nil, err
		}
		s.store.Import(r.Entries)
		s.store.Drop(r.Dels)
		s.store.ImportLocks(r.Locks)
		s.store.DropLocks(r.LockDrops)
		return transport.Encode(&replReply{})
	default:
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
}
