package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/simclock"
)

func mustStoreDur(t *testing.T, clock simclock.Clock, opts DurOptions) *Store {
	t.Helper()
	s, err := NewStoreDur(clock, opts)
	if err != nil {
		t.Fatalf("NewStoreDur: %v", err)
	}
	return s
}

func TestDurRecoveryPreservesData(t *testing.T) {
	dir := t.TempDir()
	s := mustStoreDur(t, nil, DurOptions{Dir: dir})
	s.Put("a", []byte("one"))
	s.Put("a", []byte("two")) // version 2
	s.Put("b", []byte("x"))
	s.Delete("b")
	if _, _, err := s.CompareAndSwap("c", []byte("cas"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddInt64("n", 41); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddInt64("n", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustStoreDur(t, nil, DurOptions{Dir: dir})
	defer r.Close()
	got, err := r.Get("a")
	if err != nil || string(got.Value) != "two" || got.Version != 2 {
		t.Fatalf(`recovered Get("a") = %+v, %v; want value "two" version 2`, got, err)
	}
	if _, err := r.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	if got, _ := r.Get("c"); string(got.Value) != "cas" {
		t.Fatalf(`recovered Get("c") = %+v`, got)
	}
	if v, _ := r.AddInt64("n", 0); v != 42 {
		t.Fatalf("recovered counter = %d, want 42", v)
	}
	// The deletion tombstone's version must survive too: a re-create
	// continues above it.
	if v, _, err := r.CompareAndSwap("b", []byte("re"), 0); err != nil || v != 3 {
		t.Fatalf("re-create over recovered tombstone: v=%d err=%v, want 3", v, err)
	}
}

func TestDurRecoveryPreservesLocks(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	clock := simclock.NewSim(start)
	dir := t.TempDir()
	s := mustStoreDur(t, clock, DurOptions{Dir: dir})
	if err := s.TryLock("held", "alice", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.TryLock("released", "bob", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlock("released", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	clock.Advance(5 * time.Second)
	r := mustStoreDur(t, clock, DurOptions{Dir: dir})
	defer r.Close()
	if owner, held := r.LockOwner("held"); !held || owner != "alice" {
		t.Fatalf("recovered lock owner = %q/%v, want alice/held", owner, held)
	}
	// Exact expiry preserved: 25s of lease remain, an intruder fails now
	// and succeeds after the original expiry passes.
	if err := r.TryLock("held", "mallory", time.Second); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("intruder on recovered lease: %v, want ErrLockHeld", err)
	}
	info, ok := r.LockSnapshot("held")
	if !ok || !info.Expires.Equal(start.Add(30*time.Second)) {
		t.Fatalf("recovered expiry = %v, want %v", info.Expires, start.Add(30*time.Second))
	}
	// A released lock must not come back held.
	if _, held := r.LockOwner("released"); held {
		t.Fatal("released lock resurrected as held")
	}
	if err := r.TryLock("released", "carol", time.Second); err != nil {
		t.Fatalf("acquiring released lock after recovery: %v", err)
	}
}

func TestDurCrashKeepsAckedDropsBuffered(t *testing.T) {
	dir := t.TempDir()
	s := mustStoreDur(t, nil, DurOptions{Dir: dir, GroupCommit: true})
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%03d", i), []byte("v"))
	}
	// Every Put above returned, i.e. was acked: all must survive a crash.
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := mustStoreDur(t, nil, DurOptions{Dir: dir})
	defer r.Close()
	for i := 0; i < 100; i++ {
		if _, err := r.Get(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatalf("acked write k%03d lost after crash: %v", i, err)
		}
	}
}

func TestDurSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustStoreDur(t, nil, DurOptions{Dir: dir, SnapshotEvery: 64})
	for i := 0; i < 500; i++ {
		s.Put(fmt.Sprintf("k%03d", i%50), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustStoreDur(t, nil, DurOptions{Dir: dir})
	defer r.Close()
	if n := r.Len(); n != 50 {
		t.Fatalf("recovered %d keys, want 50", n)
	}
	// The newest value of each key won.
	got, err := r.Get("k049")
	if err != nil || string(got.Value) != "v499" {
		t.Fatalf("recovered k049 = %+v, %v; want v499", got, err)
	}
}

func TestDurConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := mustStoreDur(t, nil, DurOptions{Dir: dir, GroupCommit: true})
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Put(fmt.Sprintf("w%d-%03d", w, i), []byte("v"))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := mustStoreDur(t, nil, DurOptions{Dir: dir})
	defer r.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			if _, err := r.Get(fmt.Sprintf("w%d-%03d", w, i)); err != nil {
				t.Fatalf("lost acked write w%d-%03d: %v", w, i, err)
			}
		}
	}
}

// TestTombstoneGCBoundsSteadyState is the regression test for the
// unbounded-growth bug: before tombstone GC, a sustained put/delete loop
// left one tombstone per key forever.
func TestTombstoneGCBoundsSteadyState(t *testing.T) {
	clock := simclock.NewSim(time.Unix(1_000_000, 0))
	s := NewStore(clock)
	s.SetTombstoneTTL(10 * time.Second)
	const cycles = 20000
	for i := 0; i < cycles; i++ {
		key := fmt.Sprintf("churn-%05d", i)
		s.Put(key, []byte("v"))
		s.Delete(key)
		clock.Advance(10 * time.Millisecond)
	}
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	// 10s TTL at one tombstone per 10ms is ~1000 live tombstones; the
	// inline sweep runs every gcEvery mutations, so allow that much slack.
	if limit := 1000 + 2*gcEvery; n > limit {
		t.Fatalf("steady-state entry count %d exceeds %d: tombstones not GCed", n, limit)
	}
}

// TestLockTombstoneGC is the lock-table counterpart: release tombstones
// and long-expired leases must be pruned past the horizon.
func TestLockTombstoneGC(t *testing.T) {
	clock := simclock.NewSim(time.Unix(1_000_000, 0))
	s := NewStore(clock)
	s.SetTombstoneTTL(10 * time.Second)
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("lock-%05d", i)
		if err := s.TryLock(name, "w", time.Second); err != nil {
			t.Fatal(err)
		}
		if err := s.Unlock(name, "w"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Millisecond)
	}
	s.CompactTombstones()
	s.mu.Lock()
	n := len(s.locks)
	s.mu.Unlock()
	if limit := 1000 + gcEvery; n > limit {
		t.Fatalf("lock table holds %d entries at steady state, want <= %d", n, limit)
	}
}

// TestImportLocksSkipsExpiredLeases: an already-expired lease must be
// installed as a release tombstone (sequence preserved), not as a held
// lease occupying the table.
func TestImportLocksSkipsExpiredLeases(t *testing.T) {
	clock := simclock.NewSim(time.Unix(1_000_000, 0))
	dst := NewStore(clock)
	dst.ImportLocks(map[string]LockInfo{
		"stale": {Owner: "ghost", Expires: clock.Now().Add(-time.Minute), Seq: 7},
		"live":  {Owner: "alice", Expires: clock.Now().Add(time.Minute), Seq: 9},
	})
	if owner, held := dst.LockOwner("stale"); held {
		t.Fatalf("expired lease imported as held by %q", owner)
	}
	dst.mu.Lock()
	st := dst.locks["stale"]
	dst.mu.Unlock()
	if st.owner != "" || st.seq != 7 {
		t.Fatalf("expired lease state = %+v, want release tombstone with seq 7", st)
	}
	// The tombstone's sequence still gates: a staler replicated update
	// must not win.
	dst.ImportLocks(map[string]LockInfo{
		"stale": {Owner: "older", Expires: clock.Now().Add(time.Hour), Seq: 5},
	})
	if _, held := dst.LockOwner("stale"); held {
		t.Fatal("staler update won over the expired lease's tombstone")
	}
	if owner, held := dst.LockOwner("live"); !held || owner != "alice" {
		t.Fatalf("live lease import = %q/%v, want alice/held", owner, held)
	}
}

// TestExportDoesNotStallWrites: a large export must not hold the store
// mutex end to end — a concurrent Put admitted mid-export completes even
// though the exporter is paused between chunks.
func TestExportDoesNotStallWrites(t *testing.T) {
	s := NewStore(nil)
	for i := 0; i < 4*exportChunkSize; i++ {
		s.Put(fmt.Sprintf("bulk-%05d", i), []byte("v"))
	}
	pauses := 0
	done := make(chan struct{})
	exportPause = func() {
		if pauses == 0 {
			go func() {
				s.Put("mid-export", []byte("v"))
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Error("Put stalled behind a running export")
			}
		}
		pauses++
	}
	defer func() { exportPause = nil }()
	out := s.Export(nil)
	if pauses == 0 {
		t.Fatal("export took no chunk pauses; chunking regressed")
	}
	if len(out) < 4*exportChunkSize {
		t.Fatalf("export returned %d entries, want >= %d", len(out), 4*exportChunkSize)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("concurrent Put never completed")
	}
}

// TestExportLocksDoesNotStallWrites is the lock-table counterpart.
func TestExportLocksDoesNotStallWrites(t *testing.T) {
	s := NewStore(nil)
	for i := 0; i < 2*exportChunkSize; i++ {
		if err := s.TryLock(fmt.Sprintf("bulk-%05d", i), "w", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	fired := false
	exportPause = func() {
		if !fired {
			fired = true
			go func() {
				if err := s.TryLock("mid-export", "w", time.Minute); err != nil {
					t.Errorf("TryLock mid-export: %v", err)
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Error("TryLock stalled behind a running lock export")
			}
		}
	}
	defer func() { exportPause = nil }()
	out := s.ExportLocks(nil)
	if !fired {
		t.Fatal("lock export took no chunk pauses; chunking regressed")
	}
	if len(out) < 2*exportChunkSize {
		t.Fatalf("lock export returned %d entries, want >= %d", len(out), 2*exportChunkSize)
	}
}

// TestDurServerCrashRestart drives the durability path through the
// network server: crash the whole server process-style, restart on the
// same directory, and the recovered server serves the old state.
func TestDurServerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServerDur("127.0.0.1:0", nil, DurOptions{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cli.TryLock("l", "owner", time.Minute); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := srv.Crash(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewServerDur("127.0.0.1:0", nil, DurOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2, err := NewClient(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	v, err := cli2.Get("k")
	if err != nil || string(v.Value) != "v" {
		t.Fatalf("recovered Get = %+v, %v", v, err)
	}
	if err := cli2.TryLock("l", "intruder", time.Minute); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("recovered lock not held: %v", err)
	}
}

// TestSnapshotStatsSurfacesBackgroundFailure: a background snapshot that
// fails must not vanish silently — SnapshotStats reports the error and a
// cumulative count, and a later succeeding snapshot clears the error while
// the count sticks. (Regression: the background goroutine used to discard
// snapshotNow's error entirely.)
func TestSnapshotStatsSurfacesBackgroundFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s := mustStoreDur(t, nil, DurOptions{Dir: dir, SnapshotEvery: 2})
	defer s.Close()

	// Yank the directory out from under the snapshot writer: the WAL's
	// open segment descriptors keep commits working, but SaveSnapshot's
	// temp-file creation fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2")) // crosses SnapshotEvery: background snapshot fires
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fails, last := s.SnapshotStats(); fails >= 1 && last != nil {
			break
		}
		if time.Now().After(deadline) {
			fails, last := s.SnapshotStats()
			t.Fatalf("snapshot failure never surfaced: fails=%d last=%v", fails, last)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Restore the directory; the next triggered snapshot succeeds and
	// clears the error, while the failure count remains as history.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for {
		s.Put("c", []byte("3"))
		s.Put("d", []byte("4"))
		if fails, last := s.SnapshotStats(); last == nil && fails >= 1 {
			break
		}
		if time.Now().After(deadline) {
			fails, last := s.SnapshotStats()
			t.Fatalf("succeeding snapshot never cleared the error: fails=%d last=%v", fails, last)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Drain any snapshot still in flight: a late SaveSnapshot would
	// recreate files under the TempDir while the harness removes it.
	for s.dur.snapping.Load() {
		time.Sleep(time.Millisecond)
	}
}
