package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// ErrUnavailable is returned when every replica of a key's shard is
// unreachable (or the cluster has no nodes left to promote). Callers that
// can wait — core.State field access, lock acquisition — retry on it.
var ErrUnavailable = errors.New("kvstore: shard unavailable")

// Cluster is a sharded, replicated deployment of store nodes with a
// client-side router. Keys (and lock names) are partitioned across the
// node set by the same consistent-hash ring the routing layer uses
// (internal/route); with replication factor R every key lives on the R
// successor nodes of its hash (route.Ring.Owners) — the first is the
// primary all operations are routed to, the rest are backups the primary
// synchronously forwards to before acknowledging.
//
// Membership is elastic in both directions. AddNode brings a node up and
// migrates the shards (data and unexpired lock leases) whose ownership
// moves; RemoveNode is the planned departure — the victim's shards are
// handed off before it leaves, so nothing is lost even at R=1. A crashed
// node is detected by the router on the first failed operation: with R>1
// the dead node is dropped from the ring, the next replica of each
// affected key is promoted, surviving state is re-replicated to restore R,
// and the failed operation retries transparently. Node identity (UID) is a
// monotonic per-cluster counter, never a slice index, so ring identity
// cannot alias across membership changes.
//
// Membership changes hold the cluster's write gate: in-flight operations
// finish first, operations issued during a change wait it out (the bounded
// failover stall), and every operation otherwise observes exactly one
// owner per key.
type Cluster struct {
	clock simclock.Clock
	rf    int        // desired replication factor (effective: min(rf, nodes))
	dur   DurOptions // base durability config; Dir "" = in-memory nodes

	mu      sync.RWMutex // ops hold R; membership changes hold W
	nodes   []*clusterNode
	nextUID int64
	nextDir int // next node directory index (durable clusters)
	epoch   uint64
	table   route.Table
	ring    *route.Ring
	closed  bool

	repairMu  sync.Mutex
	repairing map[string]bool // replication repairs in flight, by accused addr

	// Session-layer state (see sessclient.go). fenceUntil is the write
	// fence installed on node death: until it passes, no node may ack a
	// write, because a session client of the dead primary may still be
	// serving cached reads under a lease that node granted and can no
	// longer revoke. It applies to nodes added later too — a node booted
	// during the window inherits the fence.
	sessMu      sync.Mutex
	sessClients map[*ClusterSession]struct{}
	sessTTL     time.Duration
	fenceUntil  time.Time
}

type clusterNode struct {
	srv  *Server
	cli  *Client
	addr string
	uid  int64
	dir  string // durability directory ("" for in-memory nodes)
}

// NewCluster starts n single-copy (R=1) store nodes on loopback.
func NewCluster(n int, clock simclock.Clock) (*Cluster, error) {
	return NewReplicated(n, 1, clock)
}

// NewReplicated starts n store nodes with replication factor rf: every
// key (and lock) is kept on min(rf, nodes) replicas, and the cluster
// survives the loss of up to rf-1 of a shard's replicas without losing
// acknowledged writes or held locks.
func NewReplicated(n, rf int, clock simclock.Clock) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kvstore cluster: need at least 1 node, got %d", n)
	}
	if rf < 1 {
		rf = 1
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	c := &Cluster{clock: clock, rf: rf}
	for i := 0; i < n; i++ {
		if err := c.startNodeLocked(); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.rebuildViewLocked()
	return c, nil
}

// NewDurable starts (or restarts) a replicated cluster whose nodes persist
// under per-node directories inside dur.Dir. On a directory that already
// holds node state — a whole-cluster power cut — it boots one node per
// surviving `node-*` directory instead of n fresh ones, each recovering
// its own snapshot + log tail, then runs the normal rebalance merge so
// every key and lock lands on the new ring's owners (node addresses change
// across a restart) at the newest recovered version/sequence. A node
// directory whose recovery fails is skipped as a crashed replica — its
// shards are covered by the others — as long as at least one node boots.
// With dur.Dir == "" it is NewReplicated.
func NewDurable(n, rf int, clock simclock.Clock, dur DurOptions) (*Cluster, error) {
	if dur.Dir == "" {
		return NewReplicated(n, rf, clock)
	}
	if n <= 0 {
		return nil, fmt.Errorf("kvstore cluster: need at least 1 node, got %d", n)
	}
	if rf < 1 {
		rf = 1
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if err := os.MkdirAll(dur.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore cluster: %w", err)
	}
	c := &Cluster{clock: clock, rf: rf, dur: dur}
	dirs, err := filepath.Glob(filepath.Join(dur.Dir, "node-*"))
	if err != nil {
		return nil, fmt.Errorf("kvstore cluster: %w", err)
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		// Fresh cluster: n nodes on newly allocated directories.
		for i := 0; i < n; i++ {
			if err := c.startNodeLocked(); err != nil {
				c.Close()
				return nil, err
			}
		}
		c.rebuildViewLocked()
		return c, nil
	}
	// Restart: recover every surviving node directory.
	var recoverErrs []error
	for _, dir := range dirs {
		if info, serr := os.Stat(dir); serr != nil || !info.IsDir() {
			continue
		}
		if idx, ok := parseNodeDir(dir); ok && idx >= c.nextDir {
			c.nextDir = idx + 1
		}
		if err := c.startNodeDirLocked(dir); err != nil {
			recoverErrs = append(recoverErrs, err)
		}
	}
	if len(c.nodes) == 0 {
		c.Close()
		return nil, fmt.Errorf("kvstore cluster: restart from %s: no node recovered: %v", dur.Dir, errors.Join(recoverErrs...))
	}
	c.rebuildViewLocked()
	// The recovery merge: each node came back with its own pre-crash
	// shards, but the restarted ring assigns keys by the NEW addresses.
	// Rebalance re-derives placement from the union of recovered states
	// (newest version/sequence wins, exactly as after a failover).
	if err := c.rebalanceLocked(nil, nil); err != nil {
		c.Close()
		return nil, fmt.Errorf("kvstore cluster: restart merge: %w", err)
	}
	return c, nil
}

func parseNodeDir(dir string) (int, bool) {
	base := filepath.Base(dir)
	if !strings.HasPrefix(base, "node-") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(base, "node-"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// startNodeLocked boots one node with a fresh stable UID (and, on durable
// clusters, a fresh node directory). The caller must rebuild the view
// afterwards.
func (c *Cluster) startNodeLocked() error {
	dir := ""
	if c.dur.Dir != "" {
		dir = filepath.Join(c.dur.Dir, fmt.Sprintf("node-%04d", c.nextDir))
		c.nextDir++
	}
	return c.startNodeDirLocked(dir)
}

// startNodeDirLocked boots one node persisted under dir ("" = in-memory),
// recovering whatever state the directory holds.
func (c *Cluster) startNodeDirLocked(dir string) error {
	opts := c.dur
	opts.Dir = dir
	srv, err := NewServerDur("127.0.0.1:0", c.clock, opts)
	if err != nil {
		return err
	}
	cli, err := NewClient(srv.Addr())
	if err != nil {
		srv.Close()
		return err
	}
	uid := c.nextUID
	c.nextUID++
	srv.OnReplFailure(c.handleReplFailure)
	c.sessMu.Lock()
	if c.sessTTL > 0 {
		srv.SetSessionTTL(c.sessTTL)
	}
	if !c.fenceUntil.IsZero() {
		// A node booted inside a failover fence window could otherwise ack
		// writes while a dead primary's lessees still serve cached reads.
		srv.FenceWrites(c.fenceUntil)
	}
	c.sessMu.Unlock()
	c.nodes = append(c.nodes, &clusterNode{srv: srv, cli: cli, addr: srv.Addr(), uid: uid, dir: dir})
	return nil
}

// handleReplFailure closes the replication loop when a primary fails a
// forward to a backup: without it, the suspect backup silently serves no
// replica (writes keep being acknowledged at reduced redundancy) until the
// next membership change. The accused node is probed — if unreachable it
// is failed over like any observed death; if it answers (a transient
// timeout), the view is reinstalled (clearing suspicions) and a rebalance
// re-syncs every write the backup missed, restoring R. One repair runs per
// accused address at a time.
func (c *Cluster) handleReplFailure(addr string) {
	c.repairMu.Lock()
	if c.repairing == nil {
		c.repairing = make(map[string]bool)
	}
	if c.repairing[addr] {
		c.repairMu.Unlock()
		return
	}
	c.repairing[addr] = true
	c.repairMu.Unlock()
	defer func() {
		c.repairMu.Lock()
		delete(c.repairing, addr)
		c.repairMu.Unlock()
	}()

	c.mu.RLock()
	var accused *clusterNode
	for _, n := range c.nodes {
		if n.addr == addr {
			accused = n
			break
		}
	}
	closed := c.closed
	c.mu.RUnlock()
	if accused == nil || closed {
		return
	}
	if c.probeDead(accused) {
		c.failNode(accused.uid)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.rebuildViewLocked()
	_ = c.rebalanceLocked(nil, nil)
}

// effRF is the effective replication factor for the current node count.
func (c *Cluster) effRF() int {
	if len(c.nodes) < c.rf {
		return len(c.nodes)
	}
	return c.rf
}

// rebuildViewLocked derives a new epoch-stamped table and ring from the
// current node set and installs it on every node (so primaries know their
// backups).
func (c *Cluster) rebuildViewLocked() {
	c.epoch++
	t := route.Table{Epoch: c.epoch, Members: make([]route.Member, len(c.nodes))}
	for i, n := range c.nodes {
		t.Members[i] = route.Member{Addr: n.addr, UID: n.uid, Weight: route.DefaultWeight}
	}
	c.table = t
	c.ring = route.BuildRing(t)
	eff := c.effRF()
	for _, n := range c.nodes {
		n.srv.SetView(t, eff)
	}
}

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// ReplicationFactor returns the configured replication factor.
func (c *Cluster) ReplicationFactor() int { return c.rf }

// Addrs returns the node addresses.
func (c *Cluster) Addrs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.addr
	}
	return out
}

// Table returns the current epoch-stamped routing view.
func (c *Cluster) Table() route.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.table.Clone()
}

// isUnavailable classifies an operation error: true for transport-level
// failures (dead connection, timeout, dial refusal) that failover can
// cure, false for application results (sentinel errors, remote errors) and
// for admission refusals (the node is alive, just busy).
func isUnavailable(err error) bool {
	if err == nil {
		return false
	}
	for _, sentinel := range []error{ErrNotFound, ErrCASMismatch, ErrLockHeld, ErrNotLockOwner} {
		if errors.Is(err, sentinel) {
			return false
		}
	}
	if errors.Is(err, transport.ErrOverloaded) || errors.Is(err, transport.ErrExpired) {
		return false
	}
	var remote *transport.RemoteError
	return !errors.As(err, &remote)
}

// run routes one operation to the primary of key's shard, holding the read
// gate across the call so membership changes serialize against in-flight
// operations. On a transport-level failure with R>1 it reports the node
// dead (dropping it from the ring and promoting backups) and retries on
// the new primary; the per-operation attempt budget is rf+1, after which
// ErrUnavailable surfaces to the caller.
func (c *Cluster) run(key string, op func(cli *Client) error) error {
	var lastErr error
	for attempt := 0; attempt <= c.rf; attempt++ {
		c.mu.RLock()
		if c.closed {
			c.mu.RUnlock()
			return errors.New("kvstore cluster: closed")
		}
		idx := c.ring.Owner(key)
		if idx < 0 {
			c.mu.RUnlock()
			return fmt.Errorf("kvstore cluster: no owner for %q: %w", key, ErrUnavailable)
		}
		n := c.nodes[idx]
		err := op(n.cli)
		c.mu.RUnlock()
		if err == nil || !isUnavailable(err) {
			return err
		}
		lastErr = err
		if c.rf <= 1 {
			// Single-copy deployment: there is no replica to promote, so
			// surface the failure instead of silently re-routing to a node
			// that cannot have the data.
			return err
		}
		// Double-check before executing the node: one slow reply (a pause,
		// a queue hiccup) must not destroy a healthy replica. A node that
		// answers the probe keeps its place and the operation just retries.
		if c.probeDead(n) {
			c.failNode(n.uid)
		}
	}
	return fmt.Errorf("kvstore cluster: all replicas failed (last: %v): %w", lastErr, ErrUnavailable)
}

// probeDead reports whether an accused node is provably unreachable, via a
// cheap read (a live node answers ErrNotFound). Used before every
// destructive failover decision so timeouts against healthy-but-slow nodes
// stay transient.
func (c *Cluster) probeDead(n *clusterNode) bool {
	_, err := n.cli.Get("\x00liveness-probe")
	return isUnavailable(err)
}

// Get fetches key from its shard's primary.
func (c *Cluster) Get(key string) (v Versioned, err error) {
	err = c.run(key, func(cli *Client) error { v, err = cli.Get(key); return err })
	return v, err
}

// Put stores value at key.
func (c *Cluster) Put(key string, value []byte) (ver uint64, err error) {
	err = c.run(key, func(cli *Client) error { ver, err = cli.Put(key, value); return err })
	return ver, err
}

// Delete removes key.
func (c *Cluster) Delete(key string) error {
	return c.run(key, func(cli *Client) error { return cli.Delete(key) })
}

// CompareAndSwap conditionally replaces key.
func (c *Cluster) CompareAndSwap(key string, value []byte, expectVersion uint64) (ver uint64, err error) {
	err = c.run(key, func(cli *Client) error {
		ver, err = cli.CompareAndSwap(key, value, expectVersion)
		return err
	})
	return ver, err
}

// AddInt64 atomically adds delta to the integer at key.
func (c *Cluster) AddInt64(key string, delta int64) (v int64, err error) {
	err = c.run(key, func(cli *Client) error { v, err = cli.AddInt64(key, delta); return err })
	return v, err
}

// GetString fetches key as a string ("" when missing).
func (c *Cluster) GetString(key string) (s string, err error) {
	err = c.run(key, func(cli *Client) error { s, err = cli.GetString(key); return err })
	return s, err
}

// PutString stores a string.
func (c *Cluster) PutString(key, value string) error {
	return c.run(key, func(cli *Client) error { return cli.PutString(key, value) })
}

// GetInt64 fetches key as an int64 (0 when missing).
func (c *Cluster) GetInt64(key string) (v int64, err error) {
	err = c.run(key, func(cli *Client) error { v, err = cli.GetInt64(key); return err })
	return v, err
}

// PutInt64 stores an int64.
func (c *Cluster) PutInt64(key string, value int64) error {
	return c.run(key, func(cli *Client) error { return cli.PutInt64(key, value) })
}

// TryLock acquires the named lock on the shard owning the name.
func (c *Cluster) TryLock(name, owner string, lease time.Duration) error {
	return c.run(lockRouteKey(name), func(cli *Client) error {
		return cli.TryLock(name, owner, lease)
	})
}

// Unlock releases the named lock.
func (c *Cluster) Unlock(name, owner string) error {
	return c.run(lockRouteKey(name), func(cli *Client) error {
		return cli.Unlock(name, owner)
	})
}

// Keys lists all keys with the prefix across all shards. Replicas make a
// key visible on several nodes, so the union is deduplicated. Like keyed
// operations, the scan fails over: a dead node is dropped and the scan
// retried against the promoted replicas.
func (c *Cluster) Keys(prefix string) ([]string, error) {
	var lastErr error
	for attempt := 0; attempt <= c.rf; attempt++ {
		keys, badUID, err := c.keysOnce(prefix)
		if err == nil {
			return keys, nil
		}
		if c.rf <= 1 || !isUnavailable(err) {
			return nil, err
		}
		lastErr = err
		c.mu.RLock()
		var bad *clusterNode
		for _, n := range c.nodes {
			if n.uid == badUID {
				bad = n
				break
			}
		}
		c.mu.RUnlock()
		if bad != nil && c.probeDead(bad) {
			c.failNode(badUID)
		}
	}
	return nil, fmt.Errorf("kvstore cluster: keys scan failed (last: %v): %w", lastErr, ErrUnavailable)
}

// keysOnce scans every node under the read gate; on failure it reports the
// failing node's UID for failover.
func (c *Cluster) keysOnce(prefix string) ([]string, int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, 0, errors.New("kvstore cluster: closed")
	}
	seen := make(map[string]struct{})
	for _, n := range c.nodes {
		ks, err := n.cli.Keys(prefix)
		if err != nil {
			return nil, n.uid, err
		}
		for _, k := range ks {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, 0, nil
}

// AddNode brings up one more store node, installs the enlarged view, and
// migrates to every node the shards (data and unexpired lock leases) its
// new replica sets assign it. Routing switches to the new layout before
// the migration runs, but the whole change holds the write gate, so no
// operation ever observes a half-migrated layout.
func (c *Cluster) AddNode() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("kvstore cluster: closed")
	}
	if err := c.startNodeLocked(); err != nil {
		return err
	}
	c.rebuildViewLocked()
	return c.rebalanceLocked(nil, nil)
}

// RemoveNode is the planned departure of the node at addr: its shards —
// data with versions and unexpired lock leases with owners and absolute
// expiries — are handed off to the shrunken ring's owners before the node
// is shut down, so planned scale-in loses nothing even at R=1.
func (c *Cluster) RemoveNode(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("kvstore cluster: closed")
	}
	if len(c.nodes) == 1 {
		return errors.New("kvstore cluster: cannot remove the last node")
	}
	idx := -1
	for i, n := range c.nodes {
		if n.addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("kvstore cluster: no node %s", addr)
	}
	victim := c.nodes[idx]
	// Snapshot the victim while it is still serving. If it is already dead
	// this degrades to the crash path: replicas (R>1) cover its shards.
	extraData, derr := victim.cli.Export("")
	extraLocks, lerr := victim.cli.ExportLocks("")
	if derr != nil || lerr != nil {
		extraData, extraLocks = nil, nil
	}
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	c.rebuildViewLocked()
	err := c.rebalanceLocked(extraData, extraLocks)
	victim.cli.Close()
	victim.srv.Close()
	if err == nil && victim.dir != "" {
		// The handoff landed everywhere, so the victim's on-disk state is
		// fully superseded. Removing it matters: left behind, a later
		// whole-cluster restart would boot a node from it and re-merge
		// tombstone-pruned or long-stale state into the cluster.
		os.RemoveAll(victim.dir)
	}
	return err
}

// CrashNode abruptly kills the node at addr — listener and connections
// closed, no handoff, membership left untouched — to simulate an
// unplanned failure. The router discovers the loss on the next operation
// that touches one of the victim's shards and fails over.
func (c *Cluster) CrashNode(addr string) error {
	c.mu.RLock()
	var victim *clusterNode
	for _, n := range c.nodes {
		if n.addr == addr {
			victim = n
			break
		}
	}
	c.mu.RUnlock()
	if victim == nil {
		return fmt.Errorf("kvstore cluster: no node %s", addr)
	}
	return victim.srv.Crash()
}

// Halt abruptly kills every node at once — the whole-rack power cut. No
// handoff runs and no node directory is cleaned up: each node's log is
// abandoned mid-write (buffered unfsynced records lost, exactly what real
// power loss does). A durable cluster comes back with NewDurable over the
// same directory, restoring every acked write and unexpired lease.
func (c *Cluster) Halt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		n.cli.Close()
	}
	for _, n := range c.nodes {
		n.srv.Crash()
	}
}

// failNode handles an observed node death: drop it from the membership,
// promote the next replica of each of its shards (rebuild + reinstall the
// view), and re-replicate surviving state to restore R. Idempotent per
// UID — concurrent observers of the same death collapse to one removal.
func (c *Cluster) failNode(uid int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	idx := -1
	for i, n := range c.nodes {
		if n.uid == uid {
			idx = i
			break
		}
	}
	if idx < 0 || len(c.nodes) == 1 {
		return // already handled, or nothing left to promote
	}
	victim := c.nodes[idx]
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	victim.cli.Close()
	victim.srv.Close()
	c.fenceForFailover()
	c.rebuildViewLocked()
	// Repair is best-effort here: the promoted replicas already hold every
	// acknowledged write, and a failed repair just means a later membership
	// change redoes it.
	_ = c.rebalanceLocked(nil, nil)
}

// registerSession records a ClusterSession so node deaths know caching
// clients exist (and must be fenced against).
func (c *Cluster) registerSession(cs *ClusterSession) {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if c.sessClients == nil {
		c.sessClients = make(map[*ClusterSession]struct{})
	}
	c.sessClients[cs] = struct{}{}
}

func (c *Cluster) dropSessionClient(cs *ClusterSession) {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	delete(c.sessClients, cs)
}

// SetSessionTTL sets the session lease duration on every current node (and
// every node added later). Tests shrink it so lease-expiry paths run in
// milliseconds.
func (c *Cluster) SetSessionTTL(d time.Duration) {
	c.sessMu.Lock()
	c.sessTTL = d
	c.sessMu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.nodes {
		n.srv.SetSessionTTL(d)
	}
}

// fenceForFailover blocks write acks cluster-wide for one session TTL
// after a node death. The dead primary granted leases it can no longer
// revoke; its lessees keep serving cached reads until those leases run
// out, so the promoted replicas must not ack a conflicting write inside
// that window. No-op when no session client is registered — plain
// clusters keep the fast failover path. Caller holds c.mu (write).
func (c *Cluster) fenceForFailover() {
	c.sessMu.Lock()
	active := len(c.sessClients) > 0
	ttl := c.sessTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	if active {
		if until := c.clock.Now().Add(ttl); until.After(c.fenceUntil) {
			c.fenceUntil = until
		}
	}
	until := c.fenceUntil
	c.sessMu.Unlock()
	if !active {
		return
	}
	for _, n := range c.nodes {
		n.srv.FenceWrites(until)
	}
}

// rebalanceLocked moves the cluster to the placement the current ring
// prescribes: every key and lock lives on exactly its min(rf, nodes)
// owners, at the newest version/sequence any node (or the extra snapshot
// of a departing node) holds. Runs under the write gate, so it never races
// an operation; bulk transfers go through Import/ImportLocks/Replicate,
// which apply directly and never re-forward.
//
// Snapshots are full per-node exports (as the pre-replication migration's
// were) while actual transfers are only the moved/missing/outdated
// entries, so network cost tracks the churn, not the keyspace. The export
// and the merge are O(total data) on the router, though — an incremental
// per-arc transfer (export only the hash ranges whose owner sets changed)
// is the known next step if membership changes under large keyspaces
// become frequent.
func (c *Cluster) rebalanceLocked(extraData map[string]Versioned, extraLocks map[string]LockInfo) error {
	// Snapshot every source. A node that fails its export is probed: if
	// provably dead (a lingering crash nobody has routed to yet) it is
	// pruned from the membership and the snapshot restarts — exactly what
	// failover would do, without wedging a planned membership change behind
	// it. A node that is merely slow makes the whole change fail fast
	// (exportFailed) rather than silently dropping its keys from the
	// authoritative merge.
	var (
		perData      []map[string]Versioned
		perLocks     []map[string]LockInfo
		reached      []bool
		exportFailed bool
	)
snapshot:
	for {
		perData = make([]map[string]Versioned, len(c.nodes))
		perLocks = make([]map[string]LockInfo, len(c.nodes))
		reached = make([]bool, len(c.nodes))
		exportFailed = false
		for i, nd := range c.nodes {
			d, derr := nd.cli.Export("")
			l, lerr := nd.cli.ExportLocks("")
			if derr == nil && lerr == nil {
				perData[i], perLocks[i], reached[i] = d, l, true
				continue
			}
			if len(c.nodes) > 1 && c.probeDead(nd) {
				c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
				nd.cli.Close()
				nd.srv.Close()
				c.rebuildViewLocked()
				continue snapshot
			}
			exportFailed = true
		}
		break
	}
	eff := c.effRF()
	n := len(c.nodes)

	// Authoritative merged state: newest version / sequence wins.
	data := make(map[string]Versioned)
	for k, v := range extraData {
		data[k] = v
	}
	for i := range c.nodes {
		for k, v := range perData[i] {
			if cur, ok := data[k]; !ok || v.Version > cur.Version {
				data[k] = v
			}
		}
	}
	locks := make(map[string]LockInfo)
	for name, info := range extraLocks {
		locks[name] = info
	}
	for i := range c.nodes {
		for name, info := range perLocks[i] {
			if cur, ok := locks[name]; !ok || info.Seq > cur.Seq {
				locks[name] = info
			}
		}
	}

	type plan struct {
		imports     map[string]Versioned
		lockImports map[string]LockInfo
		dels        []string
		lockDrops   []string
	}
	plans := make([]plan, n)
	for k, v := range data {
		owners := c.ring.Owners(k, eff)
		ownerSet := make(map[int]bool, len(owners))
		for _, o := range owners {
			ownerSet[o] = true
			cur, held := perData[o][k]
			if reached[o] && held && cur.Version >= v.Version {
				continue
			}
			if plans[o].imports == nil {
				plans[o].imports = make(map[string]Versioned)
			}
			plans[o].imports[k] = v
		}
		for i := range c.nodes {
			if _, held := perData[i][k]; held && !ownerSet[i] {
				plans[i].dels = append(plans[i].dels, k)
			}
		}
	}
	for name, info := range locks {
		owners := c.ring.Owners(lockRouteKey(name), eff)
		ownerSet := make(map[int]bool, len(owners))
		for _, o := range owners {
			ownerSet[o] = true
			cur, held := perLocks[o][name]
			if reached[o] && held && cur.Seq >= info.Seq {
				continue
			}
			if plans[o].lockImports == nil {
				plans[o].lockImports = make(map[string]LockInfo)
			}
			plans[o].lockImports[name] = info
		}
		for i := range c.nodes {
			if _, held := perLocks[i][name]; held && !ownerSet[i] {
				plans[i].lockDrops = append(plans[i].lockDrops, name)
			}
		}
	}

	// Apply imports first. A target that fails (e.g. a crashed node whose
	// death no operation has observed yet) is skipped, not fatal: its
	// shards stay covered by the other owners, and the next membership
	// change repairs it — or the router's failover drops it for good.
	importFailed := make([]bool, n)
	for i, p := range plans {
		cli := c.nodes[i].cli
		if len(p.imports) > 0 {
			if err := cli.Import(p.imports); err != nil {
				importFailed[i] = true
				continue
			}
		}
		if len(p.lockImports) > 0 {
			if err := cli.ImportLocks(p.lockImports); err != nil {
				importFailed[i] = true
			}
		}
	}
	anyFailed := false
	for _, f := range importFailed {
		anyFailed = anyFailed || f
	}
	if !anyFailed {
		// Cleanup of off-owner copies runs only after every planned import
		// landed: deleting a source copy while a destination copy failed to
		// materialize could orphan a key. Cleanup failures are benign —
		// extra copies never win over newer owner state (version/sequence
		// gates) and the next rebalance re-cleans.
		for i, p := range plans {
			if len(p.dels) > 0 || len(p.lockDrops) > 0 {
				_ = c.nodes[i].cli.replicate(replReq{Dels: p.dels, LockDrops: p.lockDrops})
			}
		}
		return c.rebalanceResult(exportFailed)
	}
	// Redundancy audit: the change is an error only if some key or lock
	// ended up with zero live replicas among its owners.
	placedData := func(k string, v Versioned) bool {
		for _, o := range c.ring.Owners(k, eff) {
			if importFailed[o] {
				continue
			}
			if _, planned := plans[o].imports[k]; planned {
				return true
			}
			if cur, held := perData[o][k]; reached[o] && held && cur.Version >= v.Version {
				return true
			}
		}
		return false
	}
	placedLock := func(name string, info LockInfo) bool {
		for _, o := range c.ring.Owners(lockRouteKey(name), eff) {
			if importFailed[o] {
				continue
			}
			if _, planned := plans[o].lockImports[name]; planned {
				return true
			}
			if cur, held := perLocks[o][name]; reached[o] && held && cur.Seq >= info.Seq {
				return true
			}
		}
		return false
	}
	for k, v := range data {
		if !placedData(k, v) {
			return fmt.Errorf("rebalance: key %q has no live replica: %w", k, ErrUnavailable)
		}
	}
	for name, info := range locks {
		if !placedLock(name, info) {
			return fmt.Errorf("rebalance: lock %q has no live replica: %w", name, ErrUnavailable)
		}
	}
	return c.rebalanceResult(exportFailed)
}

// rebalanceResult surfaces a partial snapshot: a slow-but-alive node whose
// export failed kept its keys out of the merge, so the membership change
// must report failure (planned AddNode/RemoveNode fail fast, as the
// pre-replication migration did) instead of leaving the gap silent. No
// destructive step has touched the unmerged keys — cleanup only ever
// removes copies of keys present in the merge.
func (c *Cluster) rebalanceResult(exportFailed bool) error {
	if exportFailed {
		return fmt.Errorf("kvstore cluster: rebalance incomplete, a node failed its export: %w", ErrUnavailable)
	}
	return nil
}

// Close shuts all nodes down.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		n.cli.Close()
	}
	for _, n := range c.nodes {
		n.srv.Close()
	}
}

// Shared is the narrow interface the ElasticRMI core needs from the shared
// state store. Both *Client (single node) and *Cluster implement it.
type Shared interface {
	Get(key string) (Versioned, error)
	Put(key string, value []byte) (uint64, error)
	Delete(key string) error
	CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, error)
	AddInt64(key string, delta int64) (int64, error)
	GetString(key string) (string, error)
	PutString(key, value string) error
	GetInt64(key string) (int64, error)
	PutInt64(key string, value int64) error
	TryLock(name, owner string, lease time.Duration) error
	Unlock(name, owner string) error
	Keys(prefix string) ([]string, error)
}

var (
	_ Shared = (*Cluster)(nil)
	_ Shared = (*Client)(nil)
)
