package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/simclock"
)

// Cluster is a sharded deployment of store nodes with a client-side router.
// Keys (and lock names) are partitioned across the current node set by the
// same consistent-hash ring the routing layer uses (internal/route), so
// adding a node moves only the ~1/n of the keyspace the new node takes
// over — ownership between existing nodes never changes. Nodes can be
// added online ("ElasticRMI may add additional nodes to HyperDex as
// necessary", §4.2): AddNode migrates the keys whose ownership moves to
// the new node before making it visible to routing, so per-key strong
// consistency is preserved (single owner per key at all times from the
// router's point of view).
type Cluster struct {
	clock simclock.Clock

	mu      sync.Mutex
	servers []*Server
	clients []*Client
	ring    *route.Ring // over servers/clients by index, rebuilt on AddNode
	closed  bool
}

// NewCluster starts n store nodes on loopback.
func NewCluster(n int, clock simclock.Clock) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kvstore cluster: need at least 1 node, got %d", n)
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	c := &Cluster{clock: clock}
	for i := 0; i < n; i++ {
		if err := c.addNodeLocked(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) addNodeLocked() error {
	srv, err := NewServer("127.0.0.1:0", c.clock)
	if err != nil {
		return err
	}
	cli, err := NewClient(srv.Addr())
	if err != nil {
		srv.Close()
		return err
	}
	c.servers = append(c.servers, srv)
	c.clients = append(c.clients, cli)
	c.ring = c.buildRingLocked()
	return nil
}

// buildRingLocked derives the ownership ring from the current node set.
// Node identity is the server address, so the ring is stable across
// rebuilds and every client deriving it agrees on placement.
func (c *Cluster) buildRingLocked() *route.Ring {
	t := route.Table{Members: make([]route.Member, len(c.servers))}
	for i, s := range c.servers {
		t.Members[i] = route.Member{Addr: s.Addr(), UID: int64(i), Weight: route.DefaultWeight}
	}
	return route.BuildRing(t)
}

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.clients)
}

// Addrs returns the node addresses.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.Addr()
	}
	return out
}

func (c *Cluster) route(key string) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[c.ring.Owner(key)]
}

// Get fetches key from its owning node.
func (c *Cluster) Get(key string) (Versioned, error) { return c.route(key).Get(key) }

// Put stores value at key on its owning node.
func (c *Cluster) Put(key string, value []byte) (uint64, error) { return c.route(key).Put(key, value) }

// Delete removes key.
func (c *Cluster) Delete(key string) error { return c.route(key).Delete(key) }

// CompareAndSwap conditionally replaces key.
func (c *Cluster) CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, error) {
	return c.route(key).CompareAndSwap(key, value, expectVersion)
}

// AddInt64 atomically adds delta to the integer at key.
func (c *Cluster) AddInt64(key string, delta int64) (int64, error) {
	return c.route(key).AddInt64(key, delta)
}

// GetString fetches key as a string ("" when missing).
func (c *Cluster) GetString(key string) (string, error) { return c.route(key).GetString(key) }

// PutString stores a string.
func (c *Cluster) PutString(key, value string) error { return c.route(key).PutString(key, value) }

// GetInt64 fetches key as an int64 (0 when missing).
func (c *Cluster) GetInt64(key string) (int64, error) { return c.route(key).GetInt64(key) }

// PutInt64 stores an int64.
func (c *Cluster) PutInt64(key string, value int64) error { return c.route(key).PutInt64(key, value) }

// TryLock acquires the named lock on the shard owning the name.
func (c *Cluster) TryLock(name, owner string, lease time.Duration) error {
	return c.route("lock/"+name).TryLock(name, owner, lease)
}

// Unlock releases the named lock.
func (c *Cluster) Unlock(name, owner string) error {
	return c.route("lock/"+name).Unlock(name, owner)
}

// Keys lists all keys with the prefix across all shards.
func (c *Cluster) Keys(prefix string) ([]string, error) {
	c.mu.Lock()
	clients := make([]*Client, len(c.clients))
	copy(clients, c.clients)
	c.mu.Unlock()
	var out []string
	for _, cl := range clients {
		ks, err := cl.Keys(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, ks...)
	}
	return out, nil
}

// AddNode brings up one more store node and migrates to it every key whose
// hash ownership moves under the enlarged node set. Routing switches to the
// new layout only after migration completes.
func (c *Cluster) AddNode() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("kvstore cluster: closed")
	}
	oldN := len(c.clients)
	if err := c.addNodeLocked(); err != nil {
		return err
	}
	ring := c.ring
	// Consistent hashing moves ownership only onto the new node (existing
	// nodes' ring points are unchanged), so each old node exports exactly
	// the keys whose arcs the newcomer took over — ~1/n of the keyspace in
	// total, not a full reshuffle.
	for i := 0; i < oldN; i++ {
		entries, err := c.clients[i].Export("")
		if err != nil {
			return fmt.Errorf("migrate from node %d: %w", i, err)
		}
		perTarget := make(map[int]map[string]Versioned)
		for k, v := range entries {
			owner := ring.Owner(k)
			if owner == i {
				continue
			}
			if perTarget[owner] == nil {
				perTarget[owner] = make(map[string]Versioned)
			}
			perTarget[owner][k] = v
		}
		for owner, moving := range perTarget {
			if err := c.clients[owner].Import(moving); err != nil {
				return fmt.Errorf("import to node %d: %w", owner, err)
			}
			for k := range moving {
				if err := c.clients[i].Delete(k); err != nil {
					return fmt.Errorf("cleanup node %d: %w", i, err)
				}
			}
		}
	}
	return nil
}

// Close shuts all nodes down.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// Shared is the narrow interface the ElasticRMI core needs from the shared
// state store. Both *Client (single node) and *Cluster implement it.
type Shared interface {
	Get(key string) (Versioned, error)
	Put(key string, value []byte) (uint64, error)
	Delete(key string) error
	CompareAndSwap(key string, value []byte, expectVersion uint64) (uint64, error)
	AddInt64(key string, delta int64) (int64, error)
	GetString(key string) (string, error)
	PutString(key, value string) error
	GetInt64(key string) (int64, error)
	PutInt64(key string, value int64) error
	TryLock(name, owner string, lease time.Duration) error
	Unlock(name, owner string) error
	Keys(prefix string) ([]string, error)
}

var (
	_ Shared = (*Cluster)(nil)
	_ Shared = (*Client)(nil)
)
