// Package simclock provides an abstraction over time so that the ElasticRMI
// runtime and the benchmark harness can run either against the wall clock or
// against a deterministic, discrete-event virtual clock.
//
// The paper's evaluation spans 450-500 minute runs (Figures 7 and 8); the
// virtual clock lets the same policy code replay those runs in milliseconds.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the repository. Both the live
// runtime and the deployment simulator program against this interface.
type Clock interface {
	// Now returns the current instant of this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// Since returns the duration elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sim is a deterministic virtual clock. Time only moves when Advance or Run
// is called; waiters registered through After/Sleep fire in timestamp order.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

var _ Clock = (*Sim)(nil)

type waiter struct {
	at  time.Time
	seq int64 // tie-break so equal timestamps fire FIFO
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewSim returns a virtual clock whose epoch is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// After implements Clock. The returned channel has capacity one so the clock
// never blocks delivering the tick.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.waiters, &waiter{at: s.now.Add(d), seq: s.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks the calling goroutine until another
// goroutine advances the clock past the deadline.
func (s *Sim) Sleep(d time.Duration) {
	<-s.After(d)
}

// Advance moves the clock forward by d, firing all waiters whose deadlines
// are reached, in deadline order. It returns the number of waiters fired.
func (s *Sim) Advance(d time.Duration) int {
	s.mu.Lock()
	target := s.now.Add(d)
	fired := 0
	for len(s.waiters) > 0 && !s.waiters[0].at.After(target) {
		w := heap.Pop(&s.waiters).(*waiter)
		s.now = w.at
		w.ch <- s.now
		fired++
	}
	s.now = target
	s.mu.Unlock()
	return fired
}

// Pending reports the number of registered waiters that have not yet fired.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// NextDeadline returns the earliest pending deadline and true, or the zero
// time and false if there are no waiters.
func (s *Sim) NextDeadline() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.waiters) == 0 {
		return time.Time{}, false
	}
	return s.waiters[0].at, true
}

// RunUntilIdle advances the clock to each pending deadline in order until no
// waiters remain, up to the given horizon. It returns the number fired.
func (s *Sim) RunUntilIdle(horizon time.Duration) int {
	deadline := s.Now().Add(horizon)
	fired := 0
	for {
		next, ok := s.NextDeadline()
		if !ok || next.After(deadline) {
			return fired
		}
		fired += s.Advance(next.Sub(s.Now()))
	}
}
