package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimAdvanceFiresInOrder(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	ch3 := c.After(3 * time.Second)
	ch1 := c.After(1 * time.Second)
	ch2 := c.After(2 * time.Second)

	fired := c.Advance(5 * time.Second)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	t1 := <-ch1
	t2 := <-ch2
	t3 := <-ch3
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Fatalf("fire order wrong: %v %v %v", t1, t2, t3)
	}
	if c.Now() != time.Unix(5, 0) {
		t.Fatalf("now = %v, want +5s", c.Now())
	}
}

func TestSimPartialAdvance(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	if fired := c.Advance(9 * time.Second); fired != 0 {
		t.Fatalf("fired early: %d", fired)
	}
	select {
	case <-ch:
		t.Fatal("timer fired before deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case at := <-ch:
		if at != time.Unix(10, 0) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestSimAfterNonPositive(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimSleepBlocksUntilAdvance(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleep returned before advance")
	default:
	}
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleep did not wake")
	}
}

func TestSimSince(t *testing.T) {
	c := NewSim(time.Unix(100, 0))
	start := c.Now()
	c.Advance(90 * time.Second)
	if got := c.Since(start); got != 90*time.Second {
		t.Fatalf("since = %v", got)
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	for i := 1; i <= 5; i++ {
		c.After(time.Duration(i) * time.Second)
	}
	c.After(time.Hour) // beyond horizon
	fired := c.RunUntilIdle(10 * time.Second)
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestNextDeadline(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("deadline on empty clock")
	}
	c.After(7 * time.Second)
	next, ok := c.NextDeadline()
	if !ok || next != time.Unix(7, 0) {
		t.Fatalf("next = %v %v", next, ok)
	}
}

func TestConcurrentWaiters(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i%10+1) * time.Second)
		}(i)
	}
	for c.Pending() < n {
		time.Sleep(time.Millisecond)
	}
	c.Advance(10 * time.Second)
	wg.Wait()
}

// Property: advancing by the sum of any positive durations equals advancing
// once by the total.
func TestAdvanceAdditiveProperty(t *testing.T) {
	prop := func(steps []uint16) bool {
		a := NewSim(time.Unix(0, 0))
		b := NewSim(time.Unix(0, 0))
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			total += d
			a.Advance(d)
		}
		b.Advance(total)
		return a.Now().Equal(b.Now())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Real
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("real clock did not advance")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}
