package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Payloadown enforces the arena ownership contract around
// *transport.Request (established in PR 6, the zero-alloc payload path):
//
//   - A handler's req.Payload — and any zero-copy view decoded from it
//     (a value whose type carries the generated ERMIViews marker, or a
//     []byte aliasing the payload) — is only valid until the response is
//     written. A handler that lets such a value escape its own lifetime
//     (stores it through the receiver or a global, sends it on a channel,
//     or hands it to a spawned goroutine) must call req.Retain() first to
//     detach the slab from arena recycling.
//
//   - A handler returning transport.Encode output hands the buffer over
//     outright and must set req.ReleaseReply = true so the server recycles
//     the slab after the response write; conversely a handler returning
//     payload-derived memory must NOT set it, or the transport releases a
//     buffer the handler never owned.
//
// The check is a source-order flow approximation over each function that
// takes a *transport.Request parameter: passing a tracked value to an
// ordinary (synchronous) call is fine — the callee finishes inside the
// handler's lifetime — and defers run before the response is released, so
// neither counts as an escape. The transport package itself is exempt: it
// owns the lifecycle these rules describe.
var Payloadown = &Analyzer{
	Name: "payloadown",
	Doc:  "check that pooled request payloads are Retained before any zero-copy view escapes the handler, and that ReleaseReply marks exactly the arena-owned replies",
	Run:  runPayloadown,
}

func runPayloadown(pass *Pass) {
	if pkgElem(pass.Pkg) == "transport" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if req := requestParam(pass.TypesInfo, ftyp); req != nil {
				// The ownership walk handles nested function literals
				// itself (shared state for synchronous ones, a fresh check
				// for ones that bind their own request).
				checkPayloadOwnership(pass, ftyp, body, req)
				return false
			}
			return true
		})
	}
}

// payloadCheck is the per-function state of one ownership walk.
type payloadCheck struct {
	pass *Pass
	req  *types.Var     // the *transport.Request parameter
	body *ast.BlockStmt // function body (guard-coverage root)

	tracked map[*types.Var]bool // locals aliasing the payload slab
	encoded map[*types.Var]bool // locals holding transport.Encode output

	retains  []token.Pos // req.Retain() call positions
	releases []token.Pos // req.ReleaseReply = true positions

	escapes []escape
	returns []retInfo
}

type escape struct {
	pos  token.Pos
	what string
}

type retInfo struct {
	pos        token.Pos
	arenaOwned bool // returns transport.Encode output
	payload    bool // returns payload-derived memory
}

func checkPayloadOwnership(pass *Pass, ftyp *ast.FuncType, body *ast.BlockStmt, req *types.Var) {
	ck := &payloadCheck{
		pass:    pass,
		req:     req,
		body:    body,
		tracked: make(map[*types.Var]bool),
		encoded: make(map[*types.Var]bool),
	}
	ck.walk(body)

	for _, e := range ck.escapes {
		if !anyCovers(body, ck.retains, e.pos) {
			pass.Reportf(e.pos, "request payload view escapes the handler (%s) without req.Retain(): the arena slab is recycled after the response is written and the view will alias reused memory", e.what)
		}
	}
	if !handlerShaped(pass.TypesInfo, ftyp) {
		return
	}
	for _, r := range ck.returns {
		released := anyCovers(body, ck.releases, r.pos)
		if r.arenaOwned && !released {
			pass.Reportf(r.pos, "handler returns transport.Encode output without setting req.ReleaseReply = true: the reply slab is never returned to the arena")
		}
		if r.payload && released {
			pass.Reportf(r.pos, "handler returns payload-derived memory with req.ReleaseReply set: the transport would release a buffer the handler does not own")
		}
	}
}

// handlerShaped reports whether the signature returns ([]byte, error) —
// the transport.Handler shape whose first result the server may release.
func handlerShaped(info *types.Info, ftyp *ast.FuncType) bool {
	if ftyp.Results == nil || len(ftyp.Results.List) == 0 {
		return false
	}
	var results []types.Type
	for _, f := range ftyp.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if t, ok := info.Types[f.Type]; ok {
			for i := 0; i < n; i++ {
				results = append(results, t.Type)
			}
		}
	}
	if len(results) != 2 {
		return false
	}
	sl, ok := results[0].Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte && types.Identical(results[1], types.Universe.Lookup("error").Type())
}

// walk visits stmts in source order, updating alias state and recording
// guards, escapes and returns.
func (ck *payloadCheck) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			ck.assign(t)
		case *ast.CallExpr:
			ck.call(t)
		case *ast.SendStmt:
			if ck.trackedExpr(t.Value) {
				ck.escapes = append(ck.escapes, escape{t.Arrow, "sent on a channel"})
			}
		case *ast.GoStmt:
			ck.goStmt(t)
			return false // the closure body is judged as a whole, not re-walked
		case *ast.ReturnStmt:
			ck.ret(t)
		case *ast.FuncLit:
			// A nested function literal that is not a go-statement target
			// runs synchronously (called inline or deferred): walk it with
			// the same state, so captured views keep their tracking. One
			// that binds its own *transport.Request is a different handler
			// — give it a fresh check.
			if rp := requestParam(ck.pass.TypesInfo, t.Type); rp != nil && rp != ck.req {
				checkPayloadOwnership(ck.pass, t.Type, t.Body, rp)
				return false
			}
		}
		return true
	})
}

func (ck *payloadCheck) assign(a *ast.AssignStmt) {
	// req.ReleaseReply = true / false
	for i, lhs := range a.Lhs {
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "ReleaseReply" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && ck.pass.TypesInfo.Uses[id] == ck.req {
				if i < len(a.Rhs) {
					if bl, ok := ast.Unparen(a.Rhs[i]).(*ast.Ident); ok && bl.Name == "true" {
						ck.releases = append(ck.releases, a.Pos())
					}
				}
			}
		}
	}
	// Alias propagation and escape-by-store. Only the pairwise form is
	// modeled; multi-value assignments from calls reset the targets.
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			ck.assignPair(a.Lhs[i], a.Rhs[i])
		}
		return
	}
	// x, err := f(...): track Encode results, clear anything else.
	if len(a.Rhs) == 1 {
		call, _ := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		enc := call != nil && isEncodeCall(ck.pass.TypesInfo, call)
		for i, lhs := range a.Lhs {
			if v := ck.localVar(lhs); v != nil {
				delete(ck.tracked, v)
				delete(ck.encoded, v)
				if enc && i == 0 {
					ck.encoded[v] = true
				}
			}
		}
	}
}

func (ck *payloadCheck) assignPair(lhs, rhs ast.Expr) {
	trackedRHS := ck.trackedExpr(rhs)
	if v := ck.localVar(lhs); v != nil {
		delete(ck.tracked, v)
		delete(ck.encoded, v)
		if trackedRHS {
			ck.tracked[v] = true
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isEncodeCall(ck.pass.TypesInfo, call) {
			ck.encoded[v] = true
		}
		return
	}
	if trackedRHS && ck.outlivingLHS(lhs) {
		ck.escapes = append(ck.escapes, escape{lhs.Pos(), "stored in memory that outlives the request"})
	}
}

// localVar resolves lhs to a plain local (non-receiver, non-pointer-
// parameter) variable of the function, or nil.
func (ck *payloadCheck) localVar(lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := ck.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = ck.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level var: stores there escape
	}
	return v
}

// outlivingLHS reports whether storing through lhs reaches memory that
// outlives the handler invocation: a package-level variable, or a
// selector/index chain rooted at a pointer (receiver, pointer parameter,
// captured pointer) or at anything not declared in this function.
func (ck *payloadCheck) outlivingLHS(lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return true // unrecognized shape: assume the worst
	}
	obj := ck.pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = ck.pass.TypesInfo.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return true // package-level
	}
	// A local value var (a stack struct, a freshly made map) keeps the
	// store inside the handler; a pointer-typed root reaches shared state.
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return true
	}
	return false
}

func (ck *payloadCheck) call(call *ast.CallExpr) {
	pkgBase, recv, name, ok := calleeName(ck.pass.TypesInfo, call)
	if !ok {
		return
	}
	// req.Retain()
	if recv == "Request" && pkgBase == "transport" && name == "Retain" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && ck.pass.TypesInfo.Uses[id] == ck.req {
				ck.retains = append(ck.retains, call.Pos())
			}
		}
		return
	}
	// helper(req, ...) where the helper's fact says it retains the request
	// or sets ReleaseReply counts as that guard happening here: the fact
	// table sees through the call, wherever the helper lives.
	if fact := ck.pass.Facts.Fn(calleeFactKey(ck.pass.TypesInfo, call)); fact != nil && (fact.RetainsReq || fact.ReleasesReply) {
		passesReq := false
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && ck.pass.TypesInfo.Uses[id] == ck.req {
				passesReq = true
				break
			}
		}
		if passesReq {
			if fact.RetainsReq {
				ck.retains = append(ck.retains, call.Pos())
			}
			if fact.ReleasesReply {
				ck.releases = append(ck.releases, call.Pos())
			}
		}
	}
	// transport.Decode(req.Payload, &v) with a view-holding target type
	// makes v an alias of the payload slab.
	if pkgBase == "transport" && recv == "" && name == "Decode" && len(call.Args) == 2 {
		if !ck.trackedExpr(call.Args[0]) {
			return
		}
		target := ast.Unparen(call.Args[1])
		un, ok := target.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
			if v, ok := ck.pass.TypesInfo.Uses[id].(*types.Var); ok && hasMethod(v.Type(), "ERMIViews") {
				ck.tracked[v] = true
			}
		}
	}
}

func (ck *payloadCheck) goStmt(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if ck.trackedExpr(arg) {
			ck.escapes = append(ck.escapes, escape{arg.Pos(), "passed to a spawned goroutine"})
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.Ident:
				if v, ok := ck.pass.TypesInfo.Uses[t].(*types.Var); ok && (ck.tracked[v] || v == ck.req) {
					ck.escapes = append(ck.escapes, escape{t.Pos(), "captured by a spawned goroutine"})
					return false
				}
			}
			return true
		})
	}
}

func (ck *payloadCheck) ret(r *ast.ReturnStmt) {
	if len(r.Results) == 0 {
		return
	}
	first := ast.Unparen(r.Results[0])
	info := retInfo{pos: r.Pos()}
	switch t := first.(type) {
	case *ast.CallExpr:
		info.arenaOwned = isEncodeCall(ck.pass.TypesInfo, t)
	case *ast.Ident:
		if v, ok := ck.pass.TypesInfo.Uses[t].(*types.Var); ok {
			info.arenaOwned = ck.encoded[v]
			info.payload = ck.tracked[v]
		}
	default:
		info.payload = ck.trackedExpr(first)
	}
	if info.arenaOwned || info.payload {
		ck.returns = append(ck.returns, info)
	}
}

// isEncodeCall reports whether call is transport.Encode or
// transport.MustEncode.
func isEncodeCall(info *types.Info, call *ast.CallExpr) bool {
	pkgBase, recv, name, ok := calleeName(info, call)
	return ok && pkgBase == "transport" && recv == "" && (name == "Encode" || name == "MustEncode")
}

// trackedExpr reports whether e evaluates to memory aliasing the request
// payload slab: req.Payload itself (sliced or not), a tracked local, a
// view-holding field chain off a tracked local, a composite literal
// embedding one, or an append whose result still aliases one.
func (ck *payloadCheck) trackedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch t := e.(type) {
	case *ast.Ident:
		v, ok := ck.pass.TypesInfo.Uses[t].(*types.Var)
		return ok && ck.tracked[v]
	case *ast.SelectorExpr:
		// req.Payload
		if t.Sel.Name == "Payload" {
			if id, ok := ast.Unparen(t.X).(*ast.Ident); ok && ck.pass.TypesInfo.Uses[id] == ck.req {
				return true
			}
		}
		// v.Field where v is tracked and the field can alias (a []byte,
		// a nested view struct, a container of either).
		root := rootIdent(t)
		if root == nil {
			return false
		}
		if v, ok := ck.pass.TypesInfo.Uses[root].(*types.Var); ok && ck.tracked[v] {
			if tv, ok := ck.pass.TypesInfo.Types[e]; ok {
				return mayAlias(tv.Type)
			}
		}
		return false
	case *ast.SliceExpr:
		return ck.trackedExpr(t.X)
	case *ast.IndexExpr:
		if tv, ok := ck.pass.TypesInfo.Types[e]; ok && !mayAlias(tv.Type) {
			return false // indexing a []byte yields a byte: no alias
		}
		return ck.trackedExpr(t.X)
	case *ast.UnaryExpr:
		return t.Op == token.AND && ck.trackedExpr(t.X)
	case *ast.StarExpr:
		return ck.trackedExpr(t.X)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ck.trackedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append is the one call that can propagate aliases: its result
		// shares dst's backing array, and appending view-holding STRUCTS
		// copies the struct but not the views inside it. Appending spread
		// bytes (append(dst, src...)) copies the bytes themselves — that
		// is the sanctioned copy idiom — so a tracked src... does not
		// taint the result.
		if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := ck.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(t.Args) > 0 {
				if ck.trackedExpr(t.Args[0]) {
					return true
				}
				for _, arg := range t.Args[1:] {
					if tv, ok := ck.pass.TypesInfo.Types[arg]; ok && t.Ellipsis != token.NoPos && isByteSlice(tv.Type) {
						continue
					}
					if ck.trackedExpr(arg) {
						return true
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

// mayAlias reports whether a value of type t can carry a reference into
// the payload buffer: []byte, a type with the ERMIViews marker, or a
// slice/array/map/pointer of either. Strings cannot — the generated
// codecs copy string fields on decode.
func mayAlias(t types.Type) bool {
	if hasMethod(t, "ERMIViews") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Byte
		}
		return mayAlias(u.Elem())
	case *types.Array:
		return mayAlias(u.Elem())
	case *types.Map:
		return mayAlias(u.Key()) || mayAlias(u.Elem())
	case *types.Pointer:
		return mayAlias(u.Elem())
	}
	return false
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
