// Package transport is a fixture stub mirroring the shape of the real
// elasticrmi/internal/transport package: the analyzers bind to types
// structurally (package basename + type name), so this stub exercises
// them exactly like the real thing.
package transport

import (
	"sync"
	"time"
)

// Request mirrors transport.Request's ownership-relevant surface.
type Request struct {
	Service, Method string
	Payload         []byte
	Budget          time.Duration
	Deadline        time.Time
	ReleaseReply    bool

	retained bool
}

// Retain detaches the payload slab from arena recycling.
func (r *Request) Retain() { r.retained = true }

// Handler mirrors the server dispatch signature.
type Handler func(req *Request) ([]byte, error)

func Encode(v interface{}) ([]byte, error) { return nil, nil }
func MustEncode(v interface{}) []byte      { return nil }
func Decode(b []byte, v interface{}) error { return nil }

// Call is a pending invocation.
type Call struct {
	done chan struct{}
}

func (c *Call) Wait(d time.Duration) ([]byte, error) { return nil, nil }

// Client mirrors the RPC client surface the analyzers know about.
type Client struct {
	mu sync.Mutex
}

func Dial(addr string) (*Client, error) { return &Client{}, nil }

func (c *Client) Call(service, method string, payload []byte, timeout time.Duration) ([]byte, error) {
	return nil, nil
}

func (c *Client) CallDecode(service, method string, arg, reply interface{}, timeout time.Duration) error {
	return nil
}

func (c *Client) Go(service, method string, payload []byte) *Call { return &Call{} }

func (c *Client) GoBudget(service, method string, payload []byte, budget time.Duration) *Call {
	return &Call{}
}

func (c *Client) OneWay(service, method string, payload []byte) error        { return nil }
func (c *Client) OneWayDecode(service, method string, arg interface{}) error { return nil }
func (c *Client) Close() error                                               { return nil }

// Server mirrors the listener side (its mu is a flagged mutex).
type Server struct {
	mu sync.Mutex
}
