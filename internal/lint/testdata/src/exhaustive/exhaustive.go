// Package exhaustive carries mutant/fixed pairs for the marked-enum
// switch analyzer.
package exhaustive

// frameKind mirrors the wire frame discriminator.
//
//ermi:exhaustive
type frameKind byte

const (
	frameRequest  frameKind = 1
	frameResponse frameKind = 2
	frameOneWay   frameKind = 3
)

// aliasOneWay covers frameOneWay by value.
const aliasOneWay = frameOneWay

// color is an unmarked enum: switches over it owe nothing.
type color int

const (
	red color = iota
	green
	blue
)

// Mutant: a reader that silently drops frameOneWay.
func partial(k frameKind) string {
	switch k { // want `switch over exhaustive\.frameKind \(//ermi:exhaustive\) does not handle aliasOneWay, frameOneWay`
	case frameRequest:
		return "req"
	case frameResponse:
		return "resp"
	}
	return ""
}

// Fixed: every member named.
func full(k frameKind) string {
	switch k {
	case frameRequest:
		return "req"
	case frameResponse:
		return "resp"
	case frameOneWay:
		return "oneway"
	}
	return ""
}

// Fixed: an explicit default is the reader's signed statement that the
// remainder is handled.
func defaulted(k frameKind) string {
	switch k {
	case frameRequest:
		return "req"
	default:
		return "other"
	}
}

// Fixed: an alias with the same value covers the member.
func aliased(k frameKind) string {
	switch k {
	case frameRequest, frameResponse:
		return "sync"
	case aliasOneWay:
		return "oneway"
	}
	return ""
}

// Fixed: multiple members in one case.
func grouped(k frameKind) bool {
	switch k {
	case frameRequest, frameResponse, frameOneWay:
		return true
	}
	return false
}

// Clean: unmarked enums are not checked.
func colors(c color) string {
	switch c {
	case red:
		return "red"
	}
	return ""
}

// Clean: tagless switches have no enum to cover.
func tagless(k frameKind) string {
	switch {
	case k == frameRequest:
		return "req"
	}
	return ""
}
