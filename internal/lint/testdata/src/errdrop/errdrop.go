// Package errdrop carries mutant/fixed pairs for the dropped-error
// analyzer: discarded results from durability-critical calls.
package errdrop

import (
	"os"

	"wal"
)

// Mutant: every discard form on the flagged surface.
func discards(l *wal.Log, f *os.File, rec []byte) {
	l.Commit()                          // want `error from wal\.Log\.Commit discarded`
	_ = l.Commit()                      // want `error from wal\.Log\.Commit assigned to _`
	defer l.Commit()                    // want `error from wal\.Log\.Commit discarded by defer`
	go l.Commit()                       // want `error from wal\.Log\.Commit discarded by go`
	f.Sync()                            // want `error from os\.File\.Sync discarded`
	wal.SaveSnapshot("dir", 1, nil)     // want `error from wal\.SaveSnapshot discarded`
	_, _ = l.Append(rec)                // want `error from wal\.Log\.Append assigned to _`
	_ = wal.SaveSnapshot("dir", 2, nil) // want `error from wal\.SaveSnapshot assigned to _`
}

// Fixed: handled errors are clean, as is discarding a non-error result
// while keeping the error.
func handled(l *wal.Log, f *os.File, rec []byte) error {
	if _, err := l.Append(rec); err != nil {
		return err
	}
	if err := l.Commit(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := wal.SaveSnapshot("dir", 3, nil); err != nil {
		return err
	}
	// Unflagged calls may discard freely.
	l.Close()
	return nil
}

// Fixed: returning the error delegates the decision to the caller.
func delegated(l *wal.Log) error {
	return l.Commit()
}
