// Budget-propagation fixtures: downstream calls inside request handlers
// must carry the caller's remaining budget.
package budgetprop

import (
	"time"

	"transport"
)

func relay(req *transport.Request, c *transport.Client) ([]byte, error) {
	_, _ = c.Call("kv", "Get", req.Payload, time.Second) // want `does not propagate the request budget`
	_, _ = c.Call("kv", "Get", req.Payload, req.Budget)

	budget := req.Budget / 2
	_, _ = c.Call("kv", "Get", nil, budget)

	_ = c.Go("kv", "Prefetch", nil) // want `Client\.Go without a budget`
	_ = c.GoBudget("kv", "Prefetch", nil, req.Budget)
	_ = c.GoBudget("kv", "Prefetch", nil, time.Second) // want `does not propagate the request budget`

	_ = c.CallDecode("kv", "Get", nil, nil, time.Until(req.Deadline))
	_ = c.CallDecode("kv", "Get", nil, nil, 5*time.Second) // want `does not propagate the request budget`

	// Fire-and-forget carries no reply deadline: exempt.
	_ = c.OneWay("kv", "Evict", nil)

	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// notHandler takes no request: constant timeouts are its own business.
func notHandler(c *transport.Client) {
	_, _ = c.Call("kv", "Get", nil, time.Second)
}
