// Lock-discipline fixtures. The package is named kvstore so the flagged-
// mutex table binds to these types exactly as it binds to the real ones.
// The ClusterSession pair reproduces the PR 8 regression: dialing a new
// shard session while holding cs.mu stalled every cached read behind one
// unreachable shard.
package kvstore

import (
	"sync"
	"time"

	"transport"
)

type ClusterSession struct {
	mu   sync.Mutex
	sess map[string]*transport.Client
}

// sessionForKeyMutant is the PR 8 bug shape: the dial happens inside the
// critical section.
func (cs *ClusterSession) sessionForKeyMutant(addr string) (*transport.Client, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c := cs.sess[addr]; c != nil {
		return c, nil
	}
	c, err := transport.Dial(addr) // want `blocking operation .*transport\.Dial.* while kvstore\.ClusterSession\.mu is held`
	if err != nil {
		return nil, err
	}
	cs.sess[addr] = c
	return c, nil
}

// sessionForKeyFixed is the shipped fix: check under the lock, dial
// outside it, re-check on insert.
func (cs *ClusterSession) sessionForKeyFixed(addr string) (*transport.Client, error) {
	cs.mu.Lock()
	c := cs.sess[addr]
	cs.mu.Unlock()
	if c != nil {
		return c, nil
	}
	nc, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cur := cs.sess[addr]; cur != nil {
		return cur, nil
	}
	cs.sess[addr] = nc
	return nc, nil
}

type Store struct {
	mu   sync.RWMutex
	vals map[string][]byte
}

// readGate blocks while read-held: deliberately exempt, mirroring the
// cluster's documented read gate that spans RPCs.
func (s *Store) readGate(c *transport.Client) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return c.Call("kv", "Get", nil, time.Second)
}

// flushLocked blocks; rotate calls it under the write lock, so the report
// lands at the call site with the callee chain spelled out.
func (s *Store) flushLocked(c *transport.Client) {
	_, _ = c.Call("kv", "Flush", nil, time.Second)
}

func (s *Store) rotate(c *transport.Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked(c) // want `blocking operation .*Store\.flushLocked.* while kvstore\.Store\.mu is held`
}

// rotateFixed snapshots under the lock and flushes outside it.
func (s *Store) rotateFixed(c *transport.Client) {
	s.mu.Lock()
	n := len(s.vals)
	s.mu.Unlock()
	if n > 0 {
		s.flushLocked(c)
	}
}

func (s *Store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `acquired while the function may already hold it`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *Store) lockAgain() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *Store) reenter() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockAgain() // want `acquires kvstore\.Store\.mu while the function may already hold it`
}

func (s *Store) napLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation .*Sleep.* while kvstore\.Store\.mu is held`
	s.mu.Unlock()
}

func (s *Store) notifyLocked(ch chan struct{}) {
	s.mu.Lock()
	ch <- struct{}{} // want `blocking operation .*channel send.* while kvstore\.Store\.mu is held`
	s.mu.Unlock()
}

// notifyNonBlocking uses select-with-default: never blocks, never
// reported.
func (s *Store) notifyNonBlocking(ch chan struct{}) {
	s.mu.Lock()
	select {
	case ch <- struct{}{}:
	default:
	}
	s.mu.Unlock()
}

// spawnUnderLock starts the blocking work in a goroutine: the held region
// is not charged for it.
func (s *Store) spawnUnderLock(c *transport.Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_, _ = c.Call("kv", "Get", nil, time.Second)
	}()
}

// unlockInBranch releases on the early-out path and again at the end; the
// dial after the branch runs unlocked on every path that reaches it.
func (s *Store) unlockInBranch(addr string, have bool) (*transport.Client, error) {
	s.mu.Lock()
	if have {
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Unlock()
	return transport.Dial(addr)
}

// Session / sessionMgr demonstrate acquisition-order cycle detection:
// abForward takes mgr.mu then session.mu, baBackward the reverse. The
// report lands on the edge that closes the cycle (the later acquisition
// seen from the alphabetically first mutex in the cycle).
type Session struct {
	mu sync.Mutex
}

type sessionMgr struct {
	mu sync.Mutex
}

func (m *sessionMgr) abForward(s *Session) {
	m.mu.Lock()
	s.mu.Lock() // want `lock order cycle`
	s.mu.Unlock()
	m.mu.Unlock()
}

func (m *sessionMgr) baBackward(s *Session) {
	s.mu.Lock()
	m.mu.Lock()
	m.mu.Unlock()
	s.mu.Unlock()
}
