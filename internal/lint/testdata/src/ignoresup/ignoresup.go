// Suppression fixtures: a well-formed //ermi:ignore silences exactly its
// analyzer on its own line or the line below; everything else still
// fires. Malformed-directive reporting is covered by the unit tests in
// internal/lint (a malformed directive cannot share a line with a want
// comment).
package ignoresup

import (
	"time"

	"transport"
)

func probe(req *transport.Request, c *transport.Client) ([]byte, error) {
	// Suppressed, directive above the line:
	//ermi:ignore budgetprop probe RPC: the deadline is the probe cycle, not the caller's budget
	_, _ = c.Call("kv", "Ping", nil, time.Second)

	_, _ = c.Call("kv", "Ping", nil, time.Second) //ermi:ignore budgetprop same probe, end-of-line form

	// A directive for a different analyzer suppresses nothing here:
	//ermi:ignore payloadown wrong analyzer for this line
	_, _ = c.Call("kv", "Ping", nil, time.Second) // want `does not propagate the request budget`

	_, _ = c.Call("kv", "Ping", nil, time.Second) // want `does not propagate the request budget`

	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}
