// Codec-strictness fixtures: marker/generator drift and view-escape
// cases.
package codecstrict

import "time"

// goodReq resolves cleanly and has its "generated" methods present (a
// stand-in for the real *_ermi.go siblings).
//
//ermi:codec
type goodReq struct {
	Key string
	Val []byte
}

func (v *goodReq) SizeERMI() int                { return 0 }
func (v *goodReq) MarshalERMI(b []byte) []byte  { return b }
func (v *goodReq) UnmarshalERMI(b []byte) error { return nil }
func (*goodReq) ERMIViews()                     {}

type inner struct {
	N int
}

// badEmbed would be rejected by the generator: the marker is a lie.
//
//ermi:codec
type badEmbed struct { // want `marked //ermi:codec but the generator would reject it: .*embedded fields are not supported`
	inner
}

//ermi:codec
type badArray struct { // want `generator would reject it: .*fixed-size arrays are not supported`
	Buf [8]byte
}

//ermi:codec
type badForeign struct { // want `generator would reject it: .*foreign type time\.Time is not supported`
	When time.Time
}

// stale resolves fine but the generated methods are missing: the marker
// (or a field) was added without re-running the generator.
//
//ermi:codec
type stale struct { // want `marked //ermi:codec but has no generated SizeERMI method`
	N int
}

type cache struct {
	vals map[string][]byte
	last goodReq
}

// keep stores views into receiver-rooted memory that outlives the
// request.
func (c *cache) keep(r goodReq) {
	c.vals[r.Key] = r.Val // want `payload view field Val stored into long-lived memory`
	c.last = r            // want `decoded view value r stored into long-lived memory`
}

// keepCopy uses the sanctioned copy idioms; nothing aliases the frame.
func (c *cache) keepCopy(r goodReq) {
	c.vals[r.Key] = append([]byte(nil), r.Val...)
	cp := goodReq{Key: r.Key, Val: append([]byte(nil), r.Val...)}
	c.last = cp
}

// localOnly fills a function-local map: dropped with the frame, not
// long-lived.
func localOnly(r goodReq) int {
	m := make(map[string][]byte)
	m[r.Key] = r.Val
	return len(m)
}
