// Package wal is a fixture stub mirroring the durability surface of the
// real elasticrmi/internal/wal package; the errdrop analyzer binds to it
// structurally (package basename + type + method).
package wal

// Log mirrors the group-committed write-ahead log.
type Log struct{}

func (l *Log) Append(rec []byte) (uint64, error) { return 0, nil }
func (l *Log) Commit() error                     { return nil }
func (l *Log) Close() error                      { return nil }

// SaveSnapshot mirrors the compaction entry point.
func SaveSnapshot(dir string, lsn uint64, payload []byte) error { return nil }
