// Payload-ownership fixtures: each mutant/fixed pair doubles as the
// mutation check for one invariant — the buggy form must be flagged, the
// idiomatic form must stay clean.
package payloadown

import "transport"

// wireReq stands in for a generated viewy codec type: its Val field is a
// zero-copy view into the payload it was decoded from.
type wireReq struct {
	Key string
	Val []byte
}

func (*wireReq) ERMIViews() {}

type server struct {
	cache map[string][]byte
	last  wireReq
}

var updates = make(chan []byte, 1)

func sink(b []byte) {}

// storeNoRetain lets a decoded view escape into the receiver's cache
// without detaching the slab: the classic use-after-recycle.
func (s *server) storeNoRetain(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	s.cache[r.Key] = r.Val // want `escapes the handler .* without req\.Retain`
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// storeRetain is the fixed form: Retain before the escape.
func (s *server) storeRetain(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	req.Retain()
	s.cache[r.Key] = r.Val
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// retainInBranch guards only one path: the escape below the if is not
// covered by a Retain inside it.
func (s *server) retainInBranch(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	if len(r.Val) > 8 {
		req.Retain()
	}
	s.cache[r.Key] = r.Val // want `escapes the handler .* without req\.Retain`
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// storeCopy copies the view out of the frame — the sanctioned idiom — so
// nothing payload-derived escapes.
func (s *server) storeCopy(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	s.cache[r.Key] = append([]byte(nil), r.Val...)
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// droppedRelease is the registry mutant: every successful reply is
// transport.Encode output, but the handler never hands ownership over, so
// the reply slab leaks out of the arena.
func droppedRelease(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	return transport.Encode(struct{}{}) // want `without setting req\.ReleaseReply = true`
}

// properRelease is the fixed form.
func properRelease(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// releasedEncodedLocal returns Encode output through a local; the release
// mark still covers it.
func releasedEncodedLocal(req *transport.Request) ([]byte, error) {
	out, err := transport.Encode(struct{}{})
	if err != nil {
		return nil, err
	}
	req.ReleaseReply = true
	return out, nil
}

// echoReleased marks a payload-derived reply as arena-owned: the
// transport would recycle a buffer the handler never owned.
func echoReleased(req *transport.Request) ([]byte, error) {
	req.ReleaseReply = true
	return req.Payload, nil // want `payload-derived memory with req\.ReleaseReply set`
}

// echo returns the payload without the release mark: fine, the slab stays
// with the request.
func echo(req *transport.Request) ([]byte, error) {
	return req.Payload, nil
}

// goroutineCapture hands a view to a goroutine that outlives the handler.
func goroutineCapture(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	go func() {
		sink(r.Val) // want `captured by a spawned goroutine`
	}()
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// goroutineRetained is the fixed form of the same shape.
func goroutineRetained(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	req.Retain()
	go func() {
		sink(r.Val)
	}()
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// channelSend publishes the raw payload to another goroutine.
func channelSend(req *transport.Request) ([]byte, error) {
	updates <- req.Payload // want `sent on a channel`
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}

// syncUse passes views to ordinary synchronous calls: the callee finishes
// inside the handler's lifetime, no escape.
func syncUse(req *transport.Request) ([]byte, error) {
	var r wireReq
	if err := transport.Decode(req.Payload, &r); err != nil {
		return nil, err
	}
	sink(r.Val)
	req.ReleaseReply = true
	return transport.Encode(struct{}{})
}
