// Package goroleak carries mutant/fixed pairs for the goroutine-leak
// analyzer: channel-blocked infinite loops with no exit, and unbuffered
// sends whose receiver can abandon the goroutine.
package goroleak

import "time"

func work(ch chan int) int { return <-ch }

// Mutant: the pump loop blocks on ch forever and nothing can stop it.
func leakyPump(ch chan int) {
	go func() {
		for { // want `goroutine never exits: this loop blocks on channel operations but has no return`
			v := <-ch
			_ = v
		}
	}()
}

// Fixed: a stop case that returns.
func stoppablePump(ch chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-stop:
				return
			}
		}
	}()
}

// Fixed: ranging over the channel; the producer closing it ends the loop.
func rangePump(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Fixed: a conditional loop owns its own exit.
func boundedPump(ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			<-ch
		}
	}()
}

// Fixed: a break out of the loop.
func breakingPump(ch chan int) {
	go func() {
		for {
			if v := <-ch; v < 0 {
				break
			}
		}
	}()
}

// Mutant: a break that only leaves the inner select-less switch does not
// exit the loop.
func innerBreakPump(ch chan int) {
	go func() {
		for { // want `goroutine never exits`
			switch v := <-ch; {
			case v < 0:
				break
			default:
				_ = v
			}
		}
	}()
}

// Named function spawned by go: analyzed like a literal.
func pumpForever(ch chan int) {
	for { // want `goroutine never exits`
		ch <- 1
	}
}

func spawnNamed(ch chan int) {
	go pumpForever(ch)
}

// Clean: the same body called synchronously is the caller's problem, not
// a goroutine leak.
func callNamed(ch chan int) {
	_ = work(ch)
}

// Mutant: the result send races a timeout; when the timeout wins, the
// goroutine blocks on the unbuffered channel forever.
func abandonedSender() int {
	ch := make(chan int)
	go func() {
		ch <- work(nil) // want `goroutine sends on unbuffered channel ch whose receiver selects against other cases`
	}()
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return -1
	}
}

// Fixed: one slot of buffer lets the send complete and the channel be
// collected even when the timeout wins.
func bufferedSender() int {
	ch := make(chan int, 1)
	go func() {
		ch <- work(nil)
	}()
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return -1
	}
}

// Fixed: the receive is unconditional, so the send always finds its
// partner.
func drainedSender() int {
	ch := make(chan int)
	go func() {
		ch <- work(nil)
	}()
	return <-ch
}

// Fixed: the sender selects against a stop channel, so it can bail out.
func selectingSender(stop chan struct{}) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- work(nil):
		case <-stop:
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-stop:
		return -1
	}
}
