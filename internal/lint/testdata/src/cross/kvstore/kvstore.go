// Package kvstore is the importing side of the cross-package fact
// fixture (the basename makes the flagged-mutex table bind): every
// mutant here is only visible through facts exported by cross/helper.
package kvstore

import (
	"sync"
	"time"

	"cross/helper"
	"transport"
)

// Server mirrors the real kvstore.Server: viewMu is a flagged mutex.
type Server struct {
	viewMu sync.Mutex
	cl     *transport.Client
}

// Mutant: helper.Refresh dials, and the dial runs under viewMu — the
// blocking primitive is two packages away from the lock.
func (s *Server) RefreshLocked(addr string) {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	c, err := helper.Refresh(addr) // want `blocking operation \(a call to helper\.Refresh \(transport\.Dial \(connection setup\)\)\) while kvstore\.Server\.viewMu is held`
	if err == nil {
		s.cl = c
	}
}

// refresh is a local intermediate: its blocking nature comes entirely
// from the imported fact.
func (s *Server) refresh(addr string) {
	c, err := helper.Refresh(addr)
	if err == nil {
		s.cl = c
	}
}

// Mutant: the same dial, three hops deep (method → local helper →
// imported helper → transport).
func (s *Server) RefreshIndirect(addr string) {
	s.viewMu.Lock()
	s.refresh(addr) // want `blocking operation \(a call to kvstore\.Server\.refresh \(a call to helper\.Refresh \(transport\.Dial \(connection setup\)\)\)\) while kvstore\.Server\.viewMu is held`
	s.viewMu.Unlock()
}

// Fixed: drop the lock before the dial, retake it to install.
func (s *Server) RefreshUnlocked(addr string) {
	s.viewMu.Lock()
	s.viewMu.Unlock()
	c, err := helper.Refresh(addr)
	if err != nil {
		return
	}
	s.viewMu.Lock()
	s.cl = c
	s.viewMu.Unlock()
}

// Handle is a request handler; budget discipline must see through the
// helper package.
func (s *Server) Handle(req *transport.Request) ([]byte, error) {
	if _, err := helper.Hardcoded(s.cl); err != nil { // want `handler calls helper\.Hardcoded, which issues a downstream transport call whose budget does not derive from this request`
		return nil, err
	}
	if _, err := helper.Fetch(s.cl, 2*time.Second); err != nil { // want `argument 2 of helper\.Fetch flows into a downstream transport budget`
		return nil, err
	}
	// Fixed: the budget threads through the helper's parameter.
	return helper.Fetch(s.cl, req.Budget)
}

// Mutant: a switch over the imported marked enum missing a member.
func describe(m helper.Mode) string {
	switch m { // want `switch over helper\.Mode \(//ermi:exhaustive\) does not handle ModeParanoid`
	case helper.ModeFast:
		return "fast"
	case helper.ModeSafe:
		return "safe"
	}
	return ""
}

// Fixed: all members handled.
func describeAll(m helper.Mode) string {
	switch m {
	case helper.ModeFast:
		return "fast"
	case helper.ModeSafe:
		return "safe"
	case helper.ModeParanoid:
		return "paranoid"
	}
	return ""
}
