// Package helper is the dependency side of the cross-package fact
// fixture: it wraps transport primitives behind plain functions so the
// importing package (cross/kvstore) can only be checked correctly if
// facts flow across the package boundary.
package helper

import (
	"time"

	"transport"
)

// Refresh dials — a blocking operation — without saying so in its name.
func Refresh(addr string) (*transport.Client, error) {
	return transport.Dial(addr)
}

// Fetch forwards with the caller's timeout: its second parameter flows
// into a downstream transport budget slot.
func Fetch(c *transport.Client, timeout time.Duration) ([]byte, error) {
	return c.Call("svc", "m", nil, timeout)
}

// Hardcoded issues a downstream call whose budget derives from nothing
// the caller controls.
func Hardcoded(c *transport.Client) ([]byte, error) {
	return c.Call("svc", "m", nil, 2*time.Second)
}

// Mode is a marked enum declared here, switched over in cross/kvstore.
//
//ermi:exhaustive
type Mode int

const (
	ModeFast Mode = iota
	ModeSafe
	ModeParanoid
)
