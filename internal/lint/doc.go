// Package lint is the ermi-vet analysis suite: mechanical enforcement of
// the invariants this codebase relies on but the compiler cannot see. It
// runs as a vettool (make lint, or directly:
//
//	go build -o bin/ermi-vet ./cmd/ermi-vet
//	go vet -vettool=$PWD/bin/ermi-vet ./...
//
// so it inherits go vet's per-package scheduling and build-cache result
// caching), and as a library through Analyze for the golden tests under
// testdata/src.
//
// # Analyzers
//
// payloadown enforces the arena ownership contract from the transport's
// memory pipeline: a handler that lets payload-derived memory (the raw
// Request.Payload or a zero-copy view decoded from it) escape its own
// lifetime — stored into a receiver, sent on a channel, captured by a
// spawned goroutine — must call req.Retain() first, because the arena
// recycles the slab when the call completes. It also checks the reply
// side: transport.Encode output returned without req.ReleaseReply = true
// leaks the reply slab out of the arena (the registry shipped exactly
// this leak until this suite caught it), and conversely payload-derived
// returns with ReleaseReply set would have the transport recycle a
// buffer the handler never owned.
//
// lockorder targets the blocking-under-mutex class found in the session
// layer (a network dial inside a mutex that every cached read takes,
// stalling the node for a full dial timeout): for a flagged set of
// hot-path mutexes it reports blocking operations — dials, RPC calls and
// waits, sleeps, file syncs, unguarded channel operations — reachable
// while the lock is held, including through same-package callees, plus
// re-acquisition self-deadlocks and inconsistent acquisition orders
// between flagged mutex pairs. Read-locked (RLock) regions are exempt
// from the blocking check: shared holders don't serialize each other.
//
// codecstrict re-runs the ermi-gen resolver over every //ermi:codec type
// so a shape the generator would reject (embedded fields, fixed-size
// arrays, foreign named types) is reported where the type is declared
// rather than at the next make generate; it flags annotated types whose
// generated SizeERMI/MarshalERMI/UnmarshalERMI methods are missing
// (stale or never-run generation); and it reports decoded view values
// stored into long-lived memory without the sanctioned copy idiom
// (append([]byte(nil), v...)) — the aliasing bug the ERMIViews marker
// exists to make visible.
//
// budgetprop checks that handlers thread the caller's budget through:
// a function taking a *transport.Request that issues a downstream
// Call/CallDecode/GoBudget must derive the budget or timeout argument
// from req.Budget or req.Deadline, and plain Go (no budget at all) is
// reported outright. Without propagation a chain of hops can outlive
// the deadline the original caller is still waiting on. OneWay sends
// are exempt (nothing upstream is waiting).
//
// goroleak reports two goroutine shapes that can never terminate: a
// spawned loop that blocks on channel operations but contains no exit at
// all — no return, no break out of the loop, no stop-channel select case
// — and a spawned send on a provably unbuffered local channel whose only
// receiver selects it against other cases, so losing the race once parks
// the sender forever (the classic leaked-timeout-goroutine bug). Both
// are reported at the go statement, where the fix (a done case, a
// one-slot buffer) belongs.
//
// errdrop flags discarded errors from a curated list of calls whose
// failure silently voids a durability guarantee: wal.Log.Append and
// Commit, wal.SaveSnapshot, os.File.Sync and the store's snapshotNow.
// Dropping an ordinary error is style; dropping one of these means an
// acked write may not survive a crash. All discard forms are caught —
// bare call statement, blank assignment, defer and go — and the
// suppression directive is the sanctioned way to mark a deliberate
// best-effort site.
//
// exhaustive enforces closed enums across package boundaries: a constant
// set whose type declaration carries an //ermi:exhaustive marker (the
// transport's frameKind and respStatus) exports an enum fact, and every
// switch over such a type — in any package that imports it — must either
// name every member (by value, so aliases count) or carry an explicit
// default clause as the reader's signed statement that the remainder is
// handled. Adding a wire enum member without updating each reader is
// thereby a red build instead of a silently dropped frame.
//
// # Facts
//
// The suite is whole-program: each package's vet run exports a fact file
// (the .vetx path the go command hands dependents via PackageVetx) with
// per-function summaries — does it block, which flagged mutexes does it
// acquire, which parameter flows into a downstream budget, does it retain
// or release payload memory — plus the //ermi:exhaustive enum tables.
// Importing packages merge these facts before analysis, so lockorder sees
// a dial three calls deep in another package, budgetprop follows a budget
// through a cross-package helper, and exhaustive checks switches far from
// the enum's declaration. Every exported file embeds its own imports'
// facts, so direct-import files carry the transitive closure.
//
// The codec (facts.go) is versioned and total on hostile input: a fact
// file that is missing, truncated, bit-flipped or written by a different
// tool version decodes to an error, and the importer simply drops it —
// analysis degrades to package-local, losing cross-package findings but
// never inventing one. Encoding is deterministic (sorted keys), which the
// go command's content-addressed build cache turns into stable cache
// hits; `make lint` prints the resulting hit rate and `make
// lint-cache-check` gates it.
//
// # Suppression
//
// A finding that is intentional is silenced in place:
//
//	//ermi:ignore <analyzer> <reason>
//
// on the offending line or the line above. The reason is mandatory —
// a directive without one (or naming an unknown analyzer) is itself
// reported — so every suppression documents why the invariant does not
// apply at that site.
//
// # Adding an analyzer
//
// Declare a *Analyzer (Name, Doc, Run), register it in All, and add a
// fixture package under testdata/src/<name> with `// want "regexp"`
// comments pinning each diagnostic; fixtures may import each other, and
// linttest builds facts for a fixture's dependencies in load order, so
// cross-package behavior is testable (see testdata/src/cross); linttest.Run fails on both missed
// wants and unexpected findings, so every fixture carries the mutant and
// the fixed form of its invariant. The framework is self-contained
// (stdlib only — the build environment pins the module graph, so the
// golang.org/x/tools/go/analysis machinery is reimplemented in the few
// hundred lines this suite needs), but the Analyzer/Pass/Diagnostic
// shapes mirror go/analysis closely enough that porting an analyzer
// over is mechanical if the dependency ever lands.
package lint
