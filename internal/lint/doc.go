// Package lint is the ermi-vet analysis suite: mechanical enforcement of
// the invariants this codebase relies on but the compiler cannot see. It
// runs as a vettool (make lint, or directly:
//
//	go build -o bin/ermi-vet ./cmd/ermi-vet
//	go vet -vettool=$PWD/bin/ermi-vet ./...
//
// so it inherits go vet's per-package scheduling and build-cache result
// caching), and as a library through Analyze for the golden tests under
// testdata/src.
//
// # Analyzers
//
// payloadown enforces the arena ownership contract from the transport's
// memory pipeline: a handler that lets payload-derived memory (the raw
// Request.Payload or a zero-copy view decoded from it) escape its own
// lifetime — stored into a receiver, sent on a channel, captured by a
// spawned goroutine — must call req.Retain() first, because the arena
// recycles the slab when the call completes. It also checks the reply
// side: transport.Encode output returned without req.ReleaseReply = true
// leaks the reply slab out of the arena (the registry shipped exactly
// this leak until this suite caught it), and conversely payload-derived
// returns with ReleaseReply set would have the transport recycle a
// buffer the handler never owned.
//
// lockorder targets the blocking-under-mutex class found in the session
// layer (a network dial inside a mutex that every cached read takes,
// stalling the node for a full dial timeout): for a flagged set of
// hot-path mutexes it reports blocking operations — dials, RPC calls and
// waits, sleeps, file syncs, unguarded channel operations — reachable
// while the lock is held, including through same-package callees, plus
// re-acquisition self-deadlocks and inconsistent acquisition orders
// between flagged mutex pairs. Read-locked (RLock) regions are exempt
// from the blocking check: shared holders don't serialize each other.
//
// codecstrict re-runs the ermi-gen resolver over every //ermi:codec type
// so a shape the generator would reject (embedded fields, fixed-size
// arrays, foreign named types) is reported where the type is declared
// rather than at the next make generate; it flags annotated types whose
// generated SizeERMI/MarshalERMI/UnmarshalERMI methods are missing
// (stale or never-run generation); and it reports decoded view values
// stored into long-lived memory without the sanctioned copy idiom
// (append([]byte(nil), v...)) — the aliasing bug the ERMIViews marker
// exists to make visible.
//
// budgetprop checks that handlers thread the caller's budget through:
// a function taking a *transport.Request that issues a downstream
// Call/CallDecode/GoBudget must derive the budget or timeout argument
// from req.Budget or req.Deadline, and plain Go (no budget at all) is
// reported outright. Without propagation a chain of hops can outlive
// the deadline the original caller is still waiting on. OneWay sends
// are exempt (nothing upstream is waiting).
//
// # Suppression
//
// A finding that is intentional is silenced in place:
//
//	//ermi:ignore <analyzer> <reason>
//
// on the offending line or the line above. The reason is mandatory —
// a directive without one (or naming an unknown analyzer) is itself
// reported — so every suppression documents why the invariant does not
// apply at that site.
//
// # Adding an analyzer
//
// Declare a *Analyzer (Name, Doc, Run), register it in All, and add a
// fixture package under testdata/src/<name> with `// want "regexp"`
// comments pinning each diagnostic; linttest.Run fails on both missed
// wants and unexpected findings, so every fixture carries the mutant and
// the fixed form of its invariant. The framework is self-contained
// (stdlib only — the build environment pins the module graph, so the
// golang.org/x/tools/go/analysis machinery is reimplemented in the few
// hundred lines this suite needs), but the Analyzer/Pass/Diagnostic
// shapes mirror go/analysis closely enough that porting an analyzer
// over is mechanical if the dependency ever lands.
package lint
