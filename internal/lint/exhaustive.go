package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// Exhaustive enforces full coverage of switches over marked enums. A
// const enum whose type carries the marker
//
//	//ermi:exhaustive
//
// on its type declaration promises: every switch over a value of this
// type names every member, or carries an explicit default saying what
// happens to the ones it doesn't. With the marker, adding an enum member
// (a new wire frame kind, a new status code) turns every reader that
// hasn't decided what to do with it into a lint finding instead of a
// silent drop at runtime.
//
// Membership travels through the fact table, so a switch in one package
// over an enum declared in another is checked against the declaring
// package's members. Comparison is by constant value: aliases with equal
// values count as covering each other. Switches with no tag, over
// unmarked types, or listing every member are clean; an explicit
// `default:` clause satisfies the check by fiat — it is the reader's
// signed statement that unknown members are handled.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "check that switches over //ermi:exhaustive enum types handle every member or carry an explicit default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	named := namedOf(tagType)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	enum := pass.Facts.Enum(key)
	if enum == nil {
		return
	}
	covered := map[int64]bool{}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the reader owns the remainder
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}
	var missing []string
	for _, m := range enum.Members {
		if !covered[m.Val] {
			missing = append(missing, m.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(), "switch over %s (//ermi:exhaustive) does not handle %s: add the missing cases or an explicit default deciding what happens to them", shortFactKey(key), strings.Join(missing, ", "))
}
