package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A diagnostic can be silenced — for an invariant violation that is
// deliberate and understood — with
//
//	//ermi:ignore <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// directly above it. The reason is mandatory: a suppression is a claim
// that a human weighed the invariant and decided the code is right, and
// the claim must carry its argument. A directive with a missing or
// unknown analyzer name, or no reason, is itself reported (under the
// pseudo-analyzer "ignore") and suppresses nothing.

const ignorePrefix = "//ermi:ignore"

type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	bad      string // non-empty: why the directive is malformed
}

type ignoreIndex struct {
	// byLine maps filename:line → directives attached to that line.
	byLine map[string]map[int][]ignoreDirective
	bad    []ignoreDirective
}

// collectIgnores scans every comment in files for ermi:ignore directives.
// A directive is indexed both at its own line and (when it is the only
// thing on its line) it naturally guards the following line via the
// line+1 lookup in suppressed.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	ix := &ignoreIndex{byLine: make(map[string]map[int][]ignoreDirective)}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				d := ignoreDirective{pos: c.Pos()}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "ermi:ignore needs an analyzer name and a reason: //ermi:ignore <analyzer> <reason>"
				case !known[fields[0]]:
					d.bad = "ermi:ignore names unknown analyzer " + quote(fields[0])
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "ermi:ignore " + fields[0] + " needs a reason: a suppression must say why the code is right"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				pos := fset.Position(c.Pos())
				lines := ix.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]ignoreDirective)
					ix.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				if d.bad != "" {
					ix.bad = append(ix.bad, d)
				}
			}
		}
	}
	return ix
}

// quote is %q-lite.
func quote(s string) string { return `"` + s + `"` }

// suppressedReason reports whether d is covered by a well-formed directive
// on its own line or the line above, and with what reason.
func (ix *ignoreIndex) suppressedReason(d Diagnostic) (string, bool) {
	lines := ix.byLine[d.Position.Filename]
	if lines == nil {
		return "", false
	}
	for _, ln := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.bad == "" && dir.analyzer == d.Analyzer {
				return dir.reason, true
			}
		}
	}
	return "", false
}

// malformed returns one diagnostic per malformed directive.
func (ix *ignoreIndex) malformed(fset *token.FileSet) []Diagnostic {
	var out []Diagnostic
	for _, d := range ix.bad {
		out = append(out, Diagnostic{
			Analyzer: "ignore",
			Pos:      d.pos,
			Position: fset.Position(d.pos),
			Message:  d.bad,
		})
	}
	return out
}
