package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder guards the locking discipline around the project's named
// mutexes (the ones that serialize hot-path state):
//
//   - No blocking operation — dialing, a synchronous transport call,
//     sleeping, fsync, an unguarded channel operation, or a call to ANY
//     function that transitively does one of those — may run while one of
//     the flagged mutexes is held exclusively. PR 8 shipped exactly this
//     bug: ClusterSession dialed a new shard session under cs.mu, so one
//     unreachable shard stalled every cached read.
//
//   - Flagged mutexes must be acquired in a consistent order: the
//     analyzer builds an acquisition graph (edges from each held mutex to
//     each newly acquired one, including acquisitions made by callees)
//     and reports cycles, plus direct re-entry (locking a mutex the
//     function may already hold).
//
// Read-held (RLock) regions are exempt from the blocking check: the
// cluster read gate deliberately spans RPCs so membership changes
// serialize against in-flight operations. They still contribute
// acquisition-order edges.
//
// Callee behavior comes from the pass's fact table (factbuild.go): local
// functions and imported packages alike, so a kvstore method that calls a
// core helper that calls transport.Client.Call is a blocking op under
// viewMu even though no blocking primitive appears in kvstore. The
// per-function walk stays syntax-directed (straight-line lock regions with
// branch-local cloning), which matches how this codebase writes critical
// sections.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "check that no blocking operation runs under a flagged mutex and that flagged mutexes are acquired in a consistent order",
	Run:  runLockorder,
}

// flaggedMutexes names the guarded locks as pkg-basename → type →
// field. Adding a newly-introduced mutex here is how it joins the
// discipline.
var flaggedMutexes = map[string]map[string]map[string]bool{
	"transport": {
		"Client": {"mu": true},
		"Server": {"mu": true},
	},
	"kvstore": {
		"Store":      {"mu": true},
		"Server":     {"viewMu": true},
		"sessionMgr": {"mu": true},
		// Cluster.mu is deliberately absent: it is the management-plane
		// topology gate, documented to be held (exclusively during
		// membership changes, shared across routed operations) while RPCs
		// are in flight, so every change serializes against every in-flight
		// operation. Its hold times are bounded by probe/dial timeouts, not
		// by the hot path.
		"Cluster":        {"sessMu": true, "repairMu": true},
		"ClusterSession": {"mu": true},
		"Session":        {"mu": true},
		"Client":         {"mu": true},
	},
}

// mutexKey names one flagged mutex: "kvstore.Cluster.mu".
type mutexKey string

// lockOp classifies one method call on a flagged mutex.
type lockOp struct {
	key   mutexKey
	op    string // Lock, RLock, TryLock, Unlock, RUnlock
	write bool   // exclusive acquisition
}

// mutexOp decodes call as `recv.field.Op()` on a flagged mutex.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
	default:
		return lockOp{}, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	tv, ok := info.Types[field.X]
	if !ok {
		return lockOp{}, false
	}
	n := namedOf(tv.Type)
	if n == nil {
		return lockOp{}, false
	}
	base := pkgElem(n.Obj().Pkg())
	if !flaggedMutexes[base][n.Obj().Name()][field.Sel.Name] {
		return lockOp{}, false
	}
	return lockOp{
		key:   mutexKey(base + "." + n.Obj().Name() + "." + field.Sel.Name),
		op:    op,
		write: op == "Lock" || op == "TryLock",
	}, true
}

// blockingCall classifies a resolved callee as inherently blocking.
// Asynchronous submission (Go, GoBudget, OneWay enqueue is a write but
// Call-class methods wait for the reply) is not in the set.
func blockingCall(pkgBase, recv, name string) (string, bool) {
	switch {
	case strings.HasPrefix(name, "Dial") && (pkgBase == "transport" || pkgBase == "net" || pkgBase == "kvstore"):
		return pkgBase + "." + name + " (connection setup)", true
	case pkgBase == "transport" && recv == "Client" &&
		(name == "Call" || name == "CallDecode" || name == "OneWay" || name == "OneWayDecode"):
		return "transport call " + name, true
	case pkgBase == "transport" && recv == "Call" &&
		(name == "Wait" || name == "Payload" || name == "Decode"):
		return "transport Call." + name + " (waits for completion)", true
	case name == "Sleep":
		who := recv
		if who == "" {
			who = pkgBase
		}
		return who + ".Sleep", true
	case pkgBase == "os" && recv == "File" && name == "Sync":
		return "os.File.Sync (fsync)", true
	case pkgBase == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

func runLockorder(pass *Pass) {
	g := &lockGraph{edges: map[mutexKey]map[mutexKey]token.Pos{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockCheck{pass: pass, graph: g}
			lc.block(fd.Body.List, map[mutexKey]*holdInfo{})
		}
	}
	g.reportCycles(pass)
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// holdInfo records one held mutex.
type holdInfo struct {
	write bool
	pos   token.Pos
}

// lockGraph accumulates acquisition-order edges across the package.
type lockGraph struct {
	edges map[mutexKey]map[mutexKey]token.Pos
}

func (g *lockGraph) add(from, to mutexKey, pos token.Pos) {
	if from == to {
		return // re-entry is reported at the acquisition site, not as a cycle
	}
	m := g.edges[from]
	if m == nil {
		m = map[mutexKey]token.Pos{}
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles reports each acquisition-order cycle once, at the edge
// that closes it.
func (g *lockGraph) reportCycles(pass *Pass) {
	keys := make([]mutexKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	reported := map[string]bool{}
	for _, start := range keys {
		// DFS from each node; a path back to the start is a cycle.
		var path []mutexKey
		var walk func(k mutexKey) bool
		seen := map[mutexKey]bool{}
		walk = func(k mutexKey) bool {
			path = append(path, k)
			defer func() { path = path[:len(path)-1] }()
			tos := make([]mutexKey, 0, len(g.edges[k]))
			for to := range g.edges[k] {
				tos = append(tos, to)
			}
			sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
			for _, to := range tos {
				if to == start && len(path) > 1 {
					cyc := append(append([]mutexKey{}, path...), start)
					if min := canonicalCycle(cyc); !reported[min] {
						reported[min] = true
						pass.Reportf(g.edges[k][to], "lock order cycle: %s — acquisitions in inconsistent order can deadlock", cycleString(cyc))
					}
					continue
				}
				if !seen[to] {
					seen[to] = true
					walk(to)
				}
			}
			return false
		}
		seen[start] = true
		walk(start)
	}
}

// canonicalCycle returns a rotation-invariant name for a cycle a→b→a.
func canonicalCycle(cyc []mutexKey) string {
	body := cyc[:len(cyc)-1] // drop repeated start
	mini := 0
	for i := range body {
		if body[i] < body[mini] {
			mini = i
		}
	}
	rot := append(append([]mutexKey{}, body[mini:]...), body[:mini]...)
	parts := make([]string, len(rot))
	for i, k := range rot {
		parts[i] = string(k)
	}
	return strings.Join(parts, "→")
}

func cycleString(cyc []mutexKey) string {
	parts := make([]string, len(cyc))
	for i, k := range cyc {
		parts[i] = string(k)
	}
	return strings.Join(parts, " → ")
}

// lockCheck walks one function, tracking held flagged mutexes. Callee
// behavior — blocking, acquisitions — comes from the pass's fact table,
// which covers this package and everything imported, so a kvstore method
// that calls a core helper that dials is a blocking op here.
type lockCheck struct {
	pass  *Pass
	graph *lockGraph
}

// block analyzes a statement list with the given entry hold-set, returning
// the exit hold-set (nil when the block always terminates in a return or
// panic, so its state never flows onward).
func (lc *lockCheck) block(stmts []ast.Stmt, held map[mutexKey]*holdInfo) map[mutexKey]*holdInfo {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			if out := lc.block(s.List, cloneHeld(held)); out != nil {
				held = out
			}
		case *ast.LabeledStmt:
			if out := lc.block([]ast.Stmt{s.Stmt}, held); out != nil {
				held = out
			}
		case *ast.IfStmt:
			if s.Init != nil {
				lc.leaf(s.Init, held)
			}
			lc.scanExpr(s.Cond, held)
			thenOut := lc.block(s.Body.List, cloneHeld(held))
			var elseOut map[mutexKey]*holdInfo
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut = lc.block(e.List, cloneHeld(held))
			case *ast.IfStmt:
				elseOut = lc.block([]ast.Stmt{e}, cloneHeld(held))
			default:
				elseOut = held // no else: fallthrough path keeps entry state
			}
			held = mergeHeld(thenOut, elseOut)
			if held == nil {
				return nil // both arms terminate
			}
		case *ast.ForStmt:
			if s.Init != nil {
				lc.leaf(s.Init, held)
			}
			lc.scanExpr(s.Cond, held)
			lc.block(s.Body.List, cloneHeld(held))
			// Loop bodies are assumed lock-balanced; the entry state flows on.
		case *ast.RangeStmt:
			lc.scanExpr(s.X, held)
			lc.block(s.Body.List, cloneHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var body *ast.BlockStmt
			if sw, ok := s.(*ast.SwitchStmt); ok {
				if sw.Init != nil {
					lc.leaf(sw.Init, held)
				}
				lc.scanExpr(sw.Tag, held)
				body = sw.Body
			} else {
				body = s.(*ast.TypeSwitchStmt).Body
			}
			exits := []map[mutexKey]*holdInfo{held} // no-case-taken path
			for _, cl := range body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					exits = append(exits, lc.block(cc.Body, cloneHeld(held)))
				}
			}
			held = mergeAll(exits)
			if held == nil {
				return nil
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) && len(heldWrite(held)) > 0 {
				lc.reportBlocked(s.Pos(), "a select with no default case", held)
			}
			exits := []map[mutexKey]*holdInfo{}
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					exits = append(exits, lc.block(cc.Body, cloneHeld(held)))
				}
			}
			if merged := mergeAll(exits); merged != nil {
				held = merged
			} else if len(exits) > 0 {
				return nil
			}
		case *ast.ReturnStmt:
			lc.leaf(s, held)
			return nil
		case *ast.DeferStmt:
			lc.deferStmt(s, held)
		case *ast.GoStmt:
			// A goroutine's work is not the spawner's: nothing inside it
			// blocks the held region, and its own lock use is analyzed when
			// its body (if a named function) gets its own walk.
		default:
			lc.leaf(stmt, held)
		}
	}
	return held
}

// deferStmt handles `defer x.mu.Unlock()` (the mutex stays held to the
// end of the function, which is exactly what the caller asked for) and
// scans other deferred calls for blocking work — a deferred blocking call
// executes while every still-held mutex is held.
func (lc *lockCheck) deferStmt(s *ast.DeferStmt, held map[mutexKey]*holdInfo) {
	if op, ok := mutexOp(lc.pass.TypesInfo, s.Call); ok {
		_ = op // deferred unlocks keep the mutex held for the region; nothing to do
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// Deferred closures commonly just unlock; scan them for blocking
		// ops but let unlocks pass.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isMu := mutexOp(lc.pass.TypesInfo, call); isMu {
				return true
			}
			lc.checkCall(call, held)
			return true
		})
		return
	}
	lc.checkCall(s.Call, held)
}

// leaf processes a non-control-flow statement: mutex ops first (they
// change state), then blocking scans over the contained expressions.
func (lc *lockCheck) leaf(stmt ast.Stmt, held map[mutexKey]*holdInfo) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if len(heldWrite(held)) > 0 {
				lc.reportBlocked(t.Pos(), "a channel send", held)
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && len(heldWrite(held)) > 0 {
				lc.reportBlocked(t.Pos(), "a channel receive", held)
			}
		case *ast.CallExpr:
			if op, ok := mutexOp(lc.pass.TypesInfo, t); ok {
				lc.applyLock(op, t.Pos(), held)
				return false
			}
			lc.checkCall(t, held)
		}
		return true
	})
}

// scanExpr blocking-scans one expression (condition, tag, range operand).
func (lc *lockCheck) scanExpr(e ast.Expr, held map[mutexKey]*holdInfo) {
	if e == nil {
		return
	}
	lc.leaf(&ast.ExprStmt{X: e}, held)
}

// applyLock mutates held for one mutex operation and records order edges
// and re-entry.
func (lc *lockCheck) applyLock(op lockOp, pos token.Pos, held map[mutexKey]*holdInfo) {
	switch op.op {
	case "Lock", "RLock", "TryLock":
		if _, already := held[op.key]; already {
			lc.pass.Reportf(pos, "%s acquired while the function may already hold it (self-deadlock)", op.key)
			return
		}
		for from := range held {
			lc.graph.add(from, op.key, pos)
		}
		held[op.key] = &holdInfo{write: op.write, pos: pos}
	case "Unlock", "RUnlock":
		delete(held, op.key)
	}
}

// checkCall reports call if it blocks (directly or via any callee chain,
// same-package or imported) while any flagged mutex is write-held, and
// records acquisition edges for mutexes the callee takes.
func (lc *lockCheck) checkCall(call *ast.CallExpr, held map[mutexKey]*holdInfo) {
	if len(held) == 0 {
		return
	}
	pkgBase, recv, name, ok := calleeName(lc.pass.TypesInfo, call)
	if !ok {
		return
	}
	if why, bad := blockingCall(pkgBase, recv, name); bad {
		if w := heldWrite(held); len(w) > 0 {
			lc.reportBlocked(call.Pos(), why, held)
		}
		return
	}
	if key := calleeFactKey(lc.pass.TypesInfo, call); key != "" {
		if fact := lc.pass.Facts.Fn(key); fact != nil {
			short := shortFactKey(key)
			if fact.Blocks != "" {
				if w := heldWrite(held); len(w) > 0 {
					lc.reportBlocked(call.Pos(), "a call to "+short+" ("+fact.Blocks+")", held)
				}
			}
			for _, acqs := range fact.Acquires {
				acq := mutexKey(acqs)
				if _, already := held[acq]; already {
					lc.pass.Reportf(call.Pos(), "call to %s acquires %s while the function may already hold it (self-deadlock)", short, acq)
					continue
				}
				for from := range held {
					lc.graph.add(from, acq, call.Pos())
				}
			}
		}
	}
}

func (lc *lockCheck) reportBlocked(pos token.Pos, what string, held map[mutexKey]*holdInfo) {
	w := heldWrite(held)
	sort.Strings(w)
	lc.pass.Reportf(pos, "blocking operation (%s) while %s is held: move the blocking work outside the critical section", what, strings.Join(w, ", "))
}

func heldWrite(held map[mutexKey]*holdInfo) []string {
	var out []string
	for k, h := range held {
		if h.write {
			out = append(out, string(k))
		}
	}
	return out
}

func cloneHeld(held map[mutexKey]*holdInfo) map[mutexKey]*holdInfo {
	out := make(map[mutexKey]*holdInfo, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mergeHeld unions two branch exit states; nil means that branch
// terminated and contributes nothing.
func mergeHeld(a, b map[mutexKey]*holdInfo) map[mutexKey]*holdInfo {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := cloneHeld(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func mergeAll(exits []map[mutexKey]*holdInfo) map[mutexKey]*holdInfo {
	var out map[mutexKey]*holdInfo
	any := false
	for _, e := range exits {
		if e != nil {
			any = true
			out = mergeHeld(out, e)
		}
	}
	if !any {
		return nil
	}
	return out
}

var _ = fmt.Sprintf // keep fmt for future diagnostics tweaks
