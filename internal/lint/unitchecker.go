package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// The `go vet -vettool=` protocol, implemented directly against the
// contract in cmd/go/internal/work (buildVetConfig / vetActionID): the go
// command probes the tool with -flags (JSON flag inventory) and -V=full
// (version line, hashed into vet's cache key), then invokes it once per
// package with the path of a JSON config file carrying the file set, the
// export data of every dependency, and — the part this suite now uses —
// PackageVetx, a map from each direct import to the fact file its own vet
// run produced. This is the same protocol
// golang.org/x/tools/go/analysis/unitchecker speaks; it is restated here
// so the tool stays dependency-free.
//
// Fact flow: every run (VetxOnly dependency runs included) builds this
// package's function/enum facts merged with everything decoded from
// PackageVetx and writes the merged table to VetxOutput. Because each
// vetx embeds its imports' facts, handing dependents only their direct
// imports' files still gives them the transitive closure. Staleness is
// handled by construction — the go command keys cached vetx files on the
// tool's own hash (see -V=full below) and the dependency's content, and
// if a file is missing or fails to decode (foreign tool, interrupted
// write) the import side just drops it: analysis degrades to
// package-local, losing cross-package findings but never inventing any.

// vetConfig mirrors cmd/go's vetConfig JSON. Fields the suite does not
// consume (NonGoFiles, module identity) are kept so the whole file
// round-trips if the tool ever needs them.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/ermi-vet. It terminates the process.
func Main() {
	jsonMode := os.Getenv("ERMIVET_JSON") != ""
	var cfgPath string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The go command hashes this line into vet's action cache key.
			// Embedding the binary's own content hash means rebuilding
			// ermi-vet with changed analyzers invalidates every cached vet
			// result, exactly like a toolchain upgrade does for stock vet.
			fmt.Printf("ermi-vet version %s\n", selfHash())
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// Advertised flags may be passed on the `go vet` command line;
			// the go command forwards them to every tool invocation.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON lines on stdout"}]`)
			os.Exit(0)
		case arg == "-json" || arg == "--json" || arg == "-json=true" || arg == "--json=true":
			jsonMode = true
		case arg == "-json=false" || arg == "--json=false":
			jsonMode = false
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which ermi-vet) ./...\n(direct invocation expects a single vet .cfg argument)\n")
		os.Exit(1)
	}
	os.Exit(runUnit(cfgPath, jsonMode))
}

func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
	}
	return "unknown"
}

func runUnit(cfgPath string, jsonMode bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ermi-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	imported, hits, misses := readImportedFacts(cfg.PackageVetx)

	// Dependency runs exist to produce facts for their importers. Only
	// module code can carry the invariants this suite reasons about
	// (flagged mutexes, transport budgets, marked enums live here, and
	// direct calls into stdlib primitives are matched by name), so
	// standard-library units get a pass-through vetx instead of a parse
	// and type-check of half of GOROOT.
	if cfg.VetxOnly {
		facts := imported
		if factsWorthBuilding(&cfg) {
			if pkg, err := loadUnit(&cfg); err == nil {
				facts = BuildFacts(pkg, imported)
			}
		}
		writeVetx(cfg.VetxOutput, facts)
		writeStats(&cfg, nil, hits, misses)
		return 0
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		writeVetx(cfg.VetxOutput, imported)
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ermi-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	res := RunAnalyzers(pkg, All(), imported)
	writeVetx(cfg.VetxOutput, res.Facts)
	writeStats(&cfg, res, hits, misses)
	emitDiagnostics(res, jsonMode)
	if len(res.Kept) == 0 {
		return 0
	}
	return 2
}

// factsWorthBuilding reports whether a VetxOnly unit deserves a real fact
// pass. Module packages (ModulePath set) do; standard-library units
// (no module identity) only re-export what they imported.
func factsWorthBuilding(cfg *vetConfig) bool {
	return cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath]
}

// readImportedFacts decodes every dependency vetx file the go command
// handed over, merging them into one table. hits counts files decoded,
// misses counts files that were absent, unreadable, or stale (wrong
// magic/version) — those dependencies degrade to fact-free.
func readImportedFacts(vetx map[string]string) (facts *Facts, hits, misses int) {
	facts = NewFacts()
	for _, path := range vetx {
		data, err := os.ReadFile(path)
		if err != nil {
			misses++
			continue
		}
		fs, err := DecodeFacts(data)
		if err != nil {
			misses++
			continue
		}
		facts.Merge(fs)
		hits++
	}
	return facts, hits, misses
}

// writeVetx serializes the fact table for downstream packages. Failure to
// write is not fatal to the analysis — importers will degrade to
// package-local reasoning for this dependency.
func writeVetx(path string, facts *Facts) {
	if path == "" {
		return
	}
	if facts == nil {
		facts = NewFacts()
	}
	_ = os.WriteFile(path, facts.Encode(), 0o666)
}

// emitDiagnostics prints the run's findings: JSON lines on stdout in json
// mode (suppressed findings included, carrying their reasons), the
// classic file:line: [analyzer] format on stderr otherwise, plus GitHub
// workflow annotations when running under Actions.
func emitDiagnostics(res *UnitResult, jsonMode bool) {
	if jsonMode {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range res.Kept {
			_ = enc.Encode(jsonDiag(d))
		}
		for _, d := range res.Suppressed {
			_ = enc.Encode(jsonDiag(d))
		}
	} else {
		for _, d := range res.Kept {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
		}
	}
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		for _, d := range res.Kept {
			// ::error renders the finding on the offending line in the PR
			// diff instead of burying it in a raw exit-2 log.
			fmt.Printf("::error file=%s,line=%d,title=ermi-vet %s::%s\n",
				d.Position.Filename, d.Position.Line, d.Analyzer, annotationEscape(d.Message))
		}
	}
}

// jsonDiagnostic is the machine-readable diagnostic shape, one JSON
// object per line.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func jsonDiag(d Diagnostic) jsonDiagnostic {
	return jsonDiagnostic{
		File:       d.Position.Filename,
		Line:       d.Position.Line,
		Col:        d.Position.Column,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: d.Suppressed,
		Reason:     d.Reason,
	}
}

// annotationEscape applies the workflow-command encoding for message data.
func annotationEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// writeStats appends one machine-parseable line per analyzed unit to the
// file named by ERMIVET_STATS: fact-cache hit/miss counts and, for full
// runs, per-analyzer wall time. `make lint` aggregates these into the
// per-analyzer timing summary; CI asserts the file stays empty on a warm
// re-run (cached packages never invoke the tool at all, so no lines means
// no redundant re-analysis). The append is a single short write on an
// O_APPEND descriptor, so concurrent vet processes interleave whole
// lines.
func writeStats(cfg *vetConfig, res *UnitResult, hits, misses int) {
	path := os.Getenv("ERMIVET_STATS")
	if path == "" {
		return
	}
	var b strings.Builder
	kind := "unit"
	if cfg.VetxOnly {
		kind = "facts-only"
	}
	fmt.Fprintf(&b, "%s pkg=%s facts_hit=%d facts_miss=%d", kind, cfg.ImportPath, hits, misses)
	if res != nil {
		fmt.Fprintf(&b, " findings=%d suppressed=%d", len(res.Kept), len(res.Suppressed))
		for _, t := range res.Timing {
			fmt.Fprintf(&b, " ns_%s=%d", t.Name, t.D.Nanoseconds())
		}
	}
	b.WriteByte('\n')
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return
	}
	defer f.Close()
	_, _ = f.WriteString(b.String())
}

// loadUnit parses and type-checks the package described by cfg.
func loadUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, goarch()),
		Error:     func(error) {}, // collect just the first, via the return below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// goarch is the architecture the package is being vetted for: the go
// command exports GOARCH to the tool's environment during the build.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
