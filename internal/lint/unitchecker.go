package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// The `go vet -vettool=` protocol, implemented directly against the
// contract in cmd/go/internal/work (buildVetConfig / vetActionID): the go
// command probes the tool with -flags (JSON flag inventory) and -V=full
// (version line, hashed into vet's cache key), then invokes it once per
// package with the path of a JSON config file carrying the file set and
// the export data of every dependency. This is the same protocol
// golang.org/x/tools/go/analysis/unitchecker speaks; it is restated here
// so the tool stays dependency-free.

// vetConfig mirrors cmd/go's vetConfig JSON. Fields the suite does not
// consume (NonGoFiles, module identity, PackageVetx) are kept so the
// whole file round-trips if the tool ever needs them.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/ermi-vet. It terminates the process.
func Main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The go command hashes this line into vet's action cache key.
			// Embedding the binary's own content hash means rebuilding
			// ermi-vet with changed analyzers invalidates every cached vet
			// result, exactly like a toolchain upgrade does for stock vet.
			fmt.Printf("ermi-vet version %s\n", selfHash())
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No analyzer-selection flags: the suite always runs whole.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which ermi-vet) ./...\n(direct invocation expects a single vet .cfg argument)\n")
		os.Exit(1)
	}
	os.Exit(runUnit(args[0]))
}

func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
	}
	return "unknown"
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ermi-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command schedules a VetxOnly run over every dependency so a
	// facts-based tool could consume upstream summaries. This suite keeps
	// all reasoning inside one package, so dependency runs only need to
	// satisfy the protocol: produce the output file and succeed.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}
	diags, err := checkUnit(&cfg)
	writeVetx(cfg.VetxOutput)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ermi-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	return 2
}

// writeVetx writes the (empty) facts output the go command caches for
// downstream packages. Failure to write is not fatal to the analysis.
func writeVetx(path string) {
	if path != "" {
		_ = os.WriteFile(path, []byte("ermi-vet\n"), 0o666)
	}
}

// checkUnit parses and type-checks the package described by cfg and runs
// the analyzer suite over it.
func checkUnit(cfg *vetConfig) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, goarch()),
		Error:     func(error) {}, // collect just the first, via the return below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return Analyze(&Package{Fset: fset, Files: files, Types: tpkg, Info: info}, All()), nil
}

// goarch is the architecture the package is being vetted for: the go
// command exports GOARCH to the tool's environment during the build.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
