package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak finds spawned goroutines that can never exit — the leak class
// the race detector cannot see and long-lived servers accumulate until the
// scheduler drowns. Two shapes are reported:
//
//   - An infinite loop (`for { ... }`) inside a goroutine that blocks on
//     channel operations but contains no return, no break out of the loop,
//     and no terminating construct at all: nothing can ever stop it. The
//     fixed forms are a stop/done channel case that returns, or ranging
//     over a channel the producer closes.
//
//   - The abandoned sender: `go func() { ch <- result }()` on an
//     unbuffered channel whose receiver sits in a multi-case select (a
//     timeout, a cancellation) — if the other case fires first, nobody
//     ever receives and the goroutine blocks forever. The fixed forms are
//     a buffered channel (`make(chan T, 1)`; the send completes and the
//     value is garbage-collected with the channel) or a select with a stop
//     case in the sender.
//
// The analysis is syntactic and deliberately narrow: loops with any exit
// path, selects with defaults, range-over-channel loops, and sends whose
// receiver is unconditional are all clean. What it does flag has no path
// to termination by construction.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "check that spawned goroutines have a reachable exit: no channel-blocked infinite loops without a stop path, no unbuffered sends a selecting receiver can abandon",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) {
	// Named package functions a `go` statement may target.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		// Track the function enclosing each go statement: the abandoned-
		// sender check needs the spawner's view of the channel.
		var walkFn func(encl *ast.BlockStmt, n ast.Node)
		walkFn = func(encl *ast.BlockStmt, n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch t := n.(type) {
				case *ast.FuncDecl:
					if t.Body != nil {
						walkFn(t.Body, t.Body)
					}
					return false
				case *ast.FuncLit:
					walkFn(t.Body, t.Body)
					return false
				case *ast.GoStmt:
					checkGoStmt(pass, t, encl, decls)
					// Descend for nested spawns: the spawned body is the
					// enclosing function of anything it spawns itself.
					if lit, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
						walkFn(lit.Body, lit.Body)
						return false
					}
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkFn(fd.Body, fd.Body)
			}
		}
	}
}

// checkGoStmt analyzes one spawn site. encl is the body of the function
// containing the go statement.
func checkGoStmt(pass *Pass, g *ast.GoStmt, encl *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fn].(*types.Func); ok {
			if fd, ok := decls[obj]; ok {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return
	}
	checkNoExitLoops(pass, body)
	checkAbandonedSender(pass, g, body, encl)
}

// checkNoExitLoops reports infinite for-loops in a goroutine body that
// block on channels and contain no way out.
func checkNoExitLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // someone else's control flow
		case *ast.ForStmt:
			if t.Cond != nil {
				return true // conditional loop: the condition is the exit
			}
			if loopCanExit(t) || !loopBlocksOnChannel(t) {
				return true
			}
			pass.Reportf(t.Pos(), "goroutine never exits: this loop blocks on channel operations but has no return, break, or stop-channel case — add a done/stop select case that returns, or range over a channel the producer closes")
			return false // inner loops of a reported loop share its fate
		}
		return true
	})
}

// loopCanExit reports whether the infinite loop has any terminating path:
// a return, a break that exits it, a goto, or a call that never returns.
func loopCanExit(loop *ast.ForStmt) bool {
	exits := false
	// breakDepth counts the breakable constructs between a break statement
	// and our loop: 0 means an unlabeled break leaves the loop itself.
	var walk func(n ast.Node, breakDepth int)
	walk = func(n ast.Node, breakDepth int) {
		if exits || n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch t := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.ReturnStmt:
				exits = true
				return false
			case *ast.BranchStmt:
				if t.Tok == token.GOTO {
					// A goto may jump out of the loop; assume it does —
					// over-assuming an exit only loses a finding.
					exits = true
					return false
				}
				if t.Tok == token.BREAK && (breakDepth == 0 || t.Label != nil) {
					// An unlabeled break at depth 0 exits our loop; a
					// labeled break is assumed to (the label may name an
					// outer statement, and over-assuming an exit only
					// loses a finding).
					exits = true
					return false
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if n != ast.Node(loop) {
					walkChildren(t, func(c ast.Node) { walk(c, breakDepth+1) })
					return false
				}
			case *ast.CallExpr:
				if neverReturns(t) {
					exits = true
					return false
				}
			}
			return true
		})
	}
	walk(loop.Body, 0)
	return exits
}

// walkChildren applies fn to the immediate bodies of a nested breakable
// construct.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	switch t := n.(type) {
	case *ast.ForStmt:
		fn(t.Body)
	case *ast.RangeStmt:
		fn(t.Body)
	case *ast.SwitchStmt:
		fn(t.Body)
	case *ast.TypeSwitchStmt:
		fn(t.Body)
	case *ast.SelectStmt:
		fn(t.Body)
	}
}

// neverReturns reports calls that terminate the goroutine: panic,
// os.Exit, log.Fatal*, runtime.Goexit.
func neverReturns(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
				return true
			}
		}
	}
	return false
}

// loopBlocksOnChannel reports whether the loop contains an unguarded
// channel operation — the blocked-forever ingredient of the leak.
func loopBlocksOnChannel(loop *ast.ForStmt) bool {
	blocks := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(t) {
				blocks = true
			}
			return false
		}
		return true
	})
	return blocks
}

// checkAbandonedSender reports `go func() { ch <- v }()` where ch is an
// unbuffered channel made in the spawning function whose receiver sits in
// a multi-case select: if another case fires first, the send blocks
// forever.
func checkAbandonedSender(pass *Pass, g *ast.GoStmt, body, encl *ast.BlockStmt) {
	if encl == nil || body == encl {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.ForStmt, *ast.RangeStmt:
			// A send inside a loop is the infinite-loop check's business;
			// a send under someone else's control flow is theirs.
			return false
		case *ast.SelectStmt:
			return false // a selecting sender can bail out on its own
		case *ast.SendStmt:
			ch := chanVar(pass.TypesInfo, t.Chan)
			if ch == nil {
				return true
			}
			if !madeUnbuffered(pass.TypesInfo, encl, ch) {
				return true
			}
			if receiverMayAbandon(pass.TypesInfo, encl, ch) {
				pass.Reportf(t.Pos(), "goroutine sends on unbuffered channel %s whose receiver selects against other cases: if the other case fires first this goroutine blocks forever — buffer the channel (make(chan T, 1)) or select on a stop channel here", ch.Name())
			}
		}
		return true
	})
}

// chanVar resolves a channel expression to its variable, or nil.
func chanVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// madeUnbuffered reports whether ch is assigned from a make(chan T) with
// no capacity (or constant zero capacity) within fn. Unresolvable
// channels — parameters, fields, non-constant capacities — are not
// reported against.
func madeUnbuffered(info *types.Info, fn *ast.BlockStmt, ch *types.Var) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != ch {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "make" {
				if _, builtin := info.Uses[fid].(*types.Builtin); builtin {
					if len(call.Args) < 2 {
						found = true
					} else if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// receiverMayAbandon reports whether fn receives from ch inside a select
// with more than one comm case — the receiver has another way out, so the
// send is not guaranteed a partner.
func receiverMayAbandon(info *types.Info, fn *ast.BlockStmt, ch *types.Var) bool {
	abandons := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if abandons {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		cases := 0
		receives := false
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cases++
			if cc.Comm == nil {
				continue // default counts as a way out via the case count
			}
			var recv ast.Expr
			switch c := cc.Comm.(type) {
			case *ast.ExprStmt:
				recv = c.X
			case *ast.AssignStmt:
				if len(c.Rhs) == 1 {
					recv = c.Rhs[0]
				}
			}
			if un, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				if chanVar(info, un.X) == ch {
					receives = true
				}
			}
		}
		if receives && cases > 1 {
			abandons = true
			return false
		}
		return true
	})
	return abandons
}
