package lint

// This file is the core of the analysis framework: the
// Analyzer/Pass/Diagnostic types, the per-package runner, and the
// type-query helpers the analyzers share. See doc.go for the package
// overview and the catalogue of invariants enforced.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one named invariant check over a typed package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//ermi:ignore <name> <reason>` suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports violations through pass.Report.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one package: the syntax, the type
// information, the fact table, and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax. Test files (*_test.go) are included so
	// type checking sees the whole package, but diagnostics positioned in
	// them are dropped by the runner: the invariants guard production
	// paths, and tests violate them deliberately (fault injection,
	// lifecycle harnesses).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the merged fact table: every function and enum of this
	// package plus everything imported from dependency vetx files (see
	// facts.go). Analyzers look through calls into other packages with it.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation. Suppressed and Reason are set
// only on the suppressed list returned by AnalyzeAll (the machine-readable
// output includes silenced findings with the reason that silenced them).
type Diagnostic struct {
	Analyzer   string
	Pos        token.Pos
	Position   token.Position
	Message    string
	Suppressed bool
	Reason     string
}

// Package bundles what the runner needs to analyze one package. Both
// drivers (the vet-tool protocol in unitchecker.go and the test harness in
// linttest) construct one and hand it to Analyze.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyze runs the given analyzers over pkg with the imported fact set
// (nil is fine: analysis degrades to package-local) and returns the
// surviving diagnostics: suppressed ones (see ignore.go) are dropped,
// malformed suppression comments are reported under the pseudo-analyzer
// "ignore", and anything positioned in a *_test.go file is discarded.
// Diagnostics come back sorted by position.
func Analyze(pkg *Package, analyzers []*Analyzer, imported *Facts) []Diagnostic {
	return RunAnalyzers(pkg, analyzers, imported).Kept
}

// AnalyzeAll is Analyze plus the findings a well-formed //ermi:ignore
// directive silenced, each carrying its suppression reason — the
// machine-readable mode reports those too, so a dashboard can audit what
// the tree has chosen to live with.
func AnalyzeAll(pkg *Package, analyzers []*Analyzer, imported *Facts) (kept, suppressed []Diagnostic) {
	r := RunAnalyzers(pkg, analyzers, imported)
	return r.Kept, r.Suppressed
}

// An AnalyzerTiming is the wall-clock cost of one analyzer (or of the
// fact-table build, under the pseudo-name "facts") over one package.
type AnalyzerTiming struct {
	Name string
	D    time.Duration
}

// A UnitResult is everything one package's analysis produced: surviving
// and suppressed diagnostics, the merged fact table (which the vet driver
// serializes for dependents), and per-analyzer timing.
type UnitResult struct {
	Kept       []Diagnostic
	Suppressed []Diagnostic
	Facts      *Facts
	Timing     []AnalyzerTiming
}

// RunAnalyzers is the full runner under Analyze/AnalyzeAll.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, imported *Facts) *UnitResult {
	res := &UnitResult{}
	start := time.Now()
	facts := BuildFacts(pkg, imported)
	res.Facts = facts
	res.Timing = append(res.Timing, AnalyzerTiming{Name: "facts", D: time.Since(start)})
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			diags:     &diags,
		}
		start = time.Now()
		a.Run(pass)
		res.Timing = append(res.Timing, AnalyzerTiming{Name: a.Name, D: time.Since(start)})
	}
	kept, suppressed := splitSuppressed(pkg, diags)
	res.Kept, res.Suppressed = kept, suppressed
	return res
}

// splitSuppressed applies the suppression and test-file filters and sorts
// both diagnostic lists by position.
func splitSuppressed(pkg *Package, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	ig := collectIgnores(pkg.Fset, pkg.Files)
	for _, d := range diags {
		if strings.HasSuffix(d.Position.Filename, "_test.go") {
			continue
		}
		if reason, ok := ig.suppressedReason(d); ok {
			d.Suppressed = true
			d.Reason = reason
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, ig.malformed(pkg.Fset)...)
	byPos := func(ds []Diagnostic) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := ds[i].Position, ds[j].Position
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return ds[i].Message < ds[j].Message
		}
	}
	sort.Slice(kept, byPos(kept))
	sort.Slice(suppressed, byPos(suppressed))
	return kept, suppressed
}

// All returns the full analyzer suite in reporting order. cmd/ermi-vet
// runs exactly this set.
func All() []*Analyzer {
	return []*Analyzer{Payloadown, Lockorder, Codecstrict, Budgetprop, Goroleak, Errdrop, Exhaustive}
}

// ---- shared type queries ----
//
// The analyzers identify the types they guard structurally — by package
// basename plus type name — rather than by full import path, so the same
// analyzer binds to elasticrmi/internal/transport in the real tree and to
// the stub `transport` package in testdata fixtures. A project-specific
// linter can afford the theoretical collision with an unrelated package
// that happens to be called "transport" and declare a "Request".

// pkgElem returns the last element of pkg's import path ("transport" for
// elasticrmi/internal/transport), or "" for a nil package.
func pkgElem(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgBase.name, matching the package by path basename.
func isNamedType(t types.Type, pkgBase, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && pkgElem(obj.Pkg()) == pkgBase
}

// hasMethod reports whether t's method set (value or pointer form)
// contains a method called name.
func hasMethod(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// isTransportRequest reports whether t is transport.Request (possibly
// behind a pointer).
func isTransportRequest(t types.Type) bool {
	return isNamedType(t, "transport", "Request")
}

// requestParam returns the *transport.Request parameter object of fn's
// signature (parameters only — a Request receiver would be transport
// internals, which own the lifecycle), or nil.
func requestParam(info *types.Info, fn *ast.FuncType) *types.Var {
	if fn == nil || fn.Params == nil {
		return nil
	}
	for _, field := range fn.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if ok && obj != nil && isTransportRequest(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// funcScopeOf returns the types scope of the function or function literal
// node, or nil.
func funcScopeOf(info *types.Info, node ast.Node) *types.Scope {
	switch n := node.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[n.Name].(*types.Func); ok && obj != nil {
			return obj.Scope()
		}
	case *ast.FuncLit:
		if sc, ok := info.Scopes[n.Type]; ok {
			return sc
		}
	}
	return nil
}

// declaredIn reports whether obj is declared inside scope (inclusive).
func declaredIn(obj types.Object, scope *types.Scope) bool {
	if obj == nil || scope == nil {
		return false
	}
	for s := obj.Parent(); s != nil; s = s.Parent() {
		if s == scope {
			return true
		}
	}
	return false
}

// rootIdent returns the identifier at the base of a selector/index/slice
// chain (x in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// calleeName resolves a call expression to (pkgBase, recvType, name):
// for a package function call transport.Dial → ("transport", "", "Dial");
// for a method call c.CallDecode where c is *transport.Client →
// ("transport", "Client", "CallDecode"). Unresolvable shapes return
// ok=false.
func calleeName(info *types.Info, call *ast.CallExpr) (pkgBase, recv, name string, ok bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[fn].(*types.Func)
		if obj == nil {
			return "", "", "", false
		}
		return pkgElem(obj.Pkg()), "", obj.Name(), true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj()
			rn := namedOf(sel.Recv())
			recvName := ""
			if rn != nil {
				recvName = rn.Obj().Name()
			}
			return pkgElem(m.Pkg()), recvName, m.Name(), true
		}
		// Package-qualified call: transport.Dial(...).
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return pkgElem(obj.Pkg()), "", obj.Name(), true
		}
	}
	return "", "", "", false
}
