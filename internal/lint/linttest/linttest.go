// Package linttest runs lint analyzers over golden fixture packages, in
// the style of x/tools' analysistest (reimplemented here: the repo takes
// no dependencies). Fixtures live under internal/lint/testdata/src/<pkg>;
// expected diagnostics are `// want "regexp"` comments on the offending
// line. Every diagnostic must be wanted and every want must fire — a
// fixture is simultaneously the positive (mutant) and negative (fixed)
// form of an invariant.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"elasticrmi/internal/lint"
)

// Run loads testdata/src/<pkgPath> relative to srcRoot, analyzes it with
// the given analyzers, and matches diagnostics against the fixture's
// `// want` comments.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	imp := &fixtureImporter{
		fset: token.NewFileSet(),
		root: srcRoot,
		pkgs: map[string]*pkgResult{},
	}
	imp.gc = importer.ForCompiler(imp.fset, "gc", stdlibExport)
	res, err := imp.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	// Build facts for fixture dependencies the way the vet driver does for
	// real packages. load records packages in completion order, which is
	// topological (a package's imports finish loading before it does), so
	// folding BuildFacts over it accumulates each dependency's table with
	// its own imports already visible.
	imported := lint.NewFacts()
	for _, dep := range imp.order {
		if dep == pkgPath {
			continue
		}
		d := imp.pkgs[dep]
		imported = lint.BuildFacts(&lint.Package{
			Fset:  imp.fset,
			Files: d.files,
			Types: d.pkg,
			Info:  d.info,
		}, imported)
	}
	diags := lint.Analyze(&lint.Package{
		Fset:  imp.fset,
		Files: res.files,
		Types: res.pkg,
		Info:  res.info,
	}, analyzers, imported)

	wants := collectWants(t, imp.fset, res.files)
	matched := map[*want]bool{}
	for _, d := range diags {
		key := posKey{d.Position.Filename, d.Position.Line}
		var hit *want
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic [%s] %s", d.Position, d.Analyzer, d.Message)
			continue
		}
		matched[hit] = true
	}
	var missed []*want
	for _, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				missed = append(missed, w)
			}
		}
	}
	sort.Slice(missed, func(i, j int) bool {
		if missed[i].file != missed[j].file {
			return missed[i].file < missed[j].file
		}
		return missed[i].line < missed[j].line
	})
	for _, w := range missed {
		t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe extracts the quoted patterns of one `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					quote := rest[0]
					if quote != '"' && quote != '`' {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					end := 1
					for end < len(rest) && (rest[end] != quote || (quote == '"' && rest[end-1] == '\\')) {
						end++
					}
					if end == len(rest) {
						t.Fatalf("%s: unterminated want pattern in %q", pos, c.Text)
					}
					pat, err := strconv.Unquote(rest[:end+1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, rest[:end+1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[end+1:])
				}
			}
		}
	}
	return wants
}

// fixtureImporter resolves fixture-local import paths from source under
// root and everything else from the installed toolchain's export data.
type fixtureImporter struct {
	fset *token.FileSet
	root string
	gc   types.Importer
	pkgs map[string]*pkgResult
	// order lists fixture packages in load-completion order — imports
	// before importers — for topological fact building in Run.
	order []string
}

type pkgResult struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(imp.root, path)); err == nil {
		res, err := imp.load(path)
		if err != nil {
			return nil, err
		}
		return res.pkg, nil
	}
	return imp.gc.Import(path)
}

func (imp *fixtureImporter) load(path string) (*pkgResult, error) {
	if res, ok := imp.pkgs[path]; ok {
		return res, nil
	}
	dir := filepath.Join(imp.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	res := &pkgResult{files: files, pkg: pkg, info: info}
	imp.pkgs[path] = res
	imp.order = append(imp.order, path)
	return res, nil
}

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// stdlibExport locates the toolchain's export data for a standard-library
// package via `go list -export` (works offline; the files ship with the
// toolchain or sit in the build cache).
func stdlibExport(path string) (io.ReadCloser, error) {
	exportMu.Lock()
	file, ok := exportFiles[path]
	exportMu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %s", path)
		}
		exportMu.Lock()
		exportFiles[path] = file
		exportMu.Unlock()
	}
	return os.Open(file)
}
