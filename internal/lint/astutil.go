package lint

import (
	"go/ast"
	"go/token"
)

// Source-order dominance approximation shared by the analyzers.
//
// A guard statement (req.Retain(), req.ReleaseReply = true, mu.Unlock())
// "covers" a later use if it textually precedes the use AND every
// conditional region the guard sits in also encloses the use: a guard
// buried in one switch case does not cover a return in the next case,
// and a guard inside a closure covers nothing outside it. This is a
// dominator check degraded to syntax — no CFG — which is exactly wrong
// for code that jumps backwards (goto, loop retries), and those are rare
// enough in this codebase to accept.

// pathTo returns the chain of nodes in root that contain pos, outermost
// first. root itself is included when it contains pos.
func pathTo(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// covers reports whether a guard at guardPos covers a use at usePos
// within the function body root.
func covers(root ast.Node, guardPos, usePos token.Pos) bool {
	if guardPos >= usePos {
		return false
	}
	path := pathTo(root, guardPos)
	contains := func(n ast.Node) bool { return n.Pos() <= usePos && usePos < n.End() }
	for i, n := range path {
		switch t := n.(type) {
		case *ast.CaseClause, *ast.CommClause, *ast.FuncLit:
			if !contains(n) {
				return false
			}
		case *ast.ForStmt:
			// The body may run zero times; a guard inside it only covers
			// uses inside the same loop.
			if t.Body != nil && i+1 < len(path) && path[i+1] == ast.Node(t.Body) && !contains(t.Body) {
				return false
			}
		case *ast.RangeStmt:
			if t.Body != nil && i+1 < len(path) && path[i+1] == ast.Node(t.Body) && !contains(t.Body) {
				return false
			}
		case *ast.IfStmt:
			// Guard in the then-block covers only uses in the then-block;
			// guard in the else covers only the else.
			if i+1 < len(path) {
				child := path[i+1]
				if child == ast.Node(t.Body) && !(t.Body.Pos() <= usePos && usePos < t.Body.End()) {
					return false
				}
				if t.Else != nil && child == t.Else && !(t.Else.Pos() <= usePos && usePos < t.Else.End()) {
					return false
				}
			}
		}
	}
	return true
}

// anyCovers reports whether any guard position covers usePos.
func anyCovers(root ast.Node, guards []token.Pos, usePos token.Pos) bool {
	for _, g := range guards {
		if covers(root, g, usePos) {
			return true
		}
	}
	return false
}
