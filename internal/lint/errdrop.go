package lint

import (
	"go/ast"
	"go/types"
)

// Errdrop finds discarded errors from the APIs whose failure silently
// voids a durability or ordering promise. Dropping the error from a
// logging call is noise; dropping the error from wal.Commit means the
// server acknowledges a write that never reached the disk, and nothing
// anywhere will ever say so. The flagged set is deliberately small — only
// calls where "ignore the error" and "lie to the caller" are the same
// thing:
//
//   - wal.Log.Append / wal.Log.Commit — group-committed write-ahead
//     durability; an unchecked Commit un-promises every write in the batch
//   - wal.SaveSnapshot — compaction; a failed snapshot plus a truncated
//     log is data loss
//   - os.File.Sync — the fsync under all of the above
//   - kvstore.Store.snapshotNow — the store-level compaction entry point
//
// Reported forms: the call as a bare statement, the error position
// assigned to blank, `defer` of the call, and `go` of the call (the last
// two discard the result by construction). Errors must be handled or
// explicitly suppressed with //ermi:ignore errdrop <why losing this error
// is sound>.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "check that errors from durability-critical calls (WAL append/commit, snapshot, fsync) are not discarded",
	Run:  runErrdrop,
}

// errdropFlagged maps package basename → receiver type name ("" for
// package-level functions) → flagged function names. Matching is
// structural, by basename, so fixture stubs of these packages bind too.
var errdropFlagged = map[string]map[string]map[string]bool{
	"wal": {
		"Log": {"Append": true, "Commit": true},
		"":    {"SaveSnapshot": true},
	},
	"os": {
		"File": {"Sync": true},
	},
	"kvstore": {
		"Store": {"snapshotNow": true},
	},
}

func runErrdrop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.ExprStmt:
				if call, ok := t.X.(*ast.CallExpr); ok {
					reportDroppedErr(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				reportDroppedErr(pass, t.Call, "discarded by defer")
			case *ast.GoStmt:
				// `go f()` discards f's result; a spawned literal's own
				// statements are still walked below.
				if _, isLit := ast.Unparen(t.Call.Fun).(*ast.FuncLit); !isLit {
					reportDroppedErr(pass, t.Call, "discarded by go")
				}
			case *ast.AssignStmt:
				checkBlankErr(pass, t)
			}
			return true
		})
	}
}

// reportDroppedErr reports call if it is a flagged call whose final result
// is an error and that error is being thrown away (how says how).
func reportDroppedErr(pass *Pass, call *ast.CallExpr, how string) {
	name, ok := flaggedErrCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s: a failure here silently voids a durability guarantee — handle it, surface it, or suppress with //ermi:ignore errdrop <reason>", name, how)
}

// checkBlankErr reports flagged calls whose error result lands in the
// blank identifier: `_ = f()` and `v, _ := f()`.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	// Only the multi-value form `a, b = f()` or single `_ = f()`; the
	// error is by convention the last result, so the last LHS must be _.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	name, ok := flaggedErrCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "error from %s assigned to _: a failure here silently voids a durability guarantee — handle it, surface it, or suppress with //ermi:ignore errdrop <reason>", name)
}

// flaggedErrCall reports whether call targets a flagged function whose
// last result is an error, returning a printable name.
func flaggedErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkgBase, recv, name, ok := calleeName(info, call)
	if !ok {
		return "", false
	}
	byRecv, ok := errdropFlagged[pkgBase]
	if !ok {
		return "", false
	}
	if !byRecv[recv][name] {
		return "", false
	}
	if !lastResultIsError(info, call) {
		return "", false
	}
	if recv != "" {
		return pkgBase + "." + recv + "." + name, true
	}
	return pkgBase + "." + name, true
}

// lastResultIsError reports whether the callee's final result has type
// error.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
