package lint_test

import (
	"path/filepath"
	"testing"

	"elasticrmi/internal/lint"
	"elasticrmi/internal/lint/linttest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Each fixture package carries mutant/fixed pairs of one invariant: the
// `// want` comments pin the mutants, and any diagnostic on a fixed form
// fails the run. Together they are the mutation check the issue asks for
// — in particular the PR 8 dial-under-mutex shape (kvstore fixture) and
// the dropped-ReleaseReply shape (payloadown fixture).

func TestPayloadown(t *testing.T) {
	linttest.Run(t, testdata(t), "payloadown", lint.Payloadown)
}

func TestLockorder(t *testing.T) {
	linttest.Run(t, testdata(t), "kvstore", lint.Lockorder)
}

func TestCodecstrict(t *testing.T) {
	linttest.Run(t, testdata(t), "codecstrict", lint.Codecstrict)
}

func TestBudgetprop(t *testing.T) {
	linttest.Run(t, testdata(t), "budgetprop", lint.Budgetprop)
}

func TestSuppression(t *testing.T) {
	linttest.Run(t, testdata(t), "ignoresup", lint.Budgetprop)
}

func TestGoroleak(t *testing.T) {
	linttest.Run(t, testdata(t), "goroleak", lint.Goroleak)
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, testdata(t), "errdrop", lint.Errdrop)
}

func TestExhaustive(t *testing.T) {
	linttest.Run(t, testdata(t), "exhaustive", lint.Exhaustive)
}

// The cross fixture splits each invariant across two packages: the
// blocking/budget/enum source lives in cross/helper, the violation in
// cross/kvstore. Every finding here exists only because facts flow
// through the package boundary.
func TestCrossPackageFacts(t *testing.T) {
	linttest.Run(t, testdata(t), "cross/kvstore", lint.Lockorder, lint.Budgetprop, lint.Exhaustive)
}
