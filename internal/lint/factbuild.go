package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Fact construction: the per-package summary pass every driver runs before
// the analyzers. BuildFacts walks each declared function once, classifies
// its own blocking operations, mutex acquisitions, budget flows and
// payload-ownership guards, then propagates through the call graph — local
// calls and calls into imported packages (resolved against the imported
// fact set) alike — to a fixed point. The result embeds the imported facts
// (transitive export; see facts.go), so it is both the analyzers' lookup
// table and the package's vetx output.

// factKey names a declared function or method for the fact table:
// "import/path.Recv.Name" or "import/path.Name".
func factKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkgPath + "." + fd.Name.Name
}

// shortFactKey strips the import-path directory from a fact key for
// diagnostics: "elasticrmi/internal/core.Stub.Invoke" → "core.Stub.Invoke".
func shortFactKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// calleeFactKey resolves a call expression to the fact key of its callee —
// any package, full import path — or "" for unresolvable shapes (built-ins,
// interface methods, function values).
func calleeFactKey(info *types.Info, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj()
			if m.Pkg() == nil {
				return ""
			}
			rn := namedOf(sel.Recv())
			if rn == nil {
				return ""
			}
			return m.Pkg().Path() + "." + rn.Obj().Name() + "." + m.Name()
		}
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// callRec is one call site remembered for the propagation fixpoint.
type callRec struct {
	key  string
	args []ast.Expr
	pos  token.Pos
}

// fnState is the under-construction fact of one declared function.
type fnState struct {
	fact   *FuncFact
	calls  []callRec
	params []*types.Var // in order, receiver excluded
	req    *types.Var   // the *transport.Request parameter, if any
	// derived maps locals to the parameter indexes they were assigned
	// from; -1 in the set means "derived from the request parameter".
	derived map[*types.Var]map[int]bool
}

// BuildFacts computes the fact set of pkg: its own functions and enums
// merged over imported (which may be nil). See the package comment in
// facts.go for semantics.
func BuildFacts(pkg *Package, imported *Facts) *Facts {
	out := NewFacts()
	out.Merge(imported)
	pkgPath := pkg.Types.Path()

	states := map[string]*fnState{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := scanFunction(pkg, fd)
			states[factKey(pkgPath, fd)] = st
		}
	}

	// Propagate through the call graph to a fixed point. Lookups hit the
	// local states first, then the imported facts, so chains that leave the
	// package and come back (kvstore → core → transport) converge too.
	lookup := func(key string) *FuncFact {
		if st, ok := states[key]; ok {
			return st.fact
		}
		return imported.Fn(key)
	}
	for changed := true; changed; {
		changed = false
		for _, st := range states {
			for _, c := range st.calls {
				sub := lookup(c.key)
				if sub == nil {
					continue
				}
				if st.fact.Blocks == "" && sub.Blocks != "" {
					st.fact.Blocks = "a call to " + shortFactKey(c.key) + " (" + sub.Blocks + ")"
					changed = true
				}
				for _, a := range sub.Acquires {
					if !containsStr(st.fact.Acquires, a) {
						st.fact.Acquires = append(st.fact.Acquires, a)
						changed = true
					}
				}
				if sub.Unbudgeted && !st.fact.Unbudgeted {
					st.fact.Unbudgeted = true
					changed = true
				}
				for _, j := range sub.BudgetParams {
					if j >= len(c.args) {
						continue
					}
					if st.classifyBudgetArg(pkg.Info, c.args[j]) {
						changed = true
					}
				}
			}
		}
	}
	for key, st := range states {
		sort.Strings(st.fact.Acquires)
		sort.Ints(st.fact.BudgetParams)
		out.Fns[key] = st.fact
	}

	for key, e := range collectEnums(pkg) {
		out.Enums[key] = e
	}
	return out
}

// classifyBudgetArg folds one budget-position argument into the function's
// fact: derived from parameter i → i joins BudgetParams; derived from the
// request → already propagated correctly; anything else (a constant, an
// unrelated local) → Unbudgeted. Reports whether the fact changed.
func (st *fnState) classifyBudgetArg(info *types.Info, arg ast.Expr) bool {
	idxs, fromReq := st.exprSources(info, arg)
	changed := false
	if len(idxs) == 0 && !fromReq {
		if !st.fact.Unbudgeted {
			st.fact.Unbudgeted = true
			changed = true
		}
		return changed
	}
	for i := range idxs {
		if !containsInt(st.fact.BudgetParams, i) {
			st.fact.BudgetParams = append(st.fact.BudgetParams, i)
			changed = true
		}
	}
	return changed
}

// exprSources resolves which of the function's parameters (by index) and
// whether its request parameter flow into e, directly or through locals
// previously assigned from them.
func (st *fnState) exprSources(info *types.Info, e ast.Expr) (map[int]bool, bool) {
	idxs := map[int]bool{}
	fromReq := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v == st.req {
			fromReq = true
			return true
		}
		for i, p := range st.params {
			if v == p {
				idxs[i] = true
				return true
			}
		}
		for i := range st.derived[v] {
			if i == -1 {
				fromReq = true
			} else {
				idxs[i] = true
			}
		}
		return true
	})
	return idxs, fromReq
}

// scanFunction performs the local (non-propagated) analysis of one
// declared function.
func scanFunction(pkg *Package, fd *ast.FuncDecl) *fnState {
	info := pkg.Info
	st := &fnState{fact: &FuncFact{}, derived: map[*types.Var]map[int]bool{}}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && v != nil {
					st.params = append(st.params, v)
				}
			}
		}
	}
	st.req = requestParam(info, fd.Type)

	// Pass 1: blocking operations and mutex acquisitions. Goroutine bodies
	// are excluded — what a spawned goroutine does is not charged to its
	// spawner.
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			// A select with a default never blocks on its comm ops.
			if selectHasDefault(t) {
				for _, cl := range t.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, inspect)
						}
					}
				}
				return false
			}
			if st.fact.Blocks == "" {
				st.fact.Blocks = "a select with no default"
			}
			return true
		case *ast.SendStmt:
			if st.fact.Blocks == "" {
				st.fact.Blocks = "a channel send"
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && st.fact.Blocks == "" {
				st.fact.Blocks = "a channel receive"
			}
		case *ast.CallExpr:
			if op, ok := mutexOp(info, t); ok {
				if op.op == "Lock" || op.op == "RLock" || op.op == "TryLock" {
					if !containsStr(st.fact.Acquires, string(op.key)) {
						st.fact.Acquires = append(st.fact.Acquires, string(op.key))
					}
				}
				return true
			}
			if pkgBase, recv, name, ok := calleeName(info, t); ok {
				if why, bad := blockingCall(pkgBase, recv, name); bad && st.fact.Blocks == "" {
					st.fact.Blocks = why
				}
			}
			if key := calleeFactKey(info, t); key != "" {
				st.calls = append(st.calls, callRec{key: key, args: t.Args, pos: t.Pos()})
			}
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)

	// Pass 2: budget flows and request-ownership guards, goroutine bodies
	// included — a call issued from a spawned goroutine still outlives the
	// caller's deadline if its budget is unbounded, and a Retain inside a
	// synchronously-called closure still guards the slab.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			st.trackDerived(info, t)
		case *ast.CallExpr:
			pkgBase, recv, name, ok := calleeName(info, t)
			if !ok {
				return true
			}
			if pkgBase == "transport" && recv == "Client" {
				if slot, checked := budgetArg[name]; checked && pkg.Types.Name() != "transport" {
					if slot < 0 || slot >= len(t.Args) {
						st.fact.Unbudgeted = true
					} else {
						st.classifyBudgetArg(info, t.Args[slot])
					}
				}
				return true
			}
			if st.req == nil || pkgBase != "transport" || recv != "Request" {
				return true
			}
			sel, ok := ast.Unparen(t.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || info.Uses[id] != st.req {
				return true
			}
			if name == "Retain" {
				st.fact.RetainsReq = true
			}
		}
		return true
	})
	if st.req != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "ReleaseReply" || i >= len(as.Rhs) {
					continue
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || info.Uses[id] != st.req {
					continue
				}
				if bl, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok && bl.Name == "true" {
					st.fact.ReleasesReply = true
				}
			}
			return true
		})
	}
	return st
}

// trackDerived records locals assigned from parameter- or request-derived
// expressions, so a budget threaded through an intermediate variable
// (`t := timeout / 2`) keeps its provenance.
func (st *fnState) trackDerived(info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		idxs, fromReq := st.exprSources(info, as.Rhs[i])
		if len(idxs) == 0 && !fromReq {
			continue
		}
		set := st.derived[v]
		if set == nil {
			set = map[int]bool{}
			st.derived[v] = set
		}
		for j := range idxs {
			set[j] = true
		}
		if fromReq {
			set[-1] = true
		}
	}
}

// exhaustiveMarker is the enum annotation: a type whose switches must
// handle every declared member or carry an explicit default.
const exhaustiveMarker = "//ermi:exhaustive"

// collectEnums finds the //ermi:exhaustive-marked named types of pkg and
// their package-level constant members.
func collectEnums(pkg *Package) map[string]*EnumFact {
	marked := map[string]bool{} // type name → marked
	hasMarker := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), exhaustiveMarker) {
					return true
				}
			}
		}
		return false
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc, ts.Doc, ts.Comment) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	if len(marked) == 0 {
		return nil
	}
	out := map[string]*EnumFact{}
	scope := pkg.Types.Scope()
	for name := range marked {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		e := &EnumFact{}
		for _, cname := range scope.Names() {
			c, ok := scope.Lookup(cname).(*types.Const)
			if !ok {
				continue
			}
			if n := namedOf(c.Type()); n == nil || n.Obj() != tn {
				continue
			}
			v, ok := constant.Int64Val(c.Val())
			if !ok {
				if u, uok := constant.Uint64Val(c.Val()); uok {
					v, ok = int64(u), true
				}
			}
			if !ok {
				continue
			}
			e.Members = append(e.Members, EnumMember{Name: cname, Val: v})
		}
		sort.Slice(e.Members, func(i, j int) bool {
			if e.Members[i].Val != e.Members[j].Val {
				return e.Members[i].Val < e.Members[j].Val
			}
			return e.Members[i].Name < e.Members[j].Name
		})
		out[pkg.Types.Path()+"."+name] = e
	}
	return out
}

func containsStr(have []string, s string) bool {
	for _, h := range have {
		if h == s {
			return true
		}
	}
	return false
}

func containsInt(have []int, x int) bool {
	for _, h := range have {
		if h == x {
			return true
		}
	}
	return false
}
