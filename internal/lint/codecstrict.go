package lint

import (
	"go/ast"
	"go/types"

	"elasticrmi/internal/gen"
)

// Codecstrict keeps the //ermi:codec annotation honest:
//
//   - A marked type the generator would reject (embedded field, fixed
//     array, foreign type, recursion, ...) is reported at its declaration
//     with the generator's own rejection reason. Without this, the marker
//     sits on the struct looking load-bearing while every payload quietly
//     takes the gob fallback.
//
//   - A marked type that resolves cleanly must actually have its generated
//     methods (SizeERMI / MarshalERMI / UnmarshalERMI) in the package —
//     a missing *_ermi.go means someone added the marker (or a field) and
//     never re-ran the generator.
//
//   - A decoded view value (a type with the generated ERMIViews marker, or
//     a []byte field read off one) stored into a map, slice element, or
//     package-level variable is reported: views alias the request's arena
//     payload, which is recycled when the handler returns, so anything
//     that outlives the request must copy first
//     (`append([]byte(nil), v...)` is the house idiom).
var Codecstrict = &Analyzer{
	Name: "codecstrict",
	Doc:  "check that //ermi:codec types generate cleanly, stay in sync with their generated methods, and that decoded views are copied before being stored",
	Run:  runCodecstrict,
}

func runCodecstrict(pass *Pass) {
	// The gen package itself (and its tests) manipulates codec markers as
	// data; its fixtures would all be findings.
	if pkgElem(pass.Pkg) == "gen" {
		return
	}
	for _, cc := range gen.CheckCodecs(pass.Files) {
		if cc.Err != "" {
			pass.Reportf(cc.Pos, "type %s is marked %s but the generator would reject it: %s", cc.Name, gen.CodecMarker, cc.Err)
			continue
		}
		obj := pass.Pkg.Scope().Lookup(cc.Name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		for _, m := range []string{"SizeERMI", "MarshalERMI", "UnmarshalERMI"} {
			if !hasMethod(tn.Type(), m) {
				pass.Reportf(cc.Pos, "type %s is marked %s but has no generated %s method: re-run the generator (make generate)", cc.Name, gen.CodecMarker, m)
				break
			}
		}
	}
	for _, file := range pass.Files {
		clean := cleanLocals(pass.TypesInfo, file)
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if !longLivedStore(pass.TypesInfo, lhs) {
					continue
				}
				if cleanSource(pass.TypesInfo, as.Rhs[i], clean) {
					continue
				}
				if why, bad := viewValue(pass.TypesInfo, as.Rhs[i]); bad {
					pass.Reportf(as.Pos(), "%s stored into long-lived memory: views alias the request arena, copy first (append([]byte(nil), v...))", why)
				}
			}
			return true
		})
	}
}

// cleanLocals finds the variables in file whose every visible assignment
// has a sanctioned (copying) right-hand side — composite literals, calls,
// conversions. A value built that way holds copies, not views, so storing
// it (or its fields) is fine. One viewy assignment anywhere poisons the
// variable for the whole file: the check is flow-insensitive.
func cleanLocals(info *types.Info, file *ast.File) map[*types.Var]bool {
	clean := map[*types.Var]bool{}
	poisoned := map[*types.Var]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			if _, viewy := viewValue(info, as.Rhs[i]); viewy {
				poisoned[v] = true
			} else {
				clean[v] = true
			}
		}
		return true
	})
	for v := range poisoned {
		delete(clean, v)
	}
	return clean
}

// cleanSource reports whether e is rooted at a variable cleanLocals
// established as holding copies.
func cleanSource(info *types.Info, e ast.Expr, clean map[*types.Var]bool) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	return ok && clean[v]
}

// longLivedStore reports whether an assignment target outlives the
// enclosing call: a package-level variable, or a map/slice element or
// field reached through a pointer (a receiver's cache map, a heap object
// shared with other goroutines). A store into a container the function
// itself created and will drop is not long-lived.
func longLivedStore(info *types.Info, lhs ast.Expr) bool {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return outlivingContainer(info, t.X)
	case *ast.Ident:
		return isPkgLevelVar(info, t)
	case *ast.SelectorExpr:
		return outlivingContainer(info, t)
	}
	return false
}

// outlivingContainer reports whether e denotes storage reachable after
// the function returns: rooted at a package-level variable, or reached
// through a pointer dereference (receivers and heap objects).
func outlivingContainer(info *types.Info, e ast.Expr) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if isPkgLevelVar(info, t) {
				return true
			}
			obj := info.Uses[t]
			if obj == nil {
				obj = info.Defs[t]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			_, isPtr := v.Type().Underlying().(*types.Pointer)
			return isPtr
		case *ast.SelectorExpr:
			if base := info.TypeOf(t.X); base != nil {
				if _, ok := base.Underlying().(*types.Pointer); ok {
					return true
				}
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			return true
		default:
			return false
		}
	}
}

func isPkgLevelVar(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// viewValue reports whether e evaluates to payload-aliasing memory stored
// as-is: a value of an ERMIViews type, or a []byte field read off one.
// Calls, conversions, composite literals, and append(...) results are
// treated as sanctioned copies — the copy idioms all take those shapes.
func viewValue(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch t := e.(type) {
	case *ast.Ident:
		if typ := info.TypeOf(e); typ != nil && hasMethod(typ, "ERMIViews") {
			return "decoded view value " + t.Name, true
		}
	case *ast.UnaryExpr:
		if inner, ok := viewValue(info, t.X); ok {
			return inner, true
		}
	case *ast.StarExpr:
		if inner, ok := viewValue(info, t.X); ok {
			return inner, true
		}
	case *ast.SelectorExpr:
		if typ := info.TypeOf(e); typ != nil && hasMethod(typ, "ERMIViews") {
			return "decoded view value " + t.Sel.Name, true
		}
		base := info.TypeOf(t.X)
		if base != nil && hasMethod(base, "ERMIViews") && isByteSlice(info.TypeOf(e)) {
			return "payload view field " + t.Sel.Name, true
		}
	}
	return "", false
}
