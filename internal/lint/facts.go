package lint

import (
	"errors"
	"fmt"
	"sort"

	"elasticrmi/internal/ermic"
)

// Cross-package facts.
//
// Each package analysis exports a summary of every function it declares —
// whether it may block, which flagged mutexes it may acquire, how budgets
// flow through its parameters, whether it retains or releases its request's
// payload — plus the member sets of its //ermi:exhaustive enums. The
// summaries ride the `.vetx` channel of the go vet protocol: the go command
// schedules a facts-only run over every dependency, hands each package the
// vetx files of its imports (PackageVetx), and caches the outputs in the
// build cache, so a warm `make lint` re-derives facts only for packages
// whose inputs changed.
//
// Facts are exported transitively: a package's vetx embeds everything it
// learned from its own imports, so consumers only need their direct
// dependencies' files to see through arbitrarily deep call chains
// (kvstore → core → transport).
//
// Staleness and hostility: a vetx file that is missing, truncated, from a
// different codec version, or otherwise undecodable is treated as absent —
// the importing analysis degrades to package-local reasoning for those
// callees, which can only lose findings, never invent them. The go command
// hashes the tool binary into the cache key, so a rebuilt ermi-vet never
// reads its predecessor's files in practice; the version gate is the
// defense for everything else (hand-edited caches, future format changes).

// factVersion is bumped on any change to the encoded layout. Decoders
// reject other versions wholesale.
const factVersion = 2

// factMagic opens every vetx file.
var factMagic = []byte("ermivetx")

// ErrFactVersion reports a well-formed fact file of a different version.
var ErrFactVersion = errors.New("lint: fact codec version mismatch")

// ErrFactMalformed reports bytes that are not a fact file.
var ErrFactMalformed = errors.New("lint: malformed fact file")

// A FuncFact is one function's exported summary. Keys in Facts.Fns are
// fully qualified: "import/path.Recv.Name" for methods, "import/path.Name"
// for functions.
type FuncFact struct {
	// Blocks is non-empty when the function may block — dial, synchronous
	// transport call, sleep, fsync, unguarded channel operation — directly
	// or through any callee, and says why. Goroutines the function spawns
	// are not charged to it.
	Blocks string
	// Acquires lists the flagged mutex keys ("kvstore.Server.viewMu") the
	// function may lock, shared or exclusive, directly or transitively.
	Acquires []string
	// BudgetParams are the indexes of parameters that flow into the
	// budget/timeout slot of a downstream transport call: callers must
	// derive those arguments from their own request budget.
	BudgetParams []int
	// Unbudgeted marks a function that issues a downstream transport call
	// whose budget derives from neither a parameter nor a
	// *transport.Request in scope — from inside a request handler, calling
	// it breaks deadline propagation.
	Unbudgeted bool
	// RetainsReq marks a function that calls Retain on its
	// *transport.Request parameter; passing a request to it counts as a
	// retain guard at the call site.
	RetainsReq bool
	// ReleasesReply marks a function that sets ReleaseReply = true on its
	// *transport.Request parameter.
	ReleasesReply bool
}

// An EnumMember is one declared constant of an //ermi:exhaustive enum.
type EnumMember struct {
	Name string
	Val  int64
}

// An EnumFact is the member set of one //ermi:exhaustive enum type, keyed
// in Facts.Enums by "import/path.TypeName".
type EnumFact struct {
	Members []EnumMember
}

// Facts is the cross-package knowledge available to one analysis run.
type Facts struct {
	Fns   map[string]*FuncFact
	Enums map[string]*EnumFact
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{Fns: map[string]*FuncFact{}, Enums: map[string]*EnumFact{}}
}

// Fn returns the fact for key, or nil. Safe on a nil receiver.
func (f *Facts) Fn(key string) *FuncFact {
	if f == nil {
		return nil
	}
	return f.Fns[key]
}

// Enum returns the enum fact for key, or nil. Safe on a nil receiver.
func (f *Facts) Enum(key string) *EnumFact {
	if f == nil {
		return nil
	}
	return f.Enums[key]
}

// Merge copies every entry of src into f (last write wins; duplicate keys
// across sources describe the same source package, so the contents agree).
func (f *Facts) Merge(src *Facts) {
	if src == nil {
		return
	}
	for k, v := range src.Fns {
		f.Fns[k] = v
	}
	for k, v := range src.Enums {
		f.Enums[k] = v
	}
}

// flag bits of the FuncFact flags byte.
const (
	factUnbudgeted = 1 << iota
	factRetainsReq
	factReleasesReply
)

// Encode serializes f. Layout (all integers ermic varints, strings
// length-prefixed):
//
//	magic "ermivetx" | version | nFns | fn... | nEnums | enum...
//	fn:   key | blocks | nAcquires | acquire... | nBudgetParams | idx... | flags
//	enum: key | nMembers | (name | zigzag val)...
//
// Entries are emitted in sorted key order so identical fact sets encode
// identically (the build cache hashes outputs).
func (f *Facts) Encode() []byte {
	b := append([]byte{}, factMagic...)
	b = ermic.AppendUvarint(b, factVersion)
	fnKeys := make([]string, 0, len(f.Fns))
	for k := range f.Fns {
		fnKeys = append(fnKeys, k)
	}
	sort.Strings(fnKeys)
	b = ermic.AppendUvarint(b, uint64(len(fnKeys)))
	for _, k := range fnKeys {
		fn := f.Fns[k]
		b = ermic.AppendString(b, k)
		b = ermic.AppendString(b, fn.Blocks)
		b = ermic.AppendUvarint(b, uint64(len(fn.Acquires)))
		for _, a := range fn.Acquires {
			b = ermic.AppendString(b, a)
		}
		b = ermic.AppendUvarint(b, uint64(len(fn.BudgetParams)))
		for _, i := range fn.BudgetParams {
			b = ermic.AppendUvarint(b, uint64(i))
		}
		var flags uint64
		if fn.Unbudgeted {
			flags |= factUnbudgeted
		}
		if fn.RetainsReq {
			flags |= factRetainsReq
		}
		if fn.ReleasesReply {
			flags |= factReleasesReply
		}
		b = ermic.AppendUvarint(b, flags)
	}
	enumKeys := make([]string, 0, len(f.Enums))
	for k := range f.Enums {
		enumKeys = append(enumKeys, k)
	}
	sort.Strings(enumKeys)
	b = ermic.AppendUvarint(b, uint64(len(enumKeys)))
	for _, k := range enumKeys {
		e := f.Enums[k]
		b = ermic.AppendString(b, k)
		b = ermic.AppendUvarint(b, uint64(len(e.Members)))
		for _, m := range e.Members {
			b = ermic.AppendString(b, m.Name)
			b = ermic.AppendVarint(b, m.Val)
		}
	}
	return b
}

// DecodeFacts parses an encoded fact set. It is total on hostile input:
// truncated, oversized-count, or trailing-garbage bytes return
// ErrFactMalformed; a valid file of another codec version returns
// ErrFactVersion. Callers treat any error as "no facts".
func DecodeFacts(b []byte) (*Facts, error) {
	if len(b) < len(factMagic) || string(b[:len(factMagic)]) != string(factMagic) {
		return nil, ErrFactMalformed
	}
	b = b[len(factMagic):]
	ver, b, err := ermic.ConsumeUvarint(b)
	if err != nil {
		return nil, ErrFactMalformed
	}
	if ver != factVersion {
		return nil, fmt.Errorf("%w: have %d, want %d", ErrFactVersion, ver, factVersion)
	}
	f := NewFacts()
	nFns, b, err := ermic.ConsumeCount(b)
	if err != nil {
		return nil, ErrFactMalformed
	}
	for i := 0; i < nFns; i++ {
		var key string
		key, b, err = ermic.ConsumeString(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		fn := &FuncFact{}
		fn.Blocks, b, err = ermic.ConsumeString(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		var n int
		n, b, err = ermic.ConsumeCount(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		for j := 0; j < n; j++ {
			var a string
			a, b, err = ermic.ConsumeString(b)
			if err != nil {
				return nil, ErrFactMalformed
			}
			fn.Acquires = append(fn.Acquires, a)
		}
		n, b, err = ermic.ConsumeCount(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		for j := 0; j < n; j++ {
			var idx uint64
			idx, b, err = ermic.ConsumeUvarint(b)
			if err != nil || idx > 1<<20 {
				return nil, ErrFactMalformed
			}
			fn.BudgetParams = append(fn.BudgetParams, int(idx))
		}
		var flags uint64
		flags, b, err = ermic.ConsumeUvarint(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		fn.Unbudgeted = flags&factUnbudgeted != 0
		fn.RetainsReq = flags&factRetainsReq != 0
		fn.ReleasesReply = flags&factReleasesReply != 0
		f.Fns[key] = fn
	}
	nEnums, b, err := ermic.ConsumeCount(b)
	if err != nil {
		return nil, ErrFactMalformed
	}
	for i := 0; i < nEnums; i++ {
		var key string
		key, b, err = ermic.ConsumeString(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		var n int
		n, b, err = ermic.ConsumeCount(b)
		if err != nil {
			return nil, ErrFactMalformed
		}
		e := &EnumFact{}
		for j := 0; j < n; j++ {
			var m EnumMember
			m.Name, b, err = ermic.ConsumeString(b)
			if err != nil {
				return nil, ErrFactMalformed
			}
			m.Val, b, err = ermic.ConsumeVarint(b)
			if err != nil {
				return nil, ErrFactMalformed
			}
			e.Members = append(e.Members, m)
		}
		f.Enums[key] = e
	}
	if len(b) != 0 {
		return nil, ErrFactMalformed
	}
	return f, nil
}
