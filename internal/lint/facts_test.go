package lint

import (
	"errors"
	"reflect"
	"testing"

	"elasticrmi/internal/ermic"
)

func sampleFacts() *Facts {
	f := NewFacts()
	f.Fns["elasticrmi/internal/core.Stub.Invoke"] = &FuncFact{
		Blocks:       "transport call Call",
		Acquires:     []string{"kvstore.Server.viewMu", "transport.Client.mu"},
		BudgetParams: []int{0, 3},
		Unbudgeted:   true,
	}
	f.Fns["elasticrmi/internal/kvstore.handlePut"] = &FuncFact{
		RetainsReq:    true,
		ReleasesReply: true,
	}
	f.Fns["elasticrmi/internal/wal.syncDir"] = &FuncFact{Blocks: "os.File.Sync (fsync)"}
	f.Enums["elasticrmi/internal/transport.frameKind"] = &EnumFact{
		Members: []EnumMember{
			{Name: "frameRequest", Val: 1},
			{Name: "frameResponse", Val: 2},
			{Name: "frameNegative", Val: -7}, // zigzag path
		},
	}
	return f
}

func TestFactsRoundTrip(t *testing.T) {
	f := sampleFacts()
	enc := f.Encode()
	got, err := DecodeFacts(enc)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if !reflect.DeepEqual(f.Fns, got.Fns) {
		t.Errorf("Fns round-trip mismatch:\n  in  %+v\n  out %+v", f.Fns, got.Fns)
	}
	if !reflect.DeepEqual(f.Enums, got.Enums) {
		t.Errorf("Enums round-trip mismatch:\n  in  %+v\n  out %+v", f.Enums, got.Enums)
	}
}

func TestFactsEmptyRoundTrip(t *testing.T) {
	got, err := DecodeFacts(NewFacts().Encode())
	if err != nil {
		t.Fatalf("DecodeFacts(empty): %v", err)
	}
	if len(got.Fns) != 0 || len(got.Enums) != 0 {
		t.Errorf("empty set decoded non-empty: %+v", got)
	}
}

// Encoding is deterministic regardless of map iteration order: the build
// cache hashes vetx outputs, so equal fact sets must encode equal bytes.
func TestFactsEncodeDeterministic(t *testing.T) {
	a := sampleFacts().Encode()
	for i := 0; i < 16; i++ {
		if b := sampleFacts().Encode(); string(a) != string(b) {
			t.Fatalf("iteration %d produced different bytes", i)
		}
	}
}

func TestFactsVersionGate(t *testing.T) {
	b := append([]byte{}, factMagic...)
	b = ermic.AppendUvarint(b, factVersion+1)
	b = ermic.AppendUvarint(b, 0) // nFns
	b = ermic.AppendUvarint(b, 0) // nEnums
	if _, err := DecodeFacts(b); !errors.Is(err, ErrFactVersion) {
		t.Errorf("future version decoded with err=%v, want ErrFactVersion", err)
	}
}

// DecodeFacts must be total on hostile input: any mutilation yields an
// error (never a panic, never an allocation explosion), and truncation at
// every prefix length is rejected cleanly.
func TestFactsHostileInput(t *testing.T) {
	enc := sampleFacts().Encode()

	t.Run("truncation", func(t *testing.T) {
		for i := 0; i < len(enc); i++ {
			if _, err := DecodeFacts(enc[:i]); err == nil {
				t.Errorf("prefix of length %d decoded cleanly", i)
			}
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeFacts(append(append([]byte{}, enc...), 0xFF)); !errors.Is(err, ErrFactMalformed) {
			t.Errorf("trailing byte decoded with err=%v, want ErrFactMalformed", err)
		}
	})

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte{}, enc...)
		bad[0] ^= 0x20
		if _, err := DecodeFacts(bad); !errors.Is(err, ErrFactMalformed) {
			t.Errorf("bad magic decoded with err=%v, want ErrFactMalformed", err)
		}
	})

	t.Run("oversized count", func(t *testing.T) {
		// A count far beyond the remaining bytes must not preallocate.
		b := append([]byte{}, factMagic...)
		b = ermic.AppendUvarint(b, factVersion)
		b = ermic.AppendUvarint(b, 1<<40) // nFns
		if _, err := DecodeFacts(b); !errors.Is(err, ErrFactMalformed) {
			t.Errorf("oversized count decoded with err=%v, want ErrFactMalformed", err)
		}
	})

	t.Run("oversized budget index", func(t *testing.T) {
		f := NewFacts()
		f.Fns["p.f"] = &FuncFact{BudgetParams: []int{1 << 21}}
		if _, err := DecodeFacts(f.Encode()); !errors.Is(err, ErrFactMalformed) {
			t.Errorf("oversized budget index decoded with err=%v, want ErrFactMalformed", err)
		}
	})

	t.Run("bit flips", func(t *testing.T) {
		// Every single-bit corruption either decodes to *some* valid fact
		// set or errors — it must never panic. (Run the whole corpus; the
		// file is small.)
		for i := range enc {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte{}, enc...)
				bad[i] ^= 1 << bit
				_, _ = DecodeFacts(bad)
			}
		}
	})

	t.Run("empty and tiny", func(t *testing.T) {
		for _, b := range [][]byte{nil, {}, {0x00}, factMagic[:4], factMagic} {
			if _, err := DecodeFacts(b); err == nil {
				t.Errorf("input %v decoded cleanly", b)
			}
		}
	})
}

func TestFactsMergeAndNilSafety(t *testing.T) {
	var nilFacts *Facts
	if nilFacts.Fn("x") != nil || nilFacts.Enum("x") != nil {
		t.Error("nil Facts lookups must return nil")
	}
	dst := NewFacts()
	dst.Merge(nil) // must not panic
	dst.Merge(sampleFacts())
	if dst.Fn("elasticrmi/internal/wal.syncDir") == nil {
		t.Error("Merge dropped a function fact")
	}
	if dst.Enum("elasticrmi/internal/transport.frameKind") == nil {
		t.Error("Merge dropped an enum fact")
	}
}
