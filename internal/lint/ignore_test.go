package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// Malformed //ermi:ignore directives are reported and suppress nothing.
// (These cases live here rather than in a fixture: a line comment cannot
// share its line with a separate `// want` comment.)
func TestMalformedIgnoreDirectives(t *testing.T) {
	const src = `package p

//ermi:ignore
var a int

//ermi:ignore bogus some reason
var b int

//ermi:ignore payloadown
var c int
`
	fset, files := parseOne(t, src)
	ix := collectIgnores(fset, files)
	diags := ix.malformed(fset)
	if len(diags) != 3 {
		t.Fatalf("got %d malformed-directive diagnostics, want 3: %+v", len(diags), diags)
	}
	wants := []string{
		"needs an analyzer name and a reason",
		`unknown analyzer "bogus"`,
		"needs a reason",
	}
	for i, want := range wants {
		if d := diags[i]; d.Analyzer != "ignore" || !strings.Contains(d.Message, want) {
			t.Errorf("diag %d = [%s] %q, want substring %q", i, d.Analyzer, d.Message, want)
		}
	}
	// None of the malformed directives suppresses anything on its line or
	// the one below.
	for _, d := range diags {
		probe := Diagnostic{Analyzer: "payloadown", Position: token.Position{
			Filename: d.Position.Filename, Line: d.Position.Line + 1,
		}}
		if _, ok := ix.suppressedReason(probe); ok {
			t.Errorf("malformed directive at line %d suppressed a diagnostic", d.Position.Line)
		}
	}
}

// A well-formed directive suppresses only its named analyzer, on its own
// line and the line below.
func TestIgnoreScope(t *testing.T) {
	const src = `package p

//ermi:ignore lockorder held across the probe by design
var a int
`
	fset, files := parseOne(t, src)
	ix := collectIgnores(fset, files)
	mk := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Position: token.Position{Filename: "p.go", Line: line}}
	}
	if _, ok := ix.suppressedReason(mk("lockorder", 3)); !ok {
		t.Error("directive did not cover its own line")
	}
	if reason, ok := ix.suppressedReason(mk("lockorder", 4)); !ok || reason != "held across the probe by design" {
		t.Errorf("directive did not cover the next line with its reason (got %q, %v)", reason, ok)
	}
	if _, ok := ix.suppressedReason(mk("lockorder", 5)); ok {
		t.Error("directive leaked past the line below it")
	}
	if _, ok := ix.suppressedReason(mk("payloadown", 4)); ok {
		t.Error("directive suppressed a different analyzer")
	}
}
