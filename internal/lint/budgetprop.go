package lint

import (
	"go/ast"
	"go/types"
)

// Budgetprop enforces deadline-budget propagation: a handler (any function
// taking a *transport.Request) that issues a downstream transport call
// must thread the caller's budget into it, or the upstream deadline stops
// bounding the chain — a handler with 80ms left can happily start a 2s
// downstream call and the client times out while the server keeps
// working.
//
// Checked call shapes on transport.Client, inside request-taking
// functions only:
//
//	Go(svc, m, payload)              — always reported: no budget slot; use GoBudget
//	GoBudget(svc, m, payload, b)     — b must derive from the request
//	Call(svc, m, payload, timeout)   — timeout doubles as the wire budget; must derive
//	CallDecode(svc, m, a, r, timeout) — same
//
// "Derives from the request" means the argument expression mentions the
// request variable (req.Budget, time.Until(req.Deadline),
// remaining(req), ...) or a local previously assigned from one that does.
// Fire-and-forget sends (OneWay*) carry no reply deadline and are exempt.
//
// The check sees through calls: the fact table (factbuild.go) records, for
// every function in this package and its imports, which parameters flow
// into a downstream transport budget slot (those arguments must derive
// from the request here) and whether the function issues a transport call
// whose budget derives from nothing the caller controls (calling it from a
// handler breaks the deadline chain outright, however many packages deep
// the actual Call is).
var Budgetprop = &Analyzer{
	Name: "budgetprop",
	Doc:  "check that request handlers thread the caller's budget into downstream transport calls",
	Run:  runBudgetprop,
}

// budgetArg maps the checked Client methods to the index of their
// budget-bearing argument (-1: the method has no budget slot at all).
var budgetArg = map[string]int{
	"Go":         -1,
	"GoBudget":   3,
	"Call":       3,
	"CallDecode": 4,
}

func runBudgetprop(pass *Pass) {
	if pkgElem(pass.Pkg) == "transport" {
		return // the transport owns the budget plumbing it implements
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			req := requestParam(pass.TypesInfo, ftyp)
			if req == nil {
				return true
			}
			checkBudgets(pass, body, req)
			return true
		})
	}
}

func checkBudgets(pass *Pass, body *ast.BlockStmt, req *types.Var) {
	// derived: locals assigned (so far, in source order) from an expression
	// that mentions the request.
	derived := map[*types.Var]bool{}
	mentionsReq := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && (v == req || derived[v]) {
				found = true
			}
			return true
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			// Nested request-taking literals get their own walk from
			// runBudgetprop; other literals inherit this handler's req via
			// capture, so keep descending with the same state.
			if requestParam(pass.TypesInfo, t.Type) != nil {
				return false
			}
		case *ast.AssignStmt:
			if len(t.Lhs) == len(t.Rhs) {
				for i, lhs := range t.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if !mentionsReq(t.Rhs[i]) {
						continue
					}
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						derived[v] = true
					} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						derived[v] = true
					}
				}
			}
		case *ast.CallExpr:
			pkgBase, recv, name, ok := calleeName(pass.TypesInfo, t)
			if !ok {
				return true
			}
			if pkgBase != "transport" || recv != "Client" {
				checkBudgetFacts(pass, t, mentionsReq)
				return true
			}
			slot, checked := budgetArg[name]
			if !checked {
				return true
			}
			if slot < 0 {
				pass.Reportf(t.Pos(), "handler issues Client.Go without a budget: use GoBudget with the request's remaining budget so the caller's deadline bounds the chain")
				return true
			}
			if slot >= len(t.Args) {
				return true // malformed call; the compiler owns this
			}
			if !mentionsReq(t.Args[slot]) {
				pass.Reportf(t.Pos(), "downstream %s does not propagate the request budget: derive the %s argument from req.Budget or req.Deadline", name, argNoun(name))
			}
		}
		return true
	})
}

// checkBudgetFacts applies the fact table to a non-transport call inside a
// handler: arguments the callee feeds into a downstream budget slot must
// derive from the request, and a callee that hardcodes a downstream budget
// is reported at the call site.
func checkBudgetFacts(pass *Pass, call *ast.CallExpr, mentionsReq func(ast.Expr) bool) {
	key := calleeFactKey(pass.TypesInfo, call)
	if key == "" {
		return
	}
	fact := pass.Facts.Fn(key)
	if fact == nil {
		return
	}
	short := shortFactKey(key)
	if fact.Unbudgeted {
		pass.Reportf(call.Pos(), "handler calls %s, which issues a downstream transport call whose budget does not derive from this request: thread req.Budget through or bound the chain explicitly", short)
	}
	for _, j := range fact.BudgetParams {
		if j >= len(call.Args) {
			continue
		}
		if !mentionsReq(call.Args[j]) {
			pass.Reportf(call.Pos(), "argument %d of %s flows into a downstream transport budget: derive it from req.Budget or req.Deadline", j+1, short)
		}
	}
}

func argNoun(method string) string {
	if method == "GoBudget" {
		return "budget"
	}
	return "timeout"
}
