package marketcetera_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/marketcetera"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func startRouting(t *testing.T) (*core.Pool, *core.Stub) {
	t.Helper()
	env := ermitest.New(t, 8)
	pool := env.StartPool(t, core.Config{
		Name: "order-routing", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, marketcetera.New(marketcetera.Config{}))
	stub := env.Stub(t, "order-routing")
	return pool, stub
}

func addVenue(t *testing.T, stub *core.Stub, v marketcetera.Venue) {
	t.Helper()
	ok, err := core.Call[marketcetera.Venue, bool](stub, marketcetera.MethodAddVenue, v)
	if err != nil || !ok {
		t.Fatalf("AddVenue(%s): ok=%v err=%v", v.Name, ok, err)
	}
}

func TestRouteToListedVenue(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "NYSE", Symbols: []string{"IBM", "GE"}})
	addVenue(t, stub, marketcetera.Venue{Name: "NASDAQ", Symbols: []string{"AAPL"}})
	addVenue(t, stub, marketcetera.Venue{Name: "DARKPOOL"})

	tests := []struct {
		symbol string
		want   string
	}{
		{"IBM", "NYSE"},
		{"GE", "NYSE"},
		{"AAPL", "NASDAQ"},
		{"ZZZ", "DARKPOOL"}, // unlisted goes to the default venue
	}
	for i, tc := range tests {
		o := marketcetera.Order{
			ID: marketcetera.OrderID("t1", int64(i)), Trader: "t1",
			Symbol: tc.symbol, Side: marketcetera.Buy, Qty: 100, LimitPrice: 1000,
		}
		rec, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o)
		if err != nil {
			t.Fatalf("Route(%s): %v", tc.symbol, err)
		}
		if rec.Venue != tc.want {
			t.Errorf("Route(%s) venue = %s, want %s", tc.symbol, rec.Venue, tc.want)
		}
		if rec.OrderID != o.ID {
			t.Errorf("receipt order = %s, want %s", rec.OrderID, o.ID)
		}
	}
}

func TestRouteValidation(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "X"})

	bad := []marketcetera.Order{
		{},
		{ID: "1", Symbol: "IBM", Side: marketcetera.Buy, Qty: 0},
		{ID: "2", Symbol: "", Side: marketcetera.Buy, Qty: 1},
		{ID: "3", Symbol: "IBM", Side: 0, Qty: 1},
		{ID: "4", Symbol: "IBM", Side: marketcetera.Sell, Qty: 5, LimitPrice: -1},
	}
	for _, o := range bad {
		if _, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o); err == nil {
			t.Errorf("Route(%+v): expected validation error", o)
		}
	}
	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Rejected != int64(len(bad)) {
		t.Errorf("rejected = %d, want %d", st.Rejected, len(bad))
	}
}

func TestOrdersPersistedOnTwoNodes(t *testing.T) {
	env := ermitest.New(t, 8)
	env.StartPool(t, core.Config{
		Name: "order-routing", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, marketcetera.New(marketcetera.Config{}))
	stub := env.Stub(t, "order-routing")
	addVenue(t, stub, marketcetera.Venue{Name: "NYSE"})

	o := marketcetera.Order{ID: "t9-1", Trader: "t9", Symbol: "IBM", Side: marketcetera.Buy, Qty: 10}
	if _, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o); err != nil {
		t.Fatalf("Route: %v", err)
	}
	keys, err := env.Store.Keys("order-routing$order/t9-1")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 2 {
		t.Fatalf("order persisted on %d records, want 2 (primary+backup): %v", len(keys), keys)
	}
	var primary, backup bool
	for _, k := range keys {
		if strings.HasSuffix(k, "/primary") {
			primary = true
		}
		if strings.HasSuffix(k, "/backup") {
			backup = true
		}
	}
	if !primary || !backup {
		t.Fatalf("missing primary/backup copy: %v", keys)
	}
}

func TestStatusCountsByVenue(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "NYSE", Symbols: []string{"IBM"}})
	addVenue(t, stub, marketcetera.Venue{Name: "DEFAULT"})

	for i := 0; i < 10; i++ {
		sym := "IBM"
		if i%2 == 1 {
			sym = "MISC"
		}
		o := marketcetera.Order{
			ID: marketcetera.OrderID("s", int64(i)), Trader: "s",
			Symbol: sym, Side: marketcetera.Sell, Qty: 1,
		}
		if _, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o); err != nil {
			t.Fatalf("Route: %v", err)
		}
	}
	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Routed != 10 {
		t.Errorf("routed = %d, want 10", st.Routed)
	}
	if st.ByVenue["NYSE"] != 5 || st.ByVenue["DEFAULT"] != 5 {
		t.Errorf("per-venue counts = %v, want 5/5", st.ByVenue)
	}
}

func TestConcurrentRouting(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "V"})

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				o := marketcetera.Order{
					ID:     marketcetera.OrderID(fmt.Sprintf("w%d", w), int64(i)),
					Trader: "w", Symbol: "SYM", Side: marketcetera.Buy, Qty: 1,
				}
				if _, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatalf("concurrent route: %v", err)
	}
	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Routed != workers*perWorker {
		t.Errorf("routed = %d, want %d", st.Routed, workers*perWorker)
	}
}

func TestRouteWithoutVenuesFails(t *testing.T) {
	_, stub := startRouting(t)
	o := marketcetera.Order{ID: "x-1", Trader: "x", Symbol: "IBM", Side: marketcetera.Buy, Qty: 1}
	_, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o)
	if err == nil {
		t.Fatal("expected error with no venues registered")
	}
	if errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("application error misclassified as unavailability: %v", err)
	}
}

// TestRouteAsyncPipelinesOrderFlow: a strategy engine submits its whole
// burst through RouteAsync before collecting receipts; every order must be
// routed exactly once and persisted on both nodes, exactly as in the
// synchronous path.
func TestRouteAsyncPipelinesOrderFlow(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "ARCA"})

	const n = 64
	futures := make([]*core.Future[marketcetera.Receipt], n)
	for i := 0; i < n; i++ {
		futures[i] = marketcetera.RouteAsync(stub, marketcetera.Order{
			ID:     marketcetera.OrderID("engine", int64(i)),
			Trader: "engine", Symbol: "IBM", Side: marketcetera.Buy, Qty: 10,
		})
	}
	for i, f := range futures {
		rec, err := f.Get()
		if err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
		if rec.OrderID != marketcetera.OrderID("engine", int64(i)) || rec.Venue != "ARCA" {
			t.Fatalf("order %d receipt = %+v", i, rec)
		}
	}
	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Routed != n || st.ByVenue["ARCA"] != n {
		t.Fatalf("status = %+v, want %d routed via ARCA", st, n)
	}
}

// TestRouteAsyncRejectsBadOrderThroughFuture: application errors propagate
// through the async pipeline without being retried on other members.
func TestRouteAsyncRejectsBadOrderThroughFuture(t *testing.T) {
	_, stub := startRouting(t)
	addVenue(t, stub, marketcetera.Venue{Name: "ARCA"})
	_, err := marketcetera.RouteAsync(stub, marketcetera.Order{ID: "", Symbol: "IBM", Side: marketcetera.Buy, Qty: 1}).Get()
	if err == nil || !strings.Contains(err.Error(), "empty ID") {
		t.Fatalf("err = %v, want validation error through future", err)
	}
	st, err := core.Call[struct{}, marketcetera.Status](stub, marketcetera.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want exactly 1 (no retry of an app error)", st.Rejected)
	}
}
