// Package marketcetera re-implements the order-routing subsystem of the
// Marketcetera algorithmic-trading platform as an ElasticRMI elastic class
// (paper §5.2). The order routing system accepts orders from traders and
// automated strategy engines and routes them to markets, brokers and other
// financial intermediaries; for fault tolerance every order is persisted on
// two nodes before the routing receipt is returned.
//
// Elasticity is fine-grained (§3.3): ChangePoolSize inspects the order
// backlog and the observed routing latency — the application-specific
// signals a CPU threshold cannot see — to decide how many router objects to
// add or remove.
package marketcetera

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/transport"
)

//go:generate go run elasticrmi/cmd/ermi-gen -in marketcetera.go -out marketcetera_ermi.go

// Side of an order.
type Side int

// Order sides.
const (
	Buy Side = iota + 1
	Sell
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Buy:
		return "BUY"
	case Sell:
		return "SELL"
	default:
		return "UNKNOWN"
	}
}

// Order is a trading order submitted by a trader or strategy engine. It is
// //ermi:codec-marked, so orders travel (and persist) in the generated
// binary encoding rather than gob.
//
//ermi:codec
type Order struct {
	ID     string
	Trader string
	Symbol string
	Side   Side
	Qty    int64
	// LimitPrice in cents; 0 means a market order.
	LimitPrice int64
}

// Validate checks order well-formedness.
func (o Order) Validate() error {
	switch {
	case o.ID == "":
		return errors.New("order: empty ID")
	case o.Symbol == "":
		return errors.New("order: empty symbol")
	case o.Side != Buy && o.Side != Sell:
		return fmt.Errorf("order: bad side %d", o.Side)
	case o.Qty <= 0:
		return fmt.Errorf("order: non-positive quantity %d", o.Qty)
	case o.LimitPrice < 0:
		return fmt.Errorf("order: negative price %d", o.LimitPrice)
	default:
		return nil
	}
}

// Receipt acknowledges a routed order.
//
//ermi:codec
type Receipt struct {
	OrderID  string
	Venue    string
	RoutedBy int64 // member UID, for observability
}

// Venue is a market/broker destination with the symbols it lists. A venue
// listing no symbols is a default destination accepting anything.
//
//ermi:codec
type Venue struct {
	Name    string
	Symbols []string
}

// Remote method names.
const (
	// MethodRoute routes one order: "Route" (Order) -> Receipt.
	MethodRoute = "Route"
	// MethodAddVenue registers a destination: "AddVenue" (Venue) -> bool.
	MethodAddVenue = "AddVenue"
	// MethodVenues lists destinations: "Venues" (struct{}) -> []Venue.
	MethodVenues = "Venues"
	// MethodStatus reports routing counters: "Status" (struct{}) -> Status.
	MethodStatus = "Status"
)

// Status aggregates routing counters from the shared state.
//
//ermi:codec
type Status struct {
	Routed   int64
	Rejected int64
	ByVenue  map[string]int64
}

// Config tunes the router's elasticity logic.
type Config struct {
	// TargetLatency is the routing-latency QoS bound; above it the pool
	// grows. Default 5ms (in-process routing work).
	TargetLatency time.Duration
	// BacklogHigh is the per-member pending-order count that triggers
	// growth. Default 32.
	BacklogHigh int
	// IdleRate is the per-member Route rate (orders/s) below which the pool
	// shrinks. Default 10.
	IdleRate float64
}

func (c Config) withDefaults() Config {
	if c.TargetLatency == 0 {
		c.TargetLatency = 5 * time.Millisecond
	}
	if c.BacklogHigh == 0 {
		c.BacklogHigh = 32
	}
	if c.IdleRate == 0 {
		c.IdleRate = 10
	}
	return c
}

// Router is one member of the elastic order-routing pool.
type Router struct {
	ctx *core.MemberContext
	cfg Config
	mux *core.Mux

	pending atomic.Int64 // orders accepted but not yet fully persisted
}

var (
	_ core.Object    = (*Router)(nil)
	_ core.PoolSizer = (*Router)(nil)
)

// New creates the router factory for core.NewPool.
func New(cfg Config) core.Factory {
	cfg = cfg.withDefaults()
	return func(ctx *core.MemberContext) (core.Object, error) {
		r := &Router{ctx: ctx, cfg: cfg, mux: core.NewMux()}
		core.Handle(r.mux, MethodRoute, r.route)
		core.Handle(r.mux, MethodAddVenue, r.addVenue)
		core.Handle(r.mux, MethodVenues, r.listVenues)
		core.Handle(r.mux, MethodStatus, r.status)
		return r, nil
	}
}

// HandleCall implements core.Object.
func (r *Router) HandleCall(method string, arg []byte) ([]byte, error) {
	return r.mux.HandleCall(method, arg)
}

// HandleRequest implements core.RequestHandler: the skeleton dispatches
// through here so codec payload buffers keep their arena lifetime.
func (r *Router) HandleRequest(req *transport.Request) ([]byte, error) {
	return r.mux.HandleRequest(req)
}

// route picks the venue for the order, persists the order on two nodes and
// returns the receipt.
func (r *Router) route(o Order) (Receipt, error) {
	if err := o.Validate(); err != nil {
		_, _ = r.ctx.State.AddInt("rejected", 1)
		return Receipt{}, err
	}
	r.pending.Add(1)
	defer r.pending.Add(-1)

	venue, err := r.pickVenue(o.Symbol)
	if err != nil {
		_, _ = r.ctx.State.AddInt("rejected", 1)
		return Receipt{}, err
	}
	// Persist the order on two nodes for fault tolerance (§5.2): primary
	// and backup records hash to different store shards.
	rec, err := transport.Encode(&o)
	if err != nil {
		return Receipt{}, err
	}
	if err := r.ctx.State.PutBytes("order/"+o.ID+"/primary", rec); err != nil {
		return Receipt{}, fmt.Errorf("persist primary: %w", err)
	}
	if err := r.ctx.State.PutBytes("order/"+o.ID+"/backup", rec); err != nil {
		return Receipt{}, fmt.Errorf("persist backup: %w", err)
	}
	if _, err := r.ctx.State.AddInt("routed", 1); err != nil {
		return Receipt{}, err
	}
	if _, err := r.ctx.State.AddInt("venue/"+venue, 1); err != nil {
		return Receipt{}, err
	}
	return Receipt{OrderID: o.ID, Venue: venue, RoutedBy: r.ctx.UID}, nil
}

// pickVenue resolves the destination for a symbol: an explicit listing
// wins; otherwise any default venue (no symbol list) accepts the order,
// chosen deterministically by symbol hash so a symbol's flow is stable.
func (r *Router) pickVenue(symbol string) (string, error) {
	venues, err := r.loadVenues()
	if err != nil {
		return "", err
	}
	if len(venues) == 0 {
		return "", errors.New("route: no venues registered")
	}
	var defaults []string
	for _, v := range venues {
		if len(v.Symbols) == 0 {
			defaults = append(defaults, v.Name)
			continue
		}
		for _, s := range v.Symbols {
			if s == symbol {
				return v.Name, nil
			}
		}
	}
	if len(defaults) == 0 {
		return "", fmt.Errorf("route: no venue lists %q and no default venue", symbol)
	}
	sort.Strings(defaults)
	h := fnv.New32a()
	_, _ = h.Write([]byte(symbol))
	return defaults[int(h.Sum32())%len(defaults)], nil
}

func (r *Router) addVenue(v Venue) (bool, error) {
	if v.Name == "" {
		return false, errors.New("venue: empty name")
	}
	// The venue table is shared state: all routers must see it.
	err := r.ctx.State.Synchronized(func() error {
		names, err := r.ctx.State.GetString("venue-names")
		if err != nil {
			return err
		}
		set := splitList(names)
		if !contains(set, v.Name) {
			set = append(set, v.Name)
			if err := r.ctx.State.PutString("venue-names", joinList(set)); err != nil {
				return err
			}
		}
		return r.ctx.State.PutString("venue-symbols/"+v.Name, joinList(v.Symbols))
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

func (r *Router) loadVenues() ([]Venue, error) {
	names, err := r.ctx.State.GetString("venue-names")
	if err != nil {
		return nil, err
	}
	var out []Venue
	for _, name := range splitList(names) {
		syms, err := r.ctx.State.GetString("venue-symbols/" + name)
		if err != nil {
			return nil, err
		}
		out = append(out, Venue{Name: name, Symbols: splitList(syms)})
	}
	return out, nil
}

func (r *Router) listVenues(struct{}) ([]Venue, error) {
	return r.loadVenues()
}

func (r *Router) status(struct{}) (Status, error) {
	routed, err := r.ctx.State.GetInt("routed")
	if err != nil {
		return Status{}, err
	}
	rejected, err := r.ctx.State.GetInt("rejected")
	if err != nil {
		return Status{}, err
	}
	st := Status{Routed: routed, Rejected: rejected, ByVenue: make(map[string]int64)}
	venues, err := r.loadVenues()
	if err != nil {
		return Status{}, err
	}
	for _, v := range venues {
		n, err := r.ctx.State.GetInt("venue/" + v.Name)
		if err != nil {
			return Status{}, err
		}
		st.ByVenue[v.Name] = n
	}
	return st, nil
}

// ChangePoolSize implements core.PoolSizer with Marketcetera-specific
// signals: routing latency against the QoS target, the pending-order
// backlog, and idleness. It mirrors the structure of the paper's
// CacheExplicit2 example (Fig. 5).
func (r *Router) ChangePoolSize() int {
	stats := r.ctx.MethodCallStats()
	route, ok := stats[MethodRoute]
	if !ok || route.Calls == 0 {
		// No routing traffic at all last interval: shrink.
		return -1
	}
	backlog := int(r.pending.Load())
	switch {
	case route.AvgLatency > 2*r.cfg.TargetLatency || backlog > 2*r.cfg.BacklogHigh:
		return 2
	case route.AvgLatency > r.cfg.TargetLatency || backlog > r.cfg.BacklogHigh:
		return 1
	case route.RatePerSec < r.cfg.IdleRate && backlog == 0:
		return -1
	default:
		return 0
	}
}

// Pending reports orders currently being persisted on this member.
func (r *Router) Pending() int64 { return r.pending.Load() }

// RouteAsync pipelines an order through the elastic routing pool: a
// strategy engine submits its whole burst without waiting for receipts,
// then collects them — the two-node persistence of each order overlaps with
// the submission of the next instead of serializing behind it.
func RouteAsync(s *core.Stub, o Order) *core.Future[Receipt] {
	return core.GoCall[Order, Receipt](s, MethodRoute, o)
}

// list encoding helpers: the shared store holds flat strings.

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func joinList(items []string) string {
	return strings.Join(items, ",")
}

func contains(items []string, s string) bool {
	for _, it := range items {
		if it == s {
			return true
		}
	}
	return false
}

// OrderID builds a unique order identifier from trader and sequence.
func OrderID(trader string, seq int64) string {
	return trader + "-" + strconv.FormatInt(seq, 10)
}
