package cache_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func startCache(t *testing.T, mode cache.Mode) (*core.Pool, *core.Stub) {
	t.Helper()
	env := ermitest.New(t, 8)
	pool := env.StartPool(t, core.Config{
		Name: "cache", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, cache.New(cache.Config{Mode: mode}))
	stub := env.Stub(t, "cache")
	return pool, stub
}

func TestCachePutGetDelete(t *testing.T) {
	_, stub := startCache(t, cache.ExplicitFine)
	if _, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
		cache.PutArgs{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: "k"})
	if err != nil || !got.Hit || string(got.Value) != "v" {
		t.Fatalf("get = %+v, %v", got, err)
	}
	miss, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: "nope"})
	if err != nil || miss.Hit {
		t.Fatalf("miss = %+v, %v", miss, err)
	}
	if _, err := core.Call[cache.GetArgs, bool](stub, cache.MethodDelete, cache.GetArgs{Key: "k"}); err != nil {
		t.Fatalf("del: %v", err)
	}
	got, _ = core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: "k"})
	if got.Hit {
		t.Fatal("hit after delete")
	}
}

func TestCacheSingleObjectIllusion(t *testing.T) {
	// Writes through any member are reads through any other: the pool is
	// one cache (§2.1: the pool behaves as a single remote object).
	pool, stub := startCache(t, cache.ExplicitFine)
	for i := 0; i < 3*pool.Size(); i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
			cache.PutArgs{Key: key, Value: []byte(key)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 3*pool.Size(); i++ {
		key := fmt.Sprintf("k%d", i)
		got, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: key})
		if err != nil || !got.Hit || string(got.Value) != key {
			t.Fatalf("get(%s) = %+v, %v", key, got, err)
		}
	}
	n, err := core.Call[struct{}, int64](stub, cache.MethodLen, struct{}{})
	if err != nil || n != int64(3*pool.Size()) {
		t.Fatalf("len = %d, %v", n, err)
	}
}

func TestImplicitModeUsesCPUPolicy(t *testing.T) {
	pool, _ := startCache(t, cache.Implicit)
	if pool.Policy() != "implicit" {
		t.Fatalf("policy = %s, want implicit (no PoolSizer)", pool.Policy())
	}
	fine, _ := startCache(t, cache.ExplicitFine)
	if fine.Policy() != "fine" {
		t.Fatalf("policy = %s, want fine (CacheExplicit2 overrides)", fine.Policy())
	}
}

// TestCoarseRAMThresholdGrowsPool reproduces CacheExplicit1 (Fig. 4b): an
// implicit-mode cache with RAM thresholds on the pool Config grows when the
// occupancy gauge crosses the RAM-increase bound, via the logical-OR coarse
// policy.
func TestCoarseRAMThresholdGrowsPool(t *testing.T) {
	env := ermitest.New(t, 8)
	pool := env.StartPool(t, core.Config{
		Name: "cache-ram", MinPoolSize: 2, MaxPoolSize: 5,
		BurstInterval:    time.Hour,
		CPUIncrThreshold: 85, CPUDecrThreshold: 1, // decr disabled in practice
		RAMIncrThreshold: 70, RAMDecrThreshold: 0,
		DisableBroadcast: true,
	}, cache.New(cache.Config{Mode: cache.Implicit, CapacityEntries: 4}))
	if pool.Policy() != "coarse" {
		t.Fatalf("policy = %s, want coarse", pool.Policy())
	}
	stub := env.Stub(t, "cache-ram")

	// Budget is 4 entries/member x 2 members = 8; 7 entries => ~88% RAM.
	for i := 0; i < 7; i++ {
		if _, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
			cache.PutArgs{Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	pool.Step()
	if got := pool.Size(); got != 3 {
		t.Fatalf("size after RAM-pressure step = %d, want 3", got)
	}
}

func TestConcurrentPutsSameKeySerialized(t *testing.T) {
	_, stub := startCache(t, cache.ExplicitFine)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
					cache.PutArgs{Key: "hot", Value: []byte{byte(w)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: "hot"})
	if err != nil || !got.Hit {
		t.Fatalf("hot key lost: %+v, %v", got, err)
	}
}
