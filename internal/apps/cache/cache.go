// Package cache implements the distributed cache that serves as the paper's
// running example (Figures 4 and 5): a web/content/object cache as an
// elastic class. All three flavours from the paper are constructible:
//
//   - Implicit (Fig. 4a, CacheImplicit): only min/max pool size set; the
//     runtime's default CPU policy drives scaling.
//   - Explicit coarse (Fig. 4b, CacheExplicit1): CPU/RAM thresholds and a
//     burst interval set on the pool Config.
//   - Explicit fine (Fig. 5, CacheExplicit2): ChangePoolSize compares put
//     and get latencies and holds back when write-lock contention
//     (avgLockAcqFailure, avgLockAcqLatency) is the bottleneck.
//
// Entries live in the pool's shared state so the pool behaves as a single
// cache toward clients; puts take a per-key write lock to keep the
// read-modify-write of entry metadata consistent.
package cache

import (
	"errors"
	"sync/atomic"
	"time"

	"elasticrmi/internal/core"
)

// Remote method names.
const (
	// MethodGet reads a key: (GetArgs) -> GetReply.
	MethodGet = "get"
	// MethodPut writes a key: (PutArgs) -> PutReply.
	MethodPut = "put"
	// MethodDelete removes a key: (GetArgs) -> bool.
	MethodDelete = "del"
	// MethodLen reports entry count: (struct{}) -> int64.
	MethodLen = "len"
)

// Argument/reply structs.
type (
	// GetArgs names a key.
	GetArgs struct{ Key string }
	// GetReply returns the value; Hit is false for misses.
	GetReply struct {
		Value []byte
		Hit   bool
	}
	// PutArgs writes Key=Value.
	PutArgs struct {
		Key   string
		Value []byte
	}
	// PutReply acknowledges the write.
	PutReply struct{ Stored bool }
)

// Mode selects the elasticity flavour of the cache object.
type Mode int

// Cache modes, mirroring the paper's three example classes.
const (
	// Implicit relies on the runtime's default CPU-based scaling (Fig. 4a).
	Implicit Mode = iota + 1
	// ExplicitFine overrides ChangePoolSize with the Fig. 5 logic.
	ExplicitFine
)

// Config tunes the fine-grained policy thresholds of Fig. 5.
type Config struct {
	Mode Mode
	// PutLatencyBound is Fig. 5's "putLatency > 100" bound. Default 2ms
	// (in-process scale).
	PutLatencyBound time.Duration
	// LockFailureHighPct is Fig. 5's avgLockAcqFailure > 50 cut. Default 50.
	LockFailureHighPct float64
	// CapacityEntries is the per-member entry budget backing the RAM gauge
	// (how full the cache "memory" is, for the CacheExplicit1-style RAM
	// thresholds of Fig. 4b). Default 1024.
	CapacityEntries int64
	// IdleRate is the per-member request rate (gets+puts per second) below
	// which the fine-grained policy releases one object — the scale-down
	// rule Fig. 5 leaves implicit. Default 10.
	IdleRate float64
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ExplicitFine
	}
	if c.PutLatencyBound == 0 {
		c.PutLatencyBound = 2 * time.Millisecond
	}
	if c.LockFailureHighPct == 0 {
		c.LockFailureHighPct = 50
	}
	if c.CapacityEntries == 0 {
		c.CapacityEntries = 1024
	}
	if c.IdleRate == 0 {
		c.IdleRate = 10
	}
	return c
}

// Cache is one member of the elastic cache pool.
type Cache struct {
	ctx *core.MemberContext
	cfg Config
	mux *core.Mux

	// Write-lock contention counters over the burst interval (Fig. 5's
	// avgLockAcqFailure / avgLockAcqLatency).
	lockAttempts  atomic.Int64
	lockFailures  atomic.Int64
	lockWaitNanos atomic.Int64
}

var (
	_ core.Object   = (*Cache)(nil)
	_ core.RAMGauge = (*Cache)(nil)
)

// RAMUsage implements core.RAMGauge: cache occupancy as a fraction of the
// per-pool entry budget, in percent. It is the memory-utilization signal
// the CacheExplicit1 example of Fig. 4b scales on.
func (c *Cache) RAMUsage() float64 {
	n, err := c.length(struct{}{})
	if err != nil {
		return 0
	}
	size := c.ctx.PoolSize()
	if size < 1 {
		size = 1
	}
	budget := c.cfg.CapacityEntries * int64(size)
	return 100 * float64(n) / float64(budget)
}

// fineCache adds the ChangePoolSize override; a separate type so the
// implicit flavour does NOT implement core.PoolSizer (the runtime selects
// the decision mechanism by interface detection, like the preprocessor
// detects the override).
type fineCache struct {
	*Cache
}

var _ core.PoolSizer = fineCache{}

// New creates the cache factory for core.NewPool.
func New(cfg Config) core.Factory {
	cfg = cfg.withDefaults()
	return func(ctx *core.MemberContext) (core.Object, error) {
		c := &Cache{ctx: ctx, cfg: cfg, mux: core.NewMux()}
		core.Handle(c.mux, MethodGet, c.get)
		core.Handle(c.mux, MethodPut, c.put)
		core.Handle(c.mux, MethodDelete, c.del)
		core.Handle(c.mux, MethodLen, c.length)
		if cfg.Mode == ExplicitFine {
			return fineCache{c}, nil
		}
		return c, nil
	}
}

// HandleCall implements core.Object.
func (c *Cache) HandleCall(method string, arg []byte) ([]byte, error) {
	return c.mux.HandleCall(method, arg)
}

func (c *Cache) get(a GetArgs) (GetReply, error) {
	if a.Key == "" {
		return GetReply{}, errors.New("cache: empty key")
	}
	val, err := c.ctx.State.GetBytes("entry/" + a.Key)
	if err != nil {
		return GetReply{}, err
	}
	if val == nil {
		return GetReply{Hit: false}, nil
	}
	return GetReply{Value: val, Hit: true}, nil
}

// put takes the per-key write lock to ensure consistency, recording
// contention statistics exactly like CacheExplicit2.
func (c *Cache) put(a PutArgs) (PutReply, error) {
	if a.Key == "" {
		return PutReply{}, errors.New("cache: empty key")
	}
	lock := "cache-w/" + a.Key
	start := time.Now()
	backoff := 500 * time.Microsecond
	var release func() error
	for {
		rel, ok, err := c.ctx.State.TryLock(lock)
		if err != nil {
			return PutReply{}, err
		}
		c.lockAttempts.Add(1)
		if ok {
			release = rel
			break
		}
		c.lockFailures.Add(1)
		time.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
	c.lockWaitNanos.Add(time.Since(start).Nanoseconds())
	defer func() { _ = release() }()

	if err := c.ctx.State.PutBytes("entry/"+a.Key, a.Value); err != nil {
		return PutReply{}, err
	}
	if _, err := c.ctx.State.AddInt("puts", 1); err != nil {
		return PutReply{}, err
	}
	return PutReply{Stored: true}, nil
}

func (c *Cache) del(a GetArgs) (bool, error) {
	if err := c.ctx.State.Delete("entry/" + a.Key); err != nil {
		return false, err
	}
	return true, nil
}

func (c *Cache) length(struct{}) (int64, error) {
	fields, err := c.ctx.State.Fields()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, f := range fields {
		if len(f) > 6 && f[:6] == "entry/" {
			n++
		}
	}
	return n, nil
}

// ChangePoolSize is a direct transcription of Fig. 5's CacheExplicit2
// logic: grow by two when puts are slow, unless write-lock contention is
// the real bottleneck — then adding objects would only increase contention.
func (c fineCache) ChangePoolSize() int {
	sMap := c.ctx.MethodCallStats()
	putLatency := sMap[MethodPut].AvgLatency
	getLatency := sMap[MethodGet].AvgLatency

	attempts := c.lockAttempts.Swap(0)
	failures := c.lockFailures.Swap(0)
	waitNanos := c.lockWaitNanos.Swap(0)
	var avgLockAcqFailure, avgLockAcqLatency float64
	if attempts > 0 {
		avgLockAcqFailure = 100 * float64(failures) / float64(attempts)
		avgLockAcqLatency = float64(waitNanos) / float64(attempts)
	}

	if putLatency > c.cfg.PutLatencyBound || (getLatency > 0 && putLatency > 3*getLatency) {
		if avgLockAcqFailure > c.cfg.LockFailureHighPct {
			return 0
		}
		if avgLockAcqLatency >= 0.8*float64(putLatency) {
			return 0
		}
		return 2
	}
	// Scale-down (Fig. 5 leaves this implicit): release an object when the
	// member is close to idle and comfortably inside the latency budget.
	rate := sMap[MethodPut].RatePerSec + sMap[MethodGet].RatePerSec
	if rate < c.cfg.IdleRate && putLatency < c.cfg.PutLatencyBound/2 {
		return -1
	}
	return 0
}

// ContentionStats exposes the current interval's lock counters (testing).
func (c *Cache) ContentionStats() (attempts, failures int64) {
	return c.lockAttempts.Load(), c.lockFailures.Load()
}
