package dcs_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/dcs"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func startDCS(t *testing.T) (*core.Pool, *core.Stub) {
	t.Helper()
	env := ermitest.New(t, 8)
	pool := env.StartPool(t, core.Config{
		Name: "dcs", MinPoolSize: 2, MaxPoolSize: 5,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, dcs.New(dcs.Config{}))
	stub := env.Stub(t, "dcs")
	return pool, stub
}

func create(t *testing.T, stub *core.Stub, path string, data string) dcs.CreateReply {
	t.Helper()
	rep, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
		dcs.CreateArgs{Path: path, Data: []byte(data)})
	if err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	return rep
}

func TestCreateGetSetDelete(t *testing.T) {
	_, stub := startDCS(t)
	create(t, stub, "/app", "cfg")

	got, err := core.Call[dcs.PathArgs, dcs.GetDataReply](stub, dcs.MethodGetData, dcs.PathArgs{Path: "/app"})
	if err != nil {
		t.Fatalf("GetData: %v", err)
	}
	if string(got.Data) != "cfg" || got.Stat.Version != 0 {
		t.Fatalf("GetData = %q v%d, want cfg v0", got.Data, got.Stat.Version)
	}

	set, err := core.Call[dcs.SetDataArgs, dcs.SetDataReply](stub, dcs.MethodSetData,
		dcs.SetDataArgs{Path: "/app", Data: []byte("cfg2"), ExpectVersion: 0})
	if err != nil {
		t.Fatalf("SetData: %v", err)
	}
	if set.Stat.Version != 1 {
		t.Fatalf("version after set = %d, want 1", set.Stat.Version)
	}
	if set.Stat.Mzxid <= got.Stat.Mzxid {
		t.Fatalf("mzxid not advanced: %d -> %d", got.Stat.Mzxid, set.Stat.Mzxid)
	}

	// Stale conditional update must fail.
	_, err = core.Call[dcs.SetDataArgs, dcs.SetDataReply](stub, dcs.MethodSetData,
		dcs.SetDataArgs{Path: "/app", Data: []byte("x"), ExpectVersion: 0})
	if err == nil {
		t.Fatal("stale SetData succeeded, want version mismatch")
	}

	ok, err := core.Call[dcs.DeleteArgs, bool](stub, dcs.MethodDelete, dcs.DeleteArgs{Path: "/app", ExpectVersion: -1})
	if err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	ex, err := core.Call[dcs.PathArgs, dcs.ExistsReply](stub, dcs.MethodExists, dcs.PathArgs{Path: "/app"})
	if err != nil {
		t.Fatalf("Exists: %v", err)
	}
	if ex.Exists {
		t.Fatal("znode still exists after delete")
	}
}

func TestHierarchy(t *testing.T) {
	_, stub := startDCS(t)
	create(t, stub, "/a", "")
	create(t, stub, "/a/b", "")
	create(t, stub, "/a/c", "")

	kids, err := core.Call[dcs.PathArgs, dcs.ChildrenReply](stub, dcs.MethodGetChildren, dcs.PathArgs{Path: "/a"})
	if err != nil {
		t.Fatalf("GetChildren: %v", err)
	}
	if len(kids.Children) != 2 || kids.Children[0] != "b" || kids.Children[1] != "c" {
		t.Fatalf("children = %v, want [b c]", kids.Children)
	}

	// Parent must exist.
	if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
		dcs.CreateArgs{Path: "/missing/child"}); err == nil {
		t.Fatal("create under missing parent succeeded")
	}
	// Non-empty delete must fail.
	if _, err := core.Call[dcs.DeleteArgs, bool](stub, dcs.MethodDelete,
		dcs.DeleteArgs{Path: "/a", ExpectVersion: -1}); err == nil {
		t.Fatal("delete of non-empty znode succeeded")
	}
	// Duplicate create must fail.
	if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
		dcs.CreateArgs{Path: "/a/b"}); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestBadPaths(t *testing.T) {
	_, stub := startDCS(t)
	for _, p := range []string{"", "a", "/a/", "//a", "/a//b"} {
		if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
			dcs.CreateArgs{Path: p}); err == nil {
			t.Errorf("Create(%q): expected bad-path error", p)
		}
	}
}

func TestSequentialZnodes(t *testing.T) {
	_, stub := startDCS(t)
	create(t, stub, "/queue", "")
	var paths []string
	for i := 0; i < 5; i++ {
		rep, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
			dcs.CreateArgs{Path: "/queue/item-", Sequential: true})
		if err != nil {
			t.Fatalf("sequential create: %v", err)
		}
		paths = append(paths, rep.Path)
	}
	for i := 1; i < len(paths); i++ {
		if !(paths[i-1] < paths[i]) {
			t.Fatalf("sequential paths not increasing: %v", paths)
		}
		if !strings.HasPrefix(paths[i], "/queue/item-") {
			t.Fatalf("bad sequential path %q", paths[i])
		}
	}
}

// TestUpdatesTotallyOrdered: every update's zxid is unique and increasing;
// concurrent writers to one znode produce a linear version history.
func TestUpdatesTotallyOrdered(t *testing.T) {
	_, stub := startDCS(t)
	create(t, stub, "/counter", "0")

	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	var versions []int64
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rep, err := core.Call[dcs.SetDataArgs, dcs.SetDataReply](stub, dcs.MethodSetData,
					dcs.SetDataArgs{Path: "/counter", Data: []byte(fmt.Sprintf("w%d-%d", w, i)), ExpectVersion: -1})
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				versions = append(versions, rep.Stat.Version)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatalf("concurrent SetData: %v", err)
	}
	seen := make(map[int64]bool, len(versions))
	for _, v := range versions {
		if seen[v] {
			t.Fatalf("version %d assigned twice: updates not serialized", v)
		}
		seen[v] = true
	}
	if len(versions) != workers*perWorker {
		t.Fatalf("got %d versions, want %d", len(versions), workers*perWorker)
	}

	sync1, err := core.Call[struct{}, dcs.SyncReply](stub, dcs.MethodSync, struct{}{})
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if sync1.Zxid < int64(workers*perWorker) {
		t.Fatalf("zxid = %d, want >= %d", sync1.Zxid, workers*perWorker)
	}
}

func TestAwaitObservesChange(t *testing.T) {
	_, stub := startDCS(t)
	created := create(t, stub, "/watched", "v0")

	done := make(chan dcs.AwaitReply, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := core.Call[dcs.AwaitArgs, dcs.AwaitReply](stub, dcs.MethodAwait,
			dcs.AwaitArgs{Path: "/watched", SinceMzxid: created.Zxid, TimeoutMillis: 5000})
		if err != nil {
			errCh <- err
			return
		}
		done <- rep
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := core.Call[dcs.SetDataArgs, dcs.SetDataReply](stub, dcs.MethodSetData,
		dcs.SetDataArgs{Path: "/watched", Data: []byte("v1"), ExpectVersion: -1}); err != nil {
		t.Fatalf("SetData: %v", err)
	}
	select {
	case rep := <-done:
		if !rep.Changed || rep.Deleted || string(rep.Data) != "v1" {
			t.Fatalf("await = %+v, want change to v1", rep)
		}
	case err := <-errCh:
		t.Fatalf("await error: %v", err)
	case <-time.After(6 * time.Second):
		t.Fatal("await never returned")
	}
}

func TestAwaitTimesOutWithoutChange(t *testing.T) {
	_, stub := startDCS(t)
	created := create(t, stub, "/still", "v")
	rep, err := core.Call[dcs.AwaitArgs, dcs.AwaitReply](stub, dcs.MethodAwait,
		dcs.AwaitArgs{Path: "/still", SinceMzxid: created.Zxid, TimeoutMillis: 100})
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if rep.Changed {
		t.Fatalf("await reported change without one: %+v", rep)
	}
}

func TestAwaitObservesDeletion(t *testing.T) {
	_, stub := startDCS(t)
	created := create(t, stub, "/doomed", "v")
	done := make(chan dcs.AwaitReply, 1)
	go func() {
		rep, err := core.Call[dcs.AwaitArgs, dcs.AwaitReply](stub, dcs.MethodAwait,
			dcs.AwaitArgs{Path: "/doomed", SinceMzxid: created.Zxid, TimeoutMillis: 5000})
		if err == nil {
			done <- rep
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := core.Call[dcs.DeleteArgs, bool](stub, dcs.MethodDelete,
		dcs.DeleteArgs{Path: "/doomed", ExpectVersion: -1}); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	select {
	case rep := <-done:
		if !rep.Deleted {
			t.Fatalf("await = %+v, want deletion", rep)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("await never observed deletion")
	}
}

func TestNamespaceSharedAcrossMembersAndScaleUp(t *testing.T) {
	pool, stub := startDCS(t)
	create(t, stub, "/shared", "v")
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	pool.BroadcastNow()
	// Every member (round robin) must see the same tree.
	for i := 0; i < pool.Size()*2; i++ {
		got, err := core.Call[dcs.PathArgs, dcs.GetDataReply](stub, dcs.MethodGetData, dcs.PathArgs{Path: "/shared"})
		if err != nil {
			t.Fatalf("GetData: %v", err)
		}
		if string(got.Data) != "v" {
			t.Fatalf("member saw %q, want v", got.Data)
		}
	}
}
