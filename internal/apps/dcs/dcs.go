// Package dcs implements DCS, the distributed coordination service of the
// paper's evaluation (§5.2): a Chubby/ZooKeeper-like hierarchical namespace
// usable for distributed configuration and synchronization, with totally
// ordered updates, as an ElasticRMI elastic class.
//
// The znode tree lives in the pool's shared state. Every update receives a
// zxid from an atomic global counter and executes under a per-path lock, so
// updates are totally ordered (by zxid) and each znode observes a linear
// version history. Sequential znodes (ZooKeeper's -0000000001 suffixes) are
// supported.
//
// Elasticity is fine-grained and mirrors Fig. 5 of the paper: the
// avgLockAcqFailure and avgLockAcqLatency contention metrics gate growth —
// when writers mostly fight over locks, adding servers would not help.
package dcs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"elasticrmi/internal/core"
)

// Exported errors (mapped from remote error strings by the test helpers).
var (
	// ErrNoNode is returned when the path does not exist.
	ErrNoNode = errors.New("dcs: no such znode")
	// ErrNodeExists is returned by Create for an existing path.
	ErrNodeExists = errors.New("dcs: znode exists")
	// ErrBadVersion is returned on conditional update version mismatch.
	ErrBadVersion = errors.New("dcs: version mismatch")
	// ErrNotEmpty is returned by Delete when the znode has children.
	ErrNotEmpty = errors.New("dcs: znode has children")
	// ErrBadPath is returned for malformed paths.
	ErrBadPath = errors.New("dcs: bad path")
)

// Stat is znode metadata, in the spirit of the ZooKeeper Stat.
type Stat struct {
	Czxid       int64 // zxid of the create
	Mzxid       int64 // zxid of the last update
	Version     int64 // data version, starts at 0
	NumChildren int
}

// Remote method names.
const (
	// MethodCreate creates a znode: (CreateArgs) -> CreateReply.
	MethodCreate = "Create"
	// MethodExists checks a path: (PathArgs) -> ExistsReply.
	MethodExists = "Exists"
	// MethodGetData reads a znode: (PathArgs) -> GetDataReply.
	MethodGetData = "GetData"
	// MethodSetData updates a znode: (SetDataArgs) -> SetDataReply.
	MethodSetData = "SetData"
	// MethodDelete removes a znode: (DeleteArgs) -> bool.
	MethodDelete = "Delete"
	// MethodGetChildren lists children: (PathArgs) -> ChildrenReply.
	MethodGetChildren = "GetChildren"
	// MethodSync returns the latest zxid: (struct{}) -> SyncReply.
	MethodSync = "Sync"
	// MethodAwait long-polls for a change: (AwaitArgs) -> AwaitReply. It is
	// the pull analogue of ZooKeeper watches: the call returns when the
	// znode's mzxid moves past SinceMzxid (or it is deleted), or when the
	// timeout expires.
	MethodAwait = "Await"
)

// Argument/reply structs.
type (
	// CreateArgs creates Path with Data; Sequential appends a total-order
	// suffix to the final path component.
	CreateArgs struct {
		Path       string
		Data       []byte
		Sequential bool
	}
	// CreateReply returns the actual created path (differs from the
	// requested one for sequential znodes).
	CreateReply struct {
		Path string
		Zxid int64
	}
	// PathArgs names a znode.
	PathArgs struct{ Path string }
	// ExistsReply reports presence and metadata.
	ExistsReply struct {
		Exists bool
		Stat   Stat
	}
	// GetDataReply returns data and metadata.
	GetDataReply struct {
		Data []byte
		Stat Stat
	}
	// SetDataArgs updates Path if ExpectVersion matches (-1 = any).
	SetDataArgs struct {
		Path          string
		Data          []byte
		ExpectVersion int64
	}
	// SetDataReply returns the new metadata.
	SetDataReply struct{ Stat Stat }
	// DeleteArgs removes Path if ExpectVersion matches (-1 = any).
	DeleteArgs struct {
		Path          string
		ExpectVersion int64
	}
	// ChildrenReply lists child names (not full paths), sorted.
	ChildrenReply struct{ Children []string }
	// SyncReply reports the latest issued zxid.
	SyncReply struct{ Zxid int64 }
	// AwaitArgs long-polls Path for a modification after SinceMzxid.
	AwaitArgs struct {
		Path       string
		SinceMzxid int64
		// TimeoutMillis bounds the poll; default 1000, max 30000.
		TimeoutMillis int64
	}
	// AwaitReply reports what happened.
	AwaitReply struct {
		Changed bool
		Deleted bool
		Data    []byte
		Stat    Stat
	}
)

// Config tunes the server's elasticity logic.
type Config struct {
	// TargetLatency is the update-latency QoS bound. Default 5ms.
	TargetLatency time.Duration
	// IdleRate is the per-server update rate below which the pool shrinks.
	// Default 5/s.
	IdleRate float64
	// LockFailureHigh is the lock-acquisition failure rate (percent) above
	// which growth is suppressed, as in Fig. 5. Default 50.
	LockFailureHigh float64
}

func (c Config) withDefaults() Config {
	if c.TargetLatency == 0 {
		c.TargetLatency = 5 * time.Millisecond
	}
	if c.IdleRate == 0 {
		c.IdleRate = 5
	}
	if c.LockFailureHigh == 0 {
		c.LockFailureHigh = 50
	}
	return c
}

// Server is one member of the elastic coordination-service pool.
type Server struct {
	ctx *core.MemberContext
	cfg Config
	mux *core.Mux

	// Lock contention metrics over the current burst interval — the
	// avgLockAcqFailure / avgLockAcqLatency signals of Fig. 5.
	lockAttempts  atomic.Int64
	lockFailures  atomic.Int64
	lockWaitNanos atomic.Int64
}

var (
	_ core.Object    = (*Server)(nil)
	_ core.PoolSizer = (*Server)(nil)
)

// New creates the server factory for core.NewPool.
func New(cfg Config) core.Factory {
	cfg = cfg.withDefaults()
	return func(ctx *core.MemberContext) (core.Object, error) {
		s := &Server{ctx: ctx, cfg: cfg, mux: core.NewMux()}
		core.Handle(s.mux, MethodCreate, s.create)
		core.Handle(s.mux, MethodExists, s.exists)
		core.Handle(s.mux, MethodGetData, s.getData)
		core.Handle(s.mux, MethodSetData, s.setData)
		core.Handle(s.mux, MethodDelete, s.deleteNode)
		core.Handle(s.mux, MethodGetChildren, s.getChildren)
		core.Handle(s.mux, MethodSync, s.sync)
		core.Handle(s.mux, MethodAwait, s.await)
		// The root always exists.
		if err := s.ensureRoot(); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// HandleCall implements core.Object.
func (s *Server) HandleCall(method string, arg []byte) ([]byte, error) {
	return s.mux.HandleCall(method, arg)
}

func (s *Server) ensureRoot() error {
	exists, err := s.ctx.State.GetInt(nodeKey("/") + "/exists")
	if err != nil {
		return err
	}
	if exists == 1 {
		return nil
	}
	return s.withPathLock("/", func() error {
		exists, err := s.ctx.State.GetInt(nodeKey("/") + "/exists")
		if err != nil || exists == 1 {
			return err
		}
		return s.writeNode("/", nil, Stat{}, 0)
	})
}

// withPathLock executes fn holding the znode's lock, recording contention
// metrics exactly as the paper's CacheExplicit2 tracks write-lock
// acquisition failures and latency (Fig. 5).
func (s *Server) withPathLock(path string, fn func() error) error {
	lock := "dcs" + path
	start := time.Now()
	backoff := time.Millisecond
	var release func() error
	for {
		rel, ok, err := s.ctx.State.TryLock(lock)
		if err != nil {
			return fmt.Errorf("dcs lock %s: %w", path, err)
		}
		s.lockAttempts.Add(1)
		if ok {
			release = rel
			break
		}
		s.lockFailures.Add(1)
		time.Sleep(backoff)
		if backoff < 32*time.Millisecond {
			backoff *= 2
		}
	}
	s.lockWaitNanos.Add(time.Since(start).Nanoseconds())
	defer func() { _ = release() }()
	return fn()
}

// Path/field mapping: a znode /a/b is stored as fields
// node/a/b/{exists,data,czxid,mzxid,version} and its parent's child list at
// node/a/children.

func nodeKey(path string) string {
	if path == "/" {
		return "node"
	}
	return "node" + path
}

func validatePath(path string) error {
	if path == "" || path[0] != '/' {
		return fmt.Errorf("%w: %q must start with '/'", ErrBadPath, path)
	}
	if path != "/" && strings.HasSuffix(path, "/") {
		return fmt.Errorf("%w: %q has a trailing slash", ErrBadPath, path)
	}
	if strings.Contains(path, "//") {
		return fmt.Errorf("%w: %q has empty components", ErrBadPath, path)
	}
	return nil
}

func parentOf(path string) string {
	if path == "/" {
		return ""
	}
	idx := strings.LastIndexByte(path, '/')
	if idx == 0 {
		return "/"
	}
	return path[:idx]
}

func nameOf(path string) string {
	return path[strings.LastIndexByte(path, '/')+1:]
}

func (s *Server) nodeExists(path string) (bool, error) {
	v, err := s.ctx.State.GetInt(nodeKey(path) + "/exists")
	return v == 1, err
}

func (s *Server) readStat(path string) (Stat, error) {
	base := nodeKey(path)
	czxid, err := s.ctx.State.GetInt(base + "/czxid")
	if err != nil {
		return Stat{}, err
	}
	mzxid, err := s.ctx.State.GetInt(base + "/mzxid")
	if err != nil {
		return Stat{}, err
	}
	version, err := s.ctx.State.GetInt(base + "/version")
	if err != nil {
		return Stat{}, err
	}
	kids, err := s.childList(path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Czxid: czxid, Mzxid: mzxid, Version: version, NumChildren: len(kids)}, nil
}

func (s *Server) writeNode(path string, data []byte, st Stat, zxid int64) error {
	base := nodeKey(path)
	if err := s.ctx.State.PutInt(base+"/exists", 1); err != nil {
		return err
	}
	if err := s.ctx.State.PutBytes(base+"/data", data); err != nil {
		return err
	}
	if st.Czxid == 0 {
		st.Czxid = zxid
	}
	if err := s.ctx.State.PutInt(base+"/czxid", st.Czxid); err != nil {
		return err
	}
	if err := s.ctx.State.PutInt(base+"/mzxid", zxid); err != nil {
		return err
	}
	return s.ctx.State.PutInt(base+"/version", st.Version)
}

func (s *Server) childList(path string) ([]string, error) {
	raw, err := s.ctx.State.GetString(nodeKey(path) + "/children")
	if err != nil {
		return nil, err
	}
	if raw == "" {
		return nil, nil
	}
	kids := strings.Split(raw, ",")
	sort.Strings(kids)
	return kids, nil
}

func (s *Server) putChildList(path string, kids []string) error {
	return s.ctx.State.PutString(nodeKey(path)+"/children", strings.Join(kids, ","))
}

// nextZxid allocates the next transaction id; all updates are totally
// ordered by it.
func (s *Server) nextZxid() (int64, error) {
	return s.ctx.State.AddInt("zxid", 1)
}

func (s *Server) create(a CreateArgs) (CreateReply, error) {
	if err := validatePath(a.Path); err != nil {
		return CreateReply{}, err
	}
	if a.Path == "/" {
		return CreateReply{}, fmt.Errorf("create /: %w", ErrNodeExists)
	}
	parent := parentOf(a.Path)
	var reply CreateReply
	err := s.withPathLock(parent, func() error {
		ok, err := s.nodeExists(parent)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("create %s: parent: %w", a.Path, ErrNoNode)
		}
		path := a.Path
		if a.Sequential {
			seq, err := s.ctx.State.AddInt(nodeKey(parent)+"/cseq", 1)
			if err != nil {
				return err
			}
			path = fmt.Sprintf("%s%010d", a.Path, seq)
		}
		exists, err := s.nodeExists(path)
		if err != nil {
			return err
		}
		if exists {
			return fmt.Errorf("create %s: %w", path, ErrNodeExists)
		}
		zxid, err := s.nextZxid()
		if err != nil {
			return err
		}
		if err := s.writeNode(path, a.Data, Stat{Czxid: zxid}, zxid); err != nil {
			return err
		}
		kids, err := s.childList(parent)
		if err != nil {
			return err
		}
		kids = append(kids, nameOf(path))
		if err := s.putChildList(parent, kids); err != nil {
			return err
		}
		if _, err := s.ctx.State.AddInt("updates", 1); err != nil {
			return err
		}
		reply = CreateReply{Path: path, Zxid: zxid}
		return nil
	})
	if err != nil {
		return CreateReply{}, err
	}
	return reply, nil
}

func (s *Server) exists(a PathArgs) (ExistsReply, error) {
	if err := validatePath(a.Path); err != nil {
		return ExistsReply{}, err
	}
	ok, err := s.nodeExists(a.Path)
	if err != nil {
		return ExistsReply{}, err
	}
	if !ok {
		return ExistsReply{Exists: false}, nil
	}
	st, err := s.readStat(a.Path)
	if err != nil {
		return ExistsReply{}, err
	}
	return ExistsReply{Exists: true, Stat: st}, nil
}

func (s *Server) getData(a PathArgs) (GetDataReply, error) {
	if err := validatePath(a.Path); err != nil {
		return GetDataReply{}, err
	}
	ok, err := s.nodeExists(a.Path)
	if err != nil {
		return GetDataReply{}, err
	}
	if !ok {
		return GetDataReply{}, fmt.Errorf("get %s: %w", a.Path, ErrNoNode)
	}
	data, err := s.ctx.State.GetBytes(nodeKey(a.Path) + "/data")
	if err != nil {
		return GetDataReply{}, err
	}
	st, err := s.readStat(a.Path)
	if err != nil {
		return GetDataReply{}, err
	}
	return GetDataReply{Data: data, Stat: st}, nil
}

func (s *Server) setData(a SetDataArgs) (SetDataReply, error) {
	if err := validatePath(a.Path); err != nil {
		return SetDataReply{}, err
	}
	var reply SetDataReply
	err := s.withPathLock(a.Path, func() error {
		ok, err := s.nodeExists(a.Path)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("set %s: %w", a.Path, ErrNoNode)
		}
		st, err := s.readStat(a.Path)
		if err != nil {
			return err
		}
		if a.ExpectVersion >= 0 && st.Version != a.ExpectVersion {
			return fmt.Errorf("set %s: have v%d want v%d: %w", a.Path, st.Version, a.ExpectVersion, ErrBadVersion)
		}
		zxid, err := s.nextZxid()
		if err != nil {
			return err
		}
		st.Version++
		if err := s.writeNode(a.Path, a.Data, st, zxid); err != nil {
			return err
		}
		if _, err := s.ctx.State.AddInt("updates", 1); err != nil {
			return err
		}
		st.Mzxid = zxid
		reply = SetDataReply{Stat: st}
		return nil
	})
	if err != nil {
		return SetDataReply{}, err
	}
	return reply, nil
}

func (s *Server) deleteNode(a DeleteArgs) (bool, error) {
	if err := validatePath(a.Path); err != nil {
		return false, err
	}
	if a.Path == "/" {
		return false, fmt.Errorf("delete /: %w", ErrBadPath)
	}
	parent := parentOf(a.Path)
	err := s.withPathLock(parent, func() error {
		return s.withPathLock(a.Path, func() error {
			ok, err := s.nodeExists(a.Path)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("delete %s: %w", a.Path, ErrNoNode)
			}
			st, err := s.readStat(a.Path)
			if err != nil {
				return err
			}
			if a.ExpectVersion >= 0 && st.Version != a.ExpectVersion {
				return fmt.Errorf("delete %s: %w", a.Path, ErrBadVersion)
			}
			if st.NumChildren > 0 {
				return fmt.Errorf("delete %s: %w", a.Path, ErrNotEmpty)
			}
			base := nodeKey(a.Path)
			for _, f := range []string{"/exists", "/data", "/czxid", "/mzxid", "/version", "/children", "/cseq"} {
				if err := s.ctx.State.Delete(base + f); err != nil {
					return err
				}
			}
			kids, err := s.childList(parent)
			if err != nil {
				return err
			}
			name := nameOf(a.Path)
			keep := kids[:0]
			for _, k := range kids {
				if k != name {
					keep = append(keep, k)
				}
			}
			if err := s.putChildList(parent, keep); err != nil {
				return err
			}
			if _, err := s.nextZxid(); err != nil {
				return err
			}
			_, err = s.ctx.State.AddInt("updates", 1)
			return err
		})
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

func (s *Server) getChildren(a PathArgs) (ChildrenReply, error) {
	if err := validatePath(a.Path); err != nil {
		return ChildrenReply{}, err
	}
	ok, err := s.nodeExists(a.Path)
	if err != nil {
		return ChildrenReply{}, err
	}
	if !ok {
		return ChildrenReply{}, fmt.Errorf("children %s: %w", a.Path, ErrNoNode)
	}
	kids, err := s.childList(a.Path)
	if err != nil {
		return ChildrenReply{}, err
	}
	return ChildrenReply{Children: kids}, nil
}

func (s *Server) sync(struct{}) (SyncReply, error) {
	z, err := s.ctx.State.GetInt("zxid")
	if err != nil {
		return SyncReply{}, err
	}
	return SyncReply{Zxid: z}, nil
}

// await long-polls a znode for a change past SinceMzxid. It is serviced by
// polling the shared store (the store is the source of truth for every
// member, so a change through any member is observed).
func (s *Server) await(a AwaitArgs) (AwaitReply, error) {
	if err := validatePath(a.Path); err != nil {
		return AwaitReply{}, err
	}
	timeout := time.Duration(a.TimeoutMillis) * time.Millisecond
	if timeout <= 0 {
		timeout = time.Second
	}
	if timeout > 30*time.Second {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	interval := 2 * time.Millisecond
	for {
		ok, err := s.nodeExists(a.Path)
		if err != nil {
			return AwaitReply{}, err
		}
		if !ok {
			// Deleted (or never existed): report as deletion event.
			return AwaitReply{Changed: true, Deleted: true}, nil
		}
		st, err := s.readStat(a.Path)
		if err != nil {
			return AwaitReply{}, err
		}
		if st.Mzxid > a.SinceMzxid {
			data, err := s.ctx.State.GetBytes(nodeKey(a.Path) + "/data")
			if err != nil {
				return AwaitReply{}, err
			}
			return AwaitReply{Changed: true, Data: data, Stat: st}, nil
		}
		if !time.Now().Before(deadline) {
			return AwaitReply{Changed: false, Stat: st}, nil
		}
		time.Sleep(interval)
		if interval < 50*time.Millisecond {
			interval *= 2
		}
	}
}

// ChangePoolSize implements core.PoolSizer following Fig. 5's logic: when
// update latency exceeds the QoS bound, grow — unless lock contention (the
// avgLockAcqFailure rate or lock-wait share of latency) is the bottleneck,
// in which case more servers would only fight harder over the same locks.
func (s *Server) ChangePoolSize() int {
	stats := s.ctx.MethodCallStats()
	var updLatency time.Duration
	var updRate float64
	for _, m := range []string{MethodCreate, MethodSetData, MethodDelete} {
		if st, ok := stats[m]; ok {
			if st.AvgLatency > updLatency {
				updLatency = st.AvgLatency
			}
			updRate += st.RatePerSec
		}
	}
	attempts := s.lockAttempts.Swap(0)
	failures := s.lockFailures.Swap(0)
	waitNanos := s.lockWaitNanos.Swap(0)
	var failurePct, avgWait float64
	if attempts > 0 {
		failurePct = 100 * float64(failures) / float64(attempts)
		avgWait = float64(waitNanos) / float64(attempts)
	}

	if updLatency > s.cfg.TargetLatency {
		if failurePct > s.cfg.LockFailureHigh {
			return 0 // contention-bound: scaling out will not help (Fig. 5)
		}
		if avgWait >= 0.8*float64(updLatency) {
			return 0 // latency dominated by lock wait: same reasoning
		}
		return 2
	}
	if updRate < s.cfg.IdleRate && updLatency < s.cfg.TargetLatency/2 {
		return -1
	}
	return 0
}

// SeqName formats a sequential suffix the way create does (for tests).
func SeqName(prefix string, seq int64) string {
	return prefix + fmt.Sprintf("%010d", seq)
}
