package dcs_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"elasticrmi/internal/apps/dcs"
	"elasticrmi/internal/core"
)

// TestConcurrentCreateDeleteNoDeadlock races creators and deleters over a
// shared parent: the parent-then-child lock order must never deadlock, and
// the tree must stay consistent (children list matches existing nodes).
func TestConcurrentCreateDeleteNoDeadlock(t *testing.T) {
	_, stub := startDCS(t)
	create(t, stub, "/dir", "")

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/dir/n%d", w)
			for i := 0; i < 8; i++ {
				if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
					dcs.CreateArgs{Path: path}); err != nil && !isApp(err) {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := core.Call[dcs.DeleteArgs, bool](stub, dcs.MethodDelete,
					dcs.DeleteArgs{Path: path, ExpectVersion: -1}); err != nil && !isApp(err) {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Consistency: every listed child exists; every existing child listed.
	kids, err := core.Call[dcs.PathArgs, dcs.ChildrenReply](stub, dcs.MethodGetChildren,
		dcs.PathArgs{Path: "/dir"})
	if err != nil {
		t.Fatalf("GetChildren: %v", err)
	}
	for _, k := range kids.Children {
		ex, err := core.Call[dcs.PathArgs, dcs.ExistsReply](stub, dcs.MethodExists,
			dcs.PathArgs{Path: "/dir/" + k})
		if err != nil {
			t.Fatalf("Exists: %v", err)
		}
		if !ex.Exists {
			t.Fatalf("child %s listed but does not exist", k)
		}
	}
	for w := 0; w < workers; w++ {
		path := fmt.Sprintf("/dir/n%d", w)
		ex, err := core.Call[dcs.PathArgs, dcs.ExistsReply](stub, dcs.MethodExists, dcs.PathArgs{Path: path})
		if err != nil {
			t.Fatalf("Exists: %v", err)
		}
		listed := false
		for _, k := range kids.Children {
			if "/dir/"+k == path {
				listed = true
			}
		}
		if ex.Exists != listed {
			t.Fatalf("%s exists=%v but listed=%v", path, ex.Exists, listed)
		}
	}
}

// isApp reports an application-level (remote) error, as opposed to an
// infrastructure failure: concurrent create/delete legally race.
func isApp(err error) bool {
	return err != nil && !errors.Is(err, core.ErrUnavailable)
}

func TestDeepTree(t *testing.T) {
	_, stub := startDCS(t)
	path := ""
	for i := 0; i < 8; i++ {
		path += fmt.Sprintf("/l%d", i)
		create(t, stub, path, fmt.Sprintf("depth-%d", i))
	}
	got, err := core.Call[dcs.PathArgs, dcs.GetDataReply](stub, dcs.MethodGetData, dcs.PathArgs{Path: path})
	if err != nil || string(got.Data) != "depth-7" {
		t.Fatalf("deep get = %q, %v", got.Data, err)
	}
	// Delete must proceed leaf-first.
	if _, err := core.Call[dcs.DeleteArgs, bool](stub, dcs.MethodDelete,
		dcs.DeleteArgs{Path: "/l0", ExpectVersion: -1}); err == nil {
		t.Fatal("deleted a non-empty root of the chain")
	}
}
