// Package paxos implements the Paxos consensus protocol (paper §5.2,
// following the Kirsch & Amir "Paxos for Systems Builders" formulation) as
// an ElasticRMI elastic class: the pool members are the replicas — each one
// proposer, acceptor and learner — and the pool appears to clients as a
// single consensus service whose Propose method runs full Paxos rounds
// (Prepare/Promise, Accept/Accepted, Decide) over the runtime's
// member-to-member group messaging.
//
// Safety: a slot decides at most one value, guaranteed by ballot-ordered
// promises from majorities of acceptors. Decided values are additionally
// recorded in the pool's shared state so members added by elastic scaling
// learn the history (the ledger is the elastic object's shared state).
//
// Elasticity is fine-grained: ChangePoolSize watches the proposal backlog
// and round latency.
package paxos

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/transport"
)

// Exported errors.
var (
	// ErrNoQuorum is returned when a round cannot reach a majority.
	ErrNoQuorum = errors.New("paxos: no quorum")
	// ErrNotDecided is returned by Get for an undecided slot.
	ErrNotDecided = errors.New("paxos: slot not decided")
)

// Remote method names (client-facing).
const (
	// MethodPropose appends a value to the replicated log:
	// (ProposeArgs) -> ProposeReply.
	MethodPropose = "Propose"
	// MethodGet reads a decided slot: (GetArgs) -> GetReply.
	MethodGet = "Get"
	// MethodStatus reports progress: (struct{}) -> StatusReply.
	MethodStatus = "Status"
)

// Argument/reply structs.
type (
	// ProposeArgs carries the client value.
	ProposeArgs struct{ Value []byte }
	// ProposeReply reports the slot where the value was decided.
	ProposeReply struct {
		Slot  int64
		Value []byte
	}
	// GetArgs names a slot.
	GetArgs struct{ Slot int64 }
	// GetReply returns the decided value of the slot.
	GetReply struct{ Value []byte }
	// StatusReply reports the replica's view of progress.
	StatusReply struct {
		Decided  int64
		NextSlot int64
	}
)

// peer message topic and kinds.
const peerTopic = "paxos"

type msgKind int

const (
	msgPrepare msgKind = iota + 1
	msgPromise
	msgAccept
	msgAccepted
	msgDecide
)

// wire is every Paxos message; unused fields are zero.
type wire struct {
	Kind    msgKind
	Slot    int64
	Ballot  int64
	From    string // proposer group address for replies
	OK      bool
	AccBal  int64  // highest ballot accepted by the responding acceptor
	AccVal  []byte // value accepted at AccBal
	Value   []byte
	Promote int64 // responding acceptor's promised ballot (for ballot bumping)
}

// acceptorState is per-slot acceptor bookkeeping.
type acceptorState struct {
	promised int64
	accBal   int64
	accVal   []byte
}

type roundKey struct {
	slot   int64
	ballot int64
	kind   msgKind
}

// Config tunes the replica.
type Config struct {
	// RoundTimeout bounds one Prepare or Accept phase. Default 2s.
	RoundTimeout time.Duration
	// MaxRetries bounds ballot/slot retries per proposal. Default 16.
	MaxRetries int
	// BacklogHigh is the pending-proposal count per replica that triggers
	// growth. Default 16.
	BacklogHigh int64
	// IdleRate is the per-replica proposal rate below which the pool
	// shrinks. Default 2.
	IdleRate float64
}

func (c Config) withDefaults() Config {
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 16
	}
	if c.BacklogHigh == 0 {
		c.BacklogHigh = 16
	}
	if c.IdleRate == 0 {
		c.IdleRate = 2
	}
	return c
}

// Replica is one member of the elastic consensus pool.
type Replica struct {
	ctx *core.MemberContext
	cfg Config
	mux *core.Mux

	mu        sync.Mutex
	acceptors map[int64]*acceptorState
	decided   map[int64][]byte
	waiters   map[roundKey]chan wire
	ballotSeq int64

	pending atomic.Int64
}

var (
	_ core.Object    = (*Replica)(nil)
	_ core.PoolSizer = (*Replica)(nil)
)

// New creates the replica factory for core.NewPool.
func New(cfg Config) core.Factory {
	cfg = cfg.withDefaults()
	return func(ctx *core.MemberContext) (core.Object, error) {
		r := &Replica{
			ctx:       ctx,
			cfg:       cfg,
			mux:       core.NewMux(),
			acceptors: make(map[int64]*acceptorState),
			decided:   make(map[int64][]byte),
			waiters:   make(map[roundKey]chan wire),
		}
		core.Handle(r.mux, MethodPropose, r.propose)
		core.Handle(r.mux, MethodGet, r.get)
		core.Handle(r.mux, MethodStatus, r.status)
		ctx.SetPeerHandler(r.onPeer)
		return r, nil
	}
}

// HandleCall implements core.Object.
func (r *Replica) HandleCall(method string, arg []byte) ([]byte, error) {
	return r.mux.HandleCall(method, arg)
}

// nextBallot returns a ballot unique to this replica and increasing.
func (r *Replica) nextBallot() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ballotSeq++
	return r.ballotSeq*4096 + r.ctx.UID%4096
}

// quorumTargets returns the group addresses of the acceptors (all live
// members, including self) and the majority size.
func (r *Replica) quorumTargets() ([]string, int, error) {
	roster := r.ctx.Roster()
	var addrs []string
	for _, m := range roster {
		if !m.Draining || m.Group == r.ctx.GroupAddr() {
			addrs = append(addrs, m.Group)
		}
	}
	if len(addrs) == 0 {
		return nil, 0, errors.New("paxos: empty roster")
	}
	return addrs, len(addrs)/2 + 1, nil
}

// propose appends the client's value to the log: it claims a fresh slot and
// runs Paxos; if another proposer's value wins the slot, it retries on the
// next slot until its own value is decided.
func (r *Replica) propose(a ProposeArgs) (ProposeReply, error) {
	if len(a.Value) == 0 {
		return ProposeReply{}, errors.New("paxos: empty value")
	}
	r.pending.Add(1)
	defer r.pending.Add(-1)

	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		slot, err := r.ctx.State.AddInt("slot-alloc", 1)
		if err != nil {
			return ProposeReply{}, err
		}
		decidedVal, err := r.runSlot(slot, a.Value)
		if err != nil {
			return ProposeReply{}, err
		}
		if string(decidedVal) == string(a.Value) {
			return ProposeReply{Slot: slot, Value: decidedVal}, nil
		}
		// The slot decided someone else's value; try the next slot.
	}
	return ProposeReply{}, fmt.Errorf("paxos: value not decided after %d attempts", r.cfg.MaxRetries)
}

// ProposeAt runs consensus for an explicit slot (exported for safety tests:
// concurrent proposers to the same slot must decide a single value). It
// returns the value the slot decided, which may belong to a competitor.
func (r *Replica) ProposeAt(slot int64, value []byte) ([]byte, error) {
	return r.runSlot(slot, value)
}

// runSlot drives one slot to a decision, returning the decided value.
func (r *Replica) runSlot(slot int64, value []byte) ([]byte, error) {
	if v, ok := r.getDecided(slot); ok {
		return v, nil
	}
	ballot := r.nextBallot()
	for attempt := 0; attempt < r.cfg.MaxRetries; attempt++ {
		decided, val, err := r.tryBallot(slot, ballot, value)
		if err != nil {
			return nil, err
		}
		if decided {
			return val, nil
		}
		// Preempted: adopt a ballot above everything we saw.
		ballot = r.nextBallot()
		if v, ok := r.getDecided(slot); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("paxos: slot %d: %w", slot, ErrNoQuorum)
}

// tryBallot runs Phase 1 and Phase 2 for (slot, ballot). It returns
// (true, decidedValue) on success and (false, nil) when preempted by a
// higher ballot.
func (r *Replica) tryBallot(slot, ballot int64, value []byte) (bool, []byte, error) {
	targets, quorum, err := r.quorumTargets()
	if err != nil {
		return false, nil, err
	}
	me := r.ctx.GroupAddr()

	// Phase 1: Prepare / Promise.
	promiseCh := r.openWaiter(roundKey{slot, ballot, msgPromise}, len(targets))
	defer r.closeWaiter(roundKey{slot, ballot, msgPromise})
	r.fanout(targets, wire{Kind: msgPrepare, Slot: slot, Ballot: ballot, From: me})

	promises := 0
	var bestBal int64
	chosen := value
	deadline := time.NewTimer(r.cfg.RoundTimeout)
	defer deadline.Stop()
	for promises < quorum {
		select {
		case m := <-promiseCh:
			if !m.OK {
				return false, nil, nil // preempted
			}
			promises++
			if m.AccBal > bestBal && len(m.AccVal) > 0 {
				bestBal = m.AccBal
				chosen = m.AccVal
			}
		case <-deadline.C:
			return false, nil, fmt.Errorf("paxos: prepare slot %d ballot %d: %w", slot, ballot, ErrNoQuorum)
		}
	}

	// Phase 2: Accept / Accepted.
	acceptCh := r.openWaiter(roundKey{slot, ballot, msgAccepted}, len(targets))
	defer r.closeWaiter(roundKey{slot, ballot, msgAccepted})
	r.fanout(targets, wire{Kind: msgAccept, Slot: slot, Ballot: ballot, Value: chosen, From: me})

	accepts := 0
	deadline2 := time.NewTimer(r.cfg.RoundTimeout)
	defer deadline2.Stop()
	for accepts < quorum {
		select {
		case m := <-acceptCh:
			if !m.OK {
				return false, nil, nil // preempted
			}
			accepts++
		case <-deadline2.C:
			return false, nil, fmt.Errorf("paxos: accept slot %d ballot %d: %w", slot, ballot, ErrNoQuorum)
		}
	}

	// Decided: persist to the shared ledger and tell the learners.
	r.recordDecision(slot, chosen)
	if err := r.ctx.State.PutBytes("decided/"+strconv.FormatInt(slot, 10), chosen); err != nil {
		return false, nil, err
	}
	if _, err := r.ctx.State.AddInt("decided-count", 1); err != nil {
		return false, nil, err
	}
	r.fanout(targets, wire{Kind: msgDecide, Slot: slot, Value: chosen, From: me})
	return true, chosen, nil
}

// fanout sends m to every target (self-delivery included).
func (r *Replica) fanout(targets []string, m wire) {
	payload, err := transport.Encode(m)
	if err != nil {
		return
	}
	for _, t := range targets {
		_ = r.ctx.SendPeer(t, peerTopic, payload)
	}
}

func (r *Replica) openWaiter(k roundKey, capacity int) chan wire {
	ch := make(chan wire, capacity)
	r.mu.Lock()
	r.waiters[k] = ch
	r.mu.Unlock()
	return ch
}

func (r *Replica) closeWaiter(k roundKey) {
	r.mu.Lock()
	delete(r.waiters, k)
	r.mu.Unlock()
}

// onPeer handles every incoming Paxos message; it must not block.
func (r *Replica) onPeer(from, topic string, payload []byte) {
	if topic != peerTopic {
		return
	}
	var m wire
	if err := transport.Decode(payload, &m); err != nil {
		return
	}
	switch m.Kind {
	case msgPrepare:
		r.onPrepare(m)
	case msgAccept:
		r.onAccept(m)
	case msgPromise, msgAccepted:
		r.mu.Lock()
		ch, ok := r.waiters[roundKey{m.Slot, m.Ballot, m.Kind}]
		r.mu.Unlock()
		if ok {
			select {
			case ch <- m:
			default:
			}
		}
	case msgDecide:
		r.recordDecision(m.Slot, m.Value)
	}
}

// onPrepare is the acceptor's Phase 1 handler.
func (r *Replica) onPrepare(m wire) {
	r.mu.Lock()
	st := r.acceptor(m.Slot)
	resp := wire{Kind: msgPromise, Slot: m.Slot, Ballot: m.Ballot}
	if m.Ballot > st.promised {
		st.promised = m.Ballot
		resp.OK = true
		resp.AccBal = st.accBal
		resp.AccVal = st.accVal
	} else {
		resp.OK = false
		resp.Promote = st.promised
	}
	r.mu.Unlock()
	r.reply(m.From, resp)
}

// onAccept is the acceptor's Phase 2 handler.
func (r *Replica) onAccept(m wire) {
	r.mu.Lock()
	st := r.acceptor(m.Slot)
	resp := wire{Kind: msgAccepted, Slot: m.Slot, Ballot: m.Ballot}
	if m.Ballot >= st.promised {
		st.promised = m.Ballot
		st.accBal = m.Ballot
		st.accVal = append([]byte(nil), m.Value...)
		resp.OK = true
	} else {
		resp.OK = false
		resp.Promote = st.promised
	}
	r.mu.Unlock()
	r.reply(m.From, resp)
}

// acceptor returns the slot's acceptor state; caller holds r.mu.
func (r *Replica) acceptor(slot int64) *acceptorState {
	st, ok := r.acceptors[slot]
	if !ok {
		st = &acceptorState{}
		r.acceptors[slot] = st
	}
	return st
}

func (r *Replica) reply(to string, m wire) {
	payload, err := transport.Encode(m)
	if err != nil {
		return
	}
	_ = r.ctx.SendPeer(to, peerTopic, payload)
}

func (r *Replica) recordDecision(slot int64, value []byte) {
	r.mu.Lock()
	if _, ok := r.decided[slot]; !ok {
		r.decided[slot] = append([]byte(nil), value...)
	}
	r.mu.Unlock()
}

func (r *Replica) getDecided(slot int64) ([]byte, bool) {
	r.mu.Lock()
	v, ok := r.decided[slot]
	r.mu.Unlock()
	if ok {
		return v, true
	}
	// Fall back to the shared ledger (scaling may have added this member
	// after the decision).
	raw, err := r.ctx.State.GetBytes("decided/" + strconv.FormatInt(slot, 10))
	if err != nil || raw == nil {
		return nil, false
	}
	r.recordDecision(slot, raw)
	return raw, true
}

func (r *Replica) get(a GetArgs) (GetReply, error) {
	v, ok := r.getDecided(a.Slot)
	if !ok {
		return GetReply{}, fmt.Errorf("slot %d: %w", a.Slot, ErrNotDecided)
	}
	return GetReply{Value: v}, nil
}

func (r *Replica) status(struct{}) (StatusReply, error) {
	count, err := r.ctx.State.GetInt("decided-count")
	if err != nil {
		return StatusReply{}, err
	}
	next, err := r.ctx.State.GetInt("slot-alloc")
	if err != nil {
		return StatusReply{}, err
	}
	return StatusReply{Decided: count, NextSlot: next + 1}, nil
}

// ChangePoolSize implements core.PoolSizer with consensus-specific signals:
// the proposal backlog and observed round latency.
func (r *Replica) ChangePoolSize() int {
	stats := r.ctx.MethodCallStats()
	prop := stats[MethodPropose]
	backlog := r.pending.Load()
	switch {
	case backlog > 2*r.cfg.BacklogHigh:
		return 2
	case backlog > r.cfg.BacklogHigh || prop.AvgLatency > 4*r.cfg.RoundTimeout/5:
		return 1
	case prop.RatePerSec < r.cfg.IdleRate && backlog == 0:
		return -1
	default:
		return 0
	}
}
