package paxos_test

import (
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/paxos"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

// capturePool starts a pool and returns the replicas the factory created.
func capturePool(t *testing.T, name string, size int) []*paxos.Replica {
	t.Helper()
	env := ermitest.New(t, 10)
	var mu sync.Mutex
	var replicas []*paxos.Replica
	base := paxos.New(paxos.Config{RoundTimeout: time.Second})
	factory := func(ctx *core.MemberContext) (core.Object, error) {
		obj, err := base(ctx)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		replicas = append(replicas, obj.(*paxos.Replica))
		mu.Unlock()
		return obj, nil
	}
	env.StartPool(t, core.Config{
		Name: name, MinPoolSize: size, MaxPoolSize: size,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory)
	mu.Lock()
	defer mu.Unlock()
	return append([]*paxos.Replica(nil), replicas...)
}

// TestProposeAtDecidedSlotReturnsExistingValue: re-proposing at a decided
// slot must return the original decision, never overwrite it.
func TestProposeAtDecidedSlotReturnsExistingValue(t *testing.T) {
	rs := capturePool(t, "paxos-redecide", 3)
	v1, err := rs[0].ProposeAt(5, []byte("first"))
	if err != nil {
		t.Fatalf("first proposal: %v", err)
	}
	if string(v1) != "first" {
		t.Fatalf("decided %q", v1)
	}
	// A different replica proposes a different value for the same slot.
	v2, err := rs[1].ProposeAt(5, []byte("second"))
	if err != nil {
		t.Fatalf("second proposal: %v", err)
	}
	if string(v2) != "first" {
		t.Fatalf("slot 5 re-decided to %q — safety violation", v2)
	}
	// And the original proposer still sees the same value.
	v3, err := rs[0].ProposeAt(5, []byte("third"))
	if err != nil || string(v3) != "first" {
		t.Fatalf("slot 5 = %q, %v", v3, err)
	}
}

// TestBallotPreemptionEventuallyDecides: many replicas racing on one slot
// preempt each other's ballots but consensus still terminates with a single
// value within the retry budget.
func TestBallotPreemptionEventuallyDecides(t *testing.T) {
	rs := capturePool(t, "paxos-preempt", 5)
	const slot = int64(11)
	var wg sync.WaitGroup
	values := make(chan string, len(rs))
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *paxos.Replica) {
			defer wg.Done()
			v, err := r.ProposeAt(slot, []byte{byte('a' + i)})
			if err == nil {
				values <- string(v)
			}
		}(i, r)
	}
	wg.Wait()
	close(values)
	var first string
	count := 0
	for v := range values {
		count++
		if first == "" {
			first = v
		} else if v != first {
			t.Fatalf("two values decided: %q and %q", first, v)
		}
	}
	if count == 0 {
		t.Fatal("no proposer terminated")
	}
}
