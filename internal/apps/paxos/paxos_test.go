package paxos_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/paxos"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func startConsensus(t *testing.T, minPool, maxPool int) (*core.Pool, *core.Stub) {
	t.Helper()
	env := ermitest.New(t, 10)
	pool := env.StartPool(t, core.Config{
		Name: "paxos", MinPoolSize: minPool, MaxPoolSize: maxPool,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, paxos.New(paxos.Config{}))
	stub := env.Stub(t, "paxos")
	return pool, stub
}

func TestProposeDecides(t *testing.T) {
	_, stub := startConsensus(t, 3, 5)
	rep, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](stub, paxos.MethodPropose,
		paxos.ProposeArgs{Value: []byte("v1")})
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if string(rep.Value) != "v1" {
		t.Fatalf("decided %q, want v1", rep.Value)
	}
	if rep.Slot <= 0 {
		t.Fatalf("slot = %d, want > 0", rep.Slot)
	}
	got, err := core.Call[paxos.GetArgs, paxos.GetReply](stub, paxos.MethodGet, paxos.GetArgs{Slot: rep.Slot})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Value) != "v1" {
		t.Fatalf("Get(%d) = %q, want v1", rep.Slot, got.Value)
	}
}

func TestGetUndecidedSlot(t *testing.T) {
	_, stub := startConsensus(t, 3, 3)
	_, err := core.Call[paxos.GetArgs, paxos.GetReply](stub, paxos.MethodGet, paxos.GetArgs{Slot: 999})
	if err == nil {
		t.Fatal("expected error for undecided slot")
	}
	if errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("app error misclassified as unavailability: %v", err)
	}
}

func TestSequentialProposalsFillLog(t *testing.T) {
	_, stub := startConsensus(t, 3, 5)
	const n = 10
	slots := make(map[int64]string, n)
	for i := 0; i < n; i++ {
		val := fmt.Sprintf("cmd-%d", i)
		rep, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](stub, paxos.MethodPropose,
			paxos.ProposeArgs{Value: []byte(val)})
		if err != nil {
			t.Fatalf("Propose(%s): %v", val, err)
		}
		if prev, dup := slots[rep.Slot]; dup {
			t.Fatalf("slot %d decided twice: %q then %q", rep.Slot, prev, val)
		}
		slots[rep.Slot] = val
	}
	st, err := core.Call[struct{}, paxos.StatusReply](stub, paxos.MethodStatus, struct{}{})
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Decided < n {
		t.Fatalf("decided = %d, want >= %d", st.Decided, n)
	}
}

func TestConcurrentProposalsAllDecideDistinctSlots(t *testing.T) {
	_, stub := startConsensus(t, 3, 5)
	const workers = 8
	var mu sync.Mutex
	decided := make(map[int64]string)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := fmt.Sprintf("w%d", w)
			rep, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](stub, paxos.MethodPropose,
				paxos.ProposeArgs{Value: []byte(val)})
			if err != nil {
				errCh <- err
				return
			}
			if string(rep.Value) != val {
				errCh <- fmt.Errorf("proposer %d: decided %q want %q", w, rep.Value, val)
				return
			}
			mu.Lock()
			if prev, dup := decided[rep.Slot]; dup {
				errCh <- fmt.Errorf("slot %d claimed by %q and %q", rep.Slot, prev, val)
			}
			decided[rep.Slot] = val
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if len(decided) != workers {
		t.Fatalf("decided %d slots, want %d", len(decided), workers)
	}
}

// TestSingleDecreeSafety drives competing proposers at the SAME slot and
// asserts the fundamental Paxos invariant: at most one value is chosen.
func TestSingleDecreeSafety(t *testing.T) {
	env := ermitest.New(t, 10)

	// Capture the replicas as the factory creates them so the test can call
	// ProposeAt directly (bypassing the slot allocator).
	var mu sync.Mutex
	var replicas []*paxos.Replica
	base := paxos.New(paxos.Config{RoundTimeout: time.Second})
	factory := func(ctx *core.MemberContext) (core.Object, error) {
		obj, err := base(ctx)
		if err != nil {
			return nil, err
		}
		r, ok := obj.(*paxos.Replica)
		if !ok {
			return nil, fmt.Errorf("unexpected object type %T", obj)
		}
		mu.Lock()
		replicas = append(replicas, r)
		mu.Unlock()
		return obj, nil
	}
	env.StartPool(t, core.Config{
		Name: "paxos-safety", MinPoolSize: 5, MaxPoolSize: 5,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory)

	mu.Lock()
	rs := append([]*paxos.Replica(nil), replicas...)
	mu.Unlock()
	if len(rs) != 5 {
		t.Fatalf("captured %d replicas, want 5", len(rs))
	}

	const slot = int64(7)
	results := make(chan string, len(rs))
	var wg sync.WaitGroup
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *paxos.Replica) {
			defer wg.Done()
			v, err := r.ProposeAt(slot, []byte(fmt.Sprintf("candidate-%d", i)))
			if err != nil {
				return // losing a round is fine; deciding two values is not
			}
			results <- string(v)
		}(i, r)
	}
	wg.Wait()
	close(results)
	var first string
	n := 0
	for v := range results {
		n++
		if first == "" {
			first = v
		} else if v != first {
			t.Fatalf("safety violation: slot %d decided %q and %q", slot, first, v)
		}
	}
	if n == 0 {
		t.Fatal("no proposer completed: expected at least one decision")
	}
}

func TestNewMemberLearnsHistoryFromLedger(t *testing.T) {
	pool, stub := startConsensus(t, 3, 6)
	rep, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](stub, paxos.MethodPropose,
		paxos.ProposeArgs{Value: []byte("old-decision")})
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	pool.BroadcastNow()
	// Hammer Get until every member (round-robin) has answered once.
	for i := 0; i < pool.Size()*2; i++ {
		got, err := core.Call[paxos.GetArgs, paxos.GetReply](stub, paxos.MethodGet, paxos.GetArgs{Slot: rep.Slot})
		if err != nil {
			t.Fatalf("Get via member %d: %v", i, err)
		}
		if string(got.Value) != "old-decision" {
			t.Fatalf("Get = %q, want old-decision", got.Value)
		}
	}
}
