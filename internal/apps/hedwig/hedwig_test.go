package hedwig_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/apps/hedwig"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func startRegion(t *testing.T, minPool, maxPool int) (*core.Pool, *core.Stub) {
	t.Helper()
	env := ermitest.New(t, 10)
	pool := env.StartPool(t, core.Config{
		Name: "hedwig", MinPoolSize: minPool, MaxPoolSize: maxPool,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, hedwig.New(hedwig.Config{}))
	stub := env.Stub(t, "hedwig")
	return pool, stub
}

func publish(t *testing.T, stub *core.Stub, topic, body string) hedwig.PublishReply {
	t.Helper()
	rep, err := core.Call[hedwig.PublishArgs, hedwig.PublishReply](stub, hedwig.MethodPublish,
		hedwig.PublishArgs{Topic: topic, Body: []byte(body)})
	if err != nil {
		t.Fatalf("Publish(%s): %v", topic, err)
	}
	return rep
}

func subscribe(t *testing.T, stub *core.Stub, topic, sub string) {
	t.Helper()
	ok, err := core.Call[hedwig.SubArgs, bool](stub, hedwig.MethodSubscribe,
		hedwig.SubArgs{Topic: topic, Subscriber: sub})
	if err != nil || !ok {
		t.Fatalf("Subscribe(%s,%s): ok=%v err=%v", topic, sub, ok, err)
	}
}

func consume(t *testing.T, stub *core.Stub, topic, sub string, max int) []hedwig.Message {
	t.Helper()
	rep, err := core.Call[hedwig.ConsumeArgs, hedwig.ConsumeReply](stub, hedwig.MethodConsume,
		hedwig.ConsumeArgs{Topic: topic, Subscriber: sub, Max: max})
	if err != nil {
		t.Fatalf("Consume(%s,%s): %v", topic, sub, err)
	}
	return rep.Messages
}

func TestPublishSubscribeDeliver(t *testing.T) {
	_, stub := startRegion(t, 2, 4)
	subscribe(t, stub, "news", "alice")
	for i := 0; i < 5; i++ {
		publish(t, stub, "news", fmt.Sprintf("m%d", i))
	}
	msgs := consume(t, stub, "news", "alice", 10)
	if len(msgs) != 5 {
		t.Fatalf("consumed %d messages, want 5", len(msgs))
	}
	for i, m := range msgs {
		if string(m.Body) != fmt.Sprintf("m%d", i) {
			t.Errorf("message %d body = %q, want m%d", i, m.Body, i)
		}
		if m.Seq != int64(i+1) {
			t.Errorf("message %d seq = %d, want %d (per-topic total order)", i, m.Seq, i+1)
		}
	}
}

func TestAtMostOnceDelivery(t *testing.T) {
	_, stub := startRegion(t, 3, 3)
	subscribe(t, stub, "t", "bob")
	const n = 30
	for i := 0; i < n; i++ {
		publish(t, stub, "t", fmt.Sprintf("m%d", i))
	}
	// Concurrent consumers for the same subscription, through different
	// hubs (the stub round-robins): each message must be claimed at most
	// once in total.
	var mu sync.Mutex
	seen := make(map[int64]int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msgs := consume(t, stub, "t", "bob", 5)
				if len(msgs) == 0 {
					return
				}
				mu.Lock()
				for _, m := range msgs {
					seen[m.Seq]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), n)
	}
	for seq, count := range seen {
		if count > 1 {
			t.Fatalf("message %d delivered %d times (at-most-once violated)", seq, count)
		}
	}
}

func TestSubscriberStartsAtSubscriptionPoint(t *testing.T) {
	_, stub := startRegion(t, 2, 4)
	publish(t, stub, "x", "before-1")
	publish(t, stub, "x", "before-2")
	subscribe(t, stub, "x", "carol")
	publish(t, stub, "x", "after-1")
	msgs := consume(t, stub, "x", "carol", 10)
	if len(msgs) != 1 || string(msgs[0].Body) != "after-1" {
		t.Fatalf("carol got %v, want only after-1", msgs)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	_, stub := startRegion(t, 2, 4)
	subscribe(t, stub, "y", "dan")
	publish(t, stub, "y", "m1")
	if got := consume(t, stub, "y", "dan", 10); len(got) != 1 {
		t.Fatalf("got %d messages, want 1", len(got))
	}
	ok, err := core.Call[hedwig.SubArgs, bool](stub, hedwig.MethodUnsubscribe,
		hedwig.SubArgs{Topic: "y", Subscriber: "dan"})
	if err != nil || !ok {
		t.Fatalf("Unsubscribe: ok=%v err=%v", ok, err)
	}
	publish(t, stub, "y", "m2")
	bl, err := core.Call[struct{}, hedwig.BacklogReply](stub, hedwig.MethodBacklog, struct{}{})
	if err != nil {
		t.Fatalf("Backlog: %v", err)
	}
	if bl.Undelivered != 0 {
		t.Fatalf("backlog = %d after unsubscribe, want 0", bl.Undelivered)
	}
}

func TestTopicOwnershipStableAcrossHubs(t *testing.T) {
	_, stub := startRegion(t, 3, 3)
	// Ask for the owner several times through different hubs; the answer
	// must be consistent because ownership is a pure function of the
	// roster.
	var owner int64
	for i := 0; i < 6; i++ {
		rep, err := core.Call[hedwig.TopicArgs, hedwig.OwnerReply](stub, hedwig.MethodOwner,
			hedwig.TopicArgs{Topic: "stable-topic"})
		if err != nil {
			t.Fatalf("Owner: %v", err)
		}
		if i == 0 {
			owner = rep.OwnerUID
		} else if rep.OwnerUID != owner {
			t.Fatalf("owner changed between hubs: %d vs %d", rep.OwnerUID, owner)
		}
	}
}

func TestBacklogTracksUndelivered(t *testing.T) {
	_, stub := startRegion(t, 2, 4)
	subscribe(t, stub, "b", "eve")
	subscribe(t, stub, "b", "frank")
	for i := 0; i < 4; i++ {
		publish(t, stub, "b", "m")
	}
	bl, err := core.Call[struct{}, hedwig.BacklogReply](stub, hedwig.MethodBacklog, struct{}{})
	if err != nil {
		t.Fatalf("Backlog: %v", err)
	}
	if bl.Undelivered != 8 { // 4 messages x 2 subscribers
		t.Fatalf("backlog = %d, want 8", bl.Undelivered)
	}
	consume(t, stub, "b", "eve", 10)
	bl, err = core.Call[struct{}, hedwig.BacklogReply](stub, hedwig.MethodBacklog, struct{}{})
	if err != nil {
		t.Fatalf("Backlog: %v", err)
	}
	if bl.Undelivered != 4 {
		t.Fatalf("backlog after eve consumed = %d, want 4", bl.Undelivered)
	}
}

func TestRetentionWindowDropsOldMessages(t *testing.T) {
	env := ermitest.New(t, 10)
	env.StartPool(t, core.Config{
		Name: "hedwig", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, hedwig.New(hedwig.Config{RetainLimit: 5}))
	stub := env.Stub(t, "hedwig")

	subscribe(t, stub, "r", "slowpoke")
	for i := 0; i < 12; i++ {
		publish(t, stub, "r", fmt.Sprintf("m%d", i))
	}
	// Only the last 5 messages (seq 8..12) are retained; the slow consumer
	// skips the evicted window instead of seeing stale redelivery.
	var got []hedwig.Message
	for {
		msgs := consume(t, stub, "r", "slowpoke", 4)
		if len(msgs) == 0 {
			break
		}
		got = append(got, msgs...)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d retained messages, want 5", len(got))
	}
	if got[0].Seq != 8 || got[len(got)-1].Seq != 12 {
		t.Fatalf("retained window = [%d..%d], want [8..12]", got[0].Seq, got[len(got)-1].Seq)
	}
}

func TestDeliveryAcrossScaleUp(t *testing.T) {
	pool, stub := startRegion(t, 2, 6)
	subscribe(t, stub, "scale", "gina")
	for i := 0; i < 10; i++ {
		publish(t, stub, "scale", fmt.Sprintf("m%d", i))
	}
	if err := pool.Resize(3); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	pool.BroadcastNow()
	for i := 10; i < 20; i++ {
		publish(t, stub, "scale", fmt.Sprintf("m%d", i))
	}
	var got []hedwig.Message
	for {
		msgs := consume(t, stub, "scale", "gina", 7)
		if len(msgs) == 0 {
			break
		}
		got = append(got, msgs...)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d messages across scale-up, want 20", len(got))
	}
	for i, m := range got {
		if string(m.Body) != fmt.Sprintf("m%d", i) {
			t.Fatalf("message %d = %q out of order", i, m.Body)
		}
	}
}

// TestPublishOneWayDelivers: fire-and-forget publishes still sequence,
// retain and deliver exactly like acknowledged ones — the publisher just
// stops paying round trips. Uses a batching stub so the one-way storm
// coalesces into batch frames on the wire.
func TestPublishOneWayDelivers(t *testing.T) {
	env := ermitest.New(t, 10)
	env.StartPool(t, core.Config{
		Name: "hedwig-oneway", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, hedwig.New(hedwig.Config{}))
	stub := env.Stub(t, "hedwig-oneway", core.WithBatching(300*time.Microsecond))

	subscribe(t, stub, "news", "alice")
	const n = 40
	for i := 0; i < n; i++ {
		if err := hedwig.PublishOneWay(stub, hedwig.PublishArgs{
			Topic: "news", Body: []byte(fmt.Sprintf("msg-%d", i)),
		}); err != nil {
			t.Fatalf("PublishOneWay %d: %v", i, err)
		}
	}
	// One-way publishes carry no receipt; poll consumption until all have
	// been sequenced and claimed.
	var got []hedwig.Message
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d/%d one-way publishes", len(got), n)
		}
		got = append(got, consume(t, stub, "news", "alice", n)...)
		time.Sleep(2 * time.Millisecond)
	}
	seen := make(map[int64]bool)
	for _, m := range got {
		if seen[m.Seq] {
			t.Fatalf("message seq %d delivered twice", m.Seq)
		}
		seen[m.Seq] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
}

// TestPublishAsyncPipelines: a publisher keeps a window of publishes in
// flight and every receipt carries a distinct sequence number.
func TestPublishAsyncPipelines(t *testing.T) {
	_, stub := startRegion(t, 2, 4)
	subscribe(t, stub, "ticks", "bob")
	const n = 32
	futures := make([]*core.Future[hedwig.PublishReply], n)
	for i := range futures {
		futures[i] = hedwig.PublishAsync(stub, hedwig.PublishArgs{
			Topic: "ticks", Body: []byte{byte(i)},
		})
	}
	seen := make(map[int64]bool)
	for i, f := range futures {
		rep, err := f.Get()
		if err != nil {
			t.Fatalf("PublishAsync %d: %v", i, err)
		}
		if seen[rep.Seq] {
			t.Fatalf("sequence %d assigned twice", rep.Seq)
		}
		seen[rep.Seq] = true
	}
}
