// Package hedwig re-implements Apache Hedwig — a topic-based
// publish/subscribe system with guaranteed at-most-once delivery from
// publishers to subscribers (paper §5.2) — as an ElasticRMI elastic class.
//
// Hubs (pool members) partition topic ownership among themselves by
// consistent hashing over the current roster; publishes and subscribes for a
// topic are served by its owning hub, with non-owners forwarding through the
// shared store so clients may contact any member (the elastic pool is a
// single remote object). Delivery is pull-based: Consume atomically claims a
// message cursor, so each message is delivered to a subscriber at most once
// even when consumed through different hubs.
//
// Elasticity is fine-grained: ChangePoolSize watches the undelivered-message
// backlog and the publish rate per hub.
package hedwig

import (
	"errors"
	"hash/fnv"
	"strconv"
	"strings"

	"elasticrmi/internal/core"
	"elasticrmi/internal/transport"
)

//go:generate go run elasticrmi/cmd/ermi-gen -in hedwig.go -out hedwig_ermi.go

// Message is one published message as delivered to a subscriber. Body
// decodes as a zero-copy view into the transport frame.
//
//ermi:codec
type Message struct {
	Topic string
	Seq   int64
	Body  []byte
}

// Remote method names.
const (
	// MethodPublish publishes to a topic: (PublishArgs) -> PublishReply.
	MethodPublish = "Publish"
	// MethodSubscribe registers a subscriber: (SubArgs) -> bool.
	MethodSubscribe = "Subscribe"
	// MethodUnsubscribe removes a subscriber: (SubArgs) -> bool.
	MethodUnsubscribe = "Unsubscribe"
	// MethodConsume pulls undelivered messages: (ConsumeArgs) -> ConsumeReply.
	MethodConsume = "Consume"
	// MethodBacklog reports undelivered counts: (struct{}) -> BacklogReply.
	MethodBacklog = "Backlog"
	// MethodOwner reports which hub owns a topic: (TopicArgs) -> OwnerReply.
	MethodOwner = "Owner"
)

// Argument/reply structs for the remote methods; the //ermi:codec mark
// gives them generated binary codecs, so publishes and consumes avoid gob.
//
//ermi:codec
type (
	// PublishArgs carries one publish request.
	PublishArgs struct {
		Topic string
		Body  []byte
	}
	// PublishReply acknowledges a publish with its sequence number.
	PublishReply struct {
		Seq      int64
		OwnerUID int64
	}
	// SubArgs identifies a (topic, subscriber) pair.
	SubArgs struct {
		Topic      string
		Subscriber string
	}
	// ConsumeArgs pulls up to Max undelivered messages for a subscriber.
	ConsumeArgs struct {
		Topic      string
		Subscriber string
		Max        int
	}
	// ConsumeReply returns the claimed messages.
	ConsumeReply struct {
		Messages []Message
	}
	// TopicArgs names a topic.
	TopicArgs struct{ Topic string }
	// OwnerReply identifies the owning hub of a topic.
	OwnerReply struct {
		OwnerUID  int64
		OwnerAddr string
	}
	// BacklogReply reports the total undelivered backlog visible to the hub.
	BacklogReply struct {
		Undelivered int64
		Topics      int
	}
)

// Config tunes the hub's elasticity logic.
type Config struct {
	// BacklogHighPerHub is the undelivered-message count per hub above
	// which the pool grows. Default 256.
	BacklogHighPerHub int64
	// IdleRate is the per-hub publish rate (msgs/s) below which the pool
	// shrinks. Default 5.
	IdleRate float64
	// RetainLimit caps retained messages per topic (oldest dropped), the
	// at-most-once analogue of a bounded delivery window. Default 4096.
	RetainLimit int64
}

func (c Config) withDefaults() Config {
	if c.BacklogHighPerHub == 0 {
		c.BacklogHighPerHub = 256
	}
	if c.IdleRate == 0 {
		c.IdleRate = 5
	}
	if c.RetainLimit == 0 {
		c.RetainLimit = 4096
	}
	return c
}

// Hub is one member of the elastic Hedwig region.
type Hub struct {
	ctx *core.MemberContext
	cfg Config
	mux *core.Mux
}

var (
	_ core.Object    = (*Hub)(nil)
	_ core.PoolSizer = (*Hub)(nil)
)

// New creates the hub factory for core.NewPool.
func New(cfg Config) core.Factory {
	cfg = cfg.withDefaults()
	return func(ctx *core.MemberContext) (core.Object, error) {
		h := &Hub{ctx: ctx, cfg: cfg, mux: core.NewMux()}
		core.Handle(h.mux, MethodPublish, h.publish)
		core.Handle(h.mux, MethodSubscribe, h.subscribe)
		core.Handle(h.mux, MethodUnsubscribe, h.unsubscribe)
		core.Handle(h.mux, MethodConsume, h.consume)
		core.Handle(h.mux, MethodBacklog, h.backlog)
		core.Handle(h.mux, MethodOwner, h.owner)
		return h, nil
	}
}

// HandleCall implements core.Object.
func (h *Hub) HandleCall(method string, arg []byte) ([]byte, error) {
	return h.mux.HandleCall(method, arg)
}

// HandleRequest implements core.RequestHandler: the skeleton dispatches
// through here so codec payload buffers keep their arena lifetime.
func (h *Hub) HandleRequest(req *transport.Request) ([]byte, error) {
	return h.mux.HandleRequest(req)
}

// ownerOf maps a topic onto a live hub by rendezvous hashing over the
// roster, so ownership moves minimally as the pool scales.
func (h *Hub) ownerOf(topic string) (core.MemberInfo, error) {
	roster := h.ctx.Roster()
	if len(roster) == 0 {
		return core.MemberInfo{}, errors.New("hedwig: empty roster")
	}
	best := roster[0]
	var bestScore uint64
	for _, m := range roster {
		if m.Draining {
			continue
		}
		hh := fnv.New64a()
		_, _ = hh.Write([]byte(topic))
		_, _ = hh.Write([]byte(strconv.FormatInt(m.UID, 10)))
		if score := hh.Sum64(); score >= bestScore {
			bestScore = score
			best = m
		}
	}
	return best, nil
}

func (h *Hub) owner(a TopicArgs) (OwnerReply, error) {
	m, err := h.ownerOf(a.Topic)
	if err != nil {
		return OwnerReply{}, err
	}
	return OwnerReply{OwnerUID: m.UID, OwnerAddr: m.Addr}, nil
}

// publish appends the message to the topic log in the shared store. The
// sequence number comes from an atomic per-topic counter, so publishes
// through any hub (owner or forwarder) are totally ordered per topic.
func (h *Hub) publish(a PublishArgs) (PublishReply, error) {
	if a.Topic == "" {
		return PublishReply{}, errors.New("hedwig: empty topic")
	}
	owner, err := h.ownerOf(a.Topic)
	if err != nil {
		return PublishReply{}, err
	}
	seq, err := h.ctx.State.AddInt("topic/"+a.Topic+"/seq", 1)
	if err != nil {
		return PublishReply{}, err
	}
	key := msgKey(a.Topic, seq)
	if err := h.ctx.State.PutBytes(key, a.Body); err != nil {
		return PublishReply{}, err
	}
	if _, err := h.ctx.State.AddInt("published", 1); err != nil {
		return PublishReply{}, err
	}
	// Retention: drop messages older than the window.
	if seq > h.cfg.RetainLimit {
		_ = h.ctx.State.Delete(msgKey(a.Topic, seq-h.cfg.RetainLimit))
	}
	if err := h.registerTopic(a.Topic); err != nil {
		return PublishReply{}, err
	}
	return PublishReply{Seq: seq, OwnerUID: owner.UID}, nil
}

// registerTopic records the topic in the region's topic set (idempotent).
func (h *Hub) registerTopic(topic string) error {
	key := "topics/" + topic
	known, err := h.ctx.State.GetInt(key)
	if err != nil {
		return err
	}
	if known == 0 {
		return h.ctx.State.PutInt(key, 1)
	}
	return nil
}

func (h *Hub) subscribe(a SubArgs) (bool, error) {
	if a.Topic == "" || a.Subscriber == "" {
		return false, errors.New("hedwig: empty topic or subscriber")
	}
	// A new subscriber starts at the current head: it receives messages
	// published after its subscription (Hedwig semantics).
	head, err := h.ctx.State.GetInt("topic/" + a.Topic + "/seq")
	if err != nil {
		return false, err
	}
	if err := h.ctx.State.PutInt(cursorKey(a.Topic, a.Subscriber), head); err != nil {
		return false, err
	}
	if err := h.registerTopic(a.Topic); err != nil {
		return false, err
	}
	if err := h.addSubscriber(a.Topic, a.Subscriber); err != nil {
		return false, err
	}
	return true, nil
}

func (h *Hub) unsubscribe(a SubArgs) (bool, error) {
	if err := h.ctx.State.Delete(cursorKey(a.Topic, a.Subscriber)); err != nil {
		return false, err
	}
	err := h.ctx.State.Synchronized(func() error {
		subs, err := h.ctx.State.GetString("subs/" + a.Topic)
		if err != nil {
			return err
		}
		var keep []string
		for _, s := range strings.Split(subs, ",") {
			if s != "" && s != a.Subscriber {
				keep = append(keep, s)
			}
		}
		return h.ctx.State.PutString("subs/"+a.Topic, strings.Join(keep, ","))
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

func (h *Hub) addSubscriber(topic, sub string) error {
	return h.ctx.State.Synchronized(func() error {
		subs, err := h.ctx.State.GetString("subs/" + topic)
		if err != nil {
			return err
		}
		for _, s := range strings.Split(subs, ",") {
			if s == sub {
				return nil
			}
		}
		if subs == "" {
			return h.ctx.State.PutString("subs/"+topic, sub)
		}
		return h.ctx.State.PutString("subs/"+topic, subs+","+sub)
	})
}

// consume claims up to Max undelivered messages for the subscriber. The
// cursor advance is serialized per (topic, subscriber) with a lock, so a
// message is delivered at most once even under concurrent consumes through
// different hubs.
func (h *Hub) consume(a ConsumeArgs) (ConsumeReply, error) {
	if a.Max <= 0 {
		a.Max = 16
	}
	var out []Message
	lock := "consume/" + a.Topic + "/" + a.Subscriber
	err := h.ctx.State.SynchronizedNamed(lock, func() error {
		cursor, err := h.ctx.State.GetInt(cursorKey(a.Topic, a.Subscriber))
		if err != nil {
			return err
		}
		head, err := h.ctx.State.GetInt("topic/" + a.Topic + "/seq")
		if err != nil {
			return err
		}
		for seq := cursor + 1; seq <= head && len(out) < a.Max; seq++ {
			body, err := h.ctx.State.GetBytes(msgKey(a.Topic, seq))
			if err != nil {
				return err
			}
			if body == nil {
				continue // fell out of the retention window: skipped, not redelivered
			}
			out = append(out, Message{Topic: a.Topic, Seq: seq, Body: body})
			cursor = seq
		}
		if len(out) > 0 {
			if _, err := h.ctx.State.AddInt("delivered", int64(len(out))); err != nil {
				return err
			}
		}
		return h.ctx.State.PutInt(cursorKey(a.Topic, a.Subscriber), cursor)
	})
	if err != nil {
		return ConsumeReply{}, err
	}
	return ConsumeReply{Messages: out}, nil
}

// backlog sums undelivered messages over all topics and subscribers.
func (h *Hub) backlog(struct{}) (BacklogReply, error) {
	topics, err := h.topicList()
	if err != nil {
		return BacklogReply{}, err
	}
	var undelivered int64
	for _, topic := range topics {
		head, err := h.ctx.State.GetInt("topic/" + topic + "/seq")
		if err != nil {
			return BacklogReply{}, err
		}
		subs, err := h.ctx.State.GetString("subs/" + topic)
		if err != nil {
			return BacklogReply{}, err
		}
		for _, sub := range strings.Split(subs, ",") {
			if sub == "" {
				continue
			}
			cursor, err := h.ctx.State.GetInt(cursorKey(topic, sub))
			if err != nil {
				return BacklogReply{}, err
			}
			if head > cursor {
				undelivered += head - cursor
			}
		}
	}
	return BacklogReply{Undelivered: undelivered, Topics: len(topics)}, nil
}

func (h *Hub) topicList() ([]string, error) {
	fields, err := h.ctx.State.Fields()
	if err != nil {
		return nil, err
	}
	var topics []string
	for _, f := range fields {
		if strings.HasPrefix(f, "topics/") {
			topics = append(topics, f[len("topics/"):])
		}
	}
	return topics, nil
}

// PublishAsync pipelines a publish through the stub: many publishes can be
// in flight (and, on a batching stub, coalesced into batch frames) while
// the publisher keeps producing. The future resolves to the receipt.
func PublishAsync(s *core.Stub, a PublishArgs) *core.Future[PublishReply] {
	return core.GoCall[PublishArgs, PublishReply](s, MethodPublish, a)
}

// PublishOneWay fires a publish without waiting for — or the hub ever
// sending — the receipt: the at-most-once delivery contract Hedwig already
// gives subscribers extends to the publish path, so a high-rate publisher
// pays one frame and zero round trips per message. Sequencing and retention
// still happen hub-side exactly as for Publish.
func PublishOneWay(s *core.Stub, a PublishArgs) error {
	return core.OneWayCall[PublishArgs](s, MethodPublish, a)
}

// ChangePoolSize implements core.PoolSizer with Hedwig-specific signals:
// undelivered backlog per hub and publish rate.
func (h *Hub) ChangePoolSize() int {
	stats := h.ctx.MethodCallStats()
	pub := stats[MethodPublish]
	bl, err := h.backlog(struct{}{})
	if err != nil {
		return 0
	}
	size := h.ctx.PoolSize()
	if size == 0 {
		size = 1
	}
	perHub := bl.Undelivered / int64(size)
	switch {
	case perHub > 2*h.cfg.BacklogHighPerHub:
		return 2
	case perHub > h.cfg.BacklogHighPerHub:
		return 1
	case pub.RatePerSec < h.cfg.IdleRate && perHub == 0:
		return -1
	default:
		return 0
	}
}

func msgKey(topic string, seq int64) string {
	return "msg/" + topic + "/" + strconv.FormatInt(seq, 10)
}

func cursorKey(topic, sub string) string {
	return "cursor/" + topic + "/" + sub
}
