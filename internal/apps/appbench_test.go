// Package apps_test benchmarks the four evaluation applications end to end
// on live elastic pools over loopback TCP: the per-operation costs behind
// the paper's QoS metrics (order routing latency, publish latency,
// consensus round time, coordination update latency).
package apps_test

import (
	"fmt"
	"testing"
	"time"

	"elasticrmi/internal/apps/dcs"
	"elasticrmi/internal/apps/hedwig"
	"elasticrmi/internal/apps/marketcetera"
	"elasticrmi/internal/apps/paxos"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

func benchPool(b *testing.B, name string, factory core.Factory) *core.Stub {
	b.Helper()
	env := ermitest.New(b, 8)
	env.StartPool(b, core.Config{
		Name: name, MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory)
	return env.Stub(b, name)
}

// BenchmarkMarketceteraRoute: one order routed and persisted on two nodes.
func BenchmarkMarketceteraRoute(b *testing.B) {
	stub := benchPool(b, "bench-routing", marketcetera.New(marketcetera.Config{}))
	if _, err := core.Call[marketcetera.Venue, bool](stub, marketcetera.MethodAddVenue,
		marketcetera.Venue{Name: "X"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := marketcetera.Order{
			ID: marketcetera.OrderID("bench", int64(i)), Trader: "bench",
			Symbol: "SYM", Side: marketcetera.Buy, Qty: 100,
		}
		if _, err := core.Call[marketcetera.Order, marketcetera.Receipt](stub, marketcetera.MethodRoute, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHedwigPublish: one message appended to a topic log.
func BenchmarkHedwigPublish(b *testing.B) {
	stub := benchPool(b, "bench-hedwig", hedwig.New(hedwig.Config{}))
	body := []byte("payload-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Call[hedwig.PublishArgs, hedwig.PublishReply](stub, hedwig.MethodPublish,
			hedwig.PublishArgs{Topic: "t", Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHedwigPublishConsume: full produce-then-claim cycle for one
// subscriber (at-most-once cursor advance included).
func BenchmarkHedwigPublishConsume(b *testing.B) {
	stub := benchPool(b, "bench-hedwig2", hedwig.New(hedwig.Config{}))
	if _, err := core.Call[hedwig.SubArgs, bool](stub, hedwig.MethodSubscribe,
		hedwig.SubArgs{Topic: "t", Subscriber: "s"}); err != nil {
		b.Fatal(err)
	}
	body := []byte("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Call[hedwig.PublishArgs, hedwig.PublishReply](stub, hedwig.MethodPublish,
			hedwig.PublishArgs{Topic: "t", Body: body}); err != nil {
			b.Fatal(err)
		}
		rep, err := core.Call[hedwig.ConsumeArgs, hedwig.ConsumeReply](stub, hedwig.MethodConsume,
			hedwig.ConsumeArgs{Topic: "t", Subscriber: "s", Max: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Messages) != 1 {
			b.Fatalf("consumed %d messages", len(rep.Messages))
		}
	}
}

// BenchmarkPaxosPropose: one full consensus round (Prepare/Promise +
// Accept/Accepted + Decide) over the pool's group messaging.
func BenchmarkPaxosPropose(b *testing.B) {
	stub := benchPool(b, "bench-paxos", paxos.New(paxos.Config{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := []byte(fmt.Sprintf("cmd-%d", i))
		rep, err := core.Call[paxos.ProposeArgs, paxos.ProposeReply](stub, paxos.MethodPropose,
			paxos.ProposeArgs{Value: val})
		if err != nil {
			b.Fatal(err)
		}
		if string(rep.Value) != string(val) {
			b.Fatalf("decided %q, want %q", rep.Value, val)
		}
	}
}

// BenchmarkDCSSetData: one totally ordered update under the per-path lock.
func BenchmarkDCSSetData(b *testing.B) {
	stub := benchPool(b, "bench-dcs", dcs.New(dcs.Config{}))
	if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
		dcs.CreateArgs{Path: "/bench", Data: []byte("v")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Call[dcs.SetDataArgs, dcs.SetDataReply](stub, dcs.MethodSetData,
			dcs.SetDataArgs{Path: "/bench", Data: []byte("v"), ExpectVersion: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCSGetData: one read (no lock).
func BenchmarkDCSGetData(b *testing.B) {
	stub := benchPool(b, "bench-dcs2", dcs.New(dcs.Config{}))
	if _, err := core.Call[dcs.CreateArgs, dcs.CreateReply](stub, dcs.MethodCreate,
		dcs.CreateArgs{Path: "/bench", Data: []byte("v")}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Call[dcs.PathArgs, dcs.GetDataReply](stub, dcs.MethodGetData,
			dcs.PathArgs{Path: "/bench"}); err != nil {
			b.Fatal(err)
		}
	}
}
